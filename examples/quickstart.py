#!/usr/bin/env python3
"""Quickstart: build an Octopus network and perform anonymous, secure lookups.

This example walks through the library's primary public API:

1. build a simulated Octopus network (Chord ring + CA + all protocols);
2. perform anonymous lookups for application keys and check correctness;
3. inspect what an anonymous lookup looked like on the wire (relays, dummy
   queries, which queries the adversary could observe);
4. run maintenance and surveillance rounds and look at the network summary.

Run with:  python examples/quickstart.py [--nodes N]
"""

from __future__ import annotations

import argparse

from repro import OctopusNetwork


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=300,
                        help="network size (CI smoke-runs pass a tiny value)")
    args = parser.parse_args()

    # ------------------------------------------------------------------ setup
    # By default 300 nodes, 20% of which are controlled by a (currently
    # passive) adversary — the threat model of the paper.
    net = OctopusNetwork.create(n_nodes=args.nodes, fraction_malicious=0.2, seed=42)
    print(f"built a network with {len(net.ring)} nodes "
          f"({len(net.ring.malicious_ids)} malicious, CA + certificates issued)")

    # ---------------------------------------------------------------- lookups
    initiator_id = net.random_honest_node()
    initiator = net.node(initiator_id)
    print(f"\nanonymous lookups from node {initiator_id}:")
    for key_string in ("movie.mkv", "alice@example.org", "chunk-000017"):
        result = initiator.lookup_key(key_string)
        owner = result.result
        print(
            f"  key {key_string!r:24s} -> owner {owner}"
            f"  (correct={result.correct}, hops={result.hops}, "
            f"messages={result.messages_sent}, dummies={len(result.dummy_targets)})"
        )

    # ------------------------------------------------------ anatomy of a lookup
    result = initiator.lookup_key("anatomy-demo")
    print("\nanatomy of the last lookup:")
    print(f"  entry relay pair (A, B): {result.first_pair.as_tuple()}")
    print(f"  per-query relay pairs  : {[p.as_tuple() for p in result.query_pairs]}")
    print(f"  queried nodes          : {result.path}")
    print(f"  dummy query targets    : {result.dummy_targets}")
    observed = [o.queried_node for o in result.observations if o.observed]
    linkable = [o.queried_node for o in result.observations if o.linkable_to_initiator]
    print(f"  queries the adversary observed            : {observed}")
    print(f"  queries linkable back to the initiator    : {linkable}")

    # ------------------------------------------------------------ maintenance
    # One round of stabilization plus one round of secret surveillance checks.
    net.run_maintenance_round(now=2.0)
    net.run_surveillance_round(now=60.0)
    print("\nnetwork summary after one maintenance + surveillance round:")
    for key, value in net.summary().items():
        print(f"  {key:32s} {value}")


if __name__ == "__main__":
    main()
