#!/usr/bin/env python3
"""DHT-based anonymous communication: building Tor-like circuits with Octopus.

The paper's motivating application (Section 2) is scalable anonymous
communication: each client builds a three-relay circuit, and the relays are
discovered with DHT lookups.  If the lookup leaks the initiator or the
target, the circuit can be deanonymised or denial-of-serviced (relay
exhaustion).  This example uses Octopus lookups to pick circuit relays and
reports what a 20%-colluding adversary could observe about the circuit.

Run with:  python examples/anonymous_circuit.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import OctopusNetwork
from repro.sim.rng import RandomSource


@dataclass
class Circuit:
    """A three-relay anonymous circuit built via Octopus lookups."""

    client: int
    relays: List[int]
    lookups_observed: int
    lookups_linkable: int

    @property
    def compromised(self) -> bool:
        """A circuit is compromised only if its first and last relay collude."""
        return len(self.relays) >= 3 and self.relays[0] == -1  # placeholder, set by builder


def build_circuit(net: OctopusNetwork, client: int, rng) -> Circuit:
    """Pick three circuit relays by looking up random identifiers anonymously."""
    relays: List[int] = []
    observed = 0
    linkable = 0
    while len(relays) < 3:
        key = net.ring.random_key(rng)
        result = net.lookup(client, key)
        if not result.succeeded or result.result is None:
            continue
        relay = result.result
        if relay in relays or relay == client:
            continue
        relays.append(relay)
        observed += sum(1 for o in result.observations if o.observed and not o.is_dummy)
        linkable += sum(1 for o in result.observations if o.linkable_to_initiator and not o.is_dummy)
    return Circuit(client=client, relays=relays, lookups_observed=observed, lookups_linkable=linkable)


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=400,
                        help="network size (CI smoke-runs pass a tiny value)")
    parser.add_argument("--circuits", type=int, default=20,
                        help="number of three-relay circuits to build")
    args = parser.parse_args()

    net = OctopusNetwork.create(n_nodes=args.nodes, fraction_malicious=0.2, seed=11)
    rng = RandomSource(99).stream("circuits")
    print(f"network: {len(net.ring)} nodes, {len(net.ring.malicious_ids)} colluding")

    n_circuits = args.circuits
    circuits = []
    for i in range(n_circuits):
        client = net.random_honest_node()
        circuits.append(build_circuit(net, client, rng))

    print(f"\nbuilt {n_circuits} three-relay circuits via anonymous Octopus lookups")
    fully_honest = 0
    end_to_end_compromised = 0
    linkable_lookups = 0
    for c in circuits:
        malicious_relays = [r for r in c.relays if net.ring.is_malicious(r)]
        if not malicious_relays:
            fully_honest += 1
        if net.ring.is_malicious(c.relays[0]) and net.ring.is_malicious(c.relays[-1]):
            end_to_end_compromised += 1
        linkable_lookups += c.lookups_linkable
        print(
            f"  client {c.client}: relays {c.relays} "
            f"({len(malicious_relays)} malicious, "
            f"{c.lookups_observed} observed / {c.lookups_linkable} linkable lookup queries)"
        )

    print("\nsummary:")
    print(f"  circuits with no malicious relay            : {fully_honest}/{n_circuits}")
    print(f"  circuits with colluding entry AND exit      : {end_to_end_compromised}/{n_circuits}")
    print(f"  relay-selection queries linkable to a client: {linkable_lookups}")
    print(
        "\nBecause Octopus hides both the lookup initiator and the target, the adversary\n"
        "cannot predict which node a circuit will be extended to, which is what defeats\n"
        "the relay-exhaustion attack described in the paper."
    )


if __name__ == "__main__":
    main()
