#!/usr/bin/env python3
"""Attacker identification demo: lookup bias attack vs Octopus's defenses.

Scenario (Section 4.3 / Section 5 of the paper): 20% of the nodes mount the
lookup bias attack — whenever they answer a lookup query they return a
successor list made of colluders, so the initiator accepts a colluder as the
key owner.  Octopus's secret neighbor surveillance sends indistinguishable
anonymous probes, catches the manipulated lists, and the CA revokes the
attackers' certificates.

The script runs the attack on the event-driven simulator and prints the
remaining malicious fraction over time (the shape of Figure 3(a)), the number
of biased lookups (Figure 3(b)) and the identification accuracy (Table 2).

Run with:  python examples/attacker_identification.py
"""

from __future__ import annotations

from repro.experiments.security import SecurityExperiment, SecurityExperimentConfig


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=150,
                        help="network size; paper: 1000 (CI smoke-runs pass a tiny value)")
    parser.add_argument("--duration", type=float, default=400.0,
                        help="simulated seconds; paper: 1000")
    args = parser.parse_args()

    config = SecurityExperimentConfig(
        n_nodes=args.nodes,       # scaled down so the demo runs in seconds
        fraction_malicious=0.2,
        duration=args.duration,
        attack="lookup-bias",
        attack_rate=1.0,
        churn_lifetime_minutes=60.0,
        seed=7,
        sample_interval=max(args.duration / 8.0, 1.0),
    )
    print("running the lookup bias attack against Octopus "
          f"({config.n_nodes} nodes, {config.duration:.0f} simulated seconds)...")
    result = SecurityExperiment(config).run()

    print("\nremaining malicious fraction over time (Figure 3(a) shape):")
    for t, fraction in result.malicious_fraction_series:
        bar = "#" * int(fraction * 200)
        print(f"  t={t:6.0f}s  {fraction:6.3f}  {bar}")

    print("\ncumulative lookups vs biased lookups (Figure 3(b) shape):")
    for (t, total), (_, biased) in zip(result.lookups_series, result.biased_lookups_series):
        print(f"  t={t:6.0f}s  lookups={total:6.0f}  biased={biased:5.0f}")

    print("\nidentification accuracy (Table 2 shape):")
    print(f"  malicious nodes identified : {result.identified_malicious}")
    print(f"  honest nodes identified    : {result.identified_honest}")
    print(f"  false positive rate        : {result.false_positive_rate:.4f}")
    print(f"  false negative rate        : {result.false_negative_rate:.4f}")
    print(f"  false alarm rate           : {result.false_alarm_rate:.4f}")

    print("\nCA workload over time (Figure 7(b) shape):")
    for t, count in result.ca_workload_series:
        if count:
            print(f"  t={t:6.0f}s  messages={count:5.0f}")


if __name__ == "__main__":
    main()
