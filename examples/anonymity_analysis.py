#!/usr/bin/env python3
"""Anonymity analysis demo: how much does an adversary learn from a lookup?

Reproduces (at a small scale) the Section 6 analysis: the entropy of the
lookup initiator H(I) and of the lookup target H(T) under a partial adversary,
for Octopus and for the comparison schemes (Chord, NISAN, Torsk).

Run with:  python examples/anonymity_analysis.py
"""

from __future__ import annotations

from repro.anonymity import (
    AnonymityConfig,
    ComparisonAnonymityModel,
    InitiatorAnonymityEstimator,
    LightweightRing,
    TargetAnonymityEstimator,
)


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10_000,
                        help="network size (CI smoke-runs pass a tiny value)")
    parser.add_argument("--worlds", type=int, default=150,
                        help="Monte-Carlo worlds per estimate")
    args = parser.parse_args()

    n_nodes = args.nodes
    alpha = 0.01
    print(f"anonymity analysis over a {n_nodes}-node network, alpha={alpha:.0%} concurrent lookups")
    print(f"{'f':>6s} {'scheme':>10s} {'H(I)':>8s} {'leak(I)':>8s} {'H(T)':>8s} {'leak(T)':>8s}")

    for f in (0.05, 0.10, 0.20):
        ring = LightweightRing(n_nodes=n_nodes, fraction_malicious=f, seed=3)
        config = AnonymityConfig(concurrent_lookup_rate=alpha, dummy_queries=6)

        initiator = InitiatorAnonymityEstimator(ring, config).estimate(n_worlds=args.worlds)
        target = TargetAnonymityEstimator(ring, config).estimate(n_worlds=args.worlds)
        print(
            f"{f:6.2f} {'octopus':>10s} {initiator.entropy_bits:8.2f} {initiator.information_leak_bits:8.2f}"
            f" {target.entropy_bits:8.2f} {target.information_leak_bits:8.2f}"
        )

        comparison = ComparisonAnonymityModel(ring, concurrent_lookup_rate=alpha)
        for scheme, result in comparison.all_schemes().items():
            print(
                f"{f:6.2f} {scheme:>10s} {result.initiator.entropy_bits:8.2f}"
                f" {result.initiator.information_leak_bits:8.2f}"
                f" {result.target.entropy_bits:8.2f} {result.target.information_leak_bits:8.2f}"
            )

    print(
        "\nShape to look for (Figures 5 and 6 of the paper): Octopus leaks well under a"
        "\nbit about both the initiator and the target even with 20% malicious nodes,"
        "\nwhile the key-revealing schemes (Chord, NISAN) leak many bits about the target"
        "\nand Torsk leaks several bits about the initiator."
    )


if __name__ == "__main__":
    main()
