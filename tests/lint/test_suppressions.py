"""Suppression-comment semantics: matching, reasons, staleness, whitelists."""

import textwrap

from repro.lint import DEFAULT_CONFIG, LintConfig, lint_source
from repro.lint.suppress import parse_suppressions


def _lint(source: str, module: str = "repro.sim.example"):
    return lint_source(textwrap.dedent(source), module=module)


def _rules(findings):
    return [f.rule for f in findings]


# ------------------------------------------------------------------ matching
def test_suppression_silences_matching_rule_on_its_line():
    findings = _lint(
        """
        import uuid

        def trial_id():
            return str(uuid.uuid4())  # repro-lint: ignore[D105] — interop shim, outside records
        """
    )
    assert findings == []


def test_suppression_on_other_line_does_not_apply():
    findings = _lint(
        """
        import uuid

        # repro-lint: ignore[D105] — wrong line: comment above, call below
        def trial_id():
            return str(uuid.uuid4())
        """
    )
    assert "D105" in _rules(findings)
    assert "S102" in _rules(findings)  # ...and the stray comment is stale


def test_multi_id_suppression():
    findings = _lint(
        """
        import os
        import uuid

        def both():
            return os.urandom(4), uuid.uuid4()  # repro-lint: ignore[D104,D105] — paired escape for an interop shim
        """
    )
    assert findings == []


def test_suppression_does_not_cover_other_rules():
    findings = _lint(
        """
        import os

        def entropy():
            return os.urandom(4)  # repro-lint: ignore[D105] — wrong id on purpose
        """
    )
    # D104 still fires, and the D105 suppression is unused.
    assert sorted(_rules(findings)) == ["D104", "S102"]


# ------------------------------------------------------------- meta policies
def test_bare_suppression_flagged_s101():
    findings = _lint(
        """
        import uuid

        def trial_id():
            return str(uuid.uuid4())  # repro-lint: ignore[D105]
        """
    )
    assert _rules(findings) == ["S101"]  # D105 silenced, but the bare comment flagged


def test_unused_suppression_flagged_s102():
    findings = _lint("x = 1  # repro-lint: ignore[D101] — nothing to suppress\n")
    assert _rules(findings) == ["S102"]


def test_unknown_rule_id_flagged_s102():
    findings = _lint("x = 1  # repro-lint: ignore[D999] — no such rule\n")
    assert _rules(findings) == ["S102"]
    assert "unknown rule" in findings[0].message


def test_suppression_example_inside_docstring_is_inert():
    findings = _lint(
        '''
        def doc():
            """Write `# repro-lint: ignore[D101] — reason` to suppress."""
            return 1
        '''
    )
    assert findings == []


# ------------------------------------------------------------------- parsing
def test_parse_suppressions_reason_and_ids():
    sups = parse_suppressions(
        "a = 1  # repro-lint: ignore[D101, D202] — legit because reasons\n"
        "b = 2  # repro-lint: ignore[D105]\n"
    )
    assert sups[1].rule_ids == ("D101", "D202")
    assert sups[1].reason == "legit because reasons"
    assert sups[2].rule_ids == ("D105",)
    assert sups[2].reason == ""


# ------------------------------------------------------------------ whitelist
def test_wall_clock_whitelist_by_module():
    source = """
        import time

        def now():
            return time.time()
        """
    assert _rules(_lint(source, module="repro.sim.example")) == ["D103"]
    assert _lint(source, module="repro.campaign.telemetry") == []


def test_scoped_rules_apply_only_in_their_modules():
    source = """
        from dataclasses import dataclass

        @dataclass
        class Event:
            x: int
        """
    assert _rules(_lint(source, module="repro.sim.hooks")) == ["D302"]
    assert _lint(source, module="repro.sim.example") == []


def test_disabled_rule_not_reported():
    config = LintConfig(disabled_rules=frozenset({"D105"}))
    findings = lint_source(
        "import uuid\nx = uuid.uuid4()\n",
        module="repro.sim.example",
        config=config,
    )
    assert findings == []
    assert DEFAULT_CONFIG.rule_enabled("D105")
