"""CLI behavior: ``--json`` schema stability, ``--rules`` catalog, exit codes."""

import json
from pathlib import Path

from repro.lint import all_rules, run_lint, to_json_dict
from repro.lint.cli import main as lint_main
from repro.lint.report import JSON_SCHEMA_VERSION

FIXTURES = Path(__file__).parent / "fixtures"


def _payload_for(path: Path) -> dict:
    return to_json_dict(run_lint([path]))


# -------------------------------------------------------------------- schema
def test_json_schema_shape():
    payload = _payload_for(FIXTURES / "D105_bad.py")
    assert set(payload) == {"version", "files_checked", "findings", "summary"}
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["files_checked"] == 1
    assert payload["summary"] == {"D105": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "path", "module", "line", "col", "message"}
    assert finding["rule"] == "D105"
    assert finding["line"] >= 1
    assert isinstance(finding["col"], int)


def test_json_clean_run():
    payload = _payload_for(FIXTURES / "D105_ok.py")
    assert payload["findings"] == []
    assert payload["summary"] == {}


def test_json_summary_counts_by_rule():
    payload = to_json_dict(
        run_lint([FIXTURES / "D101_bad.py", FIXTURES / "D105_bad.py"])
    )
    assert payload["files_checked"] == 2
    assert payload["summary"]["D105"] == 1
    assert payload["summary"]["D101"] >= 1
    assert sum(payload["summary"].values()) == len(payload["findings"])


def test_json_is_deterministic_and_parseable():
    first = _payload_for(FIXTURES / "D201_bad.py")
    second = _payload_for(FIXTURES / "D201_bad.py")
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


# ---------------------------------------------------------------- exit codes
def test_cli_exit_zero_on_clean(capsys):
    code = lint_main([str(FIXTURES / "D105_ok.py")])
    assert code == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_cli_exit_one_on_findings(capsys):
    code = lint_main(["--json", str(FIXTURES / "D105_bad.py")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"] == {"D105": 1}


def test_cli_exit_two_on_missing_path(capsys):
    code = lint_main([str(FIXTURES / "no_such_file.py")])
    assert code == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_rules_catalog_lists_every_rule(capsys):
    code = lint_main(["--rules"])
    assert code == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out
        assert rule.name in out
    assert "repro-lint: ignore[ID]" in out


def test_text_report_is_grep_friendly(capsys):
    code = lint_main([str(FIXTURES / "D105_bad.py")])
    assert code == 1
    line = capsys.readouterr().out.splitlines()[0]
    # path:line:col: RULE message — clickable in editors and CI logs
    path_part, line_no, col_no, rest = line.split(":", 3)
    assert path_part.endswith("D105_bad.py")
    assert int(line_no) >= 1
    assert int(col_no) >= 1
    assert rest.strip().startswith("D105 ")
