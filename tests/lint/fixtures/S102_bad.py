def plain():
    return 1  # repro-lint: ignore[D105] — nothing here actually draws a uuid
