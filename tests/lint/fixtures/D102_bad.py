import numpy as np

def sample():
    return np.random.rand(3)

def gen():
    return np.random.default_rng()
