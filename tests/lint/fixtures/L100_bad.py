# repro-lint-module: repro.newpkg.module
VALUE = 1
