def collect(items):
    out = []
    for item in {x for x in items}:
        out.append(item)
    return [y for y in set(items)]
