import uuid

def trial_id():
    return str(uuid.uuid4())  # repro-lint: ignore[D105]
