# repro-lint-module: repro.scenarios.controllers
def act(ctx):
    return ctx.rng.stream("control").random()
