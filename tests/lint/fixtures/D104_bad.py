import os
import secrets

def token():
    return os.urandom(16) + secrets.token_bytes(16)
