import numpy as np

def gen(seed):
    return np.random.default_rng(seed)

def sample(rng):
    return rng.random(3)
