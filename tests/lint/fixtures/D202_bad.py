import os
from pathlib import Path

def records(root):
    names = os.listdir(root)
    return [p.stem for p in Path(root).glob("*.json")] + names
