def collect(items):
    out = []
    for item in sorted(set(items)):
        out.append(item)
    total = sum(x for x in set(items))
    members = {x for x in set(items)}
    return out, total, members
