import hashlib

def bucket(key, n):
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big") % n
