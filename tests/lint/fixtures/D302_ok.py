# repro-lint-module: repro.sim.hooks
from dataclasses import dataclass

@dataclass(frozen=True)
class NodeJoined:
    node_id: int
