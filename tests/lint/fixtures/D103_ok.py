# repro-lint-module: repro.sim.somewhere
def stamp(engine):
    return engine.clock.now()
