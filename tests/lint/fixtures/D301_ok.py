def streams(rng):
    return rng.spawn("workload"), rng.spawn("control")
