def broken(:
    return
