import hashlib

def token(seed):
    return hashlib.sha256(f"token:{seed}".encode()).digest()
