# repro-lint-module: repro.sim.module
VALUE = 1
