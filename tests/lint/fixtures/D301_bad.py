def streams(rng, name):
    return rng.spawn(name), rng.spawn("prefix-" + name)
