# repro-lint-module: repro.sim.hooks
from dataclasses import dataclass

@dataclass
class NodeJoined:
    node_id: int

@dataclass(frozen=False)
class NodeLeft:
    node_id: int
