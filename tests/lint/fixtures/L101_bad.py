# repro-lint-module: repro.sim.helper
from repro.campaign.spec import TrialSpec

def use():
    return TrialSpec
