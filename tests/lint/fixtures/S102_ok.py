import uuid

def trial_id():
    return str(uuid.uuid4())  # repro-lint: ignore[D105] — interop shim for an external tool; never inside records
