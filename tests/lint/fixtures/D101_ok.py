import random

def make_gen(seed):
    return random.Random(seed)

def roll(rng):
    return rng.random()
