import os
from pathlib import Path

def records(root):
    names = sorted(os.listdir(root))
    present = {p.stem for p in Path(root).glob("*.json")}
    return sorted(Path(root).iterdir()), names, present
