# repro-lint-module: repro.sim.somewhere
import time
from datetime import datetime

def stamp():
    return time.time(), datetime.now()
