# repro-lint-module: repro.campaign.helper
from repro.sim.rng import RandomSource

def use():
    return RandomSource
