def bucket(key, n):
    return hash(key) % n
