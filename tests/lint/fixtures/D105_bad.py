import uuid

def trial_id():
    return str(uuid.uuid4())
