# repro-lint-module: repro.scenarios.controllers
def act(ctx):
    return ctx.network.rng.random() + ctx.engine.rng.random()
