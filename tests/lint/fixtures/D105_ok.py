import hashlib

def trial_id(kind, params):
    return hashlib.sha256(f"{kind}:{params}".encode()).hexdigest()[:12]
