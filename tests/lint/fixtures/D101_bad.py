import random

def roll():
    return random.random() + random.randint(1, 6)

def make_gen():
    return random.Random()
