"""Meta-tests: the shipped tree itself stays lint-clean, and the gate
actually gates (a seeded violation fails the run)."""

import subprocess
import sys
from pathlib import Path

from repro.lint import run_lint
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def test_src_repro_is_lint_clean():
    """The acceptance gate: zero unsuppressed findings over src/repro."""
    result = run_lint([SRC_REPRO])
    assert result.files_checked > 100  # sanity: we really walked the tree
    assert result.findings == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    )


def test_seeded_violation_fails_the_gate(tmp_path):
    """An intentional unsorted glob in a campaign-named module must flip the
    exit code — this is what the CI job relies on."""
    bad = tmp_path / "bad_module.py"
    bad.write_text(
        "# repro-lint-module: repro.campaign.example\n"
        "from pathlib import Path\n"
        "\n"
        "def records(root):\n"
        "    return [p.stem for p in Path(root).glob('*.json')]\n"
    )
    assert lint_main([str(SRC_REPRO)]) == 0
    assert lint_main([str(SRC_REPRO), str(bad)]) == 1


def test_module_main_entrypoint():
    """``python -m repro.lint <clean fixture>`` exits 0; with a violation, 1."""
    fixtures = Path(__file__).parent / "fixtures"
    env_src = str(REPO_ROOT / "src")
    clean = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(fixtures / "D105_ok.py")],
        capture_output=True, text=True, env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert clean.returncode == 0, clean.stderr
    dirty = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(fixtures / "D105_bad.py")],
        capture_output=True, text=True, env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert dirty.returncode == 1, dirty.stderr
    assert "D105" in dirty.stdout


def test_repro_cli_lint_subcommand(capsys):
    """``repro lint`` routes through the main CLI with the same contract."""
    from repro.cli import main as repro_main

    assert repro_main(["lint", str(SRC_REPRO)]) == 0
    out = capsys.readouterr().out
    assert "clean: 0 findings" in out
    assert repro_main(["lint", "--rules"]) == 0
    assert "D201" in capsys.readouterr().out
