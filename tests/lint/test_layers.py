"""Layer-DAG checker: module→layer mapping, relative-import resolution,
and the declared table's own invariants."""

import ast
import textwrap

from repro.lint import lint_source
from repro.lint.layers import LAYERS, check_layers, layer_of


def _check(source: str, module: str, is_package: bool = False):
    tree = ast.parse(textwrap.dedent(source))
    return check_layers(tree, module, is_package)


# ------------------------------------------------------------------- mapping
def test_layer_of_known_modules():
    assert layer_of("repro.sim.engine") == "sim"
    assert layer_of("repro.campaign.backends.queue") == "campaign"
    assert layer_of("repro.cli") == "app"
    assert layer_of("repro.__main__") == "app"
    assert layer_of("repro") == "app"
    assert layer_of("repro.lint.engine") == "lint"
    assert layer_of("repro.nope.x") is None
    assert layer_of("othertree.sim") is None


def test_layer_table_is_a_dag():
    """Every allowed edge points at a declared layer, and following allowed
    edges can never come back (the table is transitively closed + acyclic)."""
    for layer, allowed in LAYERS.items():
        assert layer not in allowed
        for dep in allowed:
            assert dep in LAYERS
            assert layer not in LAYERS[dep], f"cycle {layer} <-> {dep}"
            # transitive closure: anything my dependency may import, I may too
            # (except the app shell, which nothing imports anyway)
            assert LAYERS[dep] <= allowed, f"{layer} misses {LAYERS[dep] - allowed}"


# ------------------------------------------------------------------ checking
def test_upward_import_flagged():
    findings = _check("from repro.campaign.spec import TrialSpec\n", "repro.sim.helper")
    assert [f.rule for f in findings] == ["L101"]
    assert "campaign" in findings[0].message


def test_downward_and_same_layer_imports_allowed():
    assert _check("from repro.sim.rng import RandomSource\n", "repro.campaign.helper") == []
    assert _check("from repro.sim.engine import SimulationEngine\n", "repro.sim.helper") == []


def test_relative_import_resolution():
    # repro/experiments/load.py: ``from ..sim.rng import X`` -> repro.sim.rng
    assert _check("from ..sim.rng import RandomSource\n", "repro.experiments.load") == []
    # ...while ``from ..scenarios.workloads import X`` is an upward edge
    findings = _check("from ..scenarios.workloads import WORKLOADS\n", "repro.experiments.load")
    assert [f.rule for f in findings] == ["L101"]


def test_relative_import_from_package_init():
    # repro/campaign/__init__.py: ``from .spec import X`` stays in-layer
    assert _check("from .spec import CampaignSpec\n", "repro.campaign", is_package=True) == []
    # repro/campaign/backends/queue.py: ``from ...sim import profiling`` would
    # resolve through two parents — allowed downward edge
    assert _check("from ...sim import profiling\n", "repro.campaign.backends.queue") == []


def test_function_level_import_also_checked():
    findings = _check(
        """
        def build():
            from repro.campaign.spec import TrialSpec
            return TrialSpec
        """,
        "repro.experiments.helper",
    )
    assert [f.rule for f in findings] == ["L101"]


def test_app_layer_imports_everything():
    source = "\n".join(
        f"import repro.{pkg}" for pkg in sorted(set(LAYERS) - {"app"})
    )
    assert _check(source, "repro.cli") == []


def test_lint_layer_is_self_contained():
    findings = _check("from repro.sim.rng import RandomSource\n", "repro.lint.helper")
    assert [f.rule for f in findings] == ["L101"]


def test_unmapped_repro_module_flagged_l100():
    findings = _check("x = 1\n", "repro.newpkg.module")
    assert [f.rule for f in findings] == ["L100"]
    # non-repro modules are out of scope entirely
    assert _check("x = 1\n", "othertree.module") == []


def test_l101_suppressible_with_reason():
    findings = lint_source(
        "from repro.scenarios.workloads import WORKLOADS"
        "  # repro-lint: ignore[L101] — deliberate lazy reverse edge\n",
        module="repro.experiments.helper",
    )
    assert findings == []
