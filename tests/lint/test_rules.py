"""Fixture-corpus tests: every rule has a minimal positive + negative case.

Convention: ``fixtures/<RULE>_bad.py`` must produce at least one finding of
exactly that rule (and nothing else); ``fixtures/<RULE>_ok.py`` is the
closest clean spelling and must produce zero findings.  A leading
``# repro-lint-module:`` directive lets a fixture claim the module name a
scoped rule (D103/D302/D303/L1xx) needs.
"""

from pathlib import Path

import pytest

from repro.lint import all_rules, lint_file
from repro.lint.rules import CATEGORY_META

FIXTURES = Path(__file__).parent / "fixtures"

BAD = sorted(FIXTURES.glob("*_bad.py"))
OK = sorted(FIXTURES.glob("*_ok.py"))


def _rule_of(path: Path) -> str:
    return path.stem.rsplit("_", 1)[0]


def test_corpus_covers_every_rule():
    """Each registered rule has one bad and one ok fixture — no rule ships
    without a self-test."""
    expected = {rule.id for rule in all_rules()}
    assert {_rule_of(p) for p in BAD} == expected
    assert {_rule_of(p) for p in OK} == expected


@pytest.mark.parametrize("path", BAD, ids=lambda p: p.stem)
def test_bad_fixture_triggers_its_rule(path):
    findings = lint_file(path)
    rules_hit = {f.rule for f in findings}
    assert _rule_of(path) in rules_hit, f"expected {_rule_of(path)}, got {findings}"
    # A bad fixture must be *minimal*: nothing but its own rule fires.
    assert rules_hit == {_rule_of(path)}, f"extra findings in {path.name}: {findings}"


@pytest.mark.parametrize("path", OK, ids=lambda p: p.stem)
def test_ok_fixture_is_clean(path):
    findings = lint_file(path)
    assert findings == [], f"unexpected findings in {path.name}: {findings}"


def test_bad_fixtures_report_real_positions():
    for path in BAD:
        for finding in lint_file(path):
            assert finding.line >= 1
            assert finding.col >= 0
            assert finding.message


def test_rule_catalog_is_well_formed():
    rules = all_rules()
    ids = [rule.id for rule in rules]
    assert ids == sorted(ids)
    assert len(ids) == len(set(ids))
    for rule in rules:
        assert rule.summary
        assert rule.category
        # determinism/layering ids are D/L + 3 digits; meta are S/E + 3 digits
        family = rule.id[0]
        if rule.category == CATEGORY_META:
            assert family in ("S", "E")
        else:
            assert family in ("D", "L")
