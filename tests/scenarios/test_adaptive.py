"""The ``adaptive`` kind: controller registries, config resolution, and the
byte-neutrality of static controllers against a plain security run."""

from __future__ import annotations

import json

import pytest

from repro.experiments.results import jsonify
from repro.experiments.security import SecurityExperimentConfig, run_security
from repro.scenarios import (
    ADAPTIVE_PRESETS,
    ATTACKER_STRATEGIES,
    DEFENSE_POLICIES,
    AdaptiveConfig,
    available_adaptive_presets,
    get_adaptive_preset,
    run_adaptive,
)
from repro.scenarios.controllers import StaticAttacker, StaticDefense


_SMALL_BASE = {"n_nodes": 60, "duration": 60.0, "sample_interval": 20.0}


class TestRegistries:
    def test_attacker_strategies(self):
        names = ATTACKER_STRATEGIES.available()
        assert "static" in names
        assert "re-eclipse" in names
        assert "join-leave-cycling" in names

    def test_defense_policies(self):
        names = DEFENSE_POLICIES.available()
        assert "static" in names
        assert "adaptive-threshold" in names
        assert "aggressive-revoke" in names

    def test_build_with_params(self):
        strategy = ATTACKER_STRATEGIES.build("re-eclipse", {"window": 4})
        assert strategy.window == 4

    def test_bad_params_raise_value_error(self):
        with pytest.raises(ValueError, match="re-eclipse"):
            ATTACKER_STRATEGIES.build("re-eclipse", {"nope": 1})

    def test_presets_reference_known_controllers(self):
        assert len(available_adaptive_presets()) >= 3
        for name in available_adaptive_presets():
            preset = get_adaptive_preset(name)
            assert preset.get("attacker", "static") in ATTACKER_STRATEGIES.available()
            assert preset.get("defense", "static") in DEFENSE_POLICIES.available()


class TestAdaptiveConfig:
    def test_preset_fills_defaults(self):
        config = AdaptiveConfig(preset="arms-race").resolved()
        expected = ADAPTIVE_PRESETS["arms-race"]
        assert config.attacker == expected["attacker"]
        assert config.defense == expected["defense"]
        assert config.defense_params == expected["defense_params"]
        assert config.base["n_nodes"] == expected["base"]["n_nodes"]

    def test_explicit_controller_discards_preset_params(self):
        # Overriding the controller must not drag the preset's params along
        # (arms-race ships aggressive-revoke params that adaptive-threshold
        # would reject).
        config = AdaptiveConfig(
            preset="arms-race", defense="adaptive-threshold"
        ).resolved()
        assert config.defense == "adaptive-threshold"
        assert config.defense_params == {}

    def test_user_params_win_merge(self):
        config = AdaptiveConfig(
            preset="arms-race", defense_params={"strikes": 5}
        ).resolved()
        assert config.defense_params["strikes"] == 5

    def test_base_user_keys_win(self):
        config = AdaptiveConfig(preset="arms-race", base={"n_nodes": 30}).resolved()
        assert config.base["n_nodes"] == 30
        assert config.base["duration"] == ADAPTIVE_PRESETS["arms-race"]["base"]["duration"]

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown adaptive preset"):
            AdaptiveConfig(preset="nope").resolved()

    def test_unknown_controller(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(attacker="nope").resolved().validate()

    def test_seed_in_base_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            AdaptiveConfig(base={"seed": 4}).resolved().validate()

    def test_to_dict_round_trips_json(self):
        config = AdaptiveConfig(preset="arms-race", seed=2).resolved()
        payload = json.dumps(config.to_dict(), sort_keys=True)
        assert json.loads(payload)["seed"] == 2


class TestAdaptiveRuns:
    def test_static_controllers_are_byte_neutral_on_base_series(self):
        """A static×static adaptive run is the plain security run plus an
        engagement report — every base series and metric byte-identical."""
        base_config = SecurityExperimentConfig(seed=7, **_SMALL_BASE)
        plain = jsonify(run_security(base_config).to_dict())

        result = run_adaptive(AdaptiveConfig(base=dict(_SMALL_BASE), seed=7))
        wrapped = jsonify(result.base_result.to_dict())

        engagement = wrapped["series"].pop("engagement", None)
        assert engagement is not None  # controllers attached -> report emitted
        for key in list(wrapped["metrics"]):
            if key.startswith("engagement_"):
                del wrapped["metrics"][key]
        assert json.dumps(wrapped, sort_keys=True) == json.dumps(plain, sort_keys=True)

    def test_same_config_runs_identically(self):
        config = AdaptiveConfig(
            attacker="re-eclipse",
            defense="aggressive-revoke",
            base=dict(_SMALL_BASE, fraction_malicious=0.2, attack="lookup-bias"),
            seed=3,
        )
        first = json.dumps(jsonify(run_adaptive(config).to_dict()), sort_keys=True)
        second = json.dumps(jsonify(run_adaptive(config).to_dict()), sort_keys=True)
        assert first == second

    def test_cycling_attacker_forces_cycles(self):
        config = AdaptiveConfig(
            attacker="join-leave-cycling",
            attacker_params={"period": 15.0, "downtime": 2.0},
            base=dict(
                _SMALL_BASE,
                fraction_malicious=0.2,
                attack="lookup-bias",
                churn_lifetime_minutes=10.0,
            ),
            seed=5,
        )
        metrics = run_adaptive(config).scalar_metrics()
        assert metrics.get("engagement_attacker_forced_cycles", 0.0) > 0
        assert "engagement_revocations_total" in metrics

    def test_result_dict_names_both_controllers(self):
        result = run_adaptive(AdaptiveConfig(base=dict(_SMALL_BASE), seed=1))
        payload = result.to_dict()
        assert payload["adaptive"]["attacker"]["name"] == "static"
        assert payload["adaptive"]["defense"]["name"] == "static"
        assert "metrics" not in payload["base_result"]

    def test_static_controller_instances_do_nothing(self):
        # Belt and braces for the neutrality claim: the static controllers
        # never subscribe, so the bus stays empty during the run.
        attacker, defense = StaticAttacker(), StaticDefense()
        assert attacker.name == "static" and defense.name == "static"
