"""The three scenario axes: churn profiles, workload models, placements."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.scenarios import (
    CHURN_PROFILES,
    PLACEMENTS,
    WORKLOADS,
    AdversarialChurnWrapper,
    AxisRegistry,
    EclipsePlacement,
    FlashCrowdChurnProfile,
    HighDegreePlacement,
    HotKeyStormWorkload,
    JoinLeavePlacement,
    ParetoChurnProfile,
    PlacementStrategy,
    PoissonWorkload,
    WeibullChurnProfile,
    ZipfWorkload,
    key_for_label,
)
from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RandomSource

SPACE = 2 ** 32


# ------------------------------------------------------------------ registries


def test_axis_registry_contract():
    registry = AxisRegistry("test axis")
    registry.register("thing", dict, "a thing")
    assert registry.available() == ("thing",)
    assert registry.describe() == {"thing": "a thing"}
    with pytest.raises(ValueError, match="already registered"):
        registry.register("thing", dict)
    registry.register("thing", list, replace=True)
    with pytest.raises(KeyError, match="unknown test axis"):
        registry.get("nope")
    with pytest.raises(ValueError, match="bad parameters"):
        registry.build("thing", {"no_such_kw": 1})


def test_builtin_axis_names():
    assert CHURN_PROFILES.available() == (
        "diurnal", "exponential", "flash-crowd", "pareto", "trace", "weibull",
    )
    assert WORKLOADS.available() == ("hot-key-storm", "poisson", "uniform", "zipf")
    assert PLACEMENTS.available() == ("eclipse", "high-degree", "join-leave", "uniform")


# -------------------------------------------------------------- churn profiles


@pytest.mark.parametrize(
    "profile", [WeibullChurnProfile(shape=0.5), ParetoChurnProfile(alpha=1.4)]
)
def test_heavy_tail_profiles_are_mean_matched(profile):
    """Weibull/Pareto sessions keep the paper's configured mean lifetime."""
    mean = 600.0
    profile.bind(ChurnConfig(mean_lifetime_seconds=mean))
    stream = random.Random(42)
    n = 20_000
    draws = [profile.session_length(stream, 0.0, node_id=0) for _ in range(n)]
    assert sum(draws) / n == pytest.approx(mean, rel=0.1)
    # Heavy tail: the median sits well below the mean (exponential: ~0.69x).
    assert sorted(draws)[n // 2] < 0.6 * mean


def test_heavy_tail_profiles_reject_degenerate_shapes():
    with pytest.raises(ValueError):
        WeibullChurnProfile(shape=0.0)
    with pytest.raises(ValueError):
        ParetoChurnProfile(alpha=1.0)  # infinite mean


def test_flash_crowd_latecomers_join_in_the_window():
    engine = SimulationEngine()
    profile = FlashCrowdChurnProfile(late_fraction=0.5, flash_time_s=50.0, flash_window_s=10.0)
    offline, online = [], []
    process = ChurnProcess(
        engine,
        ChurnConfig(mean_lifetime_seconds=None),  # flash only, no other churn
        RandomSource(3),
        on_leave=offline.append,
        on_join=online.append,
        profile=profile,
    )
    node_ids = list(range(40))
    process.start(node_ids)
    assert len(offline) == 20  # latecomers departed at t=0
    engine.run(until=49.0)
    assert not online  # nobody back before the flash
    engine.run(until=61.0)
    assert sorted(online) == sorted(offline)  # the whole crowd arrived
    join_times = [t for t, _ in process.log.rejoins]
    assert all(50.0 <= t <= 60.0 for t in join_times)


def test_adversarial_wrapper_scales_only_malicious_nodes():
    wrapper = AdversarialChurnWrapper(session_scale=0.25, downtime_scale=0.5)
    wrapper.bind(ChurnConfig(mean_lifetime_seconds=1000.0, mean_downtime_seconds=100.0))
    wrapper.bind_population({7})

    class ConstantStream:
        @staticmethod
        def expovariate(rate):
            return 1.0 / rate

    honest = wrapper.session_length(ConstantStream, 0.0, node_id=1)
    malicious = wrapper.session_length(ConstantStream, 0.0, node_id=7)
    assert malicious == pytest.approx(honest * 0.25)
    assert wrapper.downtime(ConstantStream, 0.0, 7) == pytest.approx(
        wrapper.downtime(ConstantStream, 0.0, 1) * 0.5
    )


# ------------------------------------------------------------------- workloads


def test_zipf_head_rank_dominates_and_keys_are_stable():
    workload = ZipfWorkload(exponent=1.2, n_keys=64)
    stream = random.Random(1)
    keys = [workload.next_key(SPACE, stream, 0.0) for _ in range(5000)]
    counts = Counter(keys)
    head = key_for_label("zipf-key-1", SPACE)
    assert counts[head] == max(counts.values())  # rank 1 is the hottest
    assert len(counts) <= 64
    # Key-for-rank mapping is deterministic across instances.
    assert ZipfWorkload(exponent=1.2, n_keys=64).next_key(
        SPACE, random.Random(1), 0.0
    ) == keys[0]


def test_hot_key_storm_concentrates_only_inside_the_window():
    workload = HotKeyStormWorkload(
        storm_start_s=10.0, storm_end_s=20.0, storm_intensity=0.9, hot_key_label="hk"
    )
    hot = key_for_label("hk", SPACE)
    stream = random.Random(2)
    during = [workload.next_key(SPACE, stream, now=15.0) for _ in range(1000)]
    before = [workload.next_key(SPACE, stream, now=5.0) for _ in range(1000)]
    assert 0.85 <= sum(k == hot for k in during) / 1000 <= 0.95
    assert sum(k == hot for k in before) / 1000 < 0.01


def test_poisson_ramp_scales_the_arrival_rate():
    workload = PoissonWorkload(rate_per_node_per_s=0.05, ramp=[[100.0, 4.0]])
    engine = SimulationEngine()
    arrivals = []
    workload.schedule(
        engine,
        node_ids=list(range(20)),
        interval=10.0,
        space_size=SPACE,
        rng=RandomSource(5),
        issue=lambda nid, draw_key: arrivals.append((engine.now, nid, draw_key())),
    )
    engine.run(until=200.0)
    first_half = sum(1 for t, _, _ in arrivals if t < 100.0)
    second_half = len(arrivals) - first_half
    # rate = 1/s before the ramp, 4/s after: expect ~100 then ~400 arrivals.
    assert first_half == pytest.approx(100, abs=40)
    assert second_half == pytest.approx(400, abs=80)
    issuers = {nid for _, nid, _ in arrivals}
    assert len(issuers) > 10  # arrivals spread over the population


def test_poisson_ramp_step_takes_effect_immediately():
    """Regression: a gap drawn at the old rate must not span a ramp step.

    Historically the next-arrival gap was drawn once at the current rate and
    scheduled verbatim, so ramping up from near-idle left the first
    post-step arrival exponentially delayed at the *old* rate: here the
    pre-step rate is 0.01/s (mean gap 100 s), so arrivals after the t=50
    1000x step would straggle in ~100 s late.  The fixed model caps each
    gap at the next ramp boundary and re-draws there at the new rate.
    """
    workload = PoissonWorkload(rate_per_node_per_s=0.01, ramp=[[50.0, 1000.0]])
    engine = SimulationEngine()
    arrivals = []
    workload.schedule(
        engine, [1], 1.0, SPACE, RandomSource(11),
        lambda nid, draw_key: arrivals.append(engine.now),
    )
    engine.run(until=52.0)
    post_step = [t for t in arrivals if t >= 50.0]
    # Post-step rate is 10/s: the step window must fill promptly.
    assert len(post_step) >= 5
    assert post_step[0] < 51.0


def test_poisson_empirical_rate_tracks_each_ramp_segment():
    """Property: per-segment arrival counts match rate x population x mult."""
    n_nodes = 50
    per_node = 0.1
    workload = PoissonWorkload(
        rate_per_node_per_s=per_node, ramp=[[40.0, 2.0], [80.0, 0.5]]
    )
    engine = SimulationEngine()
    arrivals = []
    workload.schedule(
        engine, list(range(n_nodes)), 1.0, SPACE, RandomSource(12),
        lambda nid, draw_key: arrivals.append(engine.now),
    )
    engine.run(until=120.0)
    segments = [(0.0, 40.0, 1.0), (40.0, 80.0, 2.0), (80.0, 120.0, 0.5)]
    for start, end, mult in segments:
        expected = per_node * n_nodes * mult * (end - start)
        observed = sum(1 for t in arrivals if start <= t < end)
        assert observed == pytest.approx(expected, rel=0.30), (start, end)


def test_poisson_draws_initiators_from_the_alive_view():
    """Regression: arrivals must pick from who is online *now*, not the
    install-time population snapshot (which silently selected departed
    initiators whose lookups then no-opped)."""
    node_ids = list(range(10))
    alive = list(node_ids)
    workload = PoissonWorkload(rate_per_node_per_s=1.0)
    engine = SimulationEngine()
    issued = []
    workload.schedule(
        engine, node_ids, 1.0, SPACE, RandomSource(13),
        lambda nid, draw_key: issued.append((engine.now, nid)),
        alive_view=lambda: alive,
    )
    engine.schedule_at(20.0, lambda: alive.__setitem__(slice(None), [0, 1, 2]))
    engine.run(until=40.0)
    after = [nid for t, nid in issued if t > 20.0]
    assert after and set(after) <= {0, 1, 2}
    assert {nid for t, nid in issued if t <= 20.0} - {0, 1, 2}


def test_poisson_without_alive_view_matches_static_population():
    """A static alive view is draw-for-draw identical to no view at all —
    the compatibility contract for churn-free runs."""
    node_ids = list(range(8))

    def issue_sequence(**kwargs):
        engine = SimulationEngine()
        issued = []
        PoissonWorkload(rate_per_node_per_s=0.5).schedule(
            engine, node_ids, 1.0, SPACE, RandomSource(14),
            lambda nid, draw_key: issued.append((engine.now, nid, draw_key())),
            **kwargs,
        )
        engine.run(until=30.0)
        return issued

    assert issue_sequence() == issue_sequence(alive_view=lambda: node_ids)


def test_poisson_rejects_malformed_ramp_entries():
    with pytest.raises(ValueError, match="ramp entries must be"):
        PoissonWorkload(ramp=[[10.0]])
    with pytest.raises(ValueError, match="ramp entries must be"):
        PoissonWorkload(ramp=["not-a-pair"])
    with pytest.raises(ValueError, match="non-negative"):
        PoissonWorkload(ramp=[[10.0, -1.0]])


def test_poisson_zero_rate_ramp_pauses_arrivals():
    workload = PoissonWorkload(rate_per_node_per_s=0.1, ramp=[[10.0, 0.0], [50.0, 1.0]])
    engine = SimulationEngine()
    arrivals = []
    workload.schedule(
        engine, list(range(10)), 5.0, SPACE, RandomSource(6),
        lambda nid, draw_key: arrivals.append(engine.now),
    )
    engine.run(until=100.0)
    assert not [t for t in arrivals if 11.0 < t < 50.0]  # paused window is quiet
    assert [t for t in arrivals if t >= 50.0]  # and arrivals resume


# ------------------------------------------------------------------ placements


def _ids(n=50, seed=9):
    rng = random.Random(seed)
    ids = sorted(rng.sample(range(SPACE), n))
    return ids


def test_uniform_placement_samples_the_requested_count():
    ids = _ids()
    positions = PlacementStrategy()(ids, 10, random.Random(0), SPACE)
    assert len(set(positions)) == 10
    assert all(0 <= p < len(ids) for p in positions)


def test_eclipse_clusters_on_the_victim_arc():
    ids = _ids()
    strategy = EclipsePlacement(victim_key="the-victim")
    positions = strategy(ids, 10, random.Random(0), SPACE)
    assert len(positions) == 10
    import bisect

    start = bisect.bisect_left(ids, strategy.victim_id(SPACE)) % len(ids)
    assert positions == [(start + i) % len(ids) for i in range(10)]
    # With spread, part of the adversary scatters off the arc.
    spread = EclipsePlacement(victim_key="the-victim", spread=0.5)(
        ids, 10, random.Random(0), SPACE
    )
    arc = {(start + i) % len(ids) for i in range(10)}
    assert len(set(spread)) == 10 and not set(spread) <= arc


def test_high_degree_targets_largest_gaps():
    ids = _ids()
    positions = HighDegreePlacement()(ids, 5, random.Random(0), SPACE)
    gaps = [(ids[p] - ids[p - 1]) % SPACE for p in range(len(ids))]
    chosen = sorted(gaps[p] for p in positions)
    others = [gaps[p] for p in range(len(ids)) if p not in set(positions)]
    assert min(chosen) >= max(others)


def test_join_leave_placement_is_uniform_but_flags_fast_churn():
    strategy = JoinLeavePlacement(session_scale=0.2)
    assert strategy.churn_session_scale == 0.2
    positions = strategy(_ids(), 10, random.Random(0), SPACE)
    assert len(set(positions)) == 10
    with pytest.raises(ValueError):
        JoinLeavePlacement(session_scale=0.0)
