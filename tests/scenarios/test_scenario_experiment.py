"""The ``scenario`` campaign kind: presets, resolution, end-to-end runs.

Acceptance criteria pinned here:

* every built-in preset runs end-to-end through ``repro campaign`` (the real
  CLI entry point) with content-addressed trial ids;
* preset resolution layers user overrides over preset defaults;
* inapplicable axes are reported, not silently dropped;
* ``paper-baseline`` reproduces the plain base experiment exactly.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.campaign import CampaignSpec, get_experiment, run_campaign
from repro.cli import main
from repro.experiments.security import SecurityExperimentConfig, run_security
from repro.scenarios import (
    ScenarioConfig,
    available_presets,
    get_preset,
    run_scenario,
)

#: tiny base-experiment overrides keeping every preset's end-to-end run fast.
TINY_SECURITY = {"n_nodes": 60, "duration": 20.0, "sample_interval": 10.0}
TINY_ANONYMITY = {
    "n_nodes": 300,
    "fractions_malicious": [0.2],
    "dummy_counts": [2],
    "concurrent_lookup_rates": [0.01],
    "n_worlds": 5,
}
TINY_EFFICIENCY = {"n_nodes": 40, "lookups_per_scheme": 4}
TINY_LOAD = {"n_nodes": 40, "duration": 10.0, "sample_interval": 5.0, "offered_rps": 10.0}


def tiny_base_for(preset: str) -> dict:
    experiment = get_preset(preset).get("experiment", "security")
    if experiment == "anonymity":
        return dict(TINY_ANONYMITY)
    if experiment == "efficiency":
        return dict(TINY_EFFICIENCY)
    if experiment == "load":
        return dict(TINY_LOAD)
    return dict(TINY_SECURITY)


def test_at_least_six_builtin_presets():
    assert len(available_presets()) >= 6
    assert {"paper-baseline", "heavy-tail-churn", "flash-crowd", "eclipse-20pct",
            "zipf-hotkeys", "join-leave-attack"} <= set(available_presets())


@pytest.mark.parametrize("preset", available_presets())
def test_every_preset_runs_end_to_end_via_repro_campaign(preset, tmp_path, capsys):
    """The acceptance criterion, through the real CLI: one campaign per
    preset, records on disk, content-addressed trial ids."""
    out = tmp_path / preset
    argv = [
        "campaign", "--kind", "scenario",
        "--param", f"preset={preset}",
        "--param", f"base={json.dumps(tiny_base_for(preset))}",
        "--out", str(out), "--quiet",
    ]
    assert main(argv) == 0
    assert "1 trial(s) executed" in capsys.readouterr().out
    [record_path] = (out / "trials").glob("*.json")
    # Content-addressed id: seed prefix + 12-hex parameter digest, and the
    # stem re-derives from the persisted spec.
    assert re.fullmatch(r"s0-[0-9a-f]{12}", record_path.stem)
    spec = CampaignSpec.from_json_file(out / "spec.json")
    assert [t.trial_id for t in spec.expand()] == [record_path.stem]
    record = json.loads(record_path.read_text())
    assert record["kind"] == "scenario"
    assert record["metrics"]
    assert record["detail"]["scenario"]["preset"] == preset


def test_trial_ids_are_content_addressed_not_positional():
    def ids(presets):
        return {
            t.params["preset"]: t.trial_id
            for t in CampaignSpec(
                kind="scenario",
                base={"base": dict(TINY_SECURITY)},
                grid={"preset": list(presets)},
                seeds=(0,),
            ).expand()
        }

    two = ids(["paper-baseline", "zipf-hotkeys"])
    three = ids(["flash-crowd", "paper-baseline", "zipf-hotkeys"])
    # Growing the grid must not rename existing trials (resume safety)...
    assert two.items() <= three.items()
    # ...and any parameter edit must change the id.
    edited = {
        t.params["preset"]: t.trial_id
        for t in CampaignSpec(
            kind="scenario",
            base={"base": {**TINY_SECURITY, "n_nodes": 80}},
            grid={"preset": ["paper-baseline"]},
            seeds=(0,),
        ).expand()
    }
    assert edited["paper-baseline"] != two["paper-baseline"]


def test_scenario_campaign_grid_over_presets(tmp_path):
    spec = CampaignSpec(
        kind="scenario",
        name="preset-grid",
        base={"base": dict(TINY_SECURITY)},
        grid={"preset": ["paper-baseline", "heavy-tail-churn"]},
        seeds=(0, 1),
    )
    report = run_campaign(spec, out_dir=tmp_path / "grid")
    assert report.n_executed == 4
    assert report.summary["n_groups"] == 2
    groups = {g["params"]["preset"]: g for g in report.summary["groups"]}
    assert set(groups) == {"paper-baseline", "heavy-tail-churn"}
    assert groups["paper-baseline"]["metrics"]["final_malicious_fraction"]["n"] == 2


# ------------------------------------------------------------------ resolution


def test_preset_resolution_layers_user_overrides():
    cfg = ScenarioConfig(
        preset="flash-crowd",
        churn_params={"flash_time_s": 5.0},
        base={"n_nodes": 60},
    ).resolved()
    assert cfg.experiment == "security"
    assert cfg.churn == "flash-crowd"
    assert cfg.churn_params["flash_time_s"] == 5.0  # user key wins
    assert cfg.churn_params["late_fraction"] == 0.4  # preset key survives
    assert cfg.base["n_nodes"] == 60
    assert cfg.base["duration"] == 400.0  # preset base survives


def test_explicit_axis_choice_beats_the_preset():
    cfg = ScenarioConfig(preset="heavy-tail-churn", churn="pareto").resolved()
    assert cfg.churn == "pareto"


def test_overriding_an_axis_discards_the_presets_params_for_it():
    """Regression: the preset's Weibull 'shape' kwarg must not leak into a
    user-chosen Pareto profile — the composed config has to validate."""
    cfg = ScenarioConfig(preset="heavy-tail-churn", churn="pareto").resolved()
    assert "shape" not in cfg.churn_params
    cfg.validate()  # buildable end to end
    # Same rule for the base dict when the experiment itself is overridden:
    # eclipse-20pct's anonymity base params are meaningless to other kinds.
    swapped = ScenarioConfig(preset="eclipse-20pct", experiment="timing").resolved()
    assert "n_worlds" not in swapped.base
    swapped.validate()


def test_validation_fails_loudly():
    with pytest.raises(ValueError, match="unknown scenario preset"):
        ScenarioConfig(preset="no-such-preset").validate()
    with pytest.raises(ValueError, match="unknown churn profile"):
        ScenarioConfig(churn="brownian").validate()
    with pytest.raises(ValueError, match="unknown base experiment"):
        ScenarioConfig(experiment="quantum").validate()
    with pytest.raises(ValueError, match="bad parameters"):
        ScenarioConfig(churn="weibull", churn_params={"shpae": 1.0}).validate()
    with pytest.raises(ValueError, match="seed"):
        ScenarioConfig(base={"seed": 3}).validate()
    with pytest.raises(ValueError, match="unknown SecurityExperimentConfig"):
        ScenarioConfig(base={"n_nodez": 10}).validate()


# ------------------------------------------------------------------- semantics


def test_paper_baseline_reproduces_plain_security_exactly():
    plain = run_security(SecurityExperimentConfig(seed=2, **TINY_SECURITY))
    scenario = run_scenario(
        ScenarioConfig(preset="paper-baseline", base=dict(TINY_SECURITY), seed=2)
    )
    assert scenario.scalar_metrics() == plain.scalar_metrics()
    assert scenario.applied_axes == [] and scenario.ignored_axes == []


def test_paper_baseline_efficiency_reproduces_plain_efficiency_exactly():
    """PR 5 acceptance: routing the efficiency harness's draws through the
    workload model must be a behavioural no-op for the default model — the
    full result (latency CDFs included), not just the scalars, is compared."""
    from repro.experiments.efficiency import EfficiencyExperimentConfig, run_efficiency
    from repro.experiments.results import config_from_dict

    plain = run_efficiency(
        config_from_dict(EfficiencyExperimentConfig, {**TINY_EFFICIENCY, "seed": 2})
    )
    scenario = run_scenario(
        ScenarioConfig(
            preset="paper-baseline",
            experiment="efficiency",
            base=dict(TINY_EFFICIENCY),
            seed=2,
        )
    )
    assert scenario.base_result.to_dict() == plain.to_dict()
    assert scenario.applied_axes == [] and scenario.ignored_axes == []


def test_efficiency_applies_the_workload_axis():
    """PR 5 acceptance: experiment=efficiency, workload=zipf reports the
    workload axis as applied (efficiency used to support adversary only)."""
    result = run_scenario(
        ScenarioConfig(
            experiment="efficiency",
            workload="zipf",
            workload_params={"exponent": 1.2, "n_keys": 64},
            base=dict(TINY_EFFICIENCY),
        )
    )
    assert result.applied_axes == ["workload"]
    assert result.ignored_axes == []
    assert result.to_dict()["scenario"]["applied_axes"] == ["workload"]


def test_open_loop_poisson_is_ignored_by_the_closed_loop_efficiency_harness():
    """The Poisson model's essence is an engine-scheduled arrival process;
    the closed-loop efficiency harness cannot honour it and must say so
    (its key distribution alone would just be uniform under another name)."""
    result = run_scenario(
        ScenarioConfig(
            experiment="efficiency",
            workload="poisson",
            base=dict(TINY_EFFICIENCY),
        )
    )
    assert result.applied_axes == []
    assert result.ignored_axes == ["workload"]


def test_inapplicable_axes_are_reported_not_dropped():
    result = run_scenario(
        ScenarioConfig(
            experiment="timing",
            churn="weibull",
            base={"max_candidate_flows": 50},
        )
    )
    assert result.ignored_axes == ["churn"]
    assert result.to_dict()["scenario"]["ignored_axes"] == ["churn"]


def test_join_leave_on_a_churnless_kind_reports_the_dropped_attack():
    """Regression: on a base kind with no churn to accelerate, the join-leave
    placement still applies (it is uniform) but the temporal churn attack
    does not — the record must say so instead of claiming the attack ran."""
    result = run_scenario(
        ScenarioConfig(
            experiment="ablation",
            adversary="join-leave",
            base={"n_nodes": 300, "n_worlds": 3},
        )
    )
    assert result.applied_axes == ["adversary"]
    assert result.ignored_axes == ["churn"]


def test_adapter_builds_typed_config_from_campaign_params():
    adapter = get_experiment("scenario")
    config = adapter.build_config(
        {"preset": "zipf-hotkeys", "base": {"n_nodes": 60}, "seed": 4}
    )
    assert isinstance(config, ScenarioConfig)
    assert config.seed == 4
    # Campaign preflight validates unresolved configs without running them.
    config.validate()
