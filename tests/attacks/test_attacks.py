"""Tests for the adversary coordination and the active/passive attack models."""

from __future__ import annotations

import pytest

from repro.attacks.adversary import Adversary
from repro.attacks.fingertable_manipulation import FingertableManipulationBehavior
from repro.attacks.fingertable_pollution import FingertablePollutionBehavior
from repro.attacks.lookup_bias import LookupBiasBehavior
from repro.attacks.range_estimation import RangeEstimator
from repro.attacks.selective_dos import SelectiveDosBehavior
from repro.attacks.timing_analysis import TimingAnalysisAttack
from repro.chord.lookup import iterative_lookup, oracle_query_path
from repro.sim.rng import RandomSource


class TestAdversary:
    def test_controls_exactly_the_malicious_set(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(1))
        assert set(adversary.controlled_ids(alive_only=False)) == small_ring.malicious_ids
        for nid in small_ring.honest_ids():
            assert not adversary.controls(nid)

    def test_install_behavior_only_on_malicious(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(1))
        count = adversary.install_behavior(lambda adv, node: LookupBiasBehavior(adv, node))
        assert count == len(small_ring.malicious_ids)
        for nid in small_ring.honest_ids():
            assert not small_ring.node(nid).behavior.is_malicious

    def test_reset_behaviors(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(1))
        adversary.install_behavior(lambda adv, node: LookupBiasBehavior(adv, node))
        adversary.reset_behaviors()
        for nid in small_ring.malicious_ids:
            assert not small_ring.node(nid).behavior.is_malicious

    def test_attack_rate_bounds(self, small_ring):
        with pytest.raises(ValueError):
            Adversary(small_ring, RandomSource(1), attack_rate=1.5)
        always = Adversary(small_ring, RandomSource(1), attack_rate=1.0)
        never = Adversary(small_ring, RandomSource(1), attack_rate=0.0)
        assert all(always.should_attack() for _ in range(10))
        assert not any(never.should_attack() for _ in range(10))

    def test_colluders_near_sorted_by_distance(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(1))
        key = small_ring.space.size // 2
        colluders = adversary.colluders_near(key, count=5)
        dists = [small_ring.space.distance(key, c) for c in colluders]
        assert dists == sorted(dists)
        assert all(small_ring.is_malicious(c) for c in colluders)

    def test_observation_log_shared(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(1))
        adversary.observe(1.0, "query", node=5)
        adversary.observe(2.0, "query", node=6)
        assert adversary.observation_log.count("query") == 2
        assert adversary.stats.queries_seen == 2


class TestLookupBiasAttack:
    def test_biases_lookup_results(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(2), attack_rate=1.0)
        adversary.install_behavior(lambda adv, node: LookupBiasBehavior(adv, node))
        rng = RandomSource(3).stream("keys")
        biased = 0
        for _ in range(40):
            initiator = small_ring.random_alive_id(rng)
            key = small_ring.random_key(rng)
            result = iterative_lookup(small_ring, initiator, key, purpose="lookup")
            if result.biased:
                biased += 1
                assert small_ring.is_malicious(result.result)
        assert biased > 0

    def test_does_not_attack_stabilization_by_default(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(2), attack_rate=1.0)
        adversary.install_behavior(lambda adv, node: LookupBiasBehavior(adv, node))
        malicious = small_ring.node(small_ring.malicious_alive_ids()[0])
        reply = malicious.respond_successor_list(None, purpose="stabilize-successors", now=1.0)
        assert tuple(reply.nodes) == tuple(malicious.successor_list.nodes)

    def test_manipulated_list_contains_only_colluders(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(2), attack_rate=1.0)
        adversary.install_behavior(lambda adv, node: LookupBiasBehavior(adv, node))
        malicious = small_ring.node(small_ring.malicious_alive_ids()[0])
        reply = malicious.respond_successor_list(None, purpose="anonymous-lookup", now=1.0)
        assert all(small_ring.is_malicious(n) for n in reply.nodes)


class TestFingertableAttacks:
    def test_manipulated_fingers_point_to_colluders(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(4), attack_rate=1.0)
        adversary.install_behavior(
            lambda adv, node: FingertableManipulationBehavior(adv, node, fingers_to_manipulate=4)
        )
        malicious = small_ring.node(small_ring.malicious_alive_ids()[0])
        table = malicious.respond_routing_table(None, purpose="random-walk", now=1.0)
        manipulated = [n for _, n in table.fingers if n is not None and small_ring.is_malicious(n)]
        assert len(manipulated) >= 1

    def test_honest_contexts_not_manipulated(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(4), attack_rate=1.0)
        adversary.install_behavior(lambda adv, node: FingertableManipulationBehavior(adv, node))
        malicious = small_ring.node(small_ring.malicious_alive_ids()[0])
        honest_table = malicious.snapshot(now=1.0)
        audited = malicious.respond_routing_table(None, purpose="ca-audit", now=1.0)
        assert audited.fingers == honest_table.fingers

    def test_pollution_only_targets_finger_updates(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(5), attack_rate=1.0)
        adversary.install_behavior(lambda adv, node: FingertablePollutionBehavior(adv, node))
        malicious = small_ring.node(small_ring.malicious_alive_ids()[0])
        normal = malicious.respond_routing_table(None, purpose="anonymous-lookup", now=1.0)
        polluted = malicious.respond_routing_table(None, purpose="finger-update", now=1.0)
        assert tuple(normal.successors) == tuple(malicious.successor_list.nodes)
        assert all(small_ring.is_malicious(n) for n in polluted.successors)

    def test_attack_rate_half_attacks_sometimes(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(6), attack_rate=0.5)
        adversary.install_behavior(lambda adv, node: FingertablePollutionBehavior(adv, node))
        malicious = small_ring.node(small_ring.malicious_alive_ids()[0])
        outcomes = set()
        for _ in range(30):
            table = malicious.respond_routing_table(None, purpose="finger-update", now=1.0)
            outcomes.add(all(small_ring.is_malicious(n) for n in table.successors))
        assert outcomes == {True, False}


class TestSelectiveDos:
    def test_drops_only_when_first_relay_honest(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(7), attack_rate=1.0)
        malicious_id = small_ring.malicious_alive_ids()[0]
        adversary.install_behavior(lambda adv, node: SelectiveDosBehavior(adv, node), node_ids=[malicious_id])
        node = small_ring.node(malicious_id)
        honest_first = {"relays": [small_ring.honest_ids()[0]]}
        malicious_first = {"relays": [small_ring.malicious_alive_ids()[1]]}
        assert node.wants_to_drop("anonymous-lookup", honest_first, now=1.0)
        assert not node.wants_to_drop("anonymous-lookup", malicious_first, now=1.0)

    def test_does_not_drop_other_traffic(self, small_ring):
        adversary = Adversary(small_ring, RandomSource(7), attack_rate=1.0)
        malicious_id = small_ring.malicious_alive_ids()[0]
        adversary.install_behavior(lambda adv, node: SelectiveDosBehavior(adv, node), node_ids=[malicious_id])
        node = small_ring.node(malicious_id)
        assert not node.wants_to_drop("stabilize-successors", {"relays": [small_ring.honest_ids()[0]]}, now=1.0)


class TestRangeEstimation:
    def test_range_contains_true_target(self, honest_ring):
        estimator = RangeEstimator(honest_ring)
        rng = RandomSource(8).stream("k")
        hits = 0
        trials = 0
        for _ in range(20):
            initiator = honest_ring.random_alive_id(rng)
            key = honest_ring.random_key(rng)
            target = honest_ring.true_successor(key)
            path = oracle_query_path(honest_ring, initiator, key)
            if len(path) < 2:
                continue
            trials += 1
            estimate = estimator.estimate(path)
            if estimate is not None and target in estimate.candidates:
                hits += 1
        assert trials > 0
        assert hits / trials >= 0.8

    def test_more_observations_narrow_the_range(self, honest_ring):
        estimator = RangeEstimator(honest_ring)
        rng = RandomSource(9).stream("k")
        for _ in range(10):
            initiator = honest_ring.random_alive_id(rng)
            key = honest_ring.random_key(rng)
            path = oracle_query_path(honest_ring, initiator, key)
            if len(path) < 3:
                continue
            partial = estimator.estimate(path[:1])
            full = estimator.estimate(path)
            assert full.size <= partial.size

    def test_filtering_test_accepts_real_subsets(self, honest_ring):
        estimator = RangeEstimator(honest_ring)
        rng = RandomSource(10).stream("k")
        for _ in range(10):
            initiator = honest_ring.random_alive_id(rng)
            key = honest_ring.random_key(rng)
            path = oracle_query_path(honest_ring, initiator, key)
            assert estimator.passes_filtering_test(path)

    def test_filtering_test_rejects_out_of_order_queries(self, honest_ring):
        estimator = RangeEstimator(honest_ring)
        rng = RandomSource(11).stream("k")
        initiator = honest_ring.random_alive_id(rng)
        key = honest_ring.random_key(rng)
        path = oracle_query_path(honest_ring, initiator, key)
        if len(path) >= 2:
            reversed_path = list(reversed(path))
            assert not estimator.passes_filtering_test(reversed_path)


class TestTimingAnalysis:
    def test_error_rate_high_with_relay_delay(self):
        attack = TimingAnalysisAttack()
        result = attack.run(n_nodes=100_000, concurrent_lookup_rate=0.01, max_delay=0.100, max_candidate_flows=400)
        assert result.error_rate > 0.9
        assert result.information_leak_bits < 2.0

    def test_error_rate_lower_without_delay(self):
        attack = TimingAnalysisAttack()
        with_delay = attack.run(n_nodes=100_000, concurrent_lookup_rate=0.01, max_delay=0.100, max_candidate_flows=300)
        without_delay = TimingAnalysisAttack().run(
            n_nodes=100_000, concurrent_lookup_rate=0.01, max_delay=0.0, max_candidate_flows=300
        )
        assert without_delay.error_rate < with_delay.error_rate

    def test_table1_grid_shape(self):
        attack = TimingAnalysisAttack()
        cells = attack.table1(n_nodes=50_000)
        assert len(cells) == 6
        assert {c.max_delay for c in cells} == {0.100, 0.200}
