"""Tests for key pairs, signatures, certificates, the CA and revocation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ca import CertificateAuthority
from repro.crypto.certificates import Certificate, CertificateStore
from repro.crypto.keys import FAST, SCHNORR, KeyPair, Signature, verify
from repro.crypto.revocation import MerkleRevocationTree, RevocationList


class TestSchnorrSignatures:
    def test_sign_and_verify(self):
        kp = KeyPair(seed=1, mode=SCHNORR)
        sig = kp.sign(b"hello world")
        assert verify(kp.public_key, b"hello world", sig)

    def test_wrong_message_rejected(self):
        kp = KeyPair(seed=1, mode=SCHNORR)
        sig = kp.sign(b"hello")
        assert not verify(kp.public_key, b"goodbye", sig)

    def test_wrong_key_rejected(self):
        kp1 = KeyPair(seed=1, mode=SCHNORR)
        kp2 = KeyPair(seed=2, mode=SCHNORR)
        sig = kp1.sign(b"msg")
        assert not verify(kp2.public_key, b"msg", sig)

    def test_tampered_signature_rejected(self):
        kp = KeyPair(seed=3, mode=SCHNORR)
        sig = kp.sign(b"msg")
        tampered = Signature(c=sig.c, s=sig.s + 1, mode=sig.mode)
        assert not verify(kp.public_key, b"msg", tampered)

    def test_deterministic_signatures(self):
        kp = KeyPair(seed=4, mode=SCHNORR)
        assert kp.sign(b"x") == kp.sign(b"x")

    def test_non_bytes_message_rejected(self):
        kp = KeyPair(seed=5, mode=SCHNORR)
        with pytest.raises(TypeError):
            kp.sign("not-bytes")  # type: ignore[arg-type]

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, message):
        kp = KeyPair(seed=99, mode=SCHNORR)
        assert verify(kp.public_key, message, kp.sign(message))


class TestFastSignatures:
    def test_sign_and_verify(self):
        kp = KeyPair(seed=1, mode=FAST)
        sig = kp.sign(b"payload")
        assert verify(kp.public_key, b"payload", sig)

    def test_wrong_message_rejected(self):
        kp = KeyPair(seed=1, mode=FAST)
        assert not verify(kp.public_key, b"other", kp.sign(b"payload"))

    def test_mode_mismatch_rejected(self):
        fast = KeyPair(seed=1, mode=FAST)
        schnorr = KeyPair(seed=1, mode=SCHNORR)
        sig = fast.sign(b"m")
        assert not verify(schnorr.public_key, b"m", sig)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            KeyPair(seed=1, mode="rsa")

    @given(st.binary(min_size=0, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, message):
        kp = KeyPair(seed=7, mode=FAST)
        assert verify(kp.public_key, message, kp.sign(message))


class TestCertificates:
    def test_issue_and_verify(self):
        ca = CertificateAuthority(seed=0)
        kp = KeyPair(seed=10)
        cert = ca.issue_certificate(42, "10.0.0.42", kp.public_key, now=0.0)
        assert cert.verify(ca.public_key, now=1.0)
        assert cert.node_id == 42

    def test_expired_certificate_rejected(self):
        ca = CertificateAuthority(seed=0, certificate_lifetime=100.0)
        kp = KeyPair(seed=10)
        cert = ca.issue_certificate(42, "10.0.0.42", kp.public_key, now=0.0)
        assert not cert.verify(ca.public_key, now=200.0)

    def test_forged_certificate_rejected(self):
        ca = CertificateAuthority(seed=0)
        other_ca = CertificateAuthority(seed=1)
        kp = KeyPair(seed=10)
        cert = ca.issue_certificate(42, "10.0.0.42", kp.public_key, now=0.0)
        assert not cert.verify(other_ca.public_key)

    def test_certificate_store(self):
        ca = CertificateAuthority(seed=0)
        store = CertificateStore(ca_public_key=ca.public_key)
        kp = KeyPair(seed=10)
        cert = ca.issue_certificate(1, "10.0.0.1", kp.public_key)
        assert store.add(cert)
        assert 1 in store
        assert store.get(1) is cert
        store.remove(1)
        assert 1 not in store

    def test_store_rejects_bad_certificate(self):
        ca = CertificateAuthority(seed=0)
        imposter = CertificateAuthority(seed=5)
        store = CertificateStore(ca_public_key=ca.public_key)
        kp = KeyPair(seed=10)
        bad = imposter.issue_certificate(1, "10.0.0.1", kp.public_key)
        assert not store.add(bad)
        assert len(store) == 0


class TestCertificateAuthority:
    def test_revocation(self):
        ca = CertificateAuthority(seed=0)
        kp = KeyPair(seed=1)
        ca.issue_certificate(7, "10.0.0.7", kp.public_key)
        assert ca.revoke(7)
        assert ca.is_revoked(7)
        assert not ca.revoke(7)  # idempotent

    def test_revoking_unknown_node_fails(self):
        ca = CertificateAuthority(seed=0)
        assert not ca.revoke(999)

    def test_workload_buckets(self):
        ca = CertificateAuthority(seed=0)
        ca.record_message(5.0, "report")
        ca.record_message(6.0, "proof")
        ca.record_message(25.0, "report")
        buckets = dict(ca.workload_buckets(bucket_seconds=10.0, horizon=30.0))
        assert buckets[0.0] == 2
        assert buckets[20.0] == 1

    def test_serials_increase(self):
        ca = CertificateAuthority(seed=0)
        kp = KeyPair(seed=1)
        c1 = ca.issue_certificate(1, "a", kp.public_key)
        c2 = ca.issue_certificate(2, "b", kp.public_key)
        assert c2.serial > c1.serial


class TestRevocationStructures:
    def test_crl_sign_and_verify(self):
        ca_kp = KeyPair(seed=0)
        crl = RevocationList()
        assert crl.verify(ca_kp.public_key)  # empty list verifies trivially
        crl.revoke(5, ca_kp)
        crl.revoke(9, ca_kp)
        assert crl.is_revoked(5)
        assert not crl.is_revoked(6)
        assert crl.verify(ca_kp.public_key)

    def test_crl_tamper_detected(self):
        ca_kp = KeyPair(seed=0)
        crl = RevocationList()
        crl.revoke(5, ca_kp)
        crl.revoked_serials.add(6)  # tamper without re-signing
        assert not crl.verify(ca_kp.public_key)

    def test_merkle_membership_proof(self):
        tree = MerkleRevocationTree([1, 5, 9, 12, 30])
        root = tree.root()
        proof = tree.prove(9)
        assert proof is not None
        assert MerkleRevocationTree.verify_proof(9, proof, root)

    def test_merkle_non_member_has_no_proof(self):
        tree = MerkleRevocationTree([1, 5, 9])
        assert tree.prove(7) is None

    def test_merkle_proof_fails_against_wrong_root(self):
        tree = MerkleRevocationTree([1, 5, 9, 12])
        proof = tree.prove(5)
        tree.add(99)
        assert not MerkleRevocationTree.verify_proof(5, proof, tree.root())
        assert MerkleRevocationTree.verify_proof(5, tree.prove(5), tree.root())

    @given(st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_merkle_all_members_provable(self, serials):
        tree = MerkleRevocationTree(sorted(serials))
        root = tree.root()
        for serial in serials:
            proof = tree.prove(serial)
            assert proof is not None
            assert MerkleRevocationTree.verify_proof(serial, proof, root)
