"""Tests for onion encryption and the layered packet formats."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.onion import (
    OnionError,
    OnionPacket,
    ReplyOnion,
    derive_layer_key,
    symmetric_decrypt,
    symmetric_encrypt,
)


class TestSymmetricCipher:
    def test_roundtrip(self):
        key = derive_layer_key(123, 0)
        blob = symmetric_encrypt(key, b"secret message")
        assert symmetric_decrypt(key, blob) == b"secret message"

    def test_wrong_key_fails_integrity(self):
        key = derive_layer_key(123, 0)
        other = derive_layer_key(123, 1)
        blob = symmetric_encrypt(key, b"secret")
        with pytest.raises(OnionError):
            symmetric_decrypt(other, blob)

    def test_tampered_ciphertext_detected(self):
        key = derive_layer_key(5, 0)
        blob = bytearray(symmetric_encrypt(key, b"payload"))
        blob[0] ^= 0xFF
        with pytest.raises(OnionError):
            symmetric_decrypt(key, bytes(blob))

    def test_short_blob_rejected(self):
        with pytest.raises(OnionError):
            symmetric_decrypt(b"k" * 32, b"short")

    def test_ciphertext_differs_from_plaintext(self):
        key = derive_layer_key(1, 2)
        plaintext = b"A" * 64
        assert symmetric_encrypt(key, plaintext)[: len(plaintext)] != plaintext

    @given(st.binary(min_size=0, max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        key = derive_layer_key(42, 7)
        assert symmetric_decrypt(key, symmetric_encrypt(key, data)) == data


class TestOnionPacket:
    def _keys(self, n):
        return [derive_layer_key(1000, i) for i in range(n)]

    def test_each_relay_peels_one_layer(self):
        relays = [11, 22, 33, 44]
        keys = self._keys(4)
        payload = {"key": 12345, "type": "lookup"}
        onion = OnionPacket.build(relays, keys, payload)

        layer1 = onion.peel(keys[0])
        assert layer1.next_hop == 22
        layer2 = layer1.payload.peel(keys[1])
        assert layer2.next_hop == 33
        layer3 = layer2.payload.peel(keys[2])
        assert layer3.next_hop == 44
        exit_layer = layer3.payload.peel(keys[3])
        assert exit_layer.next_hop is None
        assert exit_layer.payload == {"key": 12345, "type": "lookup"}

    def test_intermediate_relay_cannot_read_payload(self):
        relays = [1, 2]
        keys = self._keys(2)
        onion = OnionPacket.build(relays, keys, {"secret": "x"})
        layer = onion.peel(keys[0])
        # The intermediate relay only obtains another opaque onion.
        assert isinstance(layer.payload, OnionPacket)

    def test_wrong_key_cannot_peel(self):
        relays = [1, 2]
        keys = self._keys(2)
        onion = OnionPacket.build(relays, keys, {"a": 1})
        with pytest.raises(OnionError):
            onion.peel(keys[1])

    def test_single_relay_path(self):
        keys = self._keys(1)
        onion = OnionPacket.build([9], keys, {"v": 1})
        layer = onion.peel(keys[0])
        assert layer.next_hop is None
        assert layer.payload == {"v": 1}

    def test_empty_relay_list_rejected(self):
        with pytest.raises(ValueError):
            OnionPacket.build([], [], {"v": 1})

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OnionPacket.build([1, 2], self._keys(1), {})


class TestReplyOnion:
    def test_seal_add_layers_and_open(self):
        exit_key = derive_layer_key(7, 0)
        mid_key = derive_layer_key(7, 1)
        entry_key = derive_layer_key(7, 2)
        reply = ReplyOnion.seal({"result": 42}, relay_id=3, key=exit_key)
        reply.add_layer(2, mid_key)
        reply.add_layer(1, entry_key)
        opened = reply.open([entry_key, mid_key, exit_key])
        assert opened == {"result": 42}

    def test_missing_layer_key_fails(self):
        exit_key = derive_layer_key(7, 0)
        mid_key = derive_layer_key(7, 1)
        reply = ReplyOnion.seal({"r": 1}, relay_id=3, key=exit_key)
        reply.add_layer(2, mid_key)
        with pytest.raises(OnionError):
            reply.open([exit_key])  # wrong order / missing outer layer
