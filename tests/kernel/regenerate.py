#!/usr/bin/env python
"""Regenerate the committed golden digests in ``tests/kernel/golden/``.

Run from anywhere::

    python tests/kernel/regenerate.py

Recomputes every case in ``cases.CASES`` under BOTH kernels, refuses to
write if they disagree (that is a differential bug, not a golden refresh),
and rewrites ``golden/digests.json`` with the shared sha256 per kind.
Commit the resulting diff together with whatever semantics change motivated
it — a golden churn with no motivating change means a kernel silently
altered its draw sequence.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parents[1] / "src"))
sys.path.insert(0, str(HERE))

from cases import CASES, run_canonical  # noqa: E402


def main() -> int:
    digests = {}
    for kind in sorted(CASES):
        payloads = {kernel: run_canonical(kind, kernel) for kernel in ("object", "array")}
        if payloads["object"] != payloads["array"]:
            print(f"ERROR: kernels disagree on kind {kind!r}; fix the differential bug first")
            return 1
        digests[kind] = {
            "sha256": hashlib.sha256(payloads["object"].encode("utf-8")).hexdigest(),
            "canonical_bytes": len(payloads["object"]),
        }
        print(f"{kind}: {digests[kind]['sha256']}")
    out = HERE / "golden" / "digests.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
