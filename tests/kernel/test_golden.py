"""Golden determinism snapshots: per-kind digests pinned for BOTH kernels.

The differential suite only proves the kernels agree with *each other*; a
change that shifts draw sequences in both kernels at once (a reordered
stream name, a new draw on a hot path) would slip through it.  These tests
pin each case's canonical output to a committed sha256, so any drift —
single-kernel or synchronized — fails loudly.

On an intentional semantics change, regenerate with::

    python tests/kernel/regenerate.py

and commit the ``golden/digests.json`` diff alongside the change.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from cases import CASES, run_canonical

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "digests.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def test_golden_covers_every_kind():
    assert set(GOLDEN) == set(CASES)


@pytest.mark.parametrize("kernel", ["object", "array"])
@pytest.mark.parametrize("kind", sorted(CASES))
def test_output_matches_committed_digest(kind, kernel):
    digest = hashlib.sha256(run_canonical(kind, kernel).encode("utf-8")).hexdigest()
    assert digest == GOLDEN[kind]["sha256"], (
        f"{kind} under kernel={kernel} drifted from the committed golden digest; "
        "if intentional, run `python tests/kernel/regenerate.py` and commit the diff"
    )
