"""Slow tier: the 10^5-node paths the array kernel exists for.

These are the ISSUE's production-scale acceptance runs — Table 3 / Fig 7(a)
(the efficiency experiment) on a 100,000-node ring, and the anonymity
model's greedy lookups at the paper's 100,000-node scale — exercised end to
end on the array kernel.  Run with ``pytest --run-slow -m slow``; the
nightly workflow does.
"""

from __future__ import annotations

import random

import pytest

from repro.anonymity.ring_model import LightweightRing
from repro.campaign import get_experiment

pytestmark = pytest.mark.slow


def test_table3_fig7a_at_1e5_nodes_on_array_kernel():
    """A full efficiency run (Table 3 rows + Fig 7(a) CDFs) at N=100,000."""
    result = get_experiment("efficiency").run(
        {"n_nodes": 100_000, "lookups_per_scheme": 5, "kernel": "array", "seed": 0}
    )
    rows = result.table3_rows()
    assert [row["scheme"] for row in rows] == ["octopus", "chord", "halo"]
    for row in rows:
        assert row["mean_latency_s"] > 0
        assert row["median_latency_s"] > 0
    for scheme in ("octopus", "chord", "halo"):
        cdf = result.schemes[scheme].latency_cdf
        assert cdf, f"{scheme} Fig 7(a) CDF is empty"
        fractions = [frac for _, frac in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)


def test_efficiency_kernels_agree_at_1e4_nodes():
    """Differential check at the first 'slow' size: 10^4 nodes."""
    from cases import strip_kernel

    from repro.campaign import canonical_json, strip_timing

    views = {}
    for kernel in ("object", "array"):
        result = get_experiment("efficiency").run(
            {"n_nodes": 10_000, "lookups_per_scheme": 4, "kernel": kernel, "seed": 1}
        )
        views[kernel] = canonical_json(strip_kernel(strip_timing(result.to_dict())))
    assert views["object"] == views["array"]


def test_lightweight_paths_at_1e5_nodes_on_array_kernel():
    """The anonymity model's greedy lookups at the paper's 100,000 nodes."""
    ring = LightweightRing(n_nodes=100_000, fraction_malicious=0.2, seed=0, kernel="array")
    rnd = random.Random(0)
    hop_counts = []
    for _ in range(200):
        initiator, target = rnd.randrange(100_000), rnd.randrange(100_000)
        path = ring.query_path_positions(initiator, target)
        if initiator != target:
            assert path, "greedy lookup found no path"
            assert path[-1] in (target, (target - 1) % 100_000)
        hop_counts.append(len(path))
    # O(log N) routing: mean hops should land well under 2*log2(N) ~ 33.
    assert sum(hop_counts) / len(hop_counts) < 34
