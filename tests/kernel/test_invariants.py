"""Property-based ring invariants under randomized churn interleavings.

Seeded ``random.Random`` sequences of join/leave/remove/lookup operations
drive both kernels (and pairs of full :class:`ChordRing` instances differing
only in kernel) through the same state trajectory, asserting at every step:

* alive/honest views stay sorted and identical between kernels,
* ``successor_of`` equals the first-alive-at-or-after-key oracle,
* ``finger[i]`` is the first alive node >= ``id + 2**i`` (with wraparound)
  immediately after a targeted rebuild,
* the array kernel's cached finger rows never go stale across arbitrary
  birth/death invalidation interleavings,
* the lightweight model's matrix path executor (numpy and pure-python)
  reproduces the object loop's paths hop-for-hop.
"""

from __future__ import annotations

import random

import pytest

from repro.anonymity.ring_model import LightweightRing
from repro.chord.ring import ChordRing, RingConfig
from repro.sim.kernel import FingerMatrix, greedy_path_positions, make_ring_kernel
from repro.sim.kernel import array_kernel as array_kernel_module
from repro.sim.rng import RandomSource

SPACE_BITS = 12
SPACE_SIZE = 2 ** SPACE_BITS


def oracle_successor(alive_sorted, key, size=SPACE_SIZE):
    """First alive id at or clockwise-after ``key`` — the definition."""
    if not alive_sorted:
        return None
    k = key % size
    for nid in alive_sorted:
        if nid >= k:
            return nid
    return alive_sorted[0]


def make_population(rnd, n=60, fraction_malicious=0.25):
    ids = sorted(rnd.sample(range(SPACE_SIZE), n))
    malicious = set(rnd.sample(ids, int(round(fraction_malicious * n))))
    return ids, malicious


def assert_kernels_agree(kern_o, kern_a, ids, rnd):
    alive_o = kern_o.alive_ids()
    assert alive_o == kern_a.alive_ids()
    assert alive_o == sorted(alive_o)
    assert kern_o.honest_alive_ids() == kern_a.honest_alive_ids()
    assert kern_o.alive_count() == kern_a.alive_count() == len(alive_o)
    assert kern_o.fraction_malicious_alive() == kern_a.fraction_malicious_alive()
    assert kern_o.remaining_malicious_fraction() == kern_a.remaining_malicious_fraction()
    for _ in range(8):
        key = rnd.randrange(SPACE_SIZE)
        expected = oracle_successor(alive_o, key)
        assert kern_o.successor_of(key) == expected
        assert kern_a.successor_of(key) == expected
    for nid in rnd.sample(ids, 6):
        assert kern_o.is_alive(nid) == kern_a.is_alive(nid)


@pytest.mark.parametrize("seed", range(5))
def test_kernel_equivalence_under_random_interleavings(seed):
    """Both kernels traverse identical state for any churn interleaving."""
    rnd = random.Random(seed)
    ids, malicious = make_population(rnd)
    kern_o = make_ring_kernel("object", SPACE_SIZE)
    kern_a = make_ring_kernel("array", SPACE_SIZE)
    kern_o.load(ids, malicious)
    kern_a.load(ids, malicious)

    dead = set()
    removed = set()
    for _ in range(120):
        op = rnd.random()
        if op < 0.35 and len(dead) < len(ids) - 2:
            victim = rnd.choice([nid for nid in ids if nid not in dead])
            dead.add(victim)
            kern_o.set_alive(victim, False)
            kern_a.set_alive(victim, False)
        elif op < 0.65 and dead:
            reborn = rnd.choice(sorted(dead))
            dead.discard(reborn)
            kern_o.set_alive(reborn, True)
            kern_a.set_alive(reborn, True)
        elif op < 0.75:
            victim = rnd.choice(ids)
            removed.add(victim)
            kern_o.set_removed(victim)
            kern_a.set_removed(victim)
        else:
            # Resolve a finger row on both kernels and check it against the
            # oracle; exercises the array kernel's cache between churn ops.
            owner = rnd.choice(ids)
            ideals = [
                (owner + (1 << i)) % SPACE_SIZE
                for i in range(SPACE_BITS - 8, SPACE_BITS)
            ]
            row_o = kern_o.resolve_fingers(owner, ideals)
            row_a = kern_a.resolve_fingers(owner, ideals)
            alive = kern_o.alive_ids()
            assert row_o == row_a == [oracle_successor(alive, ideal) for ideal in ideals]
        assert_kernels_agree(kern_o, kern_a, ids, rnd)


@pytest.mark.parametrize("seed", range(3))
def test_cached_finger_rows_never_stale(seed):
    """The invalidation rules: every cache hit equals a fresh resolution.

    Resolves rows for *every* owner, then churns; any under-invalidation
    (a row kept despite a birth in its (pred, x] interval or a death of a
    resolved target) would surface as a stale cached value here.
    """
    rnd = random.Random(1000 + seed)
    ids, malicious = make_population(rnd, n=40)
    kern = make_ring_kernel("array", SPACE_SIZE)
    kern.load(ids, malicious)
    ideals_of = {
        owner: [(owner + (1 << i)) % SPACE_SIZE for i in range(SPACE_BITS)]
        for owner in ids
    }

    dead = set()
    for _ in range(60):
        for owner in ids:  # populate / refresh rows for every owner
            kern.resolve_fingers(owner, ideals_of[owner])
        assert kern.finger_cache_size() == len(ids)
        if rnd.random() < 0.5 and len(dead) < len(ids) - 2:
            victim = rnd.choice([nid for nid in ids if nid not in dead])
            dead.add(victim)
            kern.set_alive(victim, False)
        elif dead:
            reborn = rnd.choice(sorted(dead))
            dead.discard(reborn)
            kern.set_alive(reborn, True)
        alive = kern.alive_ids()
        for owner in ids:
            row = kern.resolve_fingers(owner, ideals_of[owner])
            assert row == [oracle_successor(alive, ideal) for ideal in ideals_of[owner]], (
                f"stale cached finger row for owner {owner}"
            )


def test_finger_cache_cap_drops_wholesale(monkeypatch):
    """Overflowing the row cap drops the cache; results stay correct."""
    monkeypatch.setattr(array_kernel_module, "_FINGER_CACHE_MAX_ROWS", 4)
    rnd = random.Random(7)
    ids, malicious = make_population(rnd, n=20)
    kern = make_ring_kernel("array", SPACE_SIZE)
    kern.load(ids, malicious)
    alive = kern.alive_ids()
    for owner in ids:
        ideals = [(owner + (1 << i)) % SPACE_SIZE for i in range(4)]
        row = kern.resolve_fingers(owner, ideals)
        assert row == [oracle_successor(alive, ideal) for ideal in ideals]
        assert kern.finger_cache_size() <= 4


@pytest.mark.parametrize("seed", range(3))
def test_ring_pair_identical_under_churn(seed):
    """Full ChordRing pairs (object vs array) stay identical through churn,
    and every targeted rebuild restores the finger definition."""
    rings = {}
    for kernel in ("object", "array"):
        config = RingConfig(
            n_nodes=48,
            fraction_malicious=0.25,
            finger_count=10,
            id_bits=16,
            seed=seed,
            kernel=kernel,
        )
        rings[kernel] = ChordRing.build(config=config, rng=RandomSource(seed))
    ring_o, ring_a = rings["object"], rings["array"]
    assert ring_o.all_ids() == ring_a.all_ids()
    ids = ring_o.all_ids()
    size = ring_o.space.size

    rnd = random.Random(5000 + seed)
    dead = set()
    removed = set()
    for _ in range(80):
        op = rnd.random()
        if op < 0.30 and len(dead) < len(ids) - 4:
            victim = rnd.choice([nid for nid in ids if nid not in dead])
            dead.add(victim)
            ring_o.mark_dead(victim)
            ring_a.mark_dead(victim)
        elif op < 0.60 and dead:
            reborn = rnd.choice(sorted(dead))
            ring_o.mark_alive(reborn)
            ring_a.mark_alive(reborn)
            if reborn in removed:
                # Revoked nodes cannot rejoin: mark_alive must be a no-op.
                assert not ring_o.node(reborn).alive
                assert not ring_a.node(reborn).alive
            else:
                dead.discard(reborn)
                # Finger definition check right after the targeted rebuild:
                # finger[i] = first alive node >= ideal (with wraparound).
                alive = ring_o.alive_ids_sorted()
                for entry in ring_a.node(reborn).finger_table.entries:
                    expected = next(
                        (nid for nid in alive if nid >= entry.ideal_id), alive[0]
                    )
                    assert entry.node_id == expected
                    assert ring_o.node(reborn).finger_table.get(entry.index) == expected
        elif op < 0.72:
            victim = rnd.choice(ids)
            ring_o.remove_permanently(victim)
            ring_a.remove_permanently(victim)
            dead.add(victim)
            removed.add(victim)
        elif op < 0.82:
            # Mid-run allegiance flips (adaptive-adversary compromise).
            target = rnd.choice(ids)
            flag = rnd.random() < 0.6
            assert ring_o.set_malicious(target, flag) == ring_a.set_malicious(target, flag)

        assert ring_o.alive_ids_sorted() == ring_a.alive_ids_sorted()
        assert ring_o.honest_ids() == ring_a.honest_ids()
        assert ring_o.fraction_malicious_alive() == ring_a.fraction_malicious_alive()
        assert ring_o.remaining_malicious_fraction() == ring_a.remaining_malicious_fraction()
        key = rnd.randrange(size)
        succ = ring_o.true_successor(key)
        assert succ == ring_a.true_successor(key)
        assert succ == oracle_successor(ring_o.alive_ids_sorted(), key, size=size)

    # End-state routing tables agree node-for-node.
    for nid in ids:
        node_o, node_a = ring_o.node(nid), ring_a.node(nid)
        assert node_o.alive == node_a.alive
        assert node_o.finger_table.as_dict() == node_a.finger_table.as_dict()


@pytest.mark.parametrize("seed", range(3))
def test_lightweight_paths_identical(seed):
    """Matrix-driven greedy paths == the object loop, pair for pair."""
    rings = {
        kernel: LightweightRing(n_nodes=200, fraction_malicious=0.2, seed=seed, kernel=kernel)
        for kernel in ("object", "array")
    }
    ring_o, ring_a = rings["object"], rings["array"]
    assert ring_o.ids == ring_a.ids

    rnd = random.Random(9000 + seed)
    pairs = [(rnd.randrange(200), rnd.randrange(200)) for _ in range(40)]
    object_paths = [ring_o.query_path_positions(i, t) for i, t in pairs]
    assert object_paths == [ring_a.query_path_positions(i, t) for i, t in pairs]

    # The pure-python matrix (no numpy) must agree hop-for-hop too.
    matrix = FingerMatrix(
        ring_o.ids, ring_o.space.size, ring_o.finger_count, ring_o.space.bits, use_numpy=False
    )
    assert matrix._matrix is None
    assert object_paths == [greedy_path_positions(matrix, i, t) for i, t in pairs]


def test_finger_matrix_numpy_and_python_rows_agree():
    numpy = pytest.importorskip("numpy")
    del numpy
    ring = LightweightRing(n_nodes=150, fraction_malicious=0.2, seed=2, kernel="array")
    vec = FingerMatrix(ring.ids, ring.space.size, ring.finger_count, ring.space.bits, use_numpy=True)
    plain = FingerMatrix(ring.ids, ring.space.size, ring.finger_count, ring.space.bits, use_numpy=False)
    for pos in range(0, 150, 7):
        assert vec.row(pos) == plain.row(pos)
