"""Shared per-kind experiment cases for the kernel differential/golden suites.

One small-but-nontrivial parameter set per experiment kind that supports the
``kernel=`` switch.  The differential tests run each case under both kernels
and demand byte-identical results; the golden tests pin the same cases to
committed sha256 digests so a semantics drift in *either* kernel fails even
when both kernels drift together.

Keep these parameters stable: changing them invalidates the golden digests
(regenerate with ``python tests/kernel/regenerate.py`` and commit the diff).
"""

from __future__ import annotations

import copy
from typing import Dict

from repro.campaign import canonical_json, get_experiment, strip_timing

#: kind -> small deterministic params (seconds-scale under either kernel).
#: ``timing`` is deliberately absent: it has no ring and no kernel switch.
CASES: Dict[str, dict] = {
    "security": {"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0, "seed": 3},
    "efficiency": {"n_nodes": 40, "lookups_per_scheme": 4, "seed": 3},
    "anonymity": {
        "n_nodes": 150,
        "fractions_malicious": [0.2],
        "dummy_counts": [2],
        "concurrent_lookup_rates": [0.01],
        "n_worlds": 10,
        "seed": 3,
    },
    "ablation": {"n_nodes": 120, "n_worlds": 8, "seed": 3},
    "scenario": {
        "preset": "heavy-tail-churn",
        "seed": 3,
        "base": {"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0},
    },
    "adaptive": {
        "attacker": "re-eclipse",
        "defense": "aggressive-revoke",
        "seed": 3,
        "base": {
            "n_nodes": 60,
            "duration": 30.0,
            "sample_interval": 10.0,
            "attack": "lookup-bias",
        },
    },
}


def with_kernel(kind: str, kernel: str) -> dict:
    """The kind's case params with the kernel switch applied.

    Scenario and adaptive configs carry the base experiment's params in a
    nested ``base`` dict, so the switch nests accordingly.
    """
    params = copy.deepcopy(CASES[kind])
    if kind in ("scenario", "adaptive"):
        params["base"]["kernel"] = kernel
    else:
        params["kernel"] = kernel
    return params


def strip_kernel(obj):
    """Drop every ``kernel`` key, recursively.

    Result dicts embed their config — including the kernel name — so the
    byte-identity comparison must blind itself to the one field that is
    *supposed* to differ between the two runs.
    """
    if isinstance(obj, dict):
        return {k: strip_kernel(v) for k, v in obj.items() if k != "kernel"}
    if isinstance(obj, list):
        return [strip_kernel(v) for v in obj]
    return obj


def run_canonical(kind: str, kernel: str) -> str:
    """Canonical timing- and kernel-stripped JSON of one case run."""
    result = get_experiment(kind).run(with_kernel(kind, kernel))
    return canonical_json(strip_kernel(strip_timing(result.to_dict())))
