"""Object-vs-array kernel differential suite.

The determinism contract of the kernel switch: for every experiment kind
that owns a ring, running the same config under ``kernel="object"`` and
``kernel="array"`` produces byte-identical results once timing and the
kernel name itself are stripped.  Kernels draw no randomness of their own —
all draws come from named :class:`~repro.sim.rng.RandomSource` streams — so
any divergence here is a semantics bug in one of the kernels, not noise.

The same contract is enforced end-to-end through the campaign runner: a
campaign sweeping ``kernel`` as a grid axis must produce trial records that
differ *only* in the config's kernel field.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignSpec, canonical_json, get_experiment, run_campaign, strip_timing
from repro.sim.kernel import KERNELS, DEFAULT_KERNEL, make_ring_kernel, validate_kernel

from cases import CASES, run_canonical, strip_kernel, with_kernel


def test_kernel_registry():
    assert set(KERNELS) == {"object", "array"}
    assert DEFAULT_KERNEL == "object"
    for name, cls in KERNELS.items():
        assert cls.name == name
        kern = make_ring_kernel(name, space_size=2**16)
        assert type(kern) is cls
    with pytest.raises(ValueError, match="unknown kernel"):
        validate_kernel("hypercube")
    with pytest.raises(ValueError, match="unknown kernel"):
        make_ring_kernel("hypercube", space_size=2**16)


@pytest.mark.parametrize("kind", sorted(CASES))
def test_kernels_byte_identical_per_kind(kind):
    """The tentpole acceptance criterion, per experiment kind."""
    assert run_canonical(kind, "object") == run_canonical(kind, "array")


def test_kernel_config_round_trips_through_adapter():
    """The kernel name survives params -> typed config -> to_dict()."""
    for kind in sorted(CASES):
        adapter = get_experiment(kind)
        config = adapter.build_config(with_kernel(kind, "array"))
        dumped = config.to_dict()
        if kind in ("scenario", "adaptive"):
            dumped = dumped["base"]
        assert dumped["kernel"] == "array"


def test_bad_kernel_rejected_at_config_time():
    """Base kinds reject a bad kernel when the typed config is built; the
    scenario and adaptive kinds defer base-config checks to run time (the
    nested base dict is only turned into a typed config then)."""
    for kind in sorted(CASES):
        adapter = get_experiment(kind)
        params = with_kernel(kind, "no-such-kernel")
        with pytest.raises(ValueError, match="unknown kernel"):
            if kind in ("scenario", "adaptive"):
                adapter.run(params)
            else:
                adapter.build_config(params)


def test_timing_kind_has_no_kernel_switch():
    """The timing experiment owns no ring; a kernel param must be rejected
    loudly rather than silently ignored."""
    adapter = get_experiment("timing")
    with pytest.raises((TypeError, ValueError)):
        adapter.build_config({"n_nodes": 40, "kernel": "array"})


def test_campaign_sweeping_kernel_axis_is_kernel_blind(tmp_path):
    """A campaign with kernel as a grid axis: paired trials agree exactly on
    the timing-stripped, kernel-stripped view of their records."""
    spec = CampaignSpec(
        kind="security",
        name="kernel-differential",
        base={"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0},
        grid={"kernel": ["object", "array"]},
        seeds=(0, 1),
    )
    report = run_campaign(spec, out_dir=tmp_path / "diff")
    assert report.n_executed == 4

    by_seed = {}
    for trial in spec.expand():
        record = json.loads((tmp_path / "diff" / "trials" / f"{trial.trial_id}.json").read_text())
        assert record["params"]["kernel"] == trial.params["kernel"]
        # trial_id hashes the params — kernel included — so it legitimately
        # differs between the paired trials; blind the view to it as well.
        stripped = strip_kernel(strip_timing(record))
        stripped.pop("trial_id", None)
        view = canonical_json(stripped)
        by_seed.setdefault(trial.params["seed"], {})[trial.params["kernel"]] = view
    for seed, views in by_seed.items():
        assert views["object"] == views["array"], f"seed {seed} diverged"
