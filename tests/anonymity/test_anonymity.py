"""Tests for entropy metrics, the lightweight ring, observation sampling and
the anonymity estimators."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymity.comparison import ComparisonAnonymityModel
from repro.anonymity.entropy import (
    combine_conditional,
    degree_of_anonymity,
    entropy,
    entropy_of_counts,
    information_leak,
    max_entropy,
)
from repro.anonymity.initiator import InitiatorAnonymityEstimator
from repro.anonymity.observations import AnonymityConfig, LookupSampler
from repro.anonymity.presimulation import PresimulationBuilder
from repro.anonymity.ring_model import LightweightRing
from repro.anonymity.target import TargetAnonymityEstimator
from repro.sim.rng import RandomSource


class TestEntropy:
    def test_uniform_distribution_maximal(self):
        assert entropy([0.25] * 4) == pytest.approx(2.0)

    def test_degenerate_distribution_zero(self):
        assert entropy([1.0]) == 0.0

    def test_bad_normalisation_rejected(self):
        with pytest.raises(ValueError):
            entropy([0.2, 0.2])

    def test_entropy_of_counts(self):
        assert entropy_of_counts([1, 1, 1, 1]) == pytest.approx(2.0)
        assert entropy_of_counts([5, 0, 0]) == 0.0
        assert entropy_of_counts([]) == 0.0

    def test_max_entropy(self):
        assert max_entropy(1024) == pytest.approx(10.0)
        assert max_entropy(1) == 0.0

    def test_information_leak_non_negative(self):
        assert information_leak(10.0, 12.0) == pytest.approx(2.0)
        assert information_leak(13.0, 12.0) == 0.0

    def test_combine_conditional(self):
        combined = combine_conditional([(0.5, 10.0), (0.5, 6.0)])
        assert combined == pytest.approx(8.0)
        with pytest.raises(ValueError):
            combine_conditional([(0.2, 1.0)])

    def test_degree_of_anonymity_bounds(self):
        assert degree_of_anonymity(5.0, 10.0) == pytest.approx(0.5)
        assert degree_of_anonymity(11.0, 10.0) == 1.0
        assert degree_of_anonymity(1.0, 0.0) == 1.0

    @given(st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_entropy_of_counts_bounded_by_log_n(self, counts):
        h = entropy_of_counts(counts)
        assert 0.0 <= h <= math.log2(len(counts)) + 1e-9


class TestLightweightRing:
    def test_malicious_fraction_respected(self):
        ring = LightweightRing(n_nodes=1000, fraction_malicious=0.2, seed=1)
        assert sum(ring.malicious) == 200
        assert ring.honest_count() == 800

    def test_hop_distance_wraps(self):
        ring = LightweightRing(n_nodes=100, seed=2)
        assert ring.hop_distance(95, 5) == 10
        assert ring.hop_distance(5, 95) == 90
        assert ring.hop_distance(7, 7) == 0

    def test_position_of_id_is_successor(self):
        ring = LightweightRing(n_nodes=100, seed=3)
        ident = ring.id_of(10) - 1
        assert ring.position_of_id(ident) == 10

    def test_query_path_terminates_near_target(self):
        ring = LightweightRing(n_nodes=2000, seed=4)
        rng = RandomSource(5).stream("t")
        for _ in range(20):
            initiator = rng.randrange(ring.n_nodes)
            target = rng.randrange(ring.n_nodes)
            path = ring.query_path_positions(initiator, target)
            if path:
                last = path[-1]
                assert ring.hop_distance(last, target) <= 2

    def test_query_path_logarithmic_length(self):
        ring = LightweightRing(n_nodes=5000, seed=6)
        rng = RandomSource(7).stream("t")
        lengths = []
        for _ in range(30):
            initiator = rng.randrange(ring.n_nodes)
            target = rng.randrange(ring.n_nodes)
            lengths.append(len(ring.query_path_positions(initiator, target)))
        assert max(lengths) < 40
        assert sum(lengths) / len(lengths) < 20

    def test_query_density_increases_near_target(self):
        ring = LightweightRing(n_nodes=5000, seed=8)
        rng = RandomSource(9).stream("t")
        near, far = 0, 0
        for _ in range(50):
            initiator = rng.randrange(ring.n_nodes)
            target = rng.randrange(ring.n_nodes)
            for pos in ring.query_path_positions(initiator, target):
                if ring.hop_distance(pos, target) <= 16:
                    near += 1
                else:
                    far += 1
        assert near > 0
        # Queries concentrate close to the target (range-estimation premise).
        assert near >= far * 0.5

    def test_too_small_ring_rejected(self):
        with pytest.raises(ValueError):
            LightweightRing(n_nodes=4)


class TestLookupSampler:
    def _sampler(self, f=0.2, dummies=4):
        ring = LightweightRing(n_nodes=2000, fraction_malicious=f, seed=10)
        config = AnonymityConfig(concurrent_lookup_rate=0.01, dummy_queries=dummies)
        return LookupSampler(ring, config, rng=RandomSource(11))

    def test_lookup_has_real_and_dummy_queries(self):
        sampler = self._sampler()
        lookup = sampler.sample_lookup(stream_name="t1")
        dummies = [q for q in lookup.queries if q.is_dummy]
        reals = [q for q in lookup.queries if not q.is_dummy]
        assert len(dummies) == 4
        assert len(reals) >= 1

    def test_no_observations_with_no_malicious_nodes(self):
        sampler = self._sampler(f=0.0)
        for i in range(10):
            lookup = sampler.sample_lookup(stream_name=f"t{i}")
            assert not lookup.target_observed
            assert not any(q.observed for q in lookup.queries)
            assert not lookup.initiator_observed

    def test_linkable_implies_observed(self):
        sampler = self._sampler(f=0.3)
        for i in range(30):
            lookup = sampler.sample_lookup(stream_name=f"t{i}")
            for q in lookup.queries:
                if q.linkable_to_initiator:
                    assert q.observed

    def test_b_linkability_closure(self):
        sampler = self._sampler(f=0.4)
        for i in range(40):
            lookup = sampler.sample_lookup(stream_name=f"t{i}")
            if any(q.linkable_to_initiator and q.linkable_to_b for q in lookup.queries):
                for q in lookup.queries:
                    if q.linkable_to_b:
                        assert q.linkable_to_initiator

    def test_expected_concurrent(self):
        sampler = self._sampler()
        assert sampler.expected_concurrent() == 20


class TestPresimulation:
    def test_distributions_are_normalised_enough(self):
        ring = LightweightRing(n_nodes=2000, fraction_malicious=0.2, seed=12)
        dist = PresimulationBuilder(ring).build(n_samples=500)
        assert dist.xi_total > 0
        assert dist.chi_total > 0
        # xi should put more mass on small distances than on huge ones.
        assert dist.xi(1) > dist.xi(ring.n_nodes // 2)

    def test_gamma_favours_positions_close_to_lower_bound(self):
        ring = LightweightRing(n_nodes=2000, fraction_malicious=0.2, seed=13)
        dist = PresimulationBuilder(ring).build(n_samples=800)
        assert dist.gamma(1, 64) >= dist.gamma(60, 64)


class TestAnonymityEstimators:
    def _ring(self, f=0.2, n=3000, seed=14):
        return LightweightRing(n_nodes=n, fraction_malicious=f, seed=seed)

    def test_perfect_anonymity_with_no_adversary(self):
        ring = self._ring(f=0.0)
        init = InitiatorAnonymityEstimator(ring, AnonymityConfig(dummy_queries=4), presim_samples=300)
        res = init.estimate(n_worlds=60)
        assert res.information_leak_bits == pytest.approx(0.0, abs=1e-6)
        tgt = TargetAnonymityEstimator(ring, AnonymityConfig(dummy_queries=4), presim_samples=300)
        rest = tgt.estimate(n_worlds=60)
        assert rest.information_leak_bits == pytest.approx(0.0, abs=1e-6)

    def test_leak_increases_with_malicious_fraction(self):
        low = InitiatorAnonymityEstimator(self._ring(f=0.05), presim_samples=300).estimate(n_worlds=80)
        high = InitiatorAnonymityEstimator(self._ring(f=0.25), presim_samples=300).estimate(n_worlds=80)
        assert high.information_leak_bits > low.information_leak_bits

    def test_octopus_leak_small_at_paper_operating_point(self):
        ring = self._ring(f=0.2, n=5000)
        config = AnonymityConfig(concurrent_lookup_rate=0.01, dummy_queries=6)
        init = InitiatorAnonymityEstimator(ring, config, presim_samples=400).estimate(n_worlds=120)
        tgt = TargetAnonymityEstimator(ring, config, presim_samples=400).estimate(n_worlds=120)
        # Headline claim shape: only a fraction of a bit to ~1 bit leaked.
        assert init.information_leak_bits < 1.5
        assert tgt.information_leak_bits < 1.5

    def test_entropy_never_exceeds_ideal(self):
        ring = self._ring(f=0.2)
        res = TargetAnonymityEstimator(ring, presim_samples=300).estimate(n_worlds=60)
        assert res.entropy_bits <= res.ideal_entropy_bits + 1e-9


class TestComparisonModels:
    def test_octopus_beats_prior_schemes(self):
        ring = LightweightRing(n_nodes=5000, fraction_malicious=0.2, seed=15)
        config = AnonymityConfig(concurrent_lookup_rate=0.01, dummy_queries=6)
        octopus_init = InitiatorAnonymityEstimator(ring, config, presim_samples=400).estimate(n_worlds=120)
        octopus_tgt = TargetAnonymityEstimator(ring, config, presim_samples=400).estimate(n_worlds=120)
        comparison = ComparisonAnonymityModel(ring, concurrent_lookup_rate=0.01)
        schemes = comparison.all_schemes()
        for name, scheme in schemes.items():
            assert octopus_init.information_leak_bits < scheme.initiator.information_leak_bits, name
            assert octopus_tgt.information_leak_bits < scheme.target.information_leak_bits, name

    def test_nisan_and_chord_leak_target_badly(self):
        ring = LightweightRing(n_nodes=5000, fraction_malicious=0.2, seed=16)
        comparison = ComparisonAnonymityModel(ring, concurrent_lookup_rate=0.01)
        schemes = comparison.all_schemes()
        # Key-revealing / range-estimation-vulnerable schemes leak far more
        # about the target than about the initiator.
        assert schemes["nisan"].target.information_leak_bits > 3.0
        assert schemes["chord"].target.information_leak_bits > 3.0

    def test_torsk_protects_initiator_better_than_chord(self):
        ring = LightweightRing(n_nodes=5000, fraction_malicious=0.2, seed=17)
        comparison = ComparisonAnonymityModel(ring, concurrent_lookup_rate=0.01)
        schemes = comparison.all_schemes()
        assert (
            schemes["torsk"].target.information_leak_bits
            > schemes["torsk"].initiator.information_leak_bits - 5.0
        )

    def test_leak_grows_with_f_for_all_schemes(self):
        low_ring = LightweightRing(n_nodes=3000, fraction_malicious=0.05, seed=18)
        high_ring = LightweightRing(n_nodes=3000, fraction_malicious=0.25, seed=18)
        low = ComparisonAnonymityModel(low_ring, 0.01).all_schemes()
        high = ComparisonAnonymityModel(high_ring, 0.01).all_schemes()
        for name in ("chord", "nisan", "torsk"):
            assert high[name].initiator.information_leak_bits >= low[name].initiator.information_leak_bits
