"""Integration tests for the experiment harnesses (scaled-down parameters).

These check the *shape* of the paper's results end-to-end: attacker
identification reduces the malicious fraction, accuracy metrics stay in the
published regime, the efficiency ordering holds, and the timing-analysis
error rate is high.
"""

from __future__ import annotations

import pytest

from repro.core.config import OctopusConfig
from repro.experiments.anonymity import AnonymityExperiment, AnonymityExperimentConfig
from repro.experiments.efficiency import EfficiencyExperiment, EfficiencyExperimentConfig
from repro.experiments.results import ExperimentRecord, format_series, format_table
from repro.experiments.security import SecurityExperiment, SecurityExperimentConfig
from repro.experiments.timing import TimingExperiment, TimingExperimentConfig


def small_security_config(attack: str, **overrides) -> SecurityExperimentConfig:
    defaults = dict(
        n_nodes=100,
        duration=240.0,
        attack=attack,
        attack_rate=1.0,
        churn_lifetime_minutes=60.0,
        sample_interval=60.0,
        seed=2,
    )
    defaults.update(overrides)
    return SecurityExperimentConfig(**defaults)


class TestSecurityExperiment:
    def test_lookup_bias_attackers_removed(self):
        result = SecurityExperiment(small_security_config("lookup-bias")).run()
        assert result.initial_malicious_fraction == pytest.approx(0.2, abs=0.02)
        assert result.final_malicious_fraction < 0.05
        assert result.false_positive_rate == 0.0
        assert result.identified_malicious > 0

    def test_biased_lookups_stop_growing(self):
        result = SecurityExperiment(small_security_config("lookup-bias")).run()
        biased = [v for _, v in result.biased_lookups_series]
        total = [v for _, v in result.lookups_series]
        assert total[-1] > 0
        # Most bias happens early; the last interval adds little.
        assert biased[-1] - biased[len(biased) // 2] <= max(2.0, 0.2 * biased[-1] + 1.0)

    def test_no_attack_no_convictions(self):
        result = SecurityExperiment(small_security_config("none", duration=180.0)).run()
        assert result.identified_malicious == 0
        assert result.identified_honest == 0
        assert result.final_malicious_fraction == pytest.approx(result.initial_malicious_fraction, abs=0.05)

    def test_fingertable_manipulation_detected(self):
        result = SecurityExperiment(small_security_config("fingertable-manipulation")).run()
        assert result.final_malicious_fraction < result.initial_malicious_fraction * 0.5
        assert result.false_positive_rate <= 0.05

    def test_selective_dos_detected(self):
        result = SecurityExperiment(small_security_config("selective-dos")).run()
        assert result.final_malicious_fraction < result.initial_malicious_fraction * 0.5
        assert result.false_positive_rate <= 0.05

    def test_ca_workload_peaks_early(self):
        result = SecurityExperiment(small_security_config("lookup-bias")).run()
        workload = [v for _, v in result.ca_workload_series]
        if sum(workload) > 0:
            first_half = sum(workload[: len(workload) // 2])
            second_half = sum(workload[len(workload) // 2:])
            assert first_half >= second_half

    def test_invalid_attack_rejected(self):
        with pytest.raises(ValueError):
            SecurityExperimentConfig(attack="unknown-attack").validate()


class TestAnonymityExperiment:
    def test_sweep_produces_points_and_octopus_wins(self):
        config = AnonymityExperimentConfig(
            n_nodes=3000,
            fractions_malicious=(0.1, 0.2),
            dummy_counts=(6,),
            concurrent_lookup_rates=(0.01,),
            n_worlds=60,
            seed=1,
        )
        result = AnonymityExperiment(config).run()
        assert len(result.octopus_points) == 2
        assert len(result.comparison_points) == 6
        # At f = 0.2, Octopus leaks less than every comparison scheme.
        octo = [p for p in result.octopus_points if p.fraction_malicious == 0.2][0]
        for point in result.comparison_points:
            if point.fraction_malicious == 0.2:
                assert octo.initiator_leak < point.initiator_leak
                assert octo.target_leak < point.target_leak

    def test_octopus_entropy_decreases_with_f(self):
        config = AnonymityExperimentConfig(
            n_nodes=3000,
            fractions_malicious=(0.05, 0.2),
            dummy_counts=(6,),
            concurrent_lookup_rates=(0.01,),
            n_worlds=60,
            seed=2,
        )
        points = AnonymityExperiment(config).run_octopus()
        low = [p for p in points if p.fraction_malicious == 0.05][0]
        high = [p for p in points if p.fraction_malicious == 0.2][0]
        assert high.initiator_entropy <= low.initiator_entropy


class TestEfficiencyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        config = EfficiencyExperimentConfig(
            n_nodes=100,
            lookups_per_scheme=40,
            seed=1,
            octopus=OctopusConfig(expected_network_size=100),
        )
        return EfficiencyExperiment(config).run()

    def test_all_schemes_measured(self, result):
        assert set(result.schemes) == {"octopus", "chord", "halo"}
        for scheme in result.schemes.values():
            assert scheme.lookups == 40
            assert scheme.mean_latency > 0.0

    def test_latency_ordering_matches_paper(self, result):
        """Table 3 / Figure 7(a): Chord fastest, Halo slowest (waits for all
        redundant lookups), Octopus in between."""
        chord = result.schemes["chord"].mean_latency
        octopus = result.schemes["octopus"].mean_latency
        halo = result.schemes["halo"].mean_latency
        assert chord < octopus
        assert octopus < halo

    def test_bandwidth_ordering_matches_paper(self, result):
        """Octopus pays the most bandwidth; all schemes stay within tens of kbps."""
        for interval in (5.0, 10.0):
            octopus = result.schemes["octopus"].bandwidth_kbps[interval]
            chord = result.schemes["chord"].bandwidth_kbps[interval]
            halo = result.schemes["halo"].bandwidth_kbps[interval]
            assert octopus > halo > chord
            assert octopus < 50.0
            assert chord < 2.0

    def test_longer_lookup_interval_cheaper(self, result):
        octopus = result.schemes["octopus"].bandwidth_kbps
        assert octopus[10.0] < octopus[5.0]

    def test_correctness_high_without_attack(self, result):
        for scheme in result.schemes.values():
            assert scheme.correct_fraction > 0.9

    def test_table3_rows_render(self, result):
        rows = result.table3_rows()
        assert len(rows) == 3
        assert {r["scheme"] for r in rows} == {"octopus", "chord", "halo"}


class TestTimingExperiment:
    def test_table1_grid(self):
        config = TimingExperimentConfig(max_candidate_flows=400)
        result = TimingExperiment(config).run()
        assert len(result.cells) == 6
        assert result.min_error_rate() > 0.9
        assert result.max_information_leak() < 2.0
        rows = result.table1_rows()
        assert len(rows) == 2
        assert all(len(row) == 4 for row in rows)


class TestResultFormatting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in text and "2.500" in text

    def test_format_series(self):
        text = format_series("s", [(0.0, 1.0), (10.0, 2.0)])
        assert "10.0" in text

    def test_experiment_record_roundtrip(self):
        record = ExperimentRecord(name="demo", parameters={"n": 5})
        record.add_row(metric="x", value=1.0)
        record.add_series("curve", [(0.0, 0.0), (1.0, 1.0)])
        record.notes.append("scaled-down run")
        text = record.to_text()
        assert "demo" in text and "curve" in text and "scaled-down" in text
