"""Integration tests for the experiment harnesses (scaled-down parameters).

These check the *shape* of the paper's results end-to-end: attacker
identification reduces the malicious fraction, accuracy metrics stay in the
published regime, the efficiency ordering holds, and the timing-analysis
error rate is high.
"""

from __future__ import annotations

import pytest

from repro.core.config import OctopusConfig
from repro.experiments.anonymity import AnonymityExperiment, AnonymityExperimentConfig
from repro.experiments.efficiency import EfficiencyExperiment, EfficiencyExperimentConfig
from repro.experiments.results import ExperimentRecord, format_series, format_table
from repro.experiments.security import SecurityExperiment, SecurityExperimentConfig
from repro.experiments.timing import TimingExperiment, TimingExperimentConfig


def small_security_config(attack: str, **overrides) -> SecurityExperimentConfig:
    defaults = dict(
        n_nodes=100,
        duration=240.0,
        attack=attack,
        attack_rate=1.0,
        churn_lifetime_minutes=60.0,
        sample_interval=60.0,
        seed=2,
    )
    defaults.update(overrides)
    return SecurityExperimentConfig(**defaults)


class TestSecurityExperiment:
    def test_lookup_bias_attackers_removed(self):
        result = SecurityExperiment(small_security_config("lookup-bias")).run()
        assert result.initial_malicious_fraction == pytest.approx(0.2, abs=0.02)
        assert result.final_malicious_fraction < 0.05
        assert result.false_positive_rate == 0.0
        assert result.identified_malicious > 0

    def test_biased_lookups_stop_growing(self):
        result = SecurityExperiment(small_security_config("lookup-bias")).run()
        biased = [v for _, v in result.biased_lookups_series]
        total = [v for _, v in result.lookups_series]
        assert total[-1] > 0
        # Most bias happens early; the last interval adds little.
        assert biased[-1] - biased[len(biased) // 2] <= max(2.0, 0.2 * biased[-1] + 1.0)

    def test_no_attack_no_convictions(self):
        result = SecurityExperiment(small_security_config("none", duration=180.0)).run()
        assert result.identified_malicious == 0
        assert result.identified_honest == 0
        assert result.final_malicious_fraction == pytest.approx(result.initial_malicious_fraction, abs=0.05)

    def test_fingertable_manipulation_detected(self):
        result = SecurityExperiment(small_security_config("fingertable-manipulation")).run()
        assert result.final_malicious_fraction < result.initial_malicious_fraction * 0.5
        assert result.false_positive_rate <= 0.05

    def test_selective_dos_detected(self):
        result = SecurityExperiment(small_security_config("selective-dos")).run()
        assert result.final_malicious_fraction < result.initial_malicious_fraction * 0.5
        assert result.false_positive_rate <= 0.05

    def test_ca_workload_peaks_early(self):
        result = SecurityExperiment(small_security_config("lookup-bias")).run()
        workload = [v for _, v in result.ca_workload_series]
        if sum(workload) > 0:
            first_half = sum(workload[: len(workload) // 2])
            second_half = sum(workload[len(workload) // 2:])
            assert first_half >= second_half

    def test_invalid_attack_rejected(self):
        with pytest.raises(ValueError):
            SecurityExperimentConfig(attack="unknown-attack").validate()


class TestAnonymityExperiment:
    def test_sweep_produces_points_and_octopus_wins(self):
        config = AnonymityExperimentConfig(
            n_nodes=3000,
            fractions_malicious=(0.1, 0.2),
            dummy_counts=(6,),
            concurrent_lookup_rates=(0.01,),
            n_worlds=60,
            seed=1,
        )
        result = AnonymityExperiment(config).run()
        assert len(result.octopus_points) == 2
        assert len(result.comparison_points) == 6
        # At f = 0.2, Octopus leaks less than every comparison scheme.
        octo = [p for p in result.octopus_points if p.fraction_malicious == 0.2][0]
        for point in result.comparison_points:
            if point.fraction_malicious == 0.2:
                assert octo.initiator_leak < point.initiator_leak
                assert octo.target_leak < point.target_leak

    def test_octopus_entropy_decreases_with_f(self):
        config = AnonymityExperimentConfig(
            n_nodes=3000,
            fractions_malicious=(0.05, 0.2),
            dummy_counts=(6,),
            concurrent_lookup_rates=(0.01,),
            n_worlds=60,
            seed=2,
        )
        points = AnonymityExperiment(config).run_octopus()
        low = [p for p in points if p.fraction_malicious == 0.05][0]
        high = [p for p in points if p.fraction_malicious == 0.2][0]
        assert high.initiator_entropy <= low.initiator_entropy


class TestEfficiencyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        config = EfficiencyExperimentConfig(
            n_nodes=100,
            lookups_per_scheme=40,
            seed=1,
            octopus=OctopusConfig(expected_network_size=100),
        )
        return EfficiencyExperiment(config).run()

    def test_all_schemes_measured(self, result):
        assert set(result.schemes) == {"octopus", "chord", "halo"}
        for scheme in result.schemes.values():
            assert scheme.lookups == 40
            assert scheme.mean_latency > 0.0

    def test_latency_ordering_matches_paper(self, result):
        """Table 3 / Figure 7(a): Chord fastest, Halo slowest (waits for all
        redundant lookups), Octopus in between."""
        chord = result.schemes["chord"].mean_latency
        octopus = result.schemes["octopus"].mean_latency
        halo = result.schemes["halo"].mean_latency
        assert chord < octopus
        assert octopus < halo

    def test_bandwidth_ordering_matches_paper(self, result):
        """Octopus pays the most bandwidth; all schemes stay within tens of kbps."""
        for interval in (5.0, 10.0):
            octopus = result.schemes["octopus"].bandwidth_kbps[interval]
            chord = result.schemes["chord"].bandwidth_kbps[interval]
            halo = result.schemes["halo"].bandwidth_kbps[interval]
            assert octopus > halo > chord
            assert octopus < 50.0
            assert chord < 2.0

    def test_longer_lookup_interval_cheaper(self, result):
        octopus = result.schemes["octopus"].bandwidth_kbps
        assert octopus[10.0] < octopus[5.0]

    def test_correctness_high_without_attack(self, result):
        for scheme in result.schemes.values():
            assert scheme.correct_fraction > 0.9

    def test_table3_rows_render(self, result):
        rows = result.table3_rows()
        assert len(rows) == 3
        assert {r["scheme"] for r in rows} == {"octopus", "chord", "halo"}


TINY_EFFICIENCY = dict(n_nodes=40, lookups_per_scheme=4)


class TestEfficiencyRegressions:
    """The PR-5 efficiency-harness config bugfixes, pinned."""

    def test_relay_pairs_come_from_the_scaled_octopus_config(self, monkeypatch):
        """Regression: measure_latencies built relay pairs from the *unscaled*
        ``cfg.octopus`` while the network ran the ``scaled_for(n_nodes)``
        config.  Scaling is identity for relay pairs today, so the test makes
        it not be: a scaled config with a different relay-pair count must be
        the one the lookup loop asks for — pinned at the paper's 207 nodes."""
        from dataclasses import replace

        from repro.core.anonymous_lookup import AnonymousLookupProtocol

        original_scaled_for = OctopusConfig.scaled_for

        def scaling_that_touches_relay_pairs(self, n_nodes):
            # Idempotent on purpose: the scaled config passes through
            # OctopusNetwork.create, which calls scaled_for again.
            return replace(original_scaled_for(self, n_nodes), relay_pairs_per_lookup=6)

        monkeypatch.setattr(OctopusConfig, "scaled_for", scaling_that_touches_relay_pairs)

        requested_counts = []
        original_select = AnonymousLookupProtocol.select_relay_pairs

        def spying_select(self, initiator, count):
            requested_counts.append(count)
            return original_select(self, initiator, count)

        monkeypatch.setattr(AnonymousLookupProtocol, "select_relay_pairs", spying_select)

        config = EfficiencyExperimentConfig(n_nodes=207, lookups_per_scheme=2, seed=1)
        assert config.octopus.relay_pairs_per_lookup == 4  # unscaled stays 4
        EfficiencyExperiment(config).measure_latencies()
        assert requested_counts and all(count == 6 + 1 for count in requested_counts)

    def test_fractional_lookup_intervals_do_not_collide(self):
        """Regression: ``table3_rows`` truncated intervals with ``int()``, so
        7 and 7.5 minutes both rendered ``kbps_lk_int_7min``."""
        config = EfficiencyExperimentConfig(
            seed=1, lookup_intervals_minutes=(7.0, 7.5), **TINY_EFFICIENCY
        )
        result = EfficiencyExperiment(config).run()
        for row in result.table3_rows():
            # Both intervals keep their own column — before the fix 7.5
            # truncated to 7 and silently overwrote the 7-minute value.
            assert {"kbps_lk_int_7min", "kbps_lk_int_7.5min"} <= set(row)
            assert len([k for k in row if k.startswith("kbps_lk_int_")]) == 2
        metrics = result.scalar_metrics()
        assert "octopus_kbps_lk_int_7min" in metrics
        assert "octopus_kbps_lk_int_7.5min" in metrics

    def test_sequence_config_fields_normalize_to_tuples(self):
        """Regression: list-valued sequence fields (as campaign specs and JSON
        deserialization produce) must compare equal to the tuple defaults."""
        import json

        from repro.experiments.results import config_from_dict

        from_lists = EfficiencyExperimentConfig(
            lookup_intervals_minutes=[5.0, 10.0], slow_node_delay_range=[0.5, 2.0]
        )
        assert from_lists == EfficiencyExperimentConfig()
        assert from_lists.lookup_intervals_minutes == (5.0, 10.0)
        # Round trip through JSON and back: byte-equal to the original.
        config = EfficiencyExperimentConfig(seed=3, lookup_intervals_minutes=(7.0, 7.5))
        revived = config_from_dict(
            EfficiencyExperimentConfig, json.loads(json.dumps(config.to_dict()))
        )
        assert revived == config


class TestEfficiencyWorkloadInjection:
    """The closed-loop workload surface on the efficiency harness."""

    def test_default_model_is_a_behavioural_noop(self):
        from repro.sim.workload import WorkloadModel

        config = EfficiencyExperimentConfig(seed=1, **TINY_EFFICIENCY)
        plain = EfficiencyExperiment(config).run()
        injected = EfficiencyExperiment(config, workload=WorkloadModel()).run()
        assert injected.to_dict() == plain.to_dict()

    def test_zipf_workload_changes_keys_deterministically(self):
        from repro.scenarios.workloads import ZipfWorkload

        config = EfficiencyExperimentConfig(seed=1, **TINY_EFFICIENCY)
        plain = EfficiencyExperiment(config).run()
        zipf = lambda: EfficiencyExperiment(  # noqa: E731 - local factory
            config, workload=ZipfWorkload(exponent=1.2, n_keys=64)
        ).run()
        first, second = zipf(), zipf()
        assert first.to_dict() == second.to_dict()  # same model, same draws
        assert first.to_dict() != plain.to_dict()  # but not the uniform ones

    def test_hot_key_storm_sees_the_virtual_clock(self):
        """Lookup ``i`` happens at ``now = i`` seconds: a storm window covering
        the whole run concentrates lookups on the hot key, one starting after
        ``lookups_per_scheme`` never fires."""
        from repro.scenarios.workloads import HotKeyStormWorkload

        config = EfficiencyExperimentConfig(seed=1, **TINY_EFFICIENCY)

        def run_with(storm_start_s, storm_end_s, storm_intensity=0.9):
            return EfficiencyExperiment(
                config,
                workload=HotKeyStormWorkload(
                    storm_start_s=storm_start_s,
                    storm_end_s=storm_end_s,
                    storm_intensity=storm_intensity,
                ),
            ).run()

        # Two windows the per-lookup virtual clock never reaches: identical
        # draws (the storm coin is always consumed, window or not).
        assert run_with(1e6, 2e6).to_dict() == run_with(5e6, 9e6).to_dict()
        # A window covering every lookup at full intensity hits the hot key.
        assert run_with(0.0, 1e6, 1.0).to_dict() != run_with(1e6, 2e6).to_dict()


class TestTimingExperiment:
    def test_table1_grid(self):
        config = TimingExperimentConfig(max_candidate_flows=400)
        result = TimingExperiment(config).run()
        assert len(result.cells) == 6
        assert result.min_error_rate() > 0.9
        assert result.max_information_leak() < 2.0
        rows = result.table1_rows()
        assert len(rows) == 2
        assert all(len(row) == 4 for row in rows)


class TestResultFormatting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in text and "2.500" in text

    def test_format_series(self):
        text = format_series("s", [(0.0, 1.0), (10.0, 2.0)])
        assert "10.0" in text

    def test_experiment_record_roundtrip(self):
        record = ExperimentRecord(name="demo", parameters={"n": 5})
        record.add_row(metric="x", value=1.0)
        record.add_series("curve", [(0.0, 0.0), (1.0, 1.0)])
        record.notes.append("scaled-down run")
        text = record.to_text()
        assert "demo" in text and "curve" in text and "scaled-down" in text
