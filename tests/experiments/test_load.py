"""Open-loop load harness: config, accounting, queueing, determinism."""

from __future__ import annotations

import pytest

from repro.experiments.load import LoadConfig, LoadExperiment, run_load

TINY = dict(n_nodes=30, duration=10.0, sample_interval=5.0, seed=0)


class TestLoadConfig:
    def test_validation_rejects_bad_values(self):
        with pytest.raises(ValueError, match="offered_rps"):
            LoadConfig(offered_rps=0.0, **TINY).validate()
        with pytest.raises(ValueError, match="duration"):
            LoadConfig(n_nodes=30, duration=-1.0).validate()
        with pytest.raises(ValueError, match="workload model"):
            LoadConfig(workload="no-such-model", **TINY).validate()
        with pytest.raises(ValueError, match="ramp entries"):
            LoadConfig(
                workload="poisson", workload_params={"ramp": [[10.0]]}, **TINY
            ).validate()

    def test_config_round_trips_through_dict(self):
        from repro.experiments.results import config_from_dict

        cfg = LoadConfig(offered_rps=12.5, workload="zipf",
                         workload_params={"exponent": 1.1}, **TINY)
        rebuilt = config_from_dict(LoadConfig, cfg.to_dict())
        assert rebuilt == cfg


class TestLoadExperiment:
    def test_offered_equals_delivered_without_churn(self):
        cfg = LoadConfig(offered_rps=12.0, churn_lifetime_minutes=None, **TINY)
        result = LoadExperiment(cfg).run()
        m = result.scalar_metrics()
        assert m["offered_lookups"] > 0
        assert m["delivered_lookups"] == m["offered_lookups"]
        assert m["delivered_fraction"] == 1.0
        assert m["offered_rps_measured"] == pytest.approx(12.0, rel=0.5)
        assert 0.0 <= m["latency_p50_s"] <= m["latency_p90_s"] <= m["latency_p99_s"]
        assert len(result.inflight_series) >= 3
        assert result.latency_cdf  # CDF recorded for figure consumers

    def test_closed_loop_workload_sheds_load_under_churn_but_reports_it(self):
        """A per-node periodic workload keeps firing for churned-offline
        nodes; those arrivals count as offered, not delivered."""
        cfg = LoadConfig(
            offered_rps=20.0, workload="uniform",
            churn_lifetime_minutes=0.05, **TINY  # 3 s mean sessions
        )
        m = LoadExperiment(cfg).run().scalar_metrics()
        assert m["offered_lookups"] > m["delivered_lookups"]
        assert 0.0 < m["delivered_fraction"] < 1.0

    def test_open_loop_poisson_tracks_offered_rate_under_churn(self):
        """The fixed Poisson model draws initiators from the alive view, so
        churn thins the issuing population (rate scales with it) but never
        produces lookups from dead nodes."""
        cfg = LoadConfig(offered_rps=20.0, churn_lifetime_minutes=0.2, **TINY)
        m = LoadExperiment(cfg).run().scalar_metrics()
        assert m["delivered_lookups"] == m["offered_lookups"]
        assert m["churn_departures"] > 0

    def test_saturation_grows_queue_delay_and_backlog(self):
        slow = dict(TINY, n_nodes=20)
        low = LoadConfig(offered_rps=2.0, churn_lifetime_minutes=None,
                         service_time_mean_s=0.3, **slow)
        high = LoadConfig(offered_rps=40.0, churn_lifetime_minutes=None,
                          service_time_mean_s=0.3, **slow)
        m_low = LoadExperiment(low).run().scalar_metrics()
        m_high = LoadExperiment(high).run().scalar_metrics()
        assert m_high["queue_delay_p99_s"] > m_low["queue_delay_p99_s"]
        assert m_high["inflight_mean"] > m_low["inflight_mean"]

    def test_same_seed_is_deterministic(self):
        cfg = LoadConfig(offered_rps=15.0, **TINY)
        a = run_load(cfg).to_dict()
        b = run_load(LoadConfig(offered_rps=15.0, **TINY)).to_dict()
        assert a == b

    def test_result_dict_is_json_clean(self):
        import json

        d = run_load(LoadConfig(offered_rps=8.0, **TINY)).to_dict()
        json.dumps(d)
        assert set(d["series"]) == {"inflight", "offered", "delivered", "latency_cdf"}
        assert all(isinstance(v, float) for v in d["metrics"].values())
