"""Tests for the Section 4.2 ablation and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.ablation import AblationConfig, AnonymityAblation


class TestAnonymityAblation:
    @pytest.fixture(scope="class")
    def result(self):
        config = AblationConfig(n_nodes=3000, fraction_malicious=0.2, n_worlds=80, seed=5)
        return AnonymityAblation(config).run()

    def test_all_variants_evaluated(self, result):
        variants = {p.variant for p in result.points}
        assert variants == {
            "multi-path + dummies",
            "multi-path, no dummies",
            "single path + dummies",
            "single path, no dummies",
        }

    def test_full_design_is_strongest(self, result):
        """Section 4.2: the full design is never worse than the stripped-down
        variants beyond Monte-Carlo noise (the advantage grows with network
        size and adversary strength; at this scaled-down size it is small)."""
        by = result.by_variant()
        full = by["multi-path + dummies"].target_leak
        for variant, point in by.items():
            if variant == "multi-path + dummies":
                continue
            assert full <= point.target_leak + 0.2, variant

    def test_leaks_are_bounded(self, result):
        for point in result.points:
            assert 0.0 <= point.target_leak <= 5.0
            assert point.target_entropy <= result.points[0].target_entropy + 5.0


class TestCli:
    def test_security_subcommand(self, capsys):
        code = main(["security", "--nodes", "80", "--duration", "120", "--attack", "lookup-bias", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "malicious_fraction" in out
        assert "identified malicious=" in out

    def test_timing_subcommand(self, capsys):
        code = main(["timing", "--flows", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out

    def test_efficiency_subcommand(self, capsys):
        code = main(["efficiency", "--nodes", "60", "--lookups", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 3" in out
        assert "octopus" in out

    def test_anonymity_subcommand(self, capsys):
        code = main(["anonymity", "--nodes", "2000", "--worlds", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "leak(T)" in out
        assert "nisan" in out

    def test_ablation_subcommand(self, capsys):
        code = main(["ablation", "--nodes", "2000", "--worlds", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Section 4.2 ablation" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])
