"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.chord.idspace import IdSpace
from repro.chord.ring import ChordRing, RingConfig
from repro.core.config import OctopusConfig
from repro.core.octopus_node import OctopusNetwork
from repro.crypto.ca import CertificateAuthority
from repro.sim.rng import RandomSource


@pytest.fixture
def space() -> IdSpace:
    """A small identifier space used by most unit tests."""
    return IdSpace(bits=16)


@pytest.fixture
def rng() -> RandomSource:
    return RandomSource(12345)


@pytest.fixture
def small_ring() -> ChordRing:
    """A 64-node ring with 25% malicious nodes and correct routing state."""
    config = RingConfig(n_nodes=64, fraction_malicious=0.25, finger_count=10, id_bits=20, seed=7)
    return ChordRing.build(config=config, rng=RandomSource(7))


@pytest.fixture
def honest_ring() -> ChordRing:
    """A 64-node ring with no malicious nodes."""
    config = RingConfig(n_nodes=64, fraction_malicious=0.0, finger_count=10, id_bits=20, seed=11)
    return ChordRing.build(config=config, rng=RandomSource(11))


@pytest.fixture
def small_network() -> OctopusNetwork:
    """A complete Octopus network of 80 nodes (20% malicious)."""
    return OctopusNetwork.create(
        n_nodes=80,
        fraction_malicious=0.2,
        seed=5,
        config=OctopusConfig(expected_network_size=80),
        id_bits=24,
    )


@pytest.fixture
def honest_network() -> OctopusNetwork:
    """A complete Octopus network with no malicious nodes."""
    return OctopusNetwork.create(
        n_nodes=60,
        fraction_malicious=0.0,
        seed=9,
        config=OctopusConfig(expected_network_size=60),
        id_bits=24,
    )


@pytest.fixture
def ca() -> CertificateAuthority:
    return CertificateAuthority(seed=1)
