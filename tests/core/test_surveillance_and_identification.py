"""Tests for the surveillance mechanisms, secure finger update, DoS defense
and the CA-side attacker identification."""

from __future__ import annotations

import pytest

from repro.attacks.adversary import Adversary
from repro.attacks.fingertable_manipulation import FingertableManipulationBehavior
from repro.attacks.fingertable_pollution import FingertablePollutionBehavior
from repro.attacks.lookup_bias import LookupBiasBehavior
from repro.core.attacker_identification import DropReport, NeighborReport
from repro.core.config import OctopusConfig
from repro.core.octopus_node import OctopusNetwork
from repro.sim.rng import RandomSource


def make_network(seed=5, n=80, f=0.2):
    return OctopusNetwork.create(
        n_nodes=n, fraction_malicious=f, seed=seed, config=OctopusConfig(expected_network_size=n), id_bits=24
    )


class TestSecretNeighborSurveillance:
    def test_no_reports_without_attack(self, honest_network):
        for _ in range(3):
            for node_id in honest_network.ring.honest_ids():
                honest_network.neighbor_surveillance.check(node_id, now=60.0)
        assert honest_network.identification.stats.identified_honest == 0
        assert honest_network.identification.stats.identified_malicious == 0

    def test_lookup_bias_attacker_detected_and_revoked(self):
        network = make_network(seed=6)
        adversary = Adversary(network.ring, RandomSource(1), attack_rate=1.0)
        adversary.install_behavior(lambda adv, node: LookupBiasBehavior(adv, node))
        for round_idx in range(12):
            network.run_surveillance_round(now=60.0 * (round_idx + 1))
        stats = network.identification.stats
        assert stats.identified_malicious > 0
        assert stats.identified_honest == 0
        assert network.remaining_malicious_fraction() < 0.2
        # Revoked nodes are removed from the ring and recorded at the CA.
        for node_id in network.identification.identified_nodes():
            assert network.ca.is_revoked(node_id)
            assert not network.ring.node(node_id).alive

    def test_half_attack_rate_detected_more_slowly(self):
        slow = make_network(seed=7)
        fast = make_network(seed=7)
        for net, rate in ((fast, 1.0), (slow, 0.5)):
            adversary = Adversary(net.ring, RandomSource(2), attack_rate=rate)
            adversary.install_behavior(lambda adv, node: LookupBiasBehavior(adv, node))
            for i in range(4):
                net.run_surveillance_round(now=60.0 * (i + 1))
        assert fast.identification.stats.identified_malicious >= slow.identification.stats.identified_malicious

    def test_recently_joined_node_does_not_report(self):
        network = make_network(seed=8)
        checker = network.random_honest_node()
        network.ring.mark_alive(checker, now=100.0)  # records a very recent join
        outcome = network.neighbor_surveillance.check(checker, now=101.0)
        assert not outcome.reported


class TestSecretFingerSurveillance:
    def test_manipulated_fingertable_detected(self):
        network = make_network(seed=9)
        adversary = Adversary(network.ring, RandomSource(3), attack_rate=1.0)
        adversary.install_behavior(
            lambda adv, node: FingertableManipulationBehavior(adv, node, collusion_consistency=0.0)
        )
        # Populate honest buffers by running random walks, then check.
        detections = 0
        for i in range(6):
            for node_id in network.ring.honest_ids()[:40]:
                network.random_walker.perform(node_id, now=10.0 * i)
                outcome = network.finger_surveillance.check(node_id, now=10.0 * i + 5.0)
                detections += 1 if outcome.detected else 0
        assert detections > 0
        assert network.identification.stats.identified_malicious > 0
        assert network.identification.stats.identified_honest == 0

    def test_no_detection_on_honest_tables(self, honest_network):
        for node_id in honest_network.ring.honest_ids()[:30]:
            honest_network.random_walker.perform(node_id, now=1.0)
            outcome = honest_network.finger_surveillance.check(node_id, now=2.0)
            assert outcome.report_judgement is None or outcome.report_judgement.identified is None


class TestSecureFingerUpdate:
    def test_updates_finger_to_true_successor_without_attack(self, honest_network):
        node_id = honest_network.random_honest_node()
        outcome = honest_network.secure_update.update_finger(node_id, finger_index=3, now=1.0)
        assert outcome.adopted
        assert outcome.candidate == honest_network.ring.true_successor(outcome.ideal_id)

    def test_pollution_attempts_rejected_by_check(self):
        network = make_network(seed=10)
        adversary = Adversary(network.ring, RandomSource(4), attack_rate=1.0)
        adversary.install_behavior(
            lambda adv, node: FingertablePollutionBehavior(adv, node, collusion_consistency=0.0)
        )
        adopted_wrong = 0
        rejected = 0
        for node_id in network.ring.honest_ids()[:40]:
            outcome = network.secure_update.update_random_finger(node_id, now=5.0)
            if outcome.check_failed:
                rejected += 1
            if outcome.adopted and outcome.candidate != network.ring.true_successor(outcome.ideal_id):
                adopted_wrong += 1
        assert rejected > 0 or adopted_wrong == 0
        # With no collusion cover, almost no polluted finger should be adopted.
        assert adopted_wrong <= 2

    def test_pollution_rate_metric(self, honest_network):
        for node_id in honest_network.ring.honest_ids()[:10]:
            honest_network.secure_update.update_random_finger(node_id, now=1.0)
        assert honest_network.secure_update.pollution_rate() == 0.0


class TestDosDefense:
    def test_dropper_identified(self):
        network = make_network(seed=11)
        ring = network.ring
        initiator = network.random_honest_node()
        honest = [nid for nid in ring.honest_ids() if nid != initiator]
        malicious = ring.malicious_alive_ids()
        relays = [honest[0], honest[1], malicious[0], honest[2]]
        judgement = network.dos_defense.investigate_drop(initiator, relays, culprit_hint=malicious[0], now=1.0)
        assert judgement is not None
        assert judgement.identified == malicious[0]
        assert not judgement.is_false_positive

    def test_no_report_when_relay_actually_dead(self):
        network = make_network(seed=12)
        ring = network.ring
        initiator = network.random_honest_node()
        honest = [nid for nid in ring.honest_ids() if nid != initiator]
        relays = honest[:4]
        ring.mark_dead(relays[2])
        judgement = network.dos_defense.investigate_drop(initiator, relays, culprit_hint=None, now=1.0)
        assert judgement is None
        ring.mark_alive(relays[2])

    def test_duplicate_relays_do_not_incriminate_honest_nodes(self):
        network = make_network(seed=13)
        ring = network.ring
        initiator = network.random_honest_node()
        honest = [nid for nid in ring.honest_ids() if nid != initiator]
        malicious = ring.malicious_alive_ids()
        # The same (honest, malicious) pair serves as both relay pairs.
        relays = [honest[0], malicious[0], honest[0], malicious[0]]
        judgement = network.dos_defense.investigate_drop(initiator, relays, culprit_hint=malicious[0], now=1.0)
        assert judgement is not None
        assert judgement.identified == malicious[0]

    def test_receipts_and_witnesses_verifiable(self):
        network = make_network(seed=14)
        honest = network.ring.honest_ids()
        receipt = network.dos_defense.issue_receipt(honest[0], honest[1], now=2.0)
        assert receipt is not None
        assert network.dos_defense.verify_receipt(receipt)
        statements = network.dos_defense.gather_witness_statements(honest[1], honest[2], now=2.0)
        assert statements
        assert all(s.delivered for s in statements)

    def test_witness_statements_report_dead_target(self):
        network = make_network(seed=15)
        honest = network.ring.honest_ids()
        network.ring.mark_dead(honest[2])
        statements = network.dos_defense.gather_witness_statements(honest[1], honest[2], now=2.0)
        assert statements
        assert all(not s.delivered for s in statements)
        network.ring.mark_alive(honest[2])


class TestAttackerIdentificationService:
    def test_bad_evidence_signature_is_false_alarm(self):
        network = make_network(seed=16)
        honest = network.ring.honest_ids()
        accused = network.ring.node(honest[1])
        # Evidence signed by the *reporter* instead of the accused: invalid.
        forged = network.ring.node(honest[0]).signed_successor_list(now=1.0)
        forged = type(forged)(
            owner_id=accused.node_id,
            nodes=forged.nodes,
            timestamp=forged.timestamp,
            signature=forged.signature,
        )
        report = NeighborReport(reporter=honest[0], accused=accused.node_id, evidence=forged, time=1.0)
        judgement = network.identification.process_neighbor_report(report, now=1.0)
        assert judgement.identified is None

    def test_pollution_proof_chain_shifts_blame_to_polluter(self):
        """Figure 2(b): an honest node with a polluted successor list is cleared
        because its stored proof points at the malicious supplier."""
        network = make_network(seed=17)
        ring = network.ring
        honest = ring.honest_ids()
        malicious = ring.malicious_alive_ids()
        victim_x = honest[0]
        honest_p3 = ring.node(honest[1])
        polluter = ring.node(malicious[0])

        # The polluter signs a manipulated successor list that excludes X but
        # spans past it; the honest node adopted it during stabilization.
        space = ring.space
        far_nodes = sorted(
            (nid for nid in honest[2:12] if space.distance(polluter.node_id, nid) > space.distance(polluter.node_id, victim_x)),
            key=lambda nid: space.distance(polluter.node_id, nid),
        )[:4]
        if not far_nodes:
            pytest.skip("topology does not allow constructing the scenario for this seed")
        from repro.chord.successor_list import SignedSuccessorList

        payload_list = SignedSuccessorList(owner_id=polluter.node_id, nodes=tuple(far_nodes), timestamp=1.0)
        signature = polluter.keypair.sign(payload_list.payload())
        polluted_proof = SignedSuccessorList(
            owner_id=polluter.node_id, nodes=tuple(far_nodes), timestamp=1.0, signature=signature
        )
        honest_p3.store_successor_proof(polluted_proof)
        # P3's own (manipulated-by-pollution) list excludes X as well.
        honest_p3.successor_list.replace_all(far_nodes)

        evidence = honest_p3.signed_successor_list(now=2.0)
        report = NeighborReport(reporter=victim_x, accused=honest_p3.node_id, evidence=evidence, time=2.0)
        judgement = network.identification.process_neighbor_report(report, now=2.0)
        assert judgement.identified == polluter.node_id
        assert not judgement.is_false_positive

    def test_churned_node_during_investigation_not_convicted_first_time(self):
        network = make_network(seed=18)
        ring = network.ring
        honest = ring.honest_ids()
        accused = honest[3]
        ring.mark_dead(accused)
        evidence = ring.node(accused).signed_successor_list(now=1.0)
        report = NeighborReport(reporter=honest[0], accused=accused, evidence=evidence, time=1.0)
        judgement = network.identification.process_neighbor_report(report, now=1.0)
        assert judgement.identified is None
        # A second churn during investigation within the window convicts.
        judgement2 = network.identification.process_neighbor_report(report, now=2.0)
        assert judgement2.identified == accused
        ring.mark_alive(accused)

    def test_drop_report_with_all_receipts_is_false_alarm(self):
        network = make_network(seed=19)
        honest = network.ring.honest_ids()
        report = DropReport(
            reporter=honest[0],
            relays=tuple(honest[1:5]),
            receipts={nid: True for nid in honest[1:5]},
            time=1.0,
        )
        judgement = network.identification.process_drop_report(report, now=1.0)
        assert judgement.identified is None

    def test_stats_rates_consistent(self):
        network = make_network(seed=20)
        adversary = Adversary(network.ring, RandomSource(8), attack_rate=1.0)
        adversary.install_behavior(lambda adv, node: LookupBiasBehavior(adv, node))
        for i in range(6):
            network.run_surveillance_round(now=60.0 * (i + 1))
        stats = network.identification.stats
        assert 0.0 <= stats.false_positive_rate <= 1.0
        assert 0.0 <= stats.false_negative_rate <= 1.0
        assert 0.0 <= stats.false_alarm_rate <= 1.0
        assert stats.reports >= stats.identified_malicious + stats.identified_honest
