"""Engine-driven integration tests: the paper's periodic protocol schedule,
churn, and end-to-end behaviour of the OctopusNetwork facade."""

from __future__ import annotations

import pytest

from repro.attacks.adversary import Adversary
from repro.attacks.lookup_bias import LookupBiasBehavior
from repro.core.config import OctopusConfig, PAPER_EFFICIENCY_CONFIG, PAPER_SECURITY_CONFIG
from repro.core.octopus_node import OctopusNetwork
from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RandomSource


class TestOctopusConfig:
    def test_paper_configs_are_valid(self):
        PAPER_SECURITY_CONFIG.validate()
        PAPER_EFFICIENCY_CONFIG.validate()

    def test_scaled_for_updates_bound_checker_size(self):
        config = OctopusConfig().scaled_for(5000)
        assert config.expected_network_size == 5000

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            OctopusConfig(random_walk_phase_length=1).validate()
        with pytest.raises(ValueError):
            OctopusConfig(relay_pairs_per_lookup=0).validate()
        with pytest.raises(ValueError):
            OctopusConfig(dummy_queries=-1).validate()
        with pytest.raises(ValueError):
            OctopusConfig(stabilize_interval=0).validate()
        with pytest.raises(ValueError):
            OctopusConfig(concurrent_lookup_rate=2.0).validate()


class TestScheduledProtocols:
    def _network(self, seed=31, n=70, f=0.2):
        return OctopusNetwork.create(
            n_nodes=n, fraction_malicious=f, seed=seed, config=OctopusConfig(expected_network_size=n), id_bits=24
        )

    def test_scheduled_protocols_run_and_keep_ring_consistent(self):
        network = self._network(f=0.0, n=50)
        engine = SimulationEngine()
        network.schedule_protocols(engine, include_lookups=True)
        engine.run(until=120.0)
        assert engine.events_processed > 0
        # Maintenance kept the successor invariant intact.
        alive = network.ring.alive_ids_sorted()
        for idx, nid in enumerate(alive):
            node = network.ring.node(nid)
            assert node.successor == alive[(idx + 1) % len(alive)]

    def test_scheduled_surveillance_removes_attackers(self):
        network = self._network(seed=33)
        adversary = Adversary(network.ring, RandomSource(1), attack_rate=1.0)
        adversary.install_behavior(lambda adv, node: LookupBiasBehavior(adv, node))
        engine = SimulationEngine()
        network.schedule_protocols(engine, include_lookups=True)
        engine.run(until=240.0)
        assert network.remaining_malicious_fraction() < 0.1
        assert network.identification.stats.false_positive_rate <= 0.05

    def test_churned_nodes_resume_after_rejoin(self):
        network = self._network(f=0.0, n=50, seed=35)
        engine = SimulationEngine()
        network.schedule_protocols(engine)
        churn = ChurnProcess(
            engine,
            ChurnConfig(mean_lifetime_seconds=60.0, mean_downtime_seconds=10.0),
            RandomSource(3),
            on_leave=network.ring.mark_dead,
            on_join=lambda nid: network.ring.mark_alive(nid, now=engine.now),
        )
        churn.start(list(network.ring.nodes))
        engine.run(until=200.0)
        # The network keeps a healthy majority of nodes alive and lookups work.
        alive = network.ring.alive_ids_sorted()
        assert len(alive) > 0.5 * len(network.ring)
        # Routing state right after heavy churn can be partially stale, so a
        # single lookup may fail; across a handful of attempts at least one
        # must complete.
        rng = RandomSource(9).stream("k")
        successes = 0
        for _ in range(5):
            initiator = network.random_honest_node()
            result = network.lookup(initiator, network.ring.random_key(rng), now=engine.now)
            successes += 1 if result.succeeded else 0
        assert successes >= 1

    def test_lookup_correct_after_long_schedule(self):
        network = self._network(f=0.0, n=60, seed=37)
        engine = SimulationEngine()
        network.schedule_protocols(engine, include_lookups=False)
        engine.run(until=180.0)
        rng = RandomSource(5).stream("k")
        correct = 0
        for _ in range(10):
            initiator = network.random_honest_node()
            key = network.ring.random_key(rng)
            if network.lookup(initiator, key, now=engine.now).correct:
                correct += 1
        assert correct >= 9
