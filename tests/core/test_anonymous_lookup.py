"""Tests for the Octopus anonymous multi-path lookup."""

from __future__ import annotations

import pytest

from repro.attacks.adversary import Adversary
from repro.attacks.lookup_bias import LookupBiasBehavior
from repro.core.config import OctopusConfig
from repro.core.octopus_node import OctopusNetwork
from repro.sim.latency import ConstantLatencyModel
from repro.sim.rng import RandomSource


class TestAnonymousLookupCorrectness:
    def test_lookups_correct_without_attack(self, honest_network):
        rng = RandomSource(1).stream("keys")
        correct = 0
        total = 25
        for _ in range(total):
            initiator = honest_network.random_honest_node()
            key = honest_network.ring.random_key(rng)
            result = honest_network.lookup(initiator, key)
            if result.correct:
                correct += 1
        assert correct >= total - 1  # allow at most one relay-selection failure

    def test_lookup_by_string_key(self, honest_network):
        initiator = honest_network.random_honest_node()
        handle = honest_network.node(initiator)
        result = handle.lookup_key("some-application-object")
        assert result.succeeded
        assert result.result == honest_network.ring.true_successor(
            honest_network.key_for("some-application-object")
        )

    def test_lookup_uses_separate_relay_pairs_per_query(self, honest_network):
        initiator = honest_network.random_honest_node()
        key = honest_network.ring.random_key(RandomSource(2).stream("k"))
        result = honest_network.lookup(initiator, key)
        assert len(result.query_pairs) >= 1
        assert result.first_pair is not None

    def test_dummy_queries_sent(self, honest_network):
        initiator = honest_network.random_honest_node()
        key = honest_network.ring.random_key(RandomSource(3).stream("k"))
        result = honest_network.lookup(initiator, key)
        assert len(result.dummy_targets) == honest_network.config.dummy_queries
        dummy_obs = [o for o in result.observations if o.is_dummy]
        assert len(dummy_obs) == honest_network.config.dummy_queries

    def test_no_dummies_when_disabled(self, honest_network):
        initiator = honest_network.random_honest_node()
        key = honest_network.ring.random_key(RandomSource(4).stream("k"))
        result = honest_network.lookup(initiator, key, with_dummies=False)
        assert result.dummy_targets == []

    def test_latency_recorded_with_latency_model(self):
        network = OctopusNetwork.create(
            n_nodes=60,
            fraction_malicious=0.0,
            seed=21,
            config=OctopusConfig(expected_network_size=60),
            id_bits=24,
            latency_model=ConstantLatencyModel(0.005),
        )
        initiator = network.random_honest_node()
        key = network.ring.random_key(RandomSource(5).stream("k"))
        result = network.lookup(initiator, key)
        assert result.latency > 0.0

    def test_messages_counted(self, honest_network):
        initiator = honest_network.random_honest_node()
        key = honest_network.ring.random_key(RandomSource(6).stream("k"))
        result = honest_network.lookup(initiator, key)
        assert result.messages_sent >= result.hops + len(result.dummy_targets)

    def test_unknown_initiator_rejected(self, honest_network):
        with pytest.raises(KeyError):
            honest_network.lookup(123456789, 42)

    def test_observations_cover_all_queries(self, honest_network):
        initiator = honest_network.random_honest_node()
        key = honest_network.ring.random_key(RandomSource(7).stream("k"))
        result = honest_network.lookup(initiator, key)
        # One observation per non-dropped query (real + dummy).
        assert len(result.observations) == result.hops + len(result.dummy_targets)

    def test_key_never_disclosed_to_queried_nodes(self, honest_network):
        """Octopus conceals the key: queried nodes return whole tables and the
        protocol never asks them anything key-specific, so the adversary's only
        key-related signal is which nodes were queried (range estimation)."""
        initiator = honest_network.random_honest_node()
        key = honest_network.ring.random_key(RandomSource(8).stream("k"))
        result = honest_network.lookup(initiator, key)
        for queried in result.path:
            node = honest_network.ring.node(queried)
            # Nodes only ever answered whole-table requests.
            assert node.stats.queries_answered >= 1


class TestAnonymousLookupUnderAttack:
    def test_bias_attack_causes_wrong_results(self, small_network):
        adversary = Adversary(small_network.ring, RandomSource(11), attack_rate=1.0)
        adversary.install_behavior(lambda adv, node: LookupBiasBehavior(adv, node))
        rng = RandomSource(12).stream("keys")
        wrong = 0
        for _ in range(20):
            initiator = small_network.random_honest_node()
            key = small_network.ring.random_key(rng)
            result = small_network.lookup(initiator, key)
            if result.succeeded and not result.correct:
                wrong += 1
        adversary.reset_behaviors()
        assert wrong >= 1  # at least some lookups were successfully biased

    def test_malicious_queried_nodes_tracked(self, small_network):
        rng = RandomSource(13).stream("keys")
        observed = False
        for _ in range(15):
            initiator = small_network.random_honest_node()
            key = small_network.ring.random_key(rng)
            result = small_network.lookup(initiator, key)
            if result.malicious_queried:
                observed = True
                assert all(small_network.ring.is_malicious(n) for n in result.malicious_queried)
        assert observed

    def test_summary_reports_consistent_state(self, small_network):
        summary = small_network.summary()
        assert summary["n_nodes"] == len(small_network.ring)
        assert 0.0 <= summary["malicious_remaining_fraction"] <= 1.0
        assert summary["false_positive_rate"] == 0.0
