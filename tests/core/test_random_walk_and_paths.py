"""Tests for the two-phase random walk and anonymous paths."""

from __future__ import annotations


from repro.attacks.adversary import Adversary
from repro.attacks.fingertable_manipulation import FingertableManipulationBehavior
from repro.attacks.selective_dos import SelectiveDosBehavior
from repro.core.anonymous_path import AnonymousPath
from repro.core.random_walk import RandomWalkProtocol, RelayPair
from repro.sim.latency import ConstantLatencyModel
from repro.sim.rng import RandomSource


class TestRandomWalk:
    def _walker(self, network, **overrides):
        cfg = network.config
        return RandomWalkProtocol(network.ring, cfg, RandomSource(77), **overrides)

    def test_walk_succeeds_and_selects_two_distinct_relays(self, honest_network):
        walker = self._walker(honest_network)
        initiator = honest_network.random_honest_node()
        result = walker.perform(initiator)
        assert result.succeeded
        assert result.relay_pair is not None
        assert result.relay_pair.first != result.relay_pair.second

    def test_walk_visits_two_phases_of_hops(self, honest_network):
        walker = self._walker(honest_network)
        initiator = honest_network.random_honest_node()
        result = walker.perform(initiator)
        l = honest_network.config.random_walk_phase_length
        assert len(result.hops) >= 2 * l

    def test_walk_buffers_fingertables_at_initiator(self, honest_network):
        initiator = honest_network.random_honest_node()
        node = honest_network.ring.node(initiator)
        node.buffered_fingertables.clear()
        walker = self._walker(honest_network)
        result = walker.perform(initiator)
        assert result.succeeded
        assert len(node.buffered_fingertables) >= 1

    def test_walk_relays_are_alive_nodes(self, honest_network):
        walker = self._walker(honest_network)
        initiator = honest_network.random_honest_node()
        result = walker.perform(initiator)
        for relay in result.relay_pair.as_tuple():
            assert honest_network.ring.node(relay).alive

    def test_dead_initiator_fails(self, honest_network):
        walker = self._walker(honest_network)
        initiator = honest_network.random_honest_node()
        honest_network.ring.mark_dead(initiator)
        result = walker.perform(initiator)
        assert not result.succeeded
        honest_network.ring.mark_alive(initiator)

    def test_malicious_hops_recorded(self, small_network):
        walker = self._walker(small_network)
        found = False
        for seed in range(15):
            initiator = small_network.random_honest_node()
            result = walker.perform(initiator)
            if result.succeeded and result.malicious_hops:
                found = True
                assert all(small_network.ring.is_malicious(h) for h in result.malicious_hops)
        assert found

    def test_bound_check_failures_trigger_restart(self, small_network):
        """Manipulated tables that fail bound checks cause walk restarts, not crashes."""
        adversary = Adversary(small_network.ring, RandomSource(1), attack_rate=1.0)
        adversary.install_behavior(
            lambda adv, node: FingertableManipulationBehavior(adv, node, fingers_to_manipulate=12)
        )
        walker = self._walker(small_network)
        completed = 0
        for _ in range(10):
            initiator = small_network.random_honest_node()
            result = walker.perform(initiator)
            completed += 1 if result.succeeded else 0
            assert result.restarts >= 0
        adversary.reset_behaviors()
        assert completed >= 1


class TestAnonymousPath:
    def _path(self, network, initiator, latency_model=None):
        ring = network.ring
        rng = RandomSource(9)
        stream = rng.stream("relays")
        others = [nid for nid in ring.alive_ids_sorted() if nid != initiator]
        relays = stream.sample(others, 4)
        first = RelayPair(first=relays[0], second=relays[1])
        second = RelayPair(first=relays[2], second=relays[3])
        return AnonymousPath(
            ring, initiator, first, second, network.config, rng, latency_model=latency_model
        ), relays

    def test_query_returns_routing_table(self, honest_network):
        initiator = honest_network.random_honest_node()
        path, relays = self._path(honest_network, initiator)
        target = next(nid for nid in honest_network.ring.alive_ids_sorted() if nid not in relays + [initiator])
        result = path.send_query(target)
        assert not result.dropped
        assert result.table is not None
        assert result.table.owner_id == target

    def test_queried_node_sees_exit_relay_not_initiator(self, honest_network):
        initiator = honest_network.random_honest_node()
        path, relays = self._path(honest_network, initiator)
        assert path.exit_relay == relays[3]

    def test_latency_accumulates_over_hops(self, honest_network):
        initiator = honest_network.random_honest_node()
        path, relays = self._path(honest_network, initiator, latency_model=ConstantLatencyModel(0.01))
        target = next(nid for nid in honest_network.ring.alive_ids_sorted() if nid not in relays + [initiator])
        result = path.send_query(target)
        # 5 forward hops + 5 return hops at 10 ms each, plus the relay delay at B.
        assert result.latency >= 0.10

    def test_onion_structure_matches_relays(self, honest_network):
        initiator = honest_network.random_honest_node()
        path, relays = self._path(honest_network, initiator)
        onion = path.build_onion(queried_node=relays[0], payload={"q": 1})
        from repro.crypto.onion import derive_layer_key

        layer = onion.peel(derive_layer_key(initiator, 0))
        assert layer.next_hop == relays[1]

    def test_dead_relay_drops_query(self, honest_network):
        initiator = honest_network.random_honest_node()
        path, relays = self._path(honest_network, initiator)
        honest_network.ring.mark_dead(relays[2])
        target = next(nid for nid in honest_network.ring.alive_ids_sorted() if nid not in relays + [initiator])
        result = path.send_query(target)
        assert result.dropped
        honest_network.ring.mark_alive(relays[2])

    def test_selective_dos_relay_drops_and_is_identified_as_culprit(self, small_network):
        adversary = Adversary(small_network.ring, RandomSource(2), attack_rate=1.0)
        initiator = small_network.random_honest_node()
        ring = small_network.ring
        honest = [nid for nid in ring.honest_ids() if nid != initiator]
        malicious = ring.malicious_alive_ids()
        relays = [honest[0], honest[1], malicious[0], honest[2]]
        adversary.install_behavior(lambda adv, node: SelectiveDosBehavior(adv, node), node_ids=[malicious[0]])
        path = AnonymousPath(
            ring,
            initiator,
            RelayPair(relays[0], relays[1]),
            RelayPair(relays[2], relays[3]),
            small_network.config,
            RandomSource(3),
        )
        target = honest[5]
        result = path.send_query(target, purpose="anonymous-lookup")
        assert result.dropped
        assert result.drop_culprit == malicious[0]
        adversary.reset_behaviors()

    def test_observation_flags_consistent(self, small_network):
        ring = small_network.ring
        initiator = small_network.random_honest_node()
        malicious = ring.malicious_alive_ids()
        honest = [nid for nid in ring.honest_ids() if nid != initiator]
        # Malicious A and C_i, honest B and D_i, honest queried node:
        path = AnonymousPath(
            ring,
            initiator,
            RelayPair(malicious[0], honest[0]),
            RelayPair(malicious[1], honest[1]),
            small_network.config,
            RandomSource(5),
        )
        result = path.send_query(honest[6], purpose="anonymous-lookup")
        obs = result.observation
        assert obs is not None
        # Queried node and exit relay honest -> not observed, hence not linkable.
        assert not obs.observed
        assert not obs.linkable_to_initiator

    def test_observed_when_exit_relay_malicious(self, small_network):
        ring = small_network.ring
        initiator = small_network.random_honest_node()
        malicious = ring.malicious_alive_ids()
        honest = [nid for nid in ring.honest_ids() if nid != initiator]
        path = AnonymousPath(
            ring,
            initiator,
            RelayPair(honest[0], honest[1]),
            RelayPair(honest[2], malicious[0]),
            small_network.config,
            RandomSource(6),
        )
        result = path.send_query(honest[7], purpose="anonymous-lookup")
        assert result.observation.observed
        # Entry relay honest -> cannot be linked back to the initiator.
        assert not result.observation.linkable_to_initiator

    def test_linkable_when_entry_and_query_relay_malicious(self, small_network):
        ring = small_network.ring
        initiator = small_network.random_honest_node()
        malicious = ring.malicious_alive_ids()
        honest = [nid for nid in ring.honest_ids() if nid != initiator]
        path = AnonymousPath(
            ring,
            initiator,
            RelayPair(malicious[0], honest[0]),
            RelayPair(malicious[1], malicious[2]),
            small_network.config,
            RandomSource(7),
        )
        result = path.send_query(honest[8], purpose="anonymous-lookup")
        assert result.observation.observed
        assert result.observation.linkable_to_initiator
        assert result.observation.linkable_to_b
