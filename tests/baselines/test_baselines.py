"""Tests for the comparison lookups: Chord, Halo, NISAN and Torsk."""

from __future__ import annotations

import pytest

from repro.baselines.chord_lookup import ChordLookupProtocol
from repro.baselines.halo import HaloLookupProtocol
from repro.baselines.nisan import NisanLookupProtocol
from repro.baselines.torsk import TorskLookupProtocol
from repro.sim.latency import ConstantLatencyModel
from repro.sim.rng import RandomSource


@pytest.fixture
def latency():
    return ConstantLatencyModel(0.010)


def sample_workload(ring, n, seed=1):
    rng = RandomSource(seed).stream("w")
    return [(ring.random_alive_id(rng), ring.random_key(rng)) for _ in range(n)]


class TestChordBaseline:
    def test_correct_lookups_on_honest_ring(self, honest_ring, latency):
        chord = ChordLookupProtocol(honest_ring, latency_model=latency)
        for initiator, key in sample_workload(honest_ring, 20):
            result = chord.lookup(initiator, key)
            assert result.correct
            assert result.latency > 0.0
            assert result.bytes_sent > 0

    def test_latency_proportional_to_hops(self, honest_ring, latency):
        chord = ChordLookupProtocol(honest_ring, latency_model=latency)
        for initiator, key in sample_workload(honest_ring, 10, seed=2):
            result = chord.lookup(initiator, key)
            assert result.latency == pytest.approx(result.lookup.hops * 2 * 0.010, rel=0.01)

    def test_maintenance_bytes_positive(self, honest_ring):
        chord = ChordLookupProtocol(honest_ring)
        assert chord.maintenance_bytes_per_interval() > 0


class TestHaloBaseline:
    def test_correct_on_honest_ring(self, honest_ring, latency):
        halo = HaloLookupProtocol(honest_ring, redundancy=4, sub_redundancy=2, latency_model=latency)
        for initiator, key in sample_workload(honest_ring, 10, seed=3):
            result = halo.lookup(initiator, key)
            assert result.correct

    def test_halo_slower_and_heavier_than_chord(self, honest_ring, latency):
        chord = ChordLookupProtocol(honest_ring, latency_model=latency, rng=RandomSource(4))
        halo = HaloLookupProtocol(honest_ring, latency_model=latency, rng=RandomSource(4))
        chord_lat, halo_lat, chord_bytes, halo_bytes = 0.0, 0.0, 0, 0
        for initiator, key in sample_workload(honest_ring, 10, seed=5):
            c = chord.lookup(initiator, key)
            h = halo.lookup(initiator, key)
            chord_lat += c.latency
            halo_lat += h.latency
            chord_bytes += c.bytes_sent
            halo_bytes += h.bytes_sent
        assert halo_lat > chord_lat
        assert halo_bytes > chord_bytes

    def test_majority_tolerates_some_bias(self, small_ring, latency):
        from repro.attacks.adversary import Adversary
        from repro.attacks.lookup_bias import LookupBiasBehavior

        adversary = Adversary(small_ring, RandomSource(6), attack_rate=1.0)
        adversary.install_behavior(lambda adv, node: LookupBiasBehavior(adv, node))
        halo = HaloLookupProtocol(small_ring, latency_model=latency, rng=RandomSource(7))
        chord = ChordLookupProtocol(small_ring, latency_model=latency, rng=RandomSource(7))
        halo_correct = chord_correct = 0
        workload = sample_workload(small_ring, 25, seed=8)
        for initiator, key in workload:
            if small_ring.is_malicious(initiator):
                continue
            halo_correct += 1 if halo.lookup(initiator, key).correct else 0
            chord_correct += 1 if chord.lookup(initiator, key).correct else 0
        adversary.reset_behaviors()
        assert halo_correct >= chord_correct

    def test_invalid_redundancy_rejected(self, honest_ring):
        with pytest.raises(ValueError):
            HaloLookupProtocol(honest_ring, redundancy=0)


class TestNisanBaseline:
    def test_correct_on_honest_ring(self, honest_ring, latency):
        nisan = NisanLookupProtocol(honest_ring, latency_model=latency)
        for initiator, key in sample_workload(honest_ring, 15, seed=9):
            result = nisan.lookup(initiator, key)
            assert result.correct

    def test_queries_whole_tables_so_bytes_exceed_chord(self, honest_ring, latency):
        nisan = NisanLookupProtocol(honest_ring, latency_model=latency)
        chord = ChordLookupProtocol(honest_ring, latency_model=latency)
        nisan_bytes = chord_bytes = 0
        for initiator, key in sample_workload(honest_ring, 10, seed=10):
            nisan_bytes += nisan.lookup(initiator, key).bytes_sent
            chord_bytes += chord.lookup(initiator, key).bytes_sent
        assert nisan_bytes > chord_bytes

    def test_redundancy_validation(self, honest_ring):
        with pytest.raises(ValueError):
            NisanLookupProtocol(honest_ring, redundancy=0)


class TestTorskBaseline:
    def test_correct_on_honest_ring(self, honest_ring, latency):
        torsk = TorskLookupProtocol(honest_ring, latency_model=latency)
        correct = 0
        workload = sample_workload(honest_ring, 20, seed=11)
        for initiator, key in workload:
            result = torsk.lookup(initiator, key)
            if result.correct:
                correct += 1
        assert correct >= len(workload) - 2  # buddy selection may rarely fail

    def test_buddy_is_not_initiator(self, honest_ring, latency):
        torsk = TorskLookupProtocol(honest_ring, latency_model=latency)
        for initiator, key in sample_workload(honest_ring, 10, seed=12):
            result = torsk.lookup(initiator, key)
            assert result.buddy is None or result.buddy != initiator

    def test_initiator_exposure_tracks_malicious_walk(self, small_ring, latency):
        torsk = TorskLookupProtocol(small_ring, latency_model=latency, rng=RandomSource(13))
        exposed = 0
        total = 0
        for initiator, key in sample_workload(small_ring, 30, seed=14):
            if small_ring.is_malicious(initiator):
                continue
            result = torsk.lookup(initiator, key)
            total += 1
            exposed += 1 if result.initiator_exposed else 0
        assert total > 0
        # With 25% malicious nodes some but not all walks are exposed.
        assert 0 < exposed < total

    def test_walk_length_validation(self, honest_ring):
        with pytest.raises(ValueError):
            TorskLookupProtocol(honest_ring, walk_length=0)
