"""Tests for finger tables, neighbor lists, routing-table snapshots and bound checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.fingertable import FingerTable
from repro.chord.idspace import IdSpace
from repro.chord.node import ChordNode
from repro.chord.routing_table import BoundChecker, RoutingTableSnapshot
from repro.chord.successor_list import NeighborList
from repro.crypto.keys import verify

SPACE = IdSpace(bits=16)


class TestFingerTable:
    def test_ideal_ids_cover_longest_ranges(self):
        table = FingerTable(owner_id=100, space=SPACE, size=5)
        # With 5 fingers in a 16-bit space the ideals are owner + 2^11 .. 2^15.
        assert [table.ideal_id(i) for i in range(5)] == [100 + (1 << e) for e in range(11, 16)]

    def test_fill_from_sorted_ids(self):
        table = FingerTable(owner_id=0, space=SPACE, size=8)
        ids = [10, 50, 200, 5000, 40000]
        table.fill_from(sorted(ids))
        assert table.get(0) == 5000    # ideal 256 -> successor 5000
        assert table.get(4) == 5000    # ideal 4096 -> successor 5000
        assert table.get(5) == 40000   # ideal 8192 -> successor 40000
        assert table.get(7) == 40000   # ideal 32768 -> successor 40000

    def test_fill_from_empty_rejected(self):
        table = FingerTable(owner_id=0, space=SPACE, size=4)
        with pytest.raises(ValueError):
            table.fill_from([])

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            FingerTable(owner_id=0, space=SPACE, size=0)
        with pytest.raises(ValueError):
            FingerTable(owner_id=0, space=SPACE, size=SPACE.bits + 1)

    def test_replace_node(self):
        table = FingerTable(owner_id=0, space=SPACE, size=4)
        for i in range(4):
            table.set(i, 77)
        assert table.replace_node(77, 88) == 4
        assert table.nodes() == [88]

    def test_nodes_deduplicated_in_order(self):
        table = FingerTable(owner_id=0, space=SPACE, size=4)
        table.set(0, 5)
        table.set(1, 5)
        table.set(2, 9)
        assert table.nodes() == [5, 9]

    def test_closest_preceding(self):
        table = FingerTable(owner_id=0, space=SPACE, size=8)
        table.set(0, 10)
        table.set(1, 50)
        table.set(2, 200)
        table.set(3, 5000)
        assert table.closest_preceding(key=300) == 200
        assert table.closest_preceding(key=300, exclude={200}) == 50

    def test_copy_is_independent(self):
        table = FingerTable(owner_id=0, space=SPACE, size=4)
        table.set(0, 1)
        clone = table.copy()
        clone.set(0, 2)
        assert table.get(0) == 1


class TestNeighborList:
    def test_successor_ordering(self):
        lst = NeighborList(owner_id=100, space=SPACE, capacity=3, direction=+1)
        lst.update([500, 200, 300])
        assert lst.nodes == [200, 300, 500]
        assert lst.first() == 200

    def test_predecessor_ordering(self):
        lst = NeighborList(owner_id=100, space=SPACE, capacity=3, direction=-1)
        lst.update([50, 90, 10])
        assert lst.nodes == [90, 50, 10]

    def test_capacity_keeps_closest(self):
        lst = NeighborList(owner_id=0, space=SPACE, capacity=2, direction=+1)
        lst.update([30, 10, 20])
        assert lst.nodes == [10, 20]

    def test_owner_and_duplicates_not_added(self):
        lst = NeighborList(owner_id=5, space=SPACE, capacity=4)
        assert not lst.add(5)
        assert lst.add(7)
        assert not lst.add(7)
        assert len(lst) == 1

    def test_wraparound_ordering(self):
        lst = NeighborList(owner_id=SPACE.size - 5, space=SPACE, capacity=3, direction=+1)
        lst.update([3, SPACE.size - 2, 10])
        assert lst.nodes == [SPACE.size - 2, 3, 10]

    def test_remove_and_replace_all(self):
        lst = NeighborList(owner_id=0, space=SPACE, capacity=4)
        lst.update([1, 2, 3])
        assert lst.remove(2)
        assert not lst.remove(2)
        lst.replace_all([9, 8])
        assert lst.nodes == [8, 9]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NeighborList(owner_id=0, space=SPACE, capacity=0)
        with pytest.raises(ValueError):
            NeighborList(owner_id=0, space=SPACE, capacity=2, direction=0)

    @given(st.sets(st.integers(min_value=1, max_value=SPACE.size - 1), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_nodes_always_sorted_by_distance(self, candidates):
        lst = NeighborList(owner_id=0, space=SPACE, capacity=6, direction=+1)
        lst.update(candidates)
        distances = [SPACE.distance(0, n) for n in lst.nodes]
        assert distances == sorted(distances)
        assert len(lst) <= 6


class TestSnapshotsAndSigning:
    def test_snapshot_is_signed_and_verifiable(self):
        node = ChordNode(1234, SPACE, finger_count=6)
        node.finger_table.fill_from([2000, 3000, 40000])
        node.successor_list.update([2000, 3000])
        snap = node.snapshot(now=5.0)
        assert snap.signature is not None
        assert verify(node.keypair.public_key, snap.payload(), snap.signature)

    def test_tampered_snapshot_fails_verification(self):
        node = ChordNode(1234, SPACE, finger_count=6)
        node.successor_list.update([2000])
        snap = node.snapshot(now=5.0)
        forged = RoutingTableSnapshot(
            owner_id=snap.owner_id,
            fingers=snap.fingers,
            successors=(9999,),
            predecessors=snap.predecessors,
            timestamp=snap.timestamp,
            signature=snap.signature,
        )
        assert not verify(node.keypair.public_key, forged.payload(), forged.signature)

    def test_signed_successor_list_verifiable(self):
        node = ChordNode(77, SPACE)
        node.successor_list.update([100, 200])
        signed = node.signed_successor_list(now=1.0)
        assert verify(node.keypair.public_key, signed.payload(), signed.signature)
        assert signed.contains(100)

    def test_snapshot_all_nodes_and_entry_count(self):
        node = ChordNode(0, SPACE, finger_count=6)
        node.finger_table.fill_from([10, 20])
        node.successor_list.update([10, 30])
        snap = node.snapshot()
        # Every long-range ideal wraps around past 20, so all fingers point to 10.
        assert set(snap.all_nodes()) == {10, 30}
        assert snap.entry_count() == len(snap.fingers) + len(snap.successors)

    def test_closest_preceding_on_snapshot(self):
        node = ChordNode(0, SPACE, finger_count=8)
        node.finger_table.fill_from([10, 100, 1000])
        node.successor_list.update([10])
        snap = node.snapshot()
        # Fingers resolve to {1000, 10}; the closest node preceding 2000 is 1000.
        assert snap.closest_preceding(2000, SPACE) == 1000


class TestBoundChecker:
    def _snapshot(self, owner, fingers, successors):
        return RoutingTableSnapshot(owner_id=owner, fingers=tuple(fingers), successors=tuple(successors))

    def test_accepts_plausible_table(self):
        checker = BoundChecker(SPACE, expected_network_size=64, tolerance_factor=8.0)
        gap = SPACE.size // 64
        fingers = [(100 + (1 << i), 100 + (1 << i) + gap // 2) for i in range(4, 10)]
        successors = [100 + gap // 2, 100 + gap, 100 + 2 * gap]
        assert checker.check(self._snapshot(100, fingers, successors)).passed

    def test_rejects_far_finger(self):
        checker = BoundChecker(SPACE, expected_network_size=64, tolerance_factor=4.0)
        ideal = 2000
        bogus = (ideal + SPACE.size // 2) % SPACE.size
        result = checker.check(self._snapshot(100, [(ideal, bogus)], [150]))
        assert not result.passed
        assert any("finger" in v for v in result.violations)

    def test_rejects_unordered_successor_list(self):
        checker = BoundChecker(SPACE, expected_network_size=64)
        result = checker.check(self._snapshot(100, [], [300, 200]))
        assert not result.passed

    def test_rejects_overstretched_successor_list(self):
        checker = BoundChecker(SPACE, expected_network_size=1024, tolerance_factor=2.0)
        far = [(100 + (i + 1) * SPACE.size // 8) % SPACE.size for i in range(4)]
        result = checker.check(self._snapshot(100, [], sorted(far, key=lambda x: SPACE.distance(100, x))))
        assert not result.passed

    def test_requires_at_least_two_nodes(self):
        with pytest.raises(ValueError):
            BoundChecker(SPACE, expected_network_size=1)
