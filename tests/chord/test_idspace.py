"""Tests and property-based tests for identifier-space arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.idspace import IdSpace, closest_preceding, predecessor_of, successor_of

SPACE = IdSpace(bits=16)
ids_strategy = st.integers(min_value=0, max_value=SPACE.size - 1)


class TestIdSpaceBasics:
    def test_size(self):
        assert IdSpace(bits=8).size == 256

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            IdSpace(bits=1)
        with pytest.raises(ValueError):
            IdSpace(bits=1000)

    def test_normalize_wraps(self):
        assert SPACE.normalize(SPACE.size + 5) == 5
        assert SPACE.normalize(-1) == SPACE.size - 1

    def test_hash_key_deterministic_and_in_range(self):
        a = SPACE.hash_key("hello")
        assert a == SPACE.hash_key("hello")
        assert 0 <= a < SPACE.size
        assert SPACE.hash_key("hello") != SPACE.hash_key("world")

    def test_distance_clockwise(self):
        assert SPACE.distance(10, 20) == 10
        assert SPACE.distance(20, 10) == SPACE.size - 10
        assert SPACE.distance(5, 5) == 0

    def test_ideal_fingers(self):
        fingers = SPACE.ideal_fingers(0, count=4)
        assert fingers == [1, 2, 4, 8]

    def test_ideal_finger_wraps(self):
        assert SPACE.ideal_finger(SPACE.size - 1, 0) == 0

    def test_ideal_finger_out_of_range(self):
        with pytest.raises(ValueError):
            SPACE.ideal_finger(0, SPACE.bits)


class TestIntervals:
    def test_simple_interval(self):
        assert SPACE.in_interval(5, 1, 10)
        assert not SPACE.in_interval(15, 1, 10)

    def test_wraparound_interval(self):
        start, end = SPACE.size - 10, 10
        assert SPACE.in_interval(SPACE.size - 5, start, end)
        assert SPACE.in_interval(5, start, end)
        assert not SPACE.in_interval(100, start, end)

    def test_endpoints_exclusive_by_default(self):
        assert not SPACE.in_interval(1, 1, 10)
        assert not SPACE.in_interval(10, 1, 10)

    def test_inclusive_endpoints(self):
        assert SPACE.in_interval(1, 1, 10, inclusive_start=True)
        assert SPACE.in_interval(10, 1, 10, inclusive_end=True)

    def test_degenerate_interval_is_whole_ring(self):
        assert SPACE.in_interval(500, 7, 7)
        assert not SPACE.in_interval(7, 7, 7)
        assert SPACE.in_interval(7, 7, 7, inclusive_start=True)

    @given(ident=ids_strategy, start=ids_strategy, end=ids_strategy)
    @settings(max_examples=200, deadline=None)
    def test_interval_membership_matches_distance_definition(self, ident, start, end):
        """x in (start, end) iff 0 < dist(start, x) < dist(start, end) (non-degenerate)."""
        if start == end:
            return
        expected = 0 < SPACE.distance(start, ident) < SPACE.distance(start, end)
        assert SPACE.in_interval(ident, start, end) == expected

    @given(a=ids_strategy, b=ids_strategy)
    @settings(max_examples=200, deadline=None)
    def test_distance_antisymmetry(self, a, b):
        d_ab = SPACE.distance(a, b)
        d_ba = SPACE.distance(b, a)
        if a == b:
            assert d_ab == d_ba == 0
        else:
            assert d_ab + d_ba == SPACE.size


class TestSelectionHelpers:
    def test_successor_of(self):
        ids = [10, 20, 30]
        assert successor_of(ids, 15, SPACE) == 20
        assert successor_of(ids, 20, SPACE) == 20
        assert successor_of(ids, 35, SPACE) == 10  # wraps

    def test_predecessor_of(self):
        ids = [10, 20, 30]
        assert predecessor_of(ids, 15, SPACE) == 10
        assert predecessor_of(ids, 10, SPACE) == 30  # strict predecessor wraps
        assert predecessor_of(ids, 5, SPACE) == 30

    def test_empty_sequences_rejected(self):
        with pytest.raises(ValueError):
            successor_of([], 5, SPACE)
        with pytest.raises(ValueError):
            predecessor_of([], 5, SPACE)

    def test_closest_preceding(self):
        ids = [10, 20, 30, 40]
        assert closest_preceding(ids, key=35, node_id=5, space=SPACE) == 30
        assert closest_preceding(ids, key=8, node_id=5, space=SPACE) is None

    @given(id_set=st.sets(ids_strategy, min_size=1, max_size=30), key=ids_strategy)
    @settings(max_examples=100, deadline=None)
    def test_successor_is_closest_clockwise(self, id_set, key):
        ids = sorted(id_set)
        succ = successor_of(ids, key, SPACE)
        d = SPACE.distance(key, succ)
        assert all(SPACE.distance(key, other) >= d for other in ids)

    @given(id_set=st.sets(ids_strategy, min_size=2, max_size=30), key=ids_strategy, node=ids_strategy)
    @settings(max_examples=100, deadline=None)
    def test_closest_preceding_is_in_interval(self, id_set, key, node):
        ids = sorted(id_set)
        result = closest_preceding(ids, key, node, SPACE)
        if result is not None:
            assert SPACE.in_interval(result, node, key)
