"""Tests for ring construction, ground truth, stabilization and lookups."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.chord.lookup import iterative_lookup, oracle_query_path
from repro.chord.ring import ChordRing, RingConfig
from repro.chord.stabilization import Stabilizer
from repro.sim.rng import RandomSource


def build_ring(n=64, f=0.0, seed=1, bits=20):
    config = RingConfig(n_nodes=n, fraction_malicious=f, finger_count=10, id_bits=bits, seed=seed)
    return ChordRing.build(config=config, rng=RandomSource(seed))


class TestRingConstruction:
    def test_builds_requested_number_of_nodes(self):
        ring = build_ring(n=50)
        assert len(ring) == 50
        assert len(ring.alive_ids_sorted()) == 50

    def test_malicious_fraction(self):
        ring = build_ring(n=100, f=0.2)
        assert len(ring.malicious_ids) == 20
        assert abs(ring.fraction_malicious_alive() - 0.2) < 1e-9

    def test_ids_are_unique_and_sorted(self):
        ring = build_ring(n=80)
        ids = ring.all_ids()
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_initial_routing_state_is_correct(self, small_ring):
        alive = small_ring.alive_ids_sorted()
        for node in small_ring.alive_nodes():
            # First successor must be the next node clockwise.
            idx = alive.index(node.node_id)
            expected_succ = alive[(idx + 1) % len(alive)]
            assert node.successor == expected_succ
            expected_pred = alive[(idx - 1) % len(alive)]
            assert node.predecessor == expected_pred

    def test_initial_fingers_point_to_true_successors(self, small_ring):
        for node in small_ring.alive_nodes():
            for entry in node.finger_table.entries:
                assert entry.node_id == small_ring.true_successor(entry.ideal_id)

    def test_certificates_issued_when_ca_provided(self):
        from repro.crypto.ca import CertificateAuthority

        ca = CertificateAuthority(seed=0)
        config = RingConfig(n_nodes=20, id_bits=20, seed=2)
        ring = ChordRing.build(config=config, rng=RandomSource(2), ca=ca)
        for node in ring.alive_nodes():
            assert node.certificate is not None
            assert node.certificate.verify(ca.public_key)


class TestGroundTruth:
    def test_true_successor_owns_key(self):
        ring = build_ring(n=64)
        alive = ring.alive_ids_sorted()
        key = (alive[10] + 1) % ring.space.size
        assert ring.true_successor(key) == alive[11]

    def test_true_successor_exact_id(self):
        ring = build_ring(n=64)
        nid = ring.alive_ids_sorted()[5]
        assert ring.true_successor(nid) == nid

    def test_true_successor_wraps(self):
        ring = build_ring(n=64)
        highest = ring.alive_ids_sorted()[-1]
        lowest = ring.alive_ids_sorted()[0]
        assert ring.true_successor(highest + 1) == lowest

    def test_dead_nodes_not_owners(self):
        ring = build_ring(n=64)
        victim = ring.alive_ids_sorted()[10]
        ring.mark_dead(victim)
        assert ring.true_successor(victim) != victim

    def test_remove_permanently(self):
        ring = build_ring(n=64, f=0.2)
        malicious = next(iter(ring.malicious_ids))
        ring.remove_permanently(malicious)
        assert not ring.node(malicious).alive
        assert malicious in ring.removed_ids
        assert ring.remaining_malicious_fraction() < 0.2


class TestIterativeLookup:
    def test_lookup_finds_correct_owner(self, honest_ring):
        rng = RandomSource(3)
        stream = rng.stream("keys")
        correct = 0
        for _ in range(50):
            initiator = honest_ring.random_alive_id(stream)
            key = honest_ring.random_key(stream)
            result = iterative_lookup(honest_ring, initiator, key)
            assert result.succeeded
            if result.correct:
                correct += 1
        assert correct == 50

    def test_lookup_path_approaches_key(self, honest_ring):
        rng = RandomSource(4).stream("k")
        initiator = honest_ring.random_alive_id(rng)
        key = honest_ring.random_key(rng)
        result = iterative_lookup(honest_ring, initiator, key)
        space = honest_ring.space
        distances = [space.distance(hop, key) for hop in result.path]
        assert distances == sorted(distances, reverse=True)

    def test_lookup_key_owned_by_own_successor(self, honest_ring):
        initiator = honest_ring.alive_ids_sorted()[0]
        node = honest_ring.node(initiator)
        key = (initiator + 1) % honest_ring.space.size
        if honest_ring.true_successor(key) == node.successor:
            result = iterative_lookup(honest_ring, initiator, key)
            assert result.correct

    def test_lookup_hops_logarithmic(self, honest_ring):
        rng = RandomSource(5).stream("k")
        hops = []
        for _ in range(30):
            initiator = honest_ring.random_alive_id(rng)
            key = honest_ring.random_key(rng)
            hops.append(iterative_lookup(honest_ring, initiator, key).hops)
        assert max(hops) <= 2 * honest_ring.space.bits
        assert sum(hops) / len(hops) <= 12

    def test_on_query_callback_invoked(self, honest_ring):
        rng = RandomSource(6).stream("k")
        initiator = honest_ring.random_alive_id(rng)
        key = honest_ring.random_key(rng)
        seen = []
        iterative_lookup(honest_ring, initiator, key, on_query=lambda nid, table: seen.append(nid))
        assert len(seen) >= 1

    def test_malicious_queried_tracked(self, small_ring):
        rng = RandomSource(7).stream("k")
        found_some = False
        for _ in range(20):
            initiator = small_ring.random_alive_id(rng)
            key = small_ring.random_key(rng)
            result = iterative_lookup(small_ring, initiator, key)
            if result.malicious_queried:
                found_some = True
                assert all(small_ring.is_malicious(n) for n in result.malicious_queried)
        assert found_some

    def test_oracle_path_density_increases_near_target(self, honest_ring):
        rng = RandomSource(8).stream("k")
        space = honest_ring.space
        for _ in range(10):
            initiator = honest_ring.random_alive_id(rng)
            key = honest_ring.random_key(rng)
            path = oracle_query_path(honest_ring, initiator, key)
            if len(path) >= 3:
                d = [space.distance(p, key) for p in path]
                assert d == sorted(d, reverse=True)


class TestStabilization:
    def test_heals_successor_after_churn(self, honest_ring):
        stabilizer = Stabilizer(honest_ring)
        alive = honest_ring.alive_ids_sorted()
        victim = alive[5]
        prev_node = honest_ring.node(alive[4])
        honest_ring.mark_dead(victim)
        # Run a few global rounds; the predecessor should route around the hole.
        for _ in range(3):
            stabilizer.run_global_round()
        assert prev_node.successor == alive[6]
        assert victim not in prev_node.successor_list.nodes

    def test_rejoined_node_reintegrated(self, honest_ring):
        stabilizer = Stabilizer(honest_ring)
        alive = honest_ring.alive_ids_sorted()
        victim = alive[10]
        honest_ring.mark_dead(victim)
        for _ in range(3):
            stabilizer.run_global_round()
        honest_ring.mark_alive(victim)
        for _ in range(4):
            stabilizer.run_global_round()
        prev_node = honest_ring.node(alive[9])
        assert victim in prev_node.successor_list.nodes

    def test_predecessor_lists_maintained(self, honest_ring):
        stabilizer = Stabilizer(honest_ring)
        for _ in range(2):
            stabilizer.run_global_round()
        alive = honest_ring.alive_ids_sorted()
        for idx, nid in enumerate(alive):
            node = honest_ring.node(nid)
            expected_pred = alive[(idx - 1) % len(alive)]
            assert node.predecessor == expected_pred

    def test_stores_successor_proofs(self, honest_ring):
        stabilizer = Stabilizer(honest_ring)
        stabilizer.run_global_round(now=1.0)
        node = honest_ring.alive_nodes()[0]
        assert len(node.successor_list_proofs) >= 1
        proof = node.successor_list_proofs[-1]
        assert proof.owner_id == node.successor

    def test_proof_queue_bounded(self, honest_ring):
        stabilizer = Stabilizer(honest_ring)
        node = honest_ring.alive_nodes()[0]
        for i in range(12):
            stabilizer.stabilize_successors(node, now=float(i))
        assert len(node.successor_list_proofs) <= node.proof_capacity

    def test_dead_entries_pruned(self, honest_ring):
        stabilizer = Stabilizer(honest_ring)
        node = honest_ring.alive_nodes()[0]
        dead = node.successor_list.nodes[-1]
        honest_ring.mark_dead(dead)
        stabilizer.stabilize_successors(node)
        assert dead not in node.successor_list.nodes

    def test_invariant_each_node_in_predecessors_successor_list(self, honest_ring):
        """The Octopus invariant behind secret neighbor surveillance."""
        stabilizer = Stabilizer(honest_ring)
        for _ in range(3):
            stabilizer.run_global_round()
        for node in honest_ring.alive_nodes():
            for pred_id in node.predecessor_list.nodes:
                pred = honest_ring.node(pred_id)
                assert node.node_id in pred.successor_list.nodes
