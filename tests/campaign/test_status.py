"""``repro campaign-status``: the read-only snapshot and its rendering.

All state is synthesized on disk exactly as a live campaign would leave it —
spec.json, trial records, queue jobs, heartbeat beacons, committed partials —
and ``campaign_status`` must derive completion, per-worker telemetry,
staleness, per-cell progress and the ETA without mutating anything.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.campaign import CampaignSpec, CampaignStore, campaign_status, render_status
from repro.campaign.spec import cost_key
from repro.campaign.status import DEFAULT_STALE_AFTER_S
from repro.campaign.streaming import CampaignAccumulator


@pytest.fixture
def spec() -> CampaignSpec:
    return CampaignSpec(
        kind="security",
        name="status-test",
        base={"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0},
        grid={"attack_rate": [1.0, 0.5]},
        seeds=(0, 1),
    )


def make_record(trial, elapsed=2.0, worker="w0"):
    return {
        "trial_id": trial.trial_id,
        "kind": trial.kind,
        "params": dict(trial.params),
        "metrics": {"m": 1.0},
        "detail": {},
        "timing": {"elapsed_s": elapsed, "worker": worker},
    }


def heartbeat(worker, now, state="running", age=1.0, **extra):
    beat = {
        "worker": worker,
        "host": "h",
        "pid": 1,
        "state": state,
        "started_at": now - 100.0,
        "updated_at": now - age,
        "current_trial": None,
        "current_trial_started_at": None,
        "last_claim_at": now - age,
        "trials_done": 0,
        "trials_skipped": 0,
        "trials_per_min": 0.0,
    }
    beat.update(extra)
    return beat


def test_status_requires_a_campaign_directory(tmp_path):
    with pytest.raises(FileNotFoundError):
        campaign_status(tmp_path / "nowhere")


def test_status_counts_trials_cells_and_queue(spec, tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    store.write_spec(spec)
    trials = spec.expand()
    # Record both seeds of the attack_rate=1.0 cell; leave the 0.5 cell.
    done = [t for t in trials if t.params["attack_rate"] == 1.0]
    for trial in done:
        store.write_trial(make_record(trial))
    for order, trial in enumerate(t for t in trials if t not in done):
        store.enqueue_trial(order, trial.to_dict())

    status = campaign_status(store.out_dir, now=time.time())
    assert status["campaign"] == {
        "name": "status-test", "kind": "security", "n_trials_expected": 4,
    }
    assert status["trials"] == {"expected": 4, "recorded": 2, "remaining": 2}
    assert status["queue"]["pending"] == 2 and status["queue"]["claims"] == 0
    by_cell = {c["cell"]: c for c in status["cells"]}
    assert len(by_cell) == 2
    full = cost_key(spec.kind, done[0].params)
    assert by_cell[full]["done"] == 2 and by_cell[full]["expected"] == 2
    [(empty_key, empty)] = [(k, c) for k, c in by_cell.items() if k != full]
    assert empty["done"] == 0 and empty["expected"] == 2


def test_worker_rows_flag_staleness_but_not_stopped(spec, tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    store.write_spec(spec)
    now = time.time()
    store.write_heartbeat("fresh", heartbeat("fresh", now, age=1.0, trials_per_min=4.2))
    store.write_heartbeat("dead", heartbeat("dead", now, age=DEFAULT_STALE_AFTER_S * 3))
    store.write_heartbeat("done", heartbeat("done", now, state="stopped", age=500.0))

    status = campaign_status(store.out_dir, now=now)
    rows = {w["worker"]: w for w in status["workers"]}
    assert set(rows) == {"fresh", "dead", "done"}
    assert rows["fresh"]["stale"] is False
    assert rows["fresh"]["trials_per_min"] == pytest.approx(4.2)
    assert rows["dead"]["stale"] is True
    # A clean shutdown is final, not stale — no false alarm for finished workers.
    assert rows["done"]["stale"] is False and rows["done"]["state"] == "stopped"

    text = render_status(status)
    assert "workers (3):" in text
    assert "STALE" in text and "fresh:" in text


def test_eta_uses_partial_timing_and_divides_by_active_workers(spec, tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    store.write_spec(spec)
    trials = spec.expand()
    full_cell = [t for t in trials if t.params["attack_rate"] == 1.0]
    other_cell = [t for t in trials if t.params["attack_rate"] == 0.5]

    # One worker committed a partial covering the attack_rate=1.0 cell at
    # 2 s/trial; those trials are also recorded on disk.
    acc = CampaignAccumulator()
    for trial in full_cell:
        record = make_record(trial, elapsed=2.0)
        store.write_trial(record)
        acc.add_record(record)
    store.write_partial("w0", acc.to_state())
    now = time.time()
    store.write_heartbeat("w0", heartbeat("w0", now, age=1.0))
    store.write_heartbeat("w1", heartbeat("w1", now, state="idle", age=1.0))

    # Remaining: the 0.5 cell (2 trials) — but no elapsed history for it yet.
    status = campaign_status(store.out_dir, now=now)
    assert status["eta_s"] is None or status["eta_partial"] is True

    # Give the 0.5 cell history too (say a previous run's summary would — here
    # a second partial): 2 trials x 3 s / 2 active workers = 3 s.
    acc2 = CampaignAccumulator()
    acc2.add_record(make_record(other_cell[0], elapsed=3.0, worker="w1"))
    store.write_partial("w1", acc2.to_state())
    store.write_trial(make_record(other_cell[0], elapsed=3.0, worker="w1"))
    status = campaign_status(store.out_dir, now=now)
    assert status["trials"]["remaining"] == 1
    assert status["eta_partial"] is False
    assert status["eta_s"] == pytest.approx(1 * 3.0 / 2)

    text = render_status(status)
    assert "eta: ~" in text and "1/2 complete" in text


def test_eta_done_when_everything_recorded(spec, tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    store.write_spec(spec)
    for trial in spec.expand():
        store.write_trial(make_record(trial))
    status = campaign_status(store.out_dir, now=time.time())
    assert status["trials"]["remaining"] == 0
    assert status["eta_s"] == 0.0
    assert "eta: done" in render_status(status)
    assert "workers: none seen" in render_status(status)


def test_ignored_axes_roll_up_from_partials(spec, tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    store.write_spec(spec)
    trial = spec.expand()[0]
    record = make_record(trial)
    record["detail"] = {
        "scenario": {"base_kind": "security", "ignored_axes": ["workload"]}
    }
    acc = CampaignAccumulator()
    acc.add_record(record)
    store.write_partial("w0", acc.to_state())
    status = campaign_status(store.out_dir, now=time.time())
    assert status["ignored_axes"] == {
        "security": {"axes": ["workload"], "n_trials": 1}
    }
    assert "ignored axes: workload" in render_status(status)


def test_status_json_round_trips(spec, tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    store.write_spec(spec)
    status = campaign_status(store.out_dir, now=time.time())
    assert json.loads(json.dumps(status, sort_keys=True)) == status


def test_status_is_read_only(spec, tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    store.write_spec(spec)
    for order, trial in enumerate(spec.expand()):
        store.enqueue_trial(order, trial.to_dict())
    before = sorted(
        (str(p.relative_to(store.out_dir)), p.stat().st_mtime_ns)
        for p in store.out_dir.rglob("*") if p.is_file()
    )
    campaign_status(store.out_dir, now=time.time())
    after = sorted(
        (str(p.relative_to(store.out_dir)), p.stat().st_mtime_ns)
        for p in store.out_dir.rglob("*") if p.is_file()
    )
    assert after == before
