"""Exactness properties of the streaming (mergeable) aggregation core.

The determinism contract demands that a summary built from per-worker
partials — folded in nondeterministic completion order, committed to disk,
reloaded and merged in directory order — is *byte-identical* (under
``strip_timing``) to the serial one.  These tests pin that property the hard
way: random record sets, random partitions, random merge orders, duplicate
(claim-steal) overlaps, JSON round-trips, and the empty-partial edge case.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.campaign.aggregate import aggregate_records, strip_timing, summarize
from repro.campaign.streaming import (
    PARTIAL_STATE_VERSION,
    CampaignAccumulator,
    GroupAccumulator,
    MetricAccumulator,
    group_key,
)


# ------------------------------------------------------------------ fixtures
def make_record(trial_id, params, metrics, elapsed=0.25, worker="w0"):
    return {
        "trial_id": trial_id,
        "kind": "security",
        "params": dict(params),
        "metrics": dict(metrics),
        "detail": {},
        "timing": {"elapsed_s": elapsed, "worker": worker},
    }


def random_records(rng, n_trials, n_cells=3, n_metrics=4):
    records = []
    for i in range(n_trials):
        cell = rng.randrange(n_cells)
        params = {"attack_rate": 0.5 * (cell + 1), "n_nodes": 60, "seed": i}
        metrics = {
            f"m{j}": rng.uniform(-1e3, 1e3) * 10 ** rng.randint(-6, 6)
            for j in range(n_metrics)
        }
        records.append(
            make_record(f"s{i}-t{i:04d}", params, metrics, elapsed=rng.uniform(0.01, 2.0))
        )
    return records


def two_pass_reference(values):
    """The textbook two-pass mean/std/ci95 the accumulator must reproduce."""
    n = len(values)
    mean = math.fsum(values) / n
    if n > 1:
        var = math.fsum((x - mean) ** 2 for x in values) / (n - 1)
        std = math.sqrt(var)
        ci95 = 1.96 * std / math.sqrt(n)
    else:
        std = ci95 = 0.0
    return mean, std, ci95


# ------------------------------------------------------- metric accumulator
@pytest.mark.parametrize("seed", range(5))
def test_merged_partials_match_two_pass_reference(seed):
    rng = random.Random(seed)
    values = [rng.uniform(-1e6, 1e6) * 10 ** rng.randint(-8, 8) for _ in range(200)]

    # Split into random contiguous chunks, fold each into its own partial,
    # merge in shuffled order.
    cuts = sorted(rng.sample(range(1, len(values)), 5))
    chunks = [values[a:b] for a, b in zip([0] + cuts, cuts + [len(values)])]
    partials = []
    for chunk in chunks:
        acc = MetricAccumulator()
        for v in chunk:
            acc.update(v)
        partials.append(acc)
    rng.shuffle(partials)
    merged = MetricAccumulator()
    for part in partials:
        merged.merge(part)

    got = merged.summary()
    ref_mean, ref_std, ref_ci = two_pass_reference(values)
    assert got["n"] == len(values)
    assert got["min"] == min(values) and got["max"] == max(values)
    assert got["mean"] == pytest.approx(ref_mean, rel=1e-12, abs=1e-300)
    assert got["std"] == pytest.approx(ref_std, rel=1e-12, abs=1e-300)
    assert got["ci95"] == pytest.approx(ref_ci, rel=1e-12, abs=1e-300)


@pytest.mark.parametrize("seed", range(5))
def test_any_merge_order_is_byte_identical(seed):
    rng = random.Random(100 + seed)
    values = [rng.uniform(-50, 50) for _ in range(64)]
    chunks = [values[i::4] for i in range(4)]

    def merged_summary(order):
        out = MetricAccumulator()
        for idx in order:
            part = MetricAccumulator()
            for v in chunks[idx]:
                part.update(v)
            out.merge(part)
        return json.dumps(out.summary(), sort_keys=True)

    baseline = merged_summary(range(4))
    for _ in range(6):
        order = list(range(4))
        rng.shuffle(order)
        assert merged_summary(order) == baseline


def test_streaming_matches_batch_summarize():
    rng = random.Random(7)
    values = [rng.gauss(3.0, 2.0) for _ in range(97)]
    acc = MetricAccumulator()
    for v in values:
        acc.update(v)
    batch = summarize(values)
    assert json.dumps(acc.summary(), sort_keys=True) == json.dumps(batch, sort_keys=True)


def test_empty_and_single_sample_edges():
    empty = MetricAccumulator()
    assert empty.summary() == {"n": 0}

    # Merging an empty partial is the identity, in either direction.
    one = MetricAccumulator()
    one.update(4.25)
    before = json.dumps(one.summary(), sort_keys=True)
    one.merge(MetricAccumulator())
    assert json.dumps(one.summary(), sort_keys=True) == before
    empty.merge(one)
    assert json.dumps(empty.summary(), sort_keys=True) == before
    assert one.summary() == {
        "mean": 4.25, "std": 0.0, "ci95": 0.0, "min": 4.25, "max": 4.25, "n": 1,
    }


def test_remove_is_the_exact_inverse_of_a_duplicate_update():
    rng = random.Random(11)
    values = [rng.uniform(-10, 10) for _ in range(30)]
    dup = values[13]
    acc = MetricAccumulator()
    for v in values:
        acc.update(v)
    reference = json.dumps(acc.summary(), sort_keys=True)
    acc.update(dup)   # the claim-steal double execution
    acc.remove(dup)   # the pre-merge dedupe
    assert json.dumps(acc.summary(), sort_keys=True) == reference

    with pytest.raises(ValueError):
        MetricAccumulator().remove(1.0)


def test_metric_state_round_trips_through_json():
    acc = MetricAccumulator()
    for v in (0.1, 0.2, 0.3):  # classic non-associative floats
        acc.update(v)
    state = json.loads(json.dumps(acc.to_state()))
    back = MetricAccumulator.from_state(state)
    assert json.dumps(back.summary(), sort_keys=True) == json.dumps(
        acc.summary(), sort_keys=True
    )


# ----------------------------------------------------- campaign accumulator
@pytest.mark.parametrize("seed", range(4))
def test_partitioned_partials_reproduce_serial_summary(seed):
    """Random partition + duplicates + JSON round-trip + shuffled merge ==
    the serial fold, byte-for-byte under strip_timing."""
    rng = random.Random(200 + seed)
    records = random_records(rng, n_trials=40)

    serial = CampaignAccumulator()
    for record in records:
        serial.add_record(record)
    expected = json.dumps(strip_timing(serial.finalize()), sort_keys=True)

    # Partition across 3 "workers"; ~20% of trials also execute on a second
    # worker (stolen claims) — byte-identical records, per the contract.
    partitions = [[], [], []]
    for record in records:
        partitions[rng.randrange(3)].append(record)
        if rng.random() < 0.2:
            partitions[rng.randrange(3)].append(record)

    partial_states = []
    for part_records in partitions:
        acc = CampaignAccumulator()
        for record in part_records:
            acc.add_record(record)  # in-worker dedupe: same-id copies skipped
        if len(acc):
            partial_states.append(json.loads(json.dumps(acc.to_state())))

    rng.shuffle(partial_states)
    merged = CampaignAccumulator()
    by_id = {r["trial_id"]: r for r in records}
    for state in partial_states:
        part = CampaignAccumulator.from_state(state)
        for trial_id in sorted(part.trial_ids & merged.trial_ids):
            part.remove_record(by_id[trial_id])
        merged.merge(part)
    for record in records:  # top-up anything no partial covered
        merged.add_record(record)

    assert json.dumps(strip_timing(merged.finalize()), sort_keys=True) == expected


def test_campaign_accumulator_matches_aggregate_records():
    rng = random.Random(42)
    records = random_records(rng, n_trials=24)
    acc = CampaignAccumulator()
    for record in records:
        acc.add_record(record)
    assert json.dumps(acc.finalize(), sort_keys=True) == json.dumps(
        aggregate_records(records), sort_keys=True
    )


def test_add_record_dedupes_by_trial_id():
    record = make_record("s0-aaaa", {"attack_rate": 1.0, "seed": 0}, {"m": 2.0})
    acc = CampaignAccumulator()
    assert acc.add_record(record) is True
    assert acc.add_record(dict(record)) is False
    summary = acc.finalize()
    assert summary["n_trials"] == 1
    [group] = summary["groups"]
    assert group["metrics"]["m"]["n"] == 1


def test_merging_an_empty_partial_is_the_identity():
    records = random_records(random.Random(3), n_trials=8)
    acc = CampaignAccumulator()
    for record in records:
        acc.add_record(record)
    before = json.dumps(strip_timing(acc.finalize()), sort_keys=True)
    acc.merge(CampaignAccumulator())
    assert json.dumps(strip_timing(acc.finalize()), sort_keys=True) == before

    empty = CampaignAccumulator()
    assert len(empty) == 0
    assert empty.finalize()["n_trials"] == 0
    # An empty accumulator's state must not round-trip into phantom trials.
    back = CampaignAccumulator.from_state(json.loads(json.dumps(empty.to_state())))
    assert len(back) == 0


def test_unsupported_partial_version_is_rejected():
    state = CampaignAccumulator().to_state()
    assert state["version"] == PARTIAL_STATE_VERSION
    state["version"] = PARTIAL_STATE_VERSION + 1
    with pytest.raises(ValueError):
        CampaignAccumulator.from_state(state)


def test_group_key_drops_only_the_seed():
    a = {"attack_rate": 1.0, "seed": 0, "n_nodes": 60}
    b = {"n_nodes": 60, "attack_rate": 1.0, "seed": 5}
    assert group_key(a) == group_key(b)
    assert group_key({"attack_rate": 0.5, "seed": 0}) != group_key(a)


def test_group_summary_orders_trials_by_seed():
    group = GroupAccumulator(key="k")
    for seed in (2, 0, 1):
        group.add_record(
            make_record(f"s{seed}-x", {"attack_rate": 1.0, "seed": seed}, {"m": 1.0})
        )
    summary = group.summary()
    assert summary["seeds"] == [0, 1, 2]
    assert summary["trial_ids"] == ["s0-x", "s1-x", "s2-x"]
    assert "seed" not in summary["params"]
