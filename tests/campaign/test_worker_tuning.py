"""Self-tuning queue workers: idle-poll backoff and per-worker timing.

Two PR-4 satellites on the file-queue backend:

* ``repro campaign-worker`` polls with exponential backoff + jitter instead
  of a fixed interval — idle polling decays and snaps back the moment a job
  is claimed;
* every queue-executed record carries its executor in ``timing.worker``,
  and ``summary.json`` rolls elapsed seconds up per worker id (outside the
  determinism-compared view, like all timing).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    PollBackoff,
    run_campaign,
    run_worker,
    strip_timing,
    summarize_timing,
)


@pytest.fixture
def timing_spec() -> CampaignSpec:
    return CampaignSpec(
        kind="timing",
        name="worker-tuning",
        base={"max_candidate_flows": 50},
        seeds=(0, 1),
    )


# ----------------------------------------------------------------- PollBackoff


def test_backoff_decays_geometrically_and_caps():
    backoff = PollBackoff(base_s=0.1, max_s=0.8, factor=2.0, jitter=0.0)
    assert [round(backoff.next_delay(), 3) for _ in range(5)] == [0.1, 0.2, 0.4, 0.8, 0.8]


def test_backoff_resets_to_the_floor():
    backoff = PollBackoff(base_s=0.1, max_s=5.0, jitter=0.0)
    for _ in range(4):
        backoff.next_delay()
    assert backoff.current_delay() > 0.1
    backoff.reset()
    assert backoff.idle_polls == 0
    assert backoff.next_delay() == pytest.approx(0.1)


def test_backoff_jitter_stays_within_band():
    backoff = PollBackoff(base_s=1.0, max_s=1.0, jitter=0.25, rng=random.Random(7))
    delays = [backoff.next_delay() for _ in range(200)]
    assert all(0.75 <= d <= 1.25 for d in delays)
    assert len({round(d, 6) for d in delays}) > 1  # actually dithered


def test_backoff_survives_very_long_idle_stretches():
    """Regression: factor**idle_polls must stop growing at the ceiling — a
    worker parked on an empty queue for hours used to hit OverflowError."""
    backoff = PollBackoff(base_s=0.2, max_s=5.0, jitter=0.0)
    for _ in range(5000):
        assert backoff.next_delay() <= 5.0
    backoff.reset()
    assert backoff.next_delay() == pytest.approx(0.2)


def test_backoff_rejects_bad_parameters():
    with pytest.raises(ValueError):
        PollBackoff(base_s=0.0)
    with pytest.raises(ValueError):
        PollBackoff(base_s=0.1, factor=0.5)
    with pytest.raises(ValueError):
        PollBackoff(base_s=0.1, jitter=1.0)


def test_worker_idle_polls_decay_and_reset_on_claimed_job(
    timing_spec, tmp_path, monkeypatch
):
    """Drive run_worker through idle polling -> a claimed job -> idle again:
    the recorded sleep requests must escalate, then drop back to the floor
    after the claim."""
    out = tmp_path / "backoff"
    store = CampaignStore(out)
    store.ensure_queue_layout()  # open (unsealed) queue, nothing pending yet
    trial = timing_spec.expand()[0]

    delays = []

    def fake_sleep(seconds: float) -> None:
        delays.append(seconds)
        if len(delays) == 5:  # work arrives after five idle polls
            store.enqueue_trial(0, trial.to_dict())
        if len(delays) == 8:  # and later the producer seals the queue
            store.mark_enqueue_complete(1)

    monkeypatch.setattr("repro.campaign.backends.queue.time.sleep", fake_sleep)
    executed = run_worker(out, worker_id="w-backoff", poll_interval_s=0.05)
    assert executed == 1
    # Idle polls 1-5 escalate geometrically (jitter is at most +-25%, far
    # smaller than the 16x nominal growth across four doublings).
    assert delays[4] > delays[0] * 4
    assert sorted(delays[:5]) == delays[:5]
    # The claimed job reset the backoff: the first post-claim idle poll is
    # back at the floor, well below the pre-claim peak.
    assert delays[5] < delays[4] / 2
    assert delays[5] == pytest.approx(0.05, rel=0.3)


def test_worker_cli_rejects_inverted_poll_bounds(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="max-poll-interval"):
        main([
            "campaign-worker", str(tmp_path),
            "--poll-interval", "1.0", "--max-poll-interval", "0.5",
        ])


# ------------------------------------------------------- per-worker timing


def test_queue_records_carry_executor_and_summary_rolls_up(timing_spec, tmp_path):
    out = tmp_path / "attribution"
    store = CampaignStore(out)
    store.ensure_queue_layout()
    store.write_spec(timing_spec)
    trials = timing_spec.expand()
    for order, trial in enumerate(trials):
        store.enqueue_trial(order, trial.to_dict())
    store.mark_enqueue_complete(len(trials))

    executed = run_worker(
        out, worker_id="w-attrib", poll_interval_s=0.01, wait_for_queue_s=0
    )
    assert executed == len(trials)
    for trial in trials:
        record = store.load_trial(trial.trial_id)
        assert record["timing"]["worker"] == "w-attrib"
        # The label lives only under timing: stripped from the compared view.
        assert "worker" not in json.dumps(strip_timing(record))

    # The producer folds the worker-executed records into summary.json.
    report = run_campaign(timing_spec, out_dir=out, resume=True, backend="queue")
    workers = report.summary["timing"]["workers"]
    assert set(workers) == {"w-attrib"}
    assert workers["w-attrib"]["n"] == len(trials)
    assert workers["w-attrib"]["total_elapsed_s"] > 0
    assert "workers" not in json.dumps(strip_timing(report.summary))


def test_summarize_timing_splits_elapsed_per_worker():
    records = [
        {"kind": "timing", "params": {"seed": 0}, "timing": {"elapsed_s": 1.0, "worker": "a"}},
        {"kind": "timing", "params": {"seed": 1}, "timing": {"elapsed_s": 3.0, "worker": "a"}},
        {"kind": "timing", "params": {"seed": 2}, "timing": {"elapsed_s": 2.0, "worker": "b"}},
        # serial/pool records have no worker label and don't contribute
        {"kind": "timing", "params": {"seed": 3}, "timing": {"elapsed_s": 9.0}},
    ]
    timing = summarize_timing(records)
    assert timing["workers"] == {
        "a": {"n": 2, "total_elapsed_s": 4.0, "mean_elapsed_s": 2.0},
        "b": {"n": 1, "total_elapsed_s": 2.0, "mean_elapsed_s": 2.0},
    }
    assert timing["n"] == 4  # the unlabelled record still counts in totals


def test_summarize_timing_omits_workers_block_when_nobody_is_labelled():
    records = [{"kind": "timing", "params": {"seed": 0}, "timing": {"elapsed_s": 1.0}}]
    assert "workers" not in summarize_timing(records)
