"""schedule_trials(): cold start, warm start, and outcome invariance.

Scheduling is pure dispatch ordering — the tests pin down (a) the order
itself (spec order cold, longest-expected-first warm, unknown cells first),
(b) that the runner really feeds per-cell history from a prior summary.json
into the backends, and (c) the property that no ordering ever changes trial
ids, records, or aggregates.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    SerialBackend,
    canonical_json,
    cost_key,
    load_timing_history,
    run_campaign,
    schedule_trials,
    strip_timing,
)


def _spec(**overrides) -> CampaignSpec:
    base = dict(
        kind="security",
        name="sched-test",
        base={"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0},
        grid={"attack_rate": [1.0, 0.5, 0.25]},
        seeds=(0, 1),
    )
    base.update(overrides)
    return CampaignSpec(**base)


def test_cost_key_ignores_seed_and_is_canonical():
    a = cost_key("security", {"n_nodes": 60, "seed": 0, "attack_rate": 1.0})
    b = cost_key("security", {"attack_rate": 1.0, "seed": 7, "n_nodes": 60})
    assert a == b
    assert cost_key("security", {"n_nodes": 60}) != cost_key("anonymity", {"n_nodes": 60})
    trial = _spec().expand()[0]
    assert trial.cost_key == cost_key(trial.kind, trial.params)


def test_cold_start_keeps_spec_order():
    trials = _spec().expand()
    assert schedule_trials(trials, None) == trials
    assert schedule_trials(trials, {}) == trials


def test_warm_start_orders_longest_expected_first():
    trials = _spec().expand()
    # Make the *last* grid cell the most expensive and the first the cheapest.
    history = {
        cost_key("security", dict(t.params)): 10.0 * float(t.params["attack_rate"]) ** -1
        for t in trials
    }
    ordered = schedule_trials(trials, history)
    rates = [t.params["attack_rate"] for t in ordered]
    assert rates == [0.25, 0.25, 0.5, 0.5, 1.0, 1.0]
    # Within one cell, spec (seed) order is preserved — the sort is stable.
    assert [t.params["seed"] for t in ordered] == [0, 1, 0, 1, 0, 1]
    # Ordering is a permutation: no trial added, dropped, or renamed.
    assert sorted(t.trial_id for t in ordered) == sorted(t.trial_id for t in trials)


def test_load_kind_sweeps_schedule_expensive_rps_cells_first():
    """A load campaign's grid is offered_rps; with per-cell history the
    high-RPS cells (more events, longer wall-clock) must dispatch first."""
    spec = CampaignSpec(
        kind="load",
        name="load-sched-test",
        base={"n_nodes": 40, "duration": 10.0, "sample_interval": 5.0},
        grid={"offered_rps": [5.0, 20.0, 80.0]},
        seeds=(0, 1),
    )
    trials = spec.expand()
    # Wall-clock grows with offered rate: cost ~ rps.
    history = {
        cost_key("load", dict(t.params)): float(t.params["offered_rps"]) for t in trials
    }
    ordered = schedule_trials(trials, history)
    assert [t.params["offered_rps"] for t in ordered] == [80.0, 80.0, 20.0, 20.0, 5.0, 5.0]
    assert sorted(t.trial_id for t in ordered) == sorted(t.trial_id for t in trials)


def test_unknown_cells_dispatch_before_known_ones():
    trials = _spec().expand()
    known = cost_key("security", dict(trials[0].params))  # attack_rate=1.0 cell
    ordered = schedule_trials(trials, {known: 99.0})
    # The two history-less cells keep spec order up front; the known cell —
    # however expensive — follows them.
    assert [t.params["attack_rate"] for t in ordered] == [0.5, 0.5, 0.25, 0.25, 1.0, 1.0]


def test_load_timing_history_reads_summary_cells(tmp_path):
    out = tmp_path / "history"
    run_campaign(_spec(), out_dir=out, jobs=1)
    history = load_timing_history(CampaignStore(out).load_summary())
    trials = _spec().expand()
    assert set(history) == {t.cost_key for t in trials}
    assert all(v >= 0.0 for v in history.values())


@pytest.mark.parametrize("summary", [None, {}, {"timing": {"n": 0}}, {"timing": "junk"}])
def test_load_timing_history_tolerates_missing_blocks(summary):
    assert load_timing_history(summary) == {}


class _RecordingSerialBackend(SerialBackend):
    """Serial execution that records the dispatch order it was handed."""

    reorders = True  # opt in to the runner's scheduling despite running serially

    def __init__(self) -> None:
        self.dispatch_order = []

    def submit(self, trials, store):
        self.dispatch_order = [t.trial_id for t in trials]
        return super().submit(trials, store)


def test_runner_feeds_summary_history_to_reordering_backends(tmp_path):
    """A second run of a directory dispatches longest-expected-first using the
    timing.cells history the first run left in summary.json."""
    spec = _spec()
    out = tmp_path / "warm"
    run_campaign(spec, out_dir=out, jobs=1)

    # Forge the history so the expected order is unambiguous regardless of
    # real wall-clock noise: rate 0.25 slowest, then 0.5, then 1.0.
    store = CampaignStore(out)
    summary = store.load_summary()
    forged = {}
    for trial in spec.expand():
        forged[trial.cost_key] = {
            "n": 1,
            "mean_elapsed_s": 10.0 / float(trial.params["attack_rate"]),
            "max_elapsed_s": 10.0 / float(trial.params["attack_rate"]),
        }
    summary["timing"]["cells"] = forged
    store.write_summary(summary)

    backend = _RecordingSerialBackend()
    run_campaign(spec, out_dir=out, backend=backend)  # resume=False: re-runs all
    by_id = {t.trial_id: t for t in spec.expand()}
    dispatched_rates = [by_id[i].params["attack_rate"] for i in backend.dispatch_order]
    assert dispatched_rates == [0.25, 0.25, 0.5, 0.5, 1.0, 1.0]


def test_serial_backend_ignores_history(tmp_path):
    """jobs=1 keeps spec order even when a reordering history exists."""
    spec = _spec()
    out = tmp_path / "serial-order"
    run_campaign(spec, out_dir=out, jobs=1)

    backend = _RecordingSerialBackend()
    backend.reorders = False
    run_campaign(spec, out_dir=out, backend=backend)
    assert backend.dispatch_order == [t.trial_id for t in spec.expand()]


def test_scheduling_never_changes_records_or_aggregates(tmp_path):
    """The invariance property: an adversarially reordered dispatch produces
    byte-identical records and summary (timing-stripped) to a cold serial run."""
    spec = _spec(seeds=(0, 1))
    cold = tmp_path / "cold"
    run_campaign(spec, out_dir=cold, jobs=1)

    warm = tmp_path / "warm"
    store = CampaignStore(warm)
    store.ensure_layout()
    # Plant a fake history that reverses spec order before any trial runs.
    trials = spec.expand()
    cells = {
        t.cost_key: {"n": 1, "mean_elapsed_s": float(i), "max_elapsed_s": float(i)}
        for i, t in enumerate(trials)
    }
    store.write_summary({"timing": {"n": 1, "cells": cells}})
    backend = _RecordingSerialBackend()
    run_campaign(spec, out_dir=warm, backend=backend)
    assert backend.dispatch_order != [t.trial_id for t in trials]  # really reordered

    cold_summary = canonical_json(strip_timing(json.loads((cold / "summary.json").read_text())))
    warm_summary = canonical_json(strip_timing(json.loads((warm / "summary.json").read_text())))
    assert warm_summary == cold_summary
    for path in sorted((cold / "trials").glob("*.json")):
        a = canonical_json(strip_timing(json.loads(path.read_text())))
        b = canonical_json(strip_timing(json.loads((warm / "trials" / path.name).read_text())))
        assert a == b
