"""Grid expansion and (de)serialization of campaign specs."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignSpec, available_kinds


def make_spec(**overrides):
    kwargs = dict(
        kind="security",
        base={"n_nodes": 60, "duration": 30.0},
        grid={"attack_rate": [1.0, 0.5], "attack": ["lookup-bias", "selective-dos"]},
        seeds=(0, 1, 2),
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def test_expansion_is_full_cross_product():
    spec = make_spec()
    trials = spec.expand()
    assert len(trials) == spec.n_trials() == 2 * 2 * 3
    combos = {
        (t.params["attack_rate"], t.params["attack"], t.params["seed"]) for t in trials
    }
    assert len(combos) == 12
    for trial in trials:
        assert trial.kind == "security"
        assert trial.params["n_nodes"] == 60
        assert trial.params["duration"] == 30.0


def test_grid_overrides_base_parameters():
    spec = make_spec(base={"n_nodes": 60, "attack_rate": 9.9}, grid={"attack_rate": [1.0, 0.5]})
    rates = sorted(t.params["attack_rate"] for t in spec.expand())
    assert rates == [0.5, 0.5, 0.5, 1.0, 1.0, 1.0]


def test_expansion_is_deterministic():
    first = make_spec().expand()
    second = make_spec().expand()
    assert [t.trial_id for t in first] == [t.trial_id for t in second]
    assert [t.params for t in first] == [t.params for t in second]


def test_trial_ids_are_unique_and_content_addressed():
    trials = make_spec().expand()
    assert len({t.trial_id for t in trials}) == len(trials)
    # Changing a base parameter changes every trial id (hash suffix).
    changed = make_spec(base={"n_nodes": 61, "duration": 30.0}).expand()
    assert {t.trial_id for t in trials}.isdisjoint({t.trial_id for t in changed})


def test_growing_the_campaign_keeps_existing_trial_ids():
    """Resume depends on ids staying stable when the sweep is extended."""
    small = {t.trial_id for t in make_spec(seeds=(0, 1)).expand()}
    more_seeds = {t.trial_id for t in make_spec(seeds=(0, 1, 2, 3)).expand()}
    assert small < more_seeds
    wider_grid = {
        t.trial_id
        for t in make_spec(
            seeds=(0, 1),
            grid={"attack_rate": [1.0, 0.5, 0.25], "attack": ["lookup-bias", "selective-dos"]},
        ).expand()
    }
    assert small < wider_grid


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown experiment kind"):
        make_spec(kind="frobnicate").validate()


def test_seed_belongs_in_seed_list():
    with pytest.raises(ValueError, match="seeds"):
        make_spec(base={"seed": 3}).validate()


def test_duplicate_seeds_rejected():
    with pytest.raises(ValueError, match="duplicate seeds"):
        make_spec(seeds=(0, 0)).validate()


def test_empty_grid_axis_rejected():
    with pytest.raises(ValueError, match="non-empty"):
        make_spec(grid={"attack_rate": []}).validate()


def test_json_file_round_trip(tmp_path):
    spec = make_spec(name="round-trip")
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    loaded = CampaignSpec.from_json_file(path)
    assert loaded.to_dict() == spec.to_dict()
    assert [t.trial_id for t in loaded.expand()] == [t.trial_id for t in spec.expand()]


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown campaign spec keys"):
        CampaignSpec.from_dict({"kind": "security", "grdi": {}})


def test_all_builtin_kinds_registered():
    assert set(available_kinds()) >= {"security", "anonymity", "efficiency", "timing", "ablation"}


class TestFigureField:
    def test_round_trips_through_dict_and_json(self, tmp_path):
        spec = make_spec(figure="fig3a", grid={"attack_rate": [1.0, 0.5]})
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = CampaignSpec.from_json_file(path)
        assert loaded.figure == "fig3a"
        assert loaded.to_dict() == spec.to_dict()

    def test_absent_by_default_for_backward_compatible_spec_json(self):
        # Old spec.json files predate the field; new untagged specs must keep
        # writing the identical document.
        spec = make_spec()
        assert spec.figure == ""
        assert "figure" not in spec.to_dict()
        assert CampaignSpec.from_dict(spec.to_dict()).figure == ""

    def test_does_not_change_trial_ids(self):
        untagged = make_spec()
        tagged = make_spec(figure="fig3a")
        assert [t.trial_id for t in tagged.expand()] == [t.trial_id for t in untagged.expand()]

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figure"):
            make_spec(figure="fig99").expand()

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="produced by kind"):
            make_spec(figure="fig7a").expand()  # fig7a is an efficiency figure
