"""Aggregation math, grouping, and result-dict JSON round-trips."""

from __future__ import annotations

import json
import math

import pytest

from repro.campaign import aggregate_records, group_key, summarize, summary_rows
from repro.campaign.spec import CampaignSpec
from repro.experiments.results import config_from_dict, percentile, percentile_from_cdf
from repro.experiments.security import SecurityExperimentConfig


def record(seed, attack_rate, value):
    return {
        "trial_id": f"t-{attack_rate}-{seed}",
        "kind": "security",
        "params": {"n_nodes": 60, "attack_rate": attack_rate, "seed": seed},
        "metrics": {"final_malicious_fraction": value},
    }


def test_summarize_known_values():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats["n"] == 4
    assert stats["mean"] == pytest.approx(2.5)
    assert stats["std"] == pytest.approx(math.sqrt(5.0 / 3.0))
    assert stats["ci95"] == pytest.approx(1.96 * stats["std"] / 2.0)
    assert stats["min"] == 1.0 and stats["max"] == 4.0


def test_summarize_degenerate_cases():
    assert summarize([]) == {"n": 0}
    single = summarize([7.0])
    assert single["mean"] == 7.0 and single["std"] == 0.0 and single["ci95"] == 0.0


def test_grouping_ignores_seed_only():
    assert group_key({"a": 1, "seed": 0}) == group_key({"a": 1, "seed": 9})
    assert group_key({"a": 1, "seed": 0}) != group_key({"a": 2, "seed": 0})


def test_aggregate_groups_by_grid_cell():
    records = [record(s, r, v) for (s, r, v) in
               [(0, 1.0, 0.10), (1, 1.0, 0.20), (0, 0.5, 0.30), (1, 0.5, 0.40)]]
    summary = aggregate_records(records)
    assert summary["n_trials"] == 4 and summary["n_groups"] == 2
    by_rate = {g["params"]["attack_rate"]: g for g in summary["groups"]}
    assert by_rate[1.0]["seeds"] == [0, 1]
    assert by_rate[1.0]["metrics"]["final_malicious_fraction"]["mean"] == pytest.approx(0.15)
    assert by_rate[0.5]["metrics"]["final_malicious_fraction"]["mean"] == pytest.approx(0.35)


def test_aggregate_is_order_independent():
    records = [record(s, r, 0.1 * (s + 1) * r) for r in (1.0, 0.5) for s in (0, 1, 2)]
    summary_fwd = aggregate_records(records)
    summary_rev = aggregate_records(list(reversed(records)))
    assert summary_fwd == summary_rev


def test_aggregate_attaches_spec_metadata():
    spec = CampaignSpec(kind="security", name="meta", grid={"attack_rate": [1.0]}, seeds=(0, 1))
    summary = aggregate_records([record(0, 1.0, 0.1), record(1, 1.0, 0.2)], spec=spec)
    assert summary["name"] == "meta"
    assert summary["kind"] == "security"
    assert summary["n_trials_expected"] == 2


def test_ignored_axes_roll_up_per_base_kind():
    from repro.campaign import summarize_ignored_axes

    def scenario_record(trial_id, base_kind, ignored):
        return {
            "trial_id": trial_id,
            "kind": "scenario",
            "params": {"experiment": base_kind, "seed": 0},
            "metrics": {"m": 1.0},
            "detail": {"scenario": {"base_kind": base_kind, "ignored_axes": ignored}},
        }

    records = [
        scenario_record("a", "timing", ["churn", "workload"]),
        scenario_record("b", "timing", ["churn"]),
        scenario_record("c", "anonymity", ["workload"]),
        scenario_record("d", "efficiency", []),  # all applied: no contribution
        record(0, 1.0, 0.1),  # non-scenario records contribute nothing
    ]
    rollup = summarize_ignored_axes(records)
    assert rollup == {
        "anonymity": {"axes": ["workload"], "n_trials": 1},
        "timing": {"axes": ["churn", "workload"], "n_trials": 2},
    }
    summary = aggregate_records(records)
    assert summary["ignored_axes"] == rollup
    # The common all-applied case omits the key entirely.
    assert "ignored_axes" not in aggregate_records([record(0, 1.0, 0.1)])


def test_summary_rows_show_varied_params_and_ci():
    records = [record(s, r, 0.1) for r in (1.0, 0.5) for s in (0, 1)]
    headers, rows = summary_rows(aggregate_records(records))
    assert headers[0] == "attack_rate"
    assert "n_nodes" not in headers  # constant across groups -> hidden
    assert len(rows) == 2
    assert all("±" in str(row[-1]) for row in rows)


def test_summary_json_round_trip():
    records = [record(s, 1.0, 0.1 * s) for s in (0, 1, 2)]
    summary = aggregate_records(records)
    assert json.loads(json.dumps(summary)) == summary


def test_config_from_dict_coerces_and_rejects():
    config = config_from_dict(
        SecurityExperimentConfig,
        {"n_nodes": 60, "octopus": {"expected_network_size": 60}, "seed": 3},
    )
    assert config.n_nodes == 60
    assert config.octopus.expected_network_size == 60
    with pytest.raises(ValueError, match="unknown SecurityExperimentConfig parameters"):
        config_from_dict(SecurityExperimentConfig, {"n_nodez": 60})


def test_fractional_bandwidth_intervals_get_distinct_metric_keys():
    from repro.experiments.efficiency import (
        EfficiencyExperimentConfig,
        EfficiencyExperimentResult,
        SchemeEfficiency,
    )

    result = EfficiencyExperimentResult(config=EfficiencyExperimentConfig())
    result.schemes["chord"] = SchemeEfficiency(
        scheme="chord", mean_latency=1.0, median_latency=1.0, latency_cdf=[],
        bandwidth_kbps={7.0: 1.0, 7.5: 2.0}, lookups=1, correct_fraction=1.0,
    )
    metrics = result.scalar_metrics()
    assert metrics["chord_kbps_lk_int_7min"] == 1.0
    assert metrics["chord_kbps_lk_int_7.5min"] == 2.0


def test_percentile_linear_interpolation():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 50) == 3.0
    assert percentile(values, 100) == 5.0
    assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
    assert math.isnan(percentile([], 50))
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_percentile_from_cdf_scans_cumulative_fractions():
    cdf = [(0.1, 0.25), (0.2, 0.5), (0.4, 0.75), (0.8, 1.0)]
    assert percentile_from_cdf(cdf, 0.5) == 0.2
    assert percentile_from_cdf(cdf, 0.51) == 0.4
    assert percentile_from_cdf(cdf, 1.0) == 0.8
    # Tiny fractions map to the first point regardless of list length —
    # the indexing bug this helper replaced returned cdf[0] only by clamping.
    assert percentile_from_cdf(cdf, 0.01) == 0.1
    assert math.isnan(percentile_from_cdf([], 0.5))
    with pytest.raises(ValueError):
        percentile_from_cdf(cdf, 0.0)
