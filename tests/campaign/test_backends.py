"""Backend differential equivalence, queue fault injection, partial reports.

The differential suite is the determinism contract from PR 1/2 — serial and
parallel runs are byte-identical under ``strip_timing`` — now enforced across
all three execution backends: the same small multi-seed spec runs through
serial, process-pool and file-queue execution and every trial record plus the
summary must agree exactly on the timing-stripped view.

The fault-injection tests exercise the file-queue failure modes: a worker
dying mid-campaign (record deleted, stale claim left behind), a claim
orphaned inside ``queue/claims/``, and a partially-populated ``trials/``
directory — ``resume=True`` plus a fresh worker must finish the campaign
without re-running finished trials and must reclaim expired claims.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.campaign import (
    CampaignExecutionError,
    CampaignSpec,
    CampaignStore,
    FileQueueBackend,
    ProcessPoolBackend,
    SerialBackend,
    available_backends,
    canonical_json,
    make_backend,
    run_campaign,
    run_worker,
    strip_timing,
)
from repro.campaign.backends.queue import (
    claim_and_execute_batch,
    claim_and_execute_next,
    expensive_cost_keys,
)
from repro.campaign.spec import cost_key


@pytest.fixture
def small_spec() -> CampaignSpec:
    return CampaignSpec(
        kind="security",
        name="backend-test",
        base={"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0},
        grid={"attack_rate": [1.0, 0.5]},
        seeds=(0, 1),
    )


@pytest.fixture
def scenario_spec() -> CampaignSpec:
    """A scenario-kind campaign sweeping two presets at toy scale."""
    return CampaignSpec(
        kind="scenario",
        name="scenario-backend-test",
        base={"base": {"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0}},
        grid={"preset": ["heavy-tail-churn", "zipf-hotkeys"]},
        seeds=(0, 1),
    )


@pytest.fixture
def efficiency_scenario_spec() -> CampaignSpec:
    """An *efficiency*-kind scenario campaign under the zipf-hotkeys preset —
    the workload axis must apply (PR 5), not ride along ignored."""
    return CampaignSpec(
        kind="scenario",
        name="efficiency-scenario-backend-test",
        base={
            "experiment": "efficiency",
            "base": {"n_nodes": 40, "lookups_per_scheme": 4},
        },
        grid={"preset": ["paper-baseline", "zipf-hotkeys"]},
        seeds=(0, 1),
    )


@pytest.fixture
def load_spec() -> CampaignSpec:
    """An open-loop load sweep: the Poisson arrival process and owner-side
    queueing must reproduce byte-identically across backends."""
    return CampaignSpec(
        kind="load",
        name="load-backend-test",
        base={"n_nodes": 40, "duration": 10.0, "sample_interval": 5.0},
        grid={"offered_rps": [5.0, 20.0]},
        seeds=(0, 1),
    )


@pytest.fixture
def adaptive_spec() -> CampaignSpec:
    """An adaptive-kind campaign: mid-run controllers must not break the
    backend byte-equality contract."""
    return CampaignSpec(
        kind="adaptive",
        name="adaptive-backend-test",
        base={
            "base": {
                "n_nodes": 60,
                "duration": 30.0,
                "sample_interval": 10.0,
                "attack": "lookup-bias",
            }
        },
        grid={"attacker": ["static", "re-eclipse"]},
        seeds=(0, 1),
    )


def _stripped_outputs(out_dir):
    """(summary, {trial_id: record}) of a results dir, timing-stripped, as canonical JSON."""
    summary = canonical_json(strip_timing(json.loads((out_dir / "summary.json").read_text())))
    records = {
        path.stem: canonical_json(strip_timing(json.loads(path.read_text())))
        for path in sorted((out_dir / "trials").glob("*.json"))
    }
    return summary, records


# --------------------------------------------------------- differential suite


def test_backend_registry_names():
    assert available_backends() == ("pool", "queue", "serial")
    assert isinstance(make_backend(None, jobs=1), SerialBackend)
    assert isinstance(make_backend(None, jobs=3), ProcessPoolBackend)
    assert isinstance(make_backend("queue"), FileQueueBackend)
    passthrough = FileQueueBackend(claim_ttl_s=1.0)
    assert make_backend(passthrough) is passthrough
    with pytest.raises(ValueError, match="unknown backend"):
        make_backend("carrier-pigeon")


@pytest.mark.parametrize(
    "spec_fixture",
    ["small_spec", "scenario_spec", "efficiency_scenario_spec", "adaptive_spec", "load_spec"],
)
@pytest.mark.parametrize("backend", ["pool", "queue"])
def test_differential_backend_equivalence(request, tmp_path, backend, spec_fixture):
    """Serial, pool and queue runs of one spec are byte-identical under
    strip_timing — for the plain security kind and the scenario kind alike
    (including efficiency-based scenarios, whose workload axis applies)."""
    spec = request.getfixturevalue(spec_fixture)
    reference = run_campaign(spec, out_dir=tmp_path / "serial", backend="serial")
    report = run_campaign(spec, out_dir=tmp_path / backend, jobs=2, backend=backend)
    assert report.n_executed == 4 and report.n_skipped == 0
    # Same ids, in spec order, regardless of completion order.
    assert report.executed_trial_ids == reference.executed_trial_ids

    ref_summary, ref_records = _stripped_outputs(tmp_path / "serial")
    got_summary, got_records = _stripped_outputs(tmp_path / backend)
    assert got_records == ref_records
    assert got_summary == ref_summary


def test_efficiency_scenario_applies_every_axis(efficiency_scenario_spec, tmp_path):
    """Post-tentpole: an efficiency scenario under zipf-hotkeys ignores no
    axis — the records say 'workload' applied and the summary carries no
    ignored_axes rollup (so the CLI prints no warning)."""
    report = run_campaign(efficiency_scenario_spec, out_dir=tmp_path / "eff")
    assert "ignored_axes" not in report.summary
    store = CampaignStore(tmp_path / "eff")
    for trial in efficiency_scenario_spec.expand():
        record = store.load_trial(trial.trial_id)
        scenario = record["detail"]["scenario"]
        assert scenario["ignored_axes"] == [], trial.trial_id
        expected = ["workload"] if trial.params["preset"] == "zipf-hotkeys" else []
        assert scenario["applied_axes"] == expected, trial.trial_id


def test_queue_backend_drains_its_own_queue(small_spec, tmp_path):
    """A --backend queue run with no external workers still completes and
    leaves an empty queue behind."""
    out = tmp_path / "solo-queue"
    report = run_campaign(small_spec, out_dir=out, backend="queue")
    assert report.n_executed == 4
    store = CampaignStore(out)
    assert store.queue_drained()
    assert not list(store.pending_dir.glob("*")) and not list(store.claims_dir.glob("*"))


def test_queue_rerun_without_resume_reexecutes_like_other_backends(small_spec, tmp_path):
    """A second run without --resume must re-execute under the queue backend
    too — leftover records may not be served as fresh results."""
    out = tmp_path / "rerun-queue"
    run_campaign(small_spec, out_dir=out, backend="queue")
    store = CampaignStore(out)
    victim = small_spec.expand()[0]
    tampered = json.loads(store.trial_path(victim.trial_id).read_text())
    tampered["metrics"] = {"stale_sentinel": 1.0}
    store.write_trial(tampered)

    report = run_campaign(small_spec, out_dir=out, backend="queue")
    assert report.n_executed == 4 and report.n_skipped == 0
    fresh = store.load_trial(victim.trial_id)
    assert "stale_sentinel" not in fresh["metrics"]  # really re-executed


def test_jobs_one_default_still_serial(small_spec, tmp_path):
    report = run_campaign(small_spec, out_dir=tmp_path / "default", jobs=1)
    assert report.n_executed == 4
    assert not (tmp_path / "default" / "queue").exists()


# ------------------------------------------------------- queue claim protocol


def test_enqueue_is_idempotent_and_claims_are_exclusive(small_spec, tmp_path):
    store = CampaignStore(tmp_path / "q")
    store.ensure_queue_layout()
    trial = small_spec.expand()[0]
    assert store.enqueue_trial(0, trial.to_dict()) is True
    assert store.enqueue_trial(0, trial.to_dict()) is False  # already pending
    [pending] = store.list_pending()
    assert store._job_trial_id(pending) == trial.trial_id

    job = store.claim_job(pending, "worker-a")
    assert job is not None and job["worker"] == "worker-a"
    assert store.claim_job(pending, "worker-b") is None  # rename already won
    assert store.enqueue_trial(0, trial.to_dict()) is False  # claimed
    assert not store.list_pending() and len(store.list_claims()) == 1

    # Completing drops the claim; with a record on disk the trial can never
    # be enqueued again.
    store.write_trial({"trial_id": trial.trial_id, "metrics": {"m": 1.0}})
    store.complete_job(trial.trial_id)
    assert store.queue_drained()
    assert store.enqueue_trial(0, trial.to_dict()) is False


def test_sweep_requeues_expired_claims_and_clears_finished_ones(small_spec, tmp_path):
    store = CampaignStore(tmp_path / "q")
    store.ensure_queue_layout()
    t_dead, t_done = small_spec.expand()[:2]

    # t_dead: claimed long ago by a worker that died mid-trial.
    store.enqueue_trial(3, t_dead.to_dict())
    job = store.claim_job(store.list_pending()[0], "dead-worker")
    assert job is not None
    stale = dict(job, claimed_at=time.time() - 3600.0)
    store.claim_path(t_dead.trial_id).write_text(json.dumps(stale))

    # t_done: worker died after writing the record but before dropping the claim.
    store.enqueue_trial(4, t_done.to_dict())
    assert store.claim_job(store.list_pending()[0], "other-worker") is not None
    store.write_trial({"trial_id": t_done.trial_id, "metrics": {"m": 1.0}})

    assert store.sweep_claims(claim_ttl_s=60.0) == [t_dead.trial_id]
    [requeued] = store.list_pending()
    assert store._job_trial_id(requeued) == t_dead.trial_id
    assert requeued.name.startswith("000003-")  # original dispatch slot kept
    assert store.list_claims() == []

    # A fresh (young) claim is left alone.
    assert store.claim_job(requeued, "live-worker") is not None
    assert store.sweep_claims(claim_ttl_s=60.0) == []
    assert len(store.list_claims()) == 1


def test_sweep_reclaims_ahead_skewed_claims_by_local_observation(small_spec, tmp_path):
    """A dead worker whose clock ran ahead writes claimed_at 'in the future';
    wall-clock age never exceeds the TTL, but a sweeper that watches the
    claim sit unchanged for a full TTL on its own clock reclaims it anyway —
    the campaign can't hang on cross-host clock skew."""
    store = CampaignStore(tmp_path / "q")
    store.ensure_queue_layout()
    trial = small_spec.expand()[0]
    store.enqueue_trial(5, trial.to_dict())
    job = store.claim_job(store.list_pending()[0], "skewed-dead-worker")
    ahead = dict(job, claimed_at=time.time() + 3600.0)  # clock an hour ahead
    store.claim_path(trial.trial_id).write_text(json.dumps(ahead))

    ttl = 0.05
    assert store.sweep_claims(claim_ttl_s=ttl) == []  # first sight: start watching
    time.sleep(ttl * 3)
    assert store.sweep_claims(claim_ttl_s=ttl) == [trial.trial_id]
    [requeued] = store.list_pending()
    assert requeued.name.startswith("000005-")


def test_claim_and_execute_skips_trials_already_recorded(small_spec, tmp_path):
    """A claim whose trial already has a record is cleared, not re-run."""
    out = tmp_path / "dup"
    run_campaign(small_spec, out_dir=out, backend="serial")
    store = CampaignStore(out)
    trial = small_spec.expand()[0]
    before = store.trial_path(trial.trial_id).read_text()
    store.ensure_queue_layout()
    # enqueue_trial refuses recorded trials, so forge the stale job file a
    # crashed earlier producer could have left behind.
    job = dict(trial.to_dict(), order=0)
    store.pending_job_path(0, trial.trial_id).write_text(json.dumps(job))
    record, ran = claim_and_execute_next(store, "w")
    assert record is not None and record["trial_id"] == trial.trial_id
    assert ran is False  # nothing executed — callers must not count this
    assert store.trial_path(trial.trial_id).read_text() == before  # untouched
    assert store.queue_drained()


# ----------------------------------------------------------- batched claiming


def _enqueue_all(store, spec):
    store.ensure_queue_layout()
    trials = spec.expand()
    for order, trial in enumerate(trials):
        store.enqueue_trial(order, trial.to_dict())
    return trials


def test_peek_job_is_advisory(small_spec, tmp_path):
    store = CampaignStore(tmp_path / "peek")
    trials = _enqueue_all(store, small_spec)
    [first, *_] = store.list_pending()
    peeked = store.peek_job(first)
    assert peeked is not None and peeked["trial_id"] == trials[0].trial_id
    assert len(store.list_pending()) == 4  # nothing claimed by peeking
    assert store.claim_job(first, "w") is not None
    assert store.peek_job(first) is None  # vanished after the claim rename


def test_batch_claims_only_seed_siblings(small_spec, tmp_path):
    """A batch stops at the cost-key boundary: the 0.5-rate cell stays
    pending even though the batch had room for it."""
    store = CampaignStore(tmp_path / "batch")
    trials = _enqueue_all(store, small_spec)
    batch = claim_and_execute_batch(store, "w", batch_size=4)
    assert [str(r["trial_id"]) for r, _ran in batch] == [
        t.trial_id for t in trials if t.params["attack_rate"] == 1.0
    ]
    assert all(ran for _r, ran in batch)
    remaining = {store._job_trial_id(p) for p in store.list_pending()}
    assert remaining == {t.trial_id for t in trials if t.params["attack_rate"] == 0.5}
    assert store.list_claims() == []  # every executed claim was completed


def test_batch_size_one_delegates_to_single_claim(small_spec, tmp_path):
    store = CampaignStore(tmp_path / "single")
    _enqueue_all(store, small_spec)
    batch = claim_and_execute_batch(store, "w", batch_size=1)
    assert len(batch) == 1
    assert len(store.list_pending()) == 3


def test_expensive_anchor_claims_singly(small_spec, tmp_path):
    store = CampaignStore(tmp_path / "expensive")
    trials = _enqueue_all(store, small_spec)
    anchor_key = trials[0].cost_key
    batch = claim_and_execute_batch(
        store, "w", batch_size=4, expensive_keys=frozenset({anchor_key})
    )
    assert len(batch) == 1  # the expensive cell's seed sibling was left alone
    assert len(store.list_pending()) == 3


def test_expensive_cost_keys_reads_summary_timing(small_spec, tmp_path):
    store = CampaignStore(tmp_path / "timing")
    assert expensive_cost_keys(store) == frozenset()  # no summary yet
    slow = cost_key("security", {"n_nodes": 60, "seed": 0})
    fast = cost_key("security", {"n_nodes": 20, "seed": 0})
    store.write_summary(
        {
            "timing": {
                "cells": {
                    slow: {"mean_elapsed_s": 12.0},
                    fast: {"mean_elapsed_s": 0.2},
                }
            }
        }
    )
    assert expensive_cost_keys(store, threshold_s=5.0) == frozenset({slow})
    assert expensive_cost_keys(store, threshold_s=0.1) == frozenset({slow, fast})


def test_batch_failure_requeues_every_unexecuted_claim(tmp_path):
    """A mid-batch crash loses nothing: the failing job and everything still
    unexecuted behind it go straight back to pending (no claim-TTL wait)."""
    poisoned = CampaignSpec(
        kind="security",
        name="poisoned-batch",
        base={"n_nodes": "boom", "duration": 15.0, "sample_interval": 5.0},
        grid={},
        seeds=(0, 1, 2),
    )
    store = CampaignStore(tmp_path / "crash")
    trials = _enqueue_all(store, poisoned)
    with pytest.raises(Exception):
        claim_and_execute_batch(store, "w", batch_size=3)
    assert store.list_claims() == []
    requeued = {store._job_trial_id(p) for p in store.list_pending()}
    assert requeued == {t.trial_id for t in trials}


def test_queue_backend_with_claim_batch_matches_serial(small_spec, tmp_path):
    """Batching changes claim grouping only — records and summary stay
    byte-identical to the serial reference."""
    reference = run_campaign(small_spec, out_dir=tmp_path / "serial", backend="serial")
    report = run_campaign(
        small_spec,
        out_dir=tmp_path / "batched",
        backend=FileQueueBackend(claim_batch=3, poll_interval_s=0.01),
    )
    assert report.executed_trial_ids == reference.executed_trial_ids
    ref_summary, ref_records = _stripped_outputs(tmp_path / "serial")
    got_summary, got_records = _stripped_outputs(tmp_path / "batched")
    assert got_records == ref_records
    assert got_summary == ref_summary


def test_worker_claim_batch_respects_max_trials(small_spec, tmp_path):
    """--claim-batch must not overshoot --max-trials: the batch is capped at
    what the worker is still allowed to execute."""
    out = tmp_path / "capped-batch"
    store = CampaignStore(out)
    _enqueue_all(store, small_spec)
    assert run_worker(out, max_trials=1, wait_for_queue_s=0, claim_batch=4) == 1
    assert len(store.list_pending()) == 3


def test_claim_batch_validation():
    with pytest.raises(ValueError, match="claim_batch"):
        FileQueueBackend(claim_batch=0)
    with pytest.raises(ValueError, match="claim_batch"):
        run_worker("/nonexistent", claim_batch=0)


# ------------------------------------------------------------ fault injection


def test_resume_after_worker_death_reclaims_and_completes(small_spec, tmp_path):
    """Worker died mid-campaign: partial trials/, stale claim. resume=True on
    the queue backend reclaims the expired claim and finishes without
    re-running the trials that already have records."""
    out = tmp_path / "crashed"
    run_campaign(small_spec, out_dir=out, backend="queue")
    store = CampaignStore(out)
    victim = small_spec.expand()[2]

    # Forge the crash: the victim's record never landed, its job sits claimed
    # by a long-dead worker.
    store.trial_path(victim.trial_id).unlink()
    store.ensure_queue_layout()
    store.enqueue_trial(2, victim.to_dict())
    job = store.claim_job(store.list_pending()[0], "dead-worker")
    stale = dict(job, claimed_at=time.time() - 3600.0)
    store.claim_path(victim.trial_id).write_text(json.dumps(stale))

    report = run_campaign(
        small_spec,
        out_dir=out,
        resume=True,
        backend=FileQueueBackend(claim_ttl_s=60.0, poll_interval_s=0.01),
    )
    assert report.executed_trial_ids == [victim.trial_id]
    assert report.n_skipped == 3
    assert report.summary["n_trials"] == 4
    assert store.queue_drained()


def test_fresh_worker_drains_an_abandoned_queue(small_spec, tmp_path):
    """A producer that enqueued everything and died: a fresh campaign-worker
    alone completes every trial, then resume finds nothing left to do."""
    out = tmp_path / "abandoned"
    store = CampaignStore(out)
    store.ensure_queue_layout()
    store.write_spec(small_spec)
    trials = small_spec.expand()
    for order, trial in enumerate(trials):
        store.enqueue_trial(order, trial.to_dict())
    # One job was additionally claimed by a worker that died an hour ago.
    job = store.claim_job(store.list_pending()[0], "dead-worker")
    stale = dict(job, claimed_at=time.time() - 3600.0)
    store.claim_path(str(job["trial_id"])).write_text(json.dumps(stale))

    executed = run_worker(out, claim_ttl_s=0.5, poll_interval_s=0.01, wait_for_queue_s=0)
    assert executed == len(trials)
    assert store.queue_drained()
    assert {t.trial_id for t in trials} == {
        p.stem for p in store.trials_dir.glob("*.json")
    }

    report = run_campaign(small_spec, out_dir=out, resume=True, backend="queue")
    assert report.n_executed == 0 and report.n_skipped == 4
    assert report.summary["n_trials"] == 4


def test_worker_times_out_when_no_queue_appears(tmp_path):
    assert run_worker(tmp_path / "nothing-here", wait_for_queue_s=0.05) == 0


def test_worker_does_not_mistake_mid_enqueue_queue_for_finished(small_spec, tmp_path):
    """An empty queue without the producer's enqueue-complete marker means
    "still being populated": the worker keeps polling (within its wait
    budget) instead of exiting after zero trials; once the marker lands,
    drained really does mean done."""
    out = tmp_path / "racing"
    store = CampaignStore(out)
    store.ensure_queue_layout()  # what a producer does before its first enqueue

    start = time.monotonic()
    assert run_worker(out, poll_interval_s=0.01, wait_for_queue_s=0.3) == 0
    assert time.monotonic() - start >= 0.3  # waited the full budget

    store.mark_enqueue_complete(0)
    start = time.monotonic()
    assert run_worker(out, poll_interval_s=0.01, wait_for_queue_s=30.0) == 0
    assert time.monotonic() - start < 5.0  # sealed + drained: immediate exit


def test_producer_seals_the_queue_after_enqueueing(small_spec, tmp_path):
    out = tmp_path / "sealed"
    run_campaign(small_spec, out_dir=out, backend="queue")
    store = CampaignStore(out)
    assert store.enqueue_complete()
    # A later producer run re-opens it before enqueueing and seals it again.
    run_campaign(small_spec, out_dir=out, resume=True, backend="queue")
    assert store.enqueue_complete()


def test_worker_respects_max_trials(small_spec, tmp_path):
    out = tmp_path / "capped"
    store = CampaignStore(out)
    store.ensure_queue_layout()
    for order, trial in enumerate(small_spec.expand()):
        store.enqueue_trial(order, trial.to_dict())
    assert run_worker(out, max_trials=1, wait_for_queue_s=0) == 1
    assert len(store.list_pending()) == 3


# ----------------------------------------------- partial reports on failure


@pytest.fixture
def poisoned_spec() -> CampaignSpec:
    """Four trials; the two with n_nodes='boom' raise inside the worker."""
    return CampaignSpec(
        kind="security",
        name="poisoned",
        base={"duration": 15.0, "sample_interval": 5.0},
        grid={"n_nodes": [60, "boom"]},
        seeds=(0, 1),
    )


def test_serial_failure_keeps_earlier_trials_in_report(poisoned_spec, tmp_path):
    """Regression for the _run_parallel id loss: ids are appended as each
    record is persisted, so a later raising trial cannot discard them."""
    out = tmp_path / "serial-fail"
    with pytest.raises(CampaignExecutionError) as err:
        run_campaign(poisoned_spec, out_dir=out, backend="serial")
    report = err.value.report
    good = [t.trial_id for t in poisoned_spec.expand() if t.params["n_nodes"] == 60]
    assert report.executed_trial_ids == good
    assert err.value.__cause__ is not None  # original worker error is chained
    # The partial summary covers exactly the persisted records.
    summary = json.loads((out / "summary.json").read_text())
    assert summary["n_trials"] == 2 and summary["n_trials_expected"] == 4


@pytest.mark.parametrize("backend", ["pool", "queue"])
def test_parallel_failure_accounts_every_persisted_record(poisoned_spec, tmp_path, backend):
    """However the race falls, the partial report's executed ids are exactly
    the records on disk, in spec order — never fewer (the old bug) and never
    phantom ids without records."""
    out = tmp_path / f"{backend}-fail"
    with pytest.raises(CampaignExecutionError) as err:
        run_campaign(poisoned_spec, out_dir=out, jobs=2, backend=backend)
    report = err.value.report
    on_disk = {p.stem for p in (out / "trials").glob("*.json")}
    assert set(report.executed_trial_ids) == on_disk
    if backend == "queue":
        # The failing trial's claim must not linger: recovery should find the
        # job back in pending/ immediately, not after a claim-TTL wait.
        store = CampaignStore(out)
        assert store.list_claims() == []
        requeued = {store._job_trial_id(p) for p in store.list_pending()}
        boom = {t.trial_id for t in poisoned_spec.expand() if t.params["n_nodes"] == "boom"}
        assert boom <= requeued
    spec_order = {t.trial_id: i for i, t in enumerate(poisoned_spec.expand())}
    assert report.executed_trial_ids == sorted(
        report.executed_trial_ids, key=spec_order.__getitem__
    )
    summary = json.loads((out / "summary.json").read_text())
    assert summary["n_trials"] == len(on_disk)
    # resume picks up cleanly after the poison is fixed — including under the
    # queue backend, which must purge the requeued poisoned jobs instead of
    # claiming and failing on them forever
    fixed = CampaignSpec(
        kind=poisoned_spec.kind,
        name=poisoned_spec.name,
        base=poisoned_spec.base,
        grid={"n_nodes": [60]},
        seeds=poisoned_spec.seeds,
    )
    resumed = run_campaign(fixed, out_dir=out, resume=True, backend=backend)
    assert resumed.n_executed + resumed.n_skipped == 2
    if backend == "queue":
        store = CampaignStore(out)
        assert store.queue_drained()  # poisoned leftovers are gone
