"""End-to-end runner behaviour: parallel equality, resume, persistence.

The campaigns here use the security experiment at toy scale (60 nodes, 15
simulated seconds, ~0.1 s per trial) so the whole file stays fast while still
exercising the real experiment entry points across process boundaries.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    canonical_json,
    load_campaign_results,
    run_campaign,
    strip_timing,
)


@pytest.fixture
def small_spec() -> CampaignSpec:
    return CampaignSpec(
        kind="security",
        name="runner-test",
        base={"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0},
        grid={"attack_rate": [1.0, 0.5]},
        seeds=(0, 1),
    )


def test_serial_run_writes_trials_and_summary(small_spec, tmp_path):
    out = tmp_path / "serial"
    report = run_campaign(small_spec, out_dir=out, jobs=1)
    assert report.n_executed == 4 and report.n_skipped == 0
    assert (out / "spec.json").is_file()
    assert (out / "summary.json").is_file()
    trial_files = sorted((out / "trials").glob("*.json"))
    assert len(trial_files) == 4
    record = json.loads(trial_files[0].read_text())
    assert record["kind"] == "security"
    assert "final_malicious_fraction" in record["metrics"]
    assert record["detail"]["config"]["n_nodes"] == 60


def test_parallel_equals_serial_on_fixed_seeds(small_spec, tmp_path):
    """Byte-identical serial/parallel outputs — on the timing-stripped view.

    Wall-clock is the one intentionally non-deterministic field, so equality
    is asserted on canonical JSON bytes after ``strip_timing``; a companion
    test below pins down that timing is the *only* excluded field.
    """
    serial = run_campaign(small_spec, out_dir=tmp_path / "serial", jobs=1)
    parallel = run_campaign(small_spec, out_dir=tmp_path / "parallel", jobs=2)
    assert canonical_json(strip_timing(serial.summary)) == canonical_json(
        strip_timing(parallel.summary)
    )
    for trial in small_spec.expand():
        ser = json.loads((tmp_path / "serial" / "trials" / f"{trial.trial_id}.json").read_text())
        par = json.loads((tmp_path / "parallel" / "trials" / f"{trial.trial_id}.json").read_text())
        assert canonical_json(strip_timing(ser)) == canonical_json(strip_timing(par))


def test_timing_is_the_only_field_excluded_from_determinism(small_spec, tmp_path):
    """The stripped view differs from the full record only by 'timing'."""
    run_campaign(small_spec, out_dir=tmp_path / "out", jobs=1)
    for path in sorted((tmp_path / "out" / "trials").glob("*.json")):
        record = json.loads(path.read_text())
        stripped = strip_timing(record)
        assert "timing" not in stripped
        assert set(record) - set(stripped) == {"timing"}
        assert all(stripped[k] == record[k] for k in stripped)
    summary = json.loads((tmp_path / "out" / "summary.json").read_text())
    assert set(summary) - set(strip_timing(summary)) == {"timing"}


def test_trial_records_capture_wall_clock(small_spec, tmp_path):
    report = run_campaign(small_spec, out_dir=tmp_path / "timed", jobs=1)
    elapsed = []
    for path in sorted((tmp_path / "timed" / "trials").glob("*.json")):
        record = json.loads(path.read_text())
        assert isinstance(record["timing"]["elapsed_s"], float)
        assert record["timing"]["elapsed_s"] >= 0.0
        # Wall-clock never leaks into the aggregated metrics.
        assert "elapsed_s" not in record["metrics"]
        elapsed.append(record["timing"]["elapsed_s"])
    timing = report.summary["timing"]
    assert timing["n"] == 4
    assert timing["total_elapsed_s"] == pytest.approx(sum(elapsed))
    assert timing["mean_elapsed_s"] == pytest.approx(sum(elapsed) / 4)
    assert timing["min_elapsed_s"] == min(elapsed)
    assert timing["max_elapsed_s"] == max(elapsed)
    # Group metric summaries stay free of timing-derived entries.
    for group in report.summary["groups"]:
        assert not any("elapsed" in name for name in group["metrics"])


def test_summary_timing_tolerates_untimed_records(small_spec, tmp_path):
    """Records written before timing capture existed still aggregate fine."""
    out = tmp_path / "mixed"
    report = run_campaign(small_spec, out_dir=out, jobs=1)
    store = CampaignStore(out)
    victim = small_spec.expand()[0]
    legacy = json.loads(store.trial_path(victim.trial_id).read_text())
    del legacy["timing"]
    store.write_trial(legacy)
    resumed = run_campaign(small_spec, out_dir=out, jobs=1, resume=True)
    assert resumed.n_executed == 0  # a missing timing block is not incompleteness
    assert resumed.summary["timing"]["n"] == 3
    assert resumed.summary["timing"]["total_elapsed_s"] < report.summary["timing"]["total_elapsed_s"]


def test_resume_skips_completed_trials(small_spec, tmp_path):
    out = tmp_path / "resumed"
    run_campaign(small_spec, out_dir=out, jobs=1)
    events = []
    report = run_campaign(
        small_spec,
        out_dir=out,
        jobs=1,
        resume=True,
        progress=lambda event, trial_id, done, total: events.append(event),
    )
    assert report.n_executed == 0
    assert report.n_skipped == 4
    assert events == ["skip"] * 4
    assert report.summary["n_trials"] == 4


def test_resume_runs_only_missing_trials(small_spec, tmp_path):
    out = tmp_path / "partial"
    run_campaign(small_spec, out_dir=out, jobs=1)
    victim = small_spec.expand()[2]
    store = CampaignStore(out)
    store.trial_path(victim.trial_id).unlink()
    report = run_campaign(small_spec, out_dir=out, jobs=1, resume=True)
    assert report.executed_trial_ids == [victim.trial_id]
    assert report.n_skipped == 3


def test_without_resume_everything_reruns(small_spec, tmp_path):
    out = tmp_path / "rerun"
    run_campaign(small_spec, out_dir=out, jobs=1)
    report = run_campaign(small_spec, out_dir=out, jobs=1)
    assert report.n_executed == 4 and report.n_skipped == 0


def test_corrupt_trial_record_is_not_treated_as_complete(small_spec, tmp_path):
    out = tmp_path / "corrupt"
    run_campaign(small_spec, out_dir=out, jobs=1)
    victim = small_spec.expand()[0]
    store = CampaignStore(out)
    store.trial_path(victim.trial_id).write_text("{not json")
    report = run_campaign(small_spec, out_dir=out, jobs=1, resume=True)
    assert report.executed_trial_ids == [victim.trial_id]


def test_truncated_trial_record_reruns_without_crashing(small_spec, tmp_path):
    """A record cut mid-write (e.g. kill -9 before the atomic rename landed,
    or a copied half-file) must be treated as absent: the trial re-runs and
    the resumed campaign completes with a full summary."""
    out = tmp_path / "truncated"
    run_campaign(small_spec, out_dir=out, jobs=1)
    victim = small_spec.expand()[1]
    store = CampaignStore(out)
    full_text = store.trial_path(victim.trial_id).read_text()
    store.trial_path(victim.trial_id).write_text(full_text[: len(full_text) // 2])
    assert store.load_trial(victim.trial_id) is None
    report = run_campaign(small_spec, out_dir=out, jobs=1, resume=True)
    assert report.executed_trial_ids == [victim.trial_id]
    assert report.n_skipped == 3
    assert report.summary["n_trials"] == 4
    repaired = store.load_trial(victim.trial_id)
    assert repaired is not None and "metrics" in repaired


def test_valid_json_without_metrics_also_reruns(small_spec, tmp_path):
    """Truncation can also leave parseable-but-incomplete JSON (e.g. an empty
    object) — completeness requires the 'metrics' mapping, not just parsing."""
    out = tmp_path / "no-metrics"
    run_campaign(small_spec, out_dir=out, jobs=1)
    victim = small_spec.expand()[3]
    store = CampaignStore(out)
    store.trial_path(victim.trial_id).write_text('{"trial_id": "%s"}' % victim.trial_id)
    report = run_campaign(small_spec, out_dir=out, jobs=1, resume=True)
    assert report.executed_trial_ids == [victim.trial_id]


def test_resume_preserves_original_trial_timing(small_spec, tmp_path):
    """Skipped trials keep the wall-clock of the run that produced them."""
    out = tmp_path / "keep-timing"
    run_campaign(small_spec, out_dir=out, jobs=1)
    store = CampaignStore(out)
    first = small_spec.expand()[0]
    before = store.load_trial(first.trial_id)["timing"]["elapsed_s"]
    report = run_campaign(small_spec, out_dir=out, jobs=1, resume=True)
    assert report.n_skipped == 4
    assert store.load_trial(first.trial_id)["timing"]["elapsed_s"] == before


def test_load_campaign_results_round_trip(small_spec, tmp_path):
    out = tmp_path / "loaded"
    report = run_campaign(small_spec, out_dir=out, jobs=1)
    results = load_campaign_results(out)
    assert results.spec.to_dict() == small_spec.to_dict()
    assert len(results.records) == 4
    assert results.summary == report.summary
    assert len(results.metric_values("final_malicious_fraction")) == 4
    elapsed = results.elapsed_values()
    assert len(elapsed) == 4 and all(e >= 0.0 for e in elapsed)
    assert sum(elapsed) == pytest.approx(results.summary["timing"]["total_elapsed_s"])


def test_bad_jobs_rejected(small_spec, tmp_path):
    with pytest.raises(ValueError, match="jobs"):
        run_campaign(small_spec, out_dir=tmp_path, jobs=0)
