"""End-to-end runner behaviour: parallel equality, resume, persistence.

The campaigns here use the security experiment at toy scale (60 nodes, 15
simulated seconds, ~0.1 s per trial) so the whole file stays fast while still
exercising the real experiment entry points across process boundaries.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignSpec, CampaignStore, load_campaign_results, run_campaign


@pytest.fixture
def small_spec() -> CampaignSpec:
    return CampaignSpec(
        kind="security",
        name="runner-test",
        base={"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0},
        grid={"attack_rate": [1.0, 0.5]},
        seeds=(0, 1),
    )


def test_serial_run_writes_trials_and_summary(small_spec, tmp_path):
    out = tmp_path / "serial"
    report = run_campaign(small_spec, out_dir=out, jobs=1)
    assert report.n_executed == 4 and report.n_skipped == 0
    assert (out / "spec.json").is_file()
    assert (out / "summary.json").is_file()
    trial_files = sorted((out / "trials").glob("*.json"))
    assert len(trial_files) == 4
    record = json.loads(trial_files[0].read_text())
    assert record["kind"] == "security"
    assert "final_malicious_fraction" in record["metrics"]
    assert record["detail"]["config"]["n_nodes"] == 60


def test_parallel_equals_serial_on_fixed_seeds(small_spec, tmp_path):
    serial = run_campaign(small_spec, out_dir=tmp_path / "serial", jobs=1)
    parallel = run_campaign(small_spec, out_dir=tmp_path / "parallel", jobs=2)
    assert serial.summary == parallel.summary
    for trial in small_spec.expand():
        ser = json.loads((tmp_path / "serial" / "trials" / f"{trial.trial_id}.json").read_text())
        par = json.loads((tmp_path / "parallel" / "trials" / f"{trial.trial_id}.json").read_text())
        assert ser == par


def test_resume_skips_completed_trials(small_spec, tmp_path):
    out = tmp_path / "resumed"
    run_campaign(small_spec, out_dir=out, jobs=1)
    events = []
    report = run_campaign(
        small_spec,
        out_dir=out,
        jobs=1,
        resume=True,
        progress=lambda event, trial_id, done, total: events.append(event),
    )
    assert report.n_executed == 0
    assert report.n_skipped == 4
    assert events == ["skip"] * 4
    assert report.summary["n_trials"] == 4


def test_resume_runs_only_missing_trials(small_spec, tmp_path):
    out = tmp_path / "partial"
    run_campaign(small_spec, out_dir=out, jobs=1)
    victim = small_spec.expand()[2]
    store = CampaignStore(out)
    store.trial_path(victim.trial_id).unlink()
    report = run_campaign(small_spec, out_dir=out, jobs=1, resume=True)
    assert report.executed_trial_ids == [victim.trial_id]
    assert report.n_skipped == 3


def test_without_resume_everything_reruns(small_spec, tmp_path):
    out = tmp_path / "rerun"
    run_campaign(small_spec, out_dir=out, jobs=1)
    report = run_campaign(small_spec, out_dir=out, jobs=1)
    assert report.n_executed == 4 and report.n_skipped == 0


def test_corrupt_trial_record_is_not_treated_as_complete(small_spec, tmp_path):
    out = tmp_path / "corrupt"
    run_campaign(small_spec, out_dir=out, jobs=1)
    victim = small_spec.expand()[0]
    store = CampaignStore(out)
    store.trial_path(victim.trial_id).write_text("{not json")
    report = run_campaign(small_spec, out_dir=out, jobs=1, resume=True)
    assert report.executed_trial_ids == [victim.trial_id]


def test_load_campaign_results_round_trip(small_spec, tmp_path):
    out = tmp_path / "loaded"
    report = run_campaign(small_spec, out_dir=out, jobs=1)
    results = load_campaign_results(out)
    assert results.spec.to_dict() == small_spec.to_dict()
    assert len(results.records) == 4
    assert results.summary == report.summary
    assert len(results.metric_values("final_malicious_fraction")) == 4


def test_bad_jobs_rejected(small_spec, tmp_path):
    with pytest.raises(ValueError, match="jobs"):
        run_campaign(small_spec, out_dir=tmp_path, jobs=0)
