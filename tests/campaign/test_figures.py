"""The figure-adapter registry: every paper figure maps to campaign data.

These tests pin the tentpole contract of the adapter layer: all 14 benchmarks
are registered, each names a real benchmark file that actually consumes its
adapter via ``report_campaign``, metric patterns resolve against genuine
summaries, and rendering degrades to a one-line note instead of failing when
handed a campaign of the wrong kind.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    FigureAdapter,
    aggregate_records,
    available_figures,
    available_kinds,
    figure_aggregate_rows,
    get_figure,
    register_figure,
    render_figure_aggregates,
    run_campaign,
)
from repro.campaign.figures import _REGISTRY

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"

ALL_FIGURES = (
    "fig3a", "fig3b", "fig3c", "fig4",
    "fig5a", "fig5b", "fig5c", "fig6",
    "fig7a", "fig7b", "fig9",
    "table1", "table2", "table3",
)


def fake_summary(metric_names, params=({"attack_rate": 1.0}, {"attack_rate": 0.5})):
    """A minimal two-group summary with the given metric names."""
    records = []
    for cell in params:
        for seed in (0, 1):
            records.append(
                {
                    "trial_id": f"s{seed}-{abs(hash(str(cell))) % 10**8:08x}",
                    "kind": "security",
                    "params": {**cell, "seed": seed},
                    "metrics": {name: float(seed + 1) for name in metric_names},
                }
            )
    return aggregate_records(records)


class TestRegistry:
    def test_all_fourteen_figures_registered(self):
        assert set(available_figures()) == set(ALL_FIGURES)

    def test_every_adapter_points_at_a_known_kind_and_real_bench_file(self):
        for figure in available_figures():
            adapter = get_figure(figure)
            assert adapter.kind in available_kinds(), figure
            assert (BENCH_DIR / adapter.bench).is_file(), adapter.bench
            assert adapter.metrics, figure
            assert adapter.title

    def test_every_benchmark_consumes_its_adapter(self):
        """Each bench file takes the campaign_results fixture and reports via
        its own figure key — the acceptance criterion that all 14 benchmarks
        accept --campaign-results, checked at the source level."""
        for figure in available_figures():
            adapter = get_figure(figure)
            source = (BENCH_DIR / adapter.bench).read_text()
            assert re.search(r"def test_\w+\([^)]*campaign_results", source), adapter.bench
            assert f'report_campaign(campaign_results, "{figure}")' in source, adapter.bench

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError, match="unknown figure"):
            get_figure("fig99")

    def test_duplicate_registration_rejected_unless_replace(self):
        adapter = get_figure("fig3a")
        with pytest.raises(ValueError, match="already registered"):
            register_figure(adapter)
        register_figure(adapter, replace=True)  # no-op override allowed
        assert _REGISTRY["fig3a"] is adapter


class TestMetricResolution:
    def test_exact_names_resolve_in_pattern_order(self):
        adapter = get_figure("fig3a")
        summary = fake_summary(
            ["false_positive_rate", "final_malicious_fraction", "initial_malicious_fraction"]
        )
        assert adapter.resolve_metrics(summary) == [
            "initial_malicious_fraction",
            "final_malicious_fraction",
            "false_positive_rate",
        ]

    def test_glob_patterns_match_scheme_derived_names(self):
        adapter = get_figure("fig7a")
        summary = fake_summary(
            ["chord_mean_latency_s", "octopus_mean_latency_s", "halo_median_latency_s",
             "chord_correct_fraction"]
        )
        resolved = adapter.resolve_metrics(summary)
        assert resolved == [
            "chord_mean_latency_s",
            "octopus_mean_latency_s",
            "halo_median_latency_s",
        ]

    def test_missing_metrics_resolve_empty_not_error(self):
        adapter = get_figure("table1")
        assert adapter.resolve_metrics(fake_summary(["unrelated"])) == []

    def test_no_resolved_metrics_yields_empty_rows_not_every_metric(self):
        # summary_rows falls back to ALL metrics on an empty selection; the
        # figure layer must not — a matching-kind campaign recorded before a
        # figure's metrics existed shows nothing rather than unrelated columns.
        headers, rows = figure_aggregate_rows("table1", fake_summary(["unrelated"]))
        assert (headers, rows) == ([], [])

    def test_no_resolved_metrics_render_note_not_every_metric(self):
        import types

        results = types.SimpleNamespace(
            spec=types.SimpleNamespace(kind="security"),
            summary=fake_summary(["false_positive_rate"]),  # no ca_messages_*
        )
        text = render_figure_aggregates("fig7b", results)
        assert "none of this figure's metrics" in text
        assert "false_positive_rate" not in text
        assert "±" not in text

    def test_figure_aggregate_rows_formats_mean_ci(self):
        headers, rows = figure_aggregate_rows("fig3a", fake_summary(["final_malicious_fraction"]))
        assert headers == ["attack_rate", "n", "final_malicious_fraction"]
        assert len(rows) == 2
        # seeds 0/1 produced values 1.0/2.0 -> mean 1.5 with a ±ci95 suffix
        assert all("±" in str(row[-1]) for row in rows)


class TestRendering:
    @pytest.fixture(scope="class")
    def security_results(self, tmp_path_factory):
        spec = CampaignSpec(
            kind="security",
            name="figures-test",
            base={"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0},
            grid={"attack_rate": [1.0, 0.5]},
            seeds=(0, 1),
            figure="fig3a",
        )
        out = tmp_path_factory.mktemp("campaign") / "security"
        run_campaign(spec, out_dir=out, jobs=1)
        from repro.campaign import load_campaign_results

        return load_campaign_results(out)

    def test_matching_kind_renders_mean_ci_table(self, security_results):
        text = render_figure_aggregates("fig3a", security_results)
        assert "campaign aggregates (mean±ci95 over seeds)" in text
        assert "final_malicious_fraction" in text
        assert "attack_rate" in text
        assert "±" in text

    def test_render_includes_campaign_timing_line(self, security_results):
        text = render_figure_aggregates("fig3a", security_results)
        assert "campaign timing:" in text
        assert "s/trial" in text

    def test_kind_mismatch_yields_note_not_error(self, security_results):
        text = render_figure_aggregates("fig7a", security_results)
        assert "skipping aggregates" in text
        assert "±" not in text

    def test_none_results_render_empty(self):
        assert render_figure_aggregates("fig3a", None) == ""

    def test_custom_formatter_wins(self, security_results):
        adapter = get_figure("fig3a")
        custom = FigureAdapter(
            figure="fig3a",
            bench=adapter.bench,
            title=adapter.title,
            kind=adapter.kind,
            metrics=adapter.metrics,
            formatter=lambda a, s: f"custom:{a.figure}:{s['n_trials']}",
        )
        register_figure(custom, replace=True)
        try:
            assert render_figure_aggregates("fig3a", security_results) == "custom:fig3a:4"
        finally:
            register_figure(adapter, replace=True)

    def test_fig7b_ca_metrics_present_in_security_campaigns(self, security_results):
        text = render_figure_aggregates("fig7b", security_results)
        assert "ca_messages_total" in text
        assert "ca_messages_peak_per_s" in text
