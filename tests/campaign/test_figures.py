"""The figure-adapter registry: every paper figure maps to campaign data.

These tests pin the tentpole contract of the adapter layer: every benchmark
(the 14 paper figures/tables plus the two scenario sweeps) is registered,
each names a real benchmark file that actually consumes its adapter via
``report_campaign``, metric patterns resolve against genuine summaries, and
rendering degrades to a one-line note instead of failing when handed a
campaign of the wrong kind.  The scenario adapters additionally label rows
per preset and filter groups to their base experiment kind.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    FigureAdapter,
    aggregate_records,
    available_figures,
    available_kinds,
    figure_aggregate_rows,
    get_figure,
    register_figure,
    render_figure_aggregates,
    run_campaign,
    scenario_group_label,
    scenario_summary_rows,
)
from repro.campaign.figures import _REGISTRY

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"

ALL_FIGURES = (
    "fig3a", "fig3b", "fig3c", "fig4",
    "fig5a", "fig5b", "fig5c", "fig6",
    "fig7a", "fig7b", "fig9",
    "table1", "table2", "table3",
    "scenarios", "table3-scenarios", "adaptive", "load",
)


def fake_summary(metric_names, params=({"attack_rate": 1.0}, {"attack_rate": 0.5})):
    """A minimal two-group summary with the given metric names."""
    records = []
    for cell in params:
        for seed in (0, 1):
            records.append(
                {
                    "trial_id": f"s{seed}-{abs(hash(str(cell))) % 10**8:08x}",
                    "kind": "security",
                    "params": {**cell, "seed": seed},
                    "metrics": {name: float(seed + 1) for name in metric_names},
                }
            )
    return aggregate_records(records)


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(available_figures()) == set(ALL_FIGURES)

    def test_every_adapter_points_at_a_known_kind_and_real_bench_file(self):
        for figure in available_figures():
            adapter = get_figure(figure)
            assert adapter.kind in available_kinds(), figure
            assert (BENCH_DIR / adapter.bench).is_file(), adapter.bench
            assert adapter.metrics, figure
            assert adapter.title

    def test_every_benchmark_consumes_its_adapter(self):
        """Each bench file takes the campaign_results fixture and reports via
        its own figure key — the acceptance criterion that all 14 benchmarks
        accept --campaign-results, checked at the source level."""
        for figure in available_figures():
            adapter = get_figure(figure)
            source = (BENCH_DIR / adapter.bench).read_text()
            assert re.search(r"def test_\w+\([^)]*campaign_results", source), adapter.bench
            assert f'report_campaign(campaign_results, "{figure}")' in source, adapter.bench

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError, match="unknown figure"):
            get_figure("fig99")

    def test_duplicate_registration_rejected_unless_replace(self):
        adapter = get_figure("fig3a")
        with pytest.raises(ValueError, match="already registered"):
            register_figure(adapter)
        register_figure(adapter, replace=True)  # no-op override allowed
        assert _REGISTRY["fig3a"] is adapter


class TestMetricResolution:
    def test_exact_names_resolve_in_pattern_order(self):
        adapter = get_figure("fig3a")
        summary = fake_summary(
            ["false_positive_rate", "final_malicious_fraction", "initial_malicious_fraction"]
        )
        assert adapter.resolve_metrics(summary) == [
            "initial_malicious_fraction",
            "final_malicious_fraction",
            "false_positive_rate",
        ]

    def test_glob_patterns_match_scheme_derived_names(self):
        adapter = get_figure("fig7a")
        summary = fake_summary(
            ["chord_mean_latency_s", "octopus_mean_latency_s", "halo_median_latency_s",
             "chord_correct_fraction"]
        )
        resolved = adapter.resolve_metrics(summary)
        assert resolved == [
            "chord_mean_latency_s",
            "octopus_mean_latency_s",
            "halo_median_latency_s",
        ]

    def test_missing_metrics_resolve_empty_not_error(self):
        adapter = get_figure("table1")
        assert adapter.resolve_metrics(fake_summary(["unrelated"])) == []

    def test_no_resolved_metrics_yields_empty_rows_not_every_metric(self):
        # summary_rows falls back to ALL metrics on an empty selection; the
        # figure layer must not — a matching-kind campaign recorded before a
        # figure's metrics existed shows nothing rather than unrelated columns.
        headers, rows = figure_aggregate_rows("table1", fake_summary(["unrelated"]))
        assert (headers, rows) == ([], [])

    def test_no_resolved_metrics_render_note_not_every_metric(self):
        import types

        results = types.SimpleNamespace(
            spec=types.SimpleNamespace(kind="security"),
            summary=fake_summary(["false_positive_rate"]),  # no ca_messages_*
        )
        text = render_figure_aggregates("fig7b", results)
        assert "none of this figure's metrics" in text
        assert "false_positive_rate" not in text
        assert "±" not in text

    def test_figure_aggregate_rows_formats_mean_ci(self):
        headers, rows = figure_aggregate_rows("fig3a", fake_summary(["final_malicious_fraction"]))
        assert headers == ["attack_rate", "n", "final_malicious_fraction"]
        assert len(rows) == 2
        # seeds 0/1 produced values 1.0/2.0 -> mean 1.5 with a ±ci95 suffix
        assert all("±" in str(row[-1]) for row in rows)


class TestRendering:
    @pytest.fixture(scope="class")
    def security_results(self, tmp_path_factory):
        spec = CampaignSpec(
            kind="security",
            name="figures-test",
            base={"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0},
            grid={"attack_rate": [1.0, 0.5]},
            seeds=(0, 1),
            figure="fig3a",
        )
        out = tmp_path_factory.mktemp("campaign") / "security"
        run_campaign(spec, out_dir=out, jobs=1)
        from repro.campaign import load_campaign_results

        return load_campaign_results(out)

    def test_matching_kind_renders_mean_ci_table(self, security_results):
        text = render_figure_aggregates("fig3a", security_results)
        assert "campaign aggregates (mean±ci95 over seeds)" in text
        assert "final_malicious_fraction" in text
        assert "attack_rate" in text
        assert "±" in text

    def test_render_includes_campaign_timing_line(self, security_results):
        text = render_figure_aggregates("fig3a", security_results)
        assert "campaign timing:" in text
        assert "s/trial" in text

    def test_kind_mismatch_yields_note_not_error(self, security_results):
        text = render_figure_aggregates("fig7a", security_results)
        assert "skipping aggregates" in text
        assert "±" not in text

    def test_scenario_figures_require_scenario_kind(self, security_results):
        text = render_figure_aggregates("scenarios", security_results)
        assert "skipping aggregates" in text

    def test_none_results_render_empty(self):
        assert render_figure_aggregates("fig3a", None) == ""

    def test_custom_formatter_wins(self, security_results):
        adapter = get_figure("fig3a")
        custom = FigureAdapter(
            figure="fig3a",
            bench=adapter.bench,
            title=adapter.title,
            kind=adapter.kind,
            metrics=adapter.metrics,
            formatter=lambda a, s: f"custom:{a.figure}:{s['n_trials']}",
        )
        register_figure(custom, replace=True)
        try:
            assert render_figure_aggregates("fig3a", security_results) == "custom:fig3a:4"
        finally:
            register_figure(adapter, replace=True)

    def test_fig7b_ca_metrics_present_in_security_campaigns(self, security_results):
        text = render_figure_aggregates("fig7b", security_results)
        assert "ca_messages_total" in text
        assert "ca_messages_peak_per_s" in text


class TestScenarioAdapters:
    """The scenario figure-adapter family: per-preset rows, base-kind filter."""

    @pytest.fixture(scope="class")
    def scenario_results(self, tmp_path_factory):
        """A tiny efficiency-under-scenarios campaign, loaded from disk."""
        spec = CampaignSpec(
            kind="scenario",
            name="scenario-figures-test",
            base={
                "experiment": "efficiency",
                "base": {"n_nodes": 40, "lookups_per_scheme": 4},
            },
            grid={"preset": ["paper-baseline", "zipf-hotkeys"]},
            seeds=(0, 1),
        )
        out = tmp_path_factory.mktemp("campaign") / "scenario"
        run_campaign(spec, out_dir=out, jobs=1)
        from repro.campaign import load_campaign_results

        return load_campaign_results(out)

    def test_group_labels(self):
        assert scenario_group_label({"preset": "zipf-hotkeys"}) == "zipf-hotkeys"
        assert (
            scenario_group_label({"experiment": "efficiency", "workload": "zipf"})
            == "workload=zipf"
        )
        assert (
            scenario_group_label({"workload": "zipf", "adversary": "eclipse"})
            == "workload=zipf,adversary=eclipse"
        )
        assert scenario_group_label({"experiment": "security"}) == "plain"
        # Axis overrides on top of a preset stay visible in the label — a
        # grid sweeping an axis under one preset must not render twins.
        assert (
            scenario_group_label({"preset": "zipf-hotkeys", "workload": "hot-key-storm"})
            == "zipf-hotkeys workload=hot-key-storm"
        )
        # Non-scenario-shaped params degrade to a generic label, not an error.
        assert scenario_group_label({"attack_rate": 1.0}) == "custom"

    def test_rows_are_labelled_per_preset(self, scenario_results):
        text = render_figure_aggregates("table3-scenarios", scenario_results)
        assert "per-scenario campaign aggregates (mean±ci95 over seeds)" in text
        assert "paper-baseline" in text
        assert "zipf-hotkeys" in text
        assert "octopus_mean_latency_s" in text
        assert "±" in text

    def test_rows_filter_by_resolved_base_kind(self, scenario_results):
        summary = scenario_results.summary
        headers, rows = scenario_summary_rows(
            summary, ["octopus_mean_latency_s"], base_kind="efficiency"
        )
        assert headers[0] == "scenario"
        assert [row[0] for row in rows] == ["paper-baseline", "zipf-hotkeys"]
        # The same summary has no security-based groups.
        assert scenario_summary_rows(
            summary, ["octopus_mean_latency_s"], base_kind="security"
        ) == ([], [])

    @staticmethod
    def _scenario_record(trial_id, params, metrics):
        return {
            "trial_id": trial_id,
            "kind": "scenario",
            "params": params,
            "metrics": metrics,
        }

    def test_default_metric_columns_come_from_filtered_groups(self):
        """With ``metrics`` omitted, the columns derive from the groups that
        survive the base-kind filter — excluded kinds contribute no blank
        columns."""
        summary = aggregate_records(
            [
                self._scenario_record(
                    "a",
                    {"preset": "zipf-hotkeys", "experiment": "efficiency", "seed": 0},
                    {"octopus_mean_latency_s": 1.0},
                ),
                self._scenario_record(
                    "b",
                    {"preset": "paper-baseline", "seed": 0},
                    {"final_malicious_fraction": 0.1},
                ),
            ]
        )
        headers, rows = scenario_summary_rows(summary, base_kind="efficiency")
        assert headers == ["scenario", "n", "octopus_mean_latency_s"]
        assert [row[0] for row in rows] == ["zipf-hotkeys"]

    def test_duplicate_labels_get_varied_grid_params_appended(self):
        """Groups the preset label cannot distinguish (same preset, different
        base/params grid cells) append the varying params to stay apart."""
        summary = aggregate_records(
            [
                self._scenario_record(
                    "a",
                    {"preset": "zipf-hotkeys", "base": {"n_nodes": 40}, "seed": 0},
                    {"m": 1.0},
                ),
                self._scenario_record(
                    "b",
                    {"preset": "zipf-hotkeys", "base": {"n_nodes": 80}, "seed": 0},
                    {"m": 2.0},
                ),
            ]
        )
        _headers, rows = scenario_summary_rows(summary, ["m"])
        labels = [row[0] for row in rows]
        assert len(set(labels)) == 2
        assert all(label.startswith("zipf-hotkeys ") for label in labels)
        assert any("40" in label for label in labels)
        assert any("80" in label for label in labels)

    def test_security_scenario_figure_degrades_on_efficiency_campaign(
        self, scenario_results
    ):
        """The 'scenarios' figure reports security metrics; an efficiency
        scenario campaign has none of them — note, not a table or an error."""
        text = render_figure_aggregates("scenarios", scenario_results)
        assert "contains none of this figure's metrics" in text
        assert "±" not in text
