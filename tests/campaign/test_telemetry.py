"""Worker heartbeats, partial-summary commits, and the sweeper's slow-vs-dead
distinction.

The satellite regression here is the *slow worker*: a single trial that
legitimately outlasts the claim TTL must not have its claim stolen while the
worker's heartbeat thread keeps proving the process alive — yet a worker
that died (no heartbeat, or a final ``stopped`` beacon) must still age out on
the TTL exactly as before heartbeats existed.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass

import pytest

from repro.campaign import CampaignSpec, CampaignStore
from repro.campaign.backends.queue import claim_and_execute_next
from repro.campaign.registry import _REGISTRY, ExperimentAdapter
from repro.campaign.streaming import CampaignAccumulator
from repro.campaign.telemetry import (
    PartialSummaryWriter,
    WorkerHeartbeat,
    WorkerTelemetry,
)


@pytest.fixture
def small_spec() -> CampaignSpec:
    return CampaignSpec(
        kind="security",
        name="telemetry-test",
        base={"n_nodes": 60, "duration": 15.0, "sample_interval": 5.0},
        grid={"attack_rate": [1.0]},
        seeds=(0, 1),
    )


def make_record(trial_id, metrics=None):
    return {
        "trial_id": trial_id,
        "kind": "security",
        "params": {"attack_rate": 1.0, "seed": 0},
        "metrics": metrics or {"m": 1.0},
        "detail": {},
        "timing": {"elapsed_s": 0.1, "worker": "w0"},
    }


# ------------------------------------------------------------------ heartbeat
def test_heartbeat_thread_keeps_beacon_fresh(tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    beat = WorkerHeartbeat(store, "w0", interval_s=0.05).start()
    try:
        first = store.load_heartbeat(store.heartbeat_path("w0"))
        assert first is not None and first["worker"] == "w0"
        assert first["state"] == "idle" and first["pid"]
        deadline = time.time() + 5.0
        while time.time() < deadline:
            current = store.load_heartbeat(store.heartbeat_path("w0"))
            if current and current["updated_at"] > first["updated_at"]:
                break
            time.sleep(0.02)
        else:
            pytest.fail("heartbeat thread never refreshed the beacon")
    finally:
        beat.stop()
    final = store.load_heartbeat(store.heartbeat_path("w0"))
    assert final["state"] == "stopped" and final["current_trial"] is None


def test_heartbeat_tracks_trial_lifecycle_and_rate(tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    beat = WorkerHeartbeat(store, "w0", interval_s=30.0)  # thread never fires
    beat.note_claim()
    beat.trial_started("t1")
    beat.write_now()
    running = store.load_heartbeat(store.heartbeat_path("w0"))
    assert running["state"] == "running" and running["current_trial"] == "t1"
    assert running["last_claim_at"] is not None

    beat.trial_finished(ran=True)
    beat.trial_started("t2")
    beat.trial_finished(ran=False)
    beat.write_now()
    idle = store.load_heartbeat(store.heartbeat_path("w0"))
    assert idle["state"] == "idle" and idle["current_trial"] is None
    assert idle["trials_done"] == 1 and idle["trials_skipped"] == 1
    assert idle["trials_per_min"] > 0.0


def test_heartbeat_rejects_nonpositive_interval(tmp_path):
    store = CampaignStore(tmp_path / "c")
    with pytest.raises(ValueError):
        WorkerHeartbeat(store, "w0", interval_s=0.0)


# ----------------------------------------------------------- partial commits
def test_partial_writer_commits_after_each_record(tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    writer = PartialSummaryWriter(store, "w0")
    writer.add(make_record("s0-a"))
    [path] = store.list_partials()
    state = store.load_partial(path)
    assert set(CampaignAccumulator.from_state(state).trial_ids) == {"s0-a"}

    writer.add(make_record("s0-a"))  # duplicate: no change
    writer.add(make_record("s1-b"))
    state = store.load_partial(store.partial_path("w0"))
    back = CampaignAccumulator.from_state(state)
    assert set(back.trial_ids) == {"s0-a", "s1-b"}
    [group] = back.finalize()["groups"]
    assert group["metrics"]["m"]["n"] == 2


def test_partial_writer_never_litters_an_empty_partial(tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    writer = PartialSummaryWriter(store, "w0")
    writer.flush()
    assert store.list_partials() == []


def test_worker_telemetry_close_is_idempotent_and_final(tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    telemetry = WorkerTelemetry(store, "w0", heartbeat_interval_s=0.05).start()
    telemetry.note_claim()
    telemetry.trial_started("s0-a")
    telemetry.trial_finished(make_record("s0-a"), ran=True)
    # Skipped trials stay out of the partial: the record belongs to whoever
    # executed it.
    telemetry.trial_started("s0-b")
    telemetry.trial_finished(make_record("s0-b"), ran=False)
    telemetry.close()
    telemetry.close()  # second close: no-op, no error

    beat = store.load_heartbeat(store.heartbeat_path("w0"))
    assert beat["state"] == "stopped"
    assert beat["trials_done"] == 1 and beat["trials_skipped"] == 1
    state = store.load_partial(store.partial_path("w0"))
    assert set(CampaignAccumulator.from_state(state).trial_ids) == {"s0-a"}
    assert store.heartbeat_fresh("w0", ttl_s=3600.0) is False  # stopped = not alive


# ------------------------------------------------------- sweeper interaction
def _expire_claim(store, ttl):
    """Drive the sweeper's local-observation watch past the TTL."""
    store.sweep_claims(claim_ttl_s=ttl)  # first sight: start watching
    time.sleep(ttl * 3)


def test_sweeper_heartbeat_veto_spares_the_slow_worker(small_spec, tmp_path):
    store = CampaignStore(tmp_path / "q")
    store.ensure_queue_layout()
    trial = small_spec.expand()[0]
    store.enqueue_trial(0, trial.to_dict())
    assert store.claim_job(store.list_pending()[0], "slow-worker") is not None

    ttl = 0.05
    beat = WorkerHeartbeat(store, "slow-worker", interval_s=0.02).start()
    try:
        _expire_claim(store, ttl)
        # Claim is past the TTL, but the beacon is fresh: veto the steal.
        assert store.sweep_claims(claim_ttl_s=ttl) == []
        assert len(store.list_claims()) == 1
    finally:
        beat.stop()
    # The final beacon says "stopped": the worker is gone, reclaim proceeds
    # (the claim watch is already past the TTL from the veto phase).
    assert store.sweep_claims(claim_ttl_s=ttl) == [trial.trial_id]
    assert store.list_pending() and not store.list_claims()


def test_sweeper_still_reclaims_heartbeatless_workers(small_spec, tmp_path):
    """Older workers (no telemetry) age out on the claim TTL exactly as
    before heartbeats existed."""
    store = CampaignStore(tmp_path / "q")
    store.ensure_queue_layout()
    trial = small_spec.expand()[0]
    store.enqueue_trial(0, trial.to_dict())
    assert store.claim_job(store.list_pending()[0], "legacy-worker") is not None
    ttl = 0.05
    _expire_claim(store, ttl)
    assert store.sweep_claims(claim_ttl_s=ttl) == [trial.trial_id]


# A registered toy kind whose trial sleeps longer than the claim TTL — the
# end-to-end "slow fake trial" regression for the heartbeat veto.
@dataclass
class SlowToyConfig:
    sleep_s: float = 0.3
    seed: int = 0


@dataclass
class SlowToyResult:
    config: SlowToyConfig

    def scalar_metrics(self):
        return {"slept_s": float(self.config.sleep_s)}

    def to_dict(self):
        return {"config": {"sleep_s": self.config.sleep_s}, "metrics": self.scalar_metrics()}


def run_slow_toy(config: SlowToyConfig) -> SlowToyResult:
    time.sleep(config.sleep_s)
    return SlowToyResult(config=config)


def test_slow_trial_survives_aggressive_sweeping_end_to_end(tmp_path, monkeypatch):
    monkeypatch.setitem(
        _REGISTRY,
        "slow-toy",
        ExperimentAdapter(
            kind="slow-toy", config_cls=SlowToyConfig, entry_point=run_slow_toy
        ),
    )
    spec = CampaignSpec(
        kind="slow-toy",
        name="slow-toy-campaign",
        base={"sleep_s": 0.4},
        grid={},
        seeds=(0,),
    )
    store = CampaignStore(tmp_path / "q")
    store.ensure_queue_layout()
    [trial] = spec.expand()
    store.enqueue_trial(0, trial.to_dict())

    worker_store = CampaignStore(tmp_path / "q")
    telemetry = WorkerTelemetry(worker_store, "slow-w", heartbeat_interval_s=0.02)
    telemetry.start()
    outcome = {}

    def work():
        try:
            record, ran = claim_and_execute_next(worker_store, "slow-w", telemetry=telemetry)
            outcome["record"], outcome["ran"] = record, ran
        finally:
            telemetry.close()

    thread = threading.Thread(target=work)
    thread.start()
    try:
        # Sweep aggressively (TTL far below the trial's sleep) for the whole
        # execution: the heartbeat veto must keep the claim with the worker.
        ttl = 0.05
        stolen = []
        while thread.is_alive():
            stolen.extend(store.sweep_claims(claim_ttl_s=ttl))
            time.sleep(0.02)
    finally:
        thread.join(timeout=30.0)
    assert not thread.is_alive()
    assert stolen == []  # never requeued out from under the slow worker
    assert outcome["ran"] is True
    record = store.load_trial(trial.trial_id)
    assert record is not None and record["metrics"]["slept_s"] == 0.4
    assert store.queue_drained()
    # Its partial covers the trial it executed.
    state = store.load_partial(store.partial_path("slow-w"))
    assert trial.trial_id in CampaignAccumulator.from_state(state).trial_ids


def test_heartbeat_files_survive_hostile_worker_ids(tmp_path):
    store = CampaignStore(tmp_path / "c")
    store.ensure_queue_layout()
    WorkerHeartbeat(store, "host/../evil worker", interval_s=1.0).write_now()
    [path] = store.list_heartbeats()
    assert path.parent == store.heartbeats_dir  # sanitized, not escaped
    data = json.loads(path.read_text())
    assert data["worker"] == "host/../evil worker"  # payload keeps the truth
