"""Every registered experiment kind runs through its campaign adapter.

Each kind is executed once at toy scale straight through
``execute_trial`` — the exact code path campaign workers run — and the
resulting record must be JSON-serializable with non-empty scalar metrics.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import available_kinds, execute_trial, get_experiment

#: smallest parameter sets that still exercise the real experiment code.
TOY_PARAMS = {
    "security": {"n_nodes": 60, "duration": 10.0, "sample_interval": 5.0, "seed": 0},
    "anonymity": {
        "n_nodes": 400,
        "fractions_malicious": [0.2],
        "dummy_counts": [2],
        "concurrent_lookup_rates": [0.01],
        "n_worlds": 5,
        "seed": 0,
    },
    "efficiency": {"n_nodes": 40, "lookups_per_scheme": 5, "seed": 0},
    "load": {
        "n_nodes": 40,
        "duration": 10.0,
        "sample_interval": 5.0,
        "offered_rps": 10.0,
        "seed": 0,
    },
    "timing": {"max_candidate_flows": 50, "seed": 0},
    "ablation": {"n_nodes": 300, "n_worlds": 3, "seed": 0},
    "scenario": {
        "preset": "flash-crowd",
        "churn_params": {"flash_time_s": 4.0, "flash_window_s": 2.0},
        "base": {"n_nodes": 60, "duration": 10.0, "sample_interval": 5.0},
        "seed": 0,
    },
    "adaptive": {
        "attacker": "re-eclipse",
        "defense": "aggressive-revoke",
        "base": {"n_nodes": 60, "duration": 10.0, "sample_interval": 5.0},
        "seed": 0,
    },
}


def test_toy_params_cover_every_registered_kind():
    assert set(TOY_PARAMS) == set(available_kinds())


@pytest.mark.parametrize("kind", sorted(TOY_PARAMS))
def test_execute_trial_produces_json_record(kind):
    record = execute_trial({"trial_id": f"{kind}-toy", "kind": kind, "params": TOY_PARAMS[kind]})
    assert record["trial_id"] == f"{kind}-toy"
    assert record["kind"] == kind
    metrics = record["metrics"]
    assert metrics and all(isinstance(v, float) for v in metrics.values())
    # Metrics live once in the record, at top level — not duplicated in detail.
    assert "metrics" not in record["detail"]
    # The whole record must survive the JSON round trip persistence uses.
    assert json.loads(json.dumps(record)) == record


@pytest.mark.parametrize("kind", sorted(TOY_PARAMS))
def test_adapters_build_typed_configs(kind):
    adapter = get_experiment(kind)
    config = adapter.build_config(TOY_PARAMS[kind])
    assert isinstance(config, adapter.config_cls)
    assert config.seed == 0


def test_unknown_kind_raises_key_error():
    with pytest.raises(KeyError, match="unknown experiment kind"):
        get_experiment("no-such-kind")
