"""The ``repro campaign`` CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import _parse_param_value, _parse_seeds, main


def test_parse_seeds_forms():
    assert _parse_seeds("0") == [0]
    assert _parse_seeds("0,2,5") == [0, 2, 5]
    assert _parse_seeds("0-3") == [0, 1, 2, 3]


def test_parse_param_values():
    assert _parse_param_value("60") == 60
    assert _parse_param_value("0.5") == 0.5
    assert _parse_param_value("true") is True
    assert _parse_param_value("lookup-bias") == "lookup-bias"


def test_inline_json_list_param_is_one_value_not_a_grid_axis(tmp_path, capsys):
    """--param NAME=[v1,v2] must set one list-valued parameter inline."""
    out_dir = tmp_path / "list-param"
    argv = [
        "campaign",
        "--kind", "timing",
        "--param", "max_candidate_flows=50",
        "--param", "max_delays=[0.1,0.2]",
        "--param", "concurrent_lookup_rates=[0.01]",
        "--out", str(out_dir),
        "--quiet",
    ]
    assert main(argv) == 0
    assert "1 trial(s) executed" in capsys.readouterr().out
    record = json.loads(next((out_dir / "trials").glob("*.json")).read_text())
    assert record["params"]["max_delays"] == [0.1, 0.2]
    assert record["detail"]["config"]["max_delays"] == [0.1, 0.2]


def test_campaign_warns_per_kind_about_ignored_scenario_axes(tmp_path, capsys):
    """A scenario sweep whose base harness cannot express a requested axis
    must say so on the CLI — one warning line per base kind — instead of
    leaving the gap buried in the trial files."""
    argv = [
        "campaign", "--kind", "scenario",
        "--param", "experiment=timing",
        "--param", "churn=weibull",
        "--param", 'base={"max_candidate_flows":40}',
        "--out", str(tmp_path / "ignored"), "--quiet",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert (
        "warning: 1 scenario trial(s) on base kind 'timing' ignored axes: churn" in out
    )


def test_campaign_applied_axes_print_no_warning(tmp_path, capsys):
    """The efficiency harness applies the workload axis (PR 5), so a zipf
    efficiency scenario runs warning-free and records the applied axis."""
    out_dir = tmp_path / "applied"
    argv = [
        "campaign", "--kind", "scenario",
        "--param", "experiment=efficiency",
        "--param", "workload=zipf",
        "--param", 'base={"n_nodes":40,"lookups_per_scheme":4}',
        "--out", str(out_dir), "--quiet",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "1 trial(s) executed" in out
    assert "warning:" not in out
    record = json.loads(next((out_dir / "trials").glob("*.json")).read_text())
    assert record["detail"]["scenario"]["applied_axes"] == ["workload"]
    assert record["detail"]["scenario"]["ignored_axes"] == []


def test_malformed_seeds_exit_cleanly():
    with pytest.raises(SystemExit, match="malformed --seeds"):
        main(["campaign", "--kind", "timing", "--seeds", "banana", "--out", "/tmp/never"])


def test_campaign_list_kinds(capsys):
    assert main(["campaign", "--list-kinds"]) == 0
    out = capsys.readouterr().out
    for kind in ("security", "anonymity", "efficiency", "timing", "ablation", "scenario"):
        assert kind in out


def test_top_level_list_kinds_prints_kinds_axes_and_presets(capsys):
    """The 'repro list-kinds' subcommand surfaces the whole registry surface:
    experiment kinds with descriptions, scenario axis generators, presets."""
    from repro.campaign import available_kinds, get_experiment
    from repro.scenarios import CHURN_PROFILES, PLACEMENTS, WORKLOADS, available_presets

    assert main(["list-kinds"]) == 0
    out = capsys.readouterr().out
    for kind in available_kinds():
        assert kind in out
        assert get_experiment(kind).description in out
    for name in CHURN_PROFILES.available() + WORKLOADS.available() + PLACEMENTS.available():
        assert name in out
    for preset in available_presets():
        assert preset in out


def test_campaign_inline_grid_runs_and_resumes(tmp_path, capsys):
    out_dir = tmp_path / "cli-campaign"
    argv = [
        "campaign",
        "--kind", "ablation",
        "--param", "n_nodes=250",
        "--param", "n_worlds=2,3",
        "--seeds", "0,1",
        "--out", str(out_dir),
        "--quiet",
    ]
    assert main(argv) == 0
    printed = capsys.readouterr().out
    assert "4 trial(s) executed, 0 skipped" in printed
    assert "aggregate" in printed
    summary = json.loads((out_dir / "summary.json").read_text())
    assert summary["n_trials"] == 4 and summary["n_groups"] == 2

    assert main(argv + ["--resume"]) == 0
    assert "0 trial(s) executed, 4 skipped" in capsys.readouterr().out


def test_campaign_spec_file(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "cli-spec",
        "kind": "timing",
        "base": {"max_candidate_flows": 50},
        "grid": {"max_delays": [[0.1], [0.2]]},
        "seeds": [0],
    }))
    out_dir = tmp_path / "out"
    assert main(["campaign", "--spec", str(spec_path), "--out", str(out_dir), "--quiet"]) == 0
    assert "campaign 'cli-spec'" in capsys.readouterr().out
    assert len(list((out_dir / "trials").glob("*.json"))) == 2


def test_malformed_spec_file_exits_cleanly(tmp_path):
    """Wrong-typed spec fields must produce the CLI's one-line error, not a traceback."""
    for bad in (
        {"kind": "security", "seeds": 5},
        {"kind": "security", "grid": {"n_nodes": 60}},
        {"kind": "security", "base": [1, 2]},
    ):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps(bad))
        with pytest.raises(SystemExit, match="cannot load spec"):
            main(["campaign", "--spec", str(spec_path), "--out", str(tmp_path / "out")])


def test_semantically_invalid_config_fails_preflight(tmp_path):
    """config.validate() runs in the pre-flight, before anything is written."""
    out_dir = tmp_path / "never"
    with pytest.raises(SystemExit, match="unknown attack"):
        main(["campaign", "--kind", "security", "--param", "attack=typo",
              "--param", "n_nodes=10", "--param", "duration=50",
              "--out", str(out_dir)])
    assert not out_dir.exists()


def test_campaign_backend_queue_from_cli(tmp_path, capsys):
    """--backend queue completes with no external workers and drains its queue."""
    out_dir = tmp_path / "cli-queue"
    argv = [
        "campaign",
        "--kind", "timing",
        "--param", "max_candidate_flows=50",
        "--backend", "queue",
        "--out", str(out_dir),
        "--quiet",
    ]
    assert main(argv) == 0
    assert "1 trial(s) executed" in capsys.readouterr().out
    assert not list((out_dir / "queue" / "pending").glob("*"))
    assert not list((out_dir / "queue" / "claims").glob("*"))


def test_campaign_worker_gives_up_when_no_queue_appears(tmp_path, capsys):
    assert main([
        "campaign-worker", str(tmp_path / "nowhere"), "--wait-for-queue", "0",
    ]) == 0
    assert "executed 0 trial(s)" in capsys.readouterr().out


def test_campaign_jobs_conflicts_with_non_pool_backends(tmp_path):
    """--jobs would be silently ignored by serial/queue backends — reject it."""
    for backend in ("serial", "queue"):
        with pytest.raises(SystemExit, match="--jobs has no effect"):
            main(["campaign", "--kind", "timing", "--jobs", "4",
                  "--backend", backend, "--out", str(tmp_path / "never")])


def test_campaign_worker_rejects_bad_options(tmp_path):
    with pytest.raises(SystemExit, match="max-trials"):
        main(["campaign-worker", str(tmp_path), "--max-trials", "0"])
    with pytest.raises(SystemExit, match="claim-ttl"):
        main(["campaign-worker", str(tmp_path), "--claim-ttl", "0"])


def test_campaign_requires_kind_or_spec():
    with pytest.raises(SystemExit):
        main(["campaign", "--out", "/tmp/never-written"])


def test_campaign_malformed_param():
    with pytest.raises(SystemExit):
        main(["campaign", "--kind", "timing", "--param", "oops"])
