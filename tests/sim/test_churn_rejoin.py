"""ChurnEventLog rejoin semantics under the non-exponential profiles.

PR-4 satellite: a rejoined node must come back with *fresh* routing state
(the paper's "churned node rejoins with a fresh state" assumption) and the
departure/rejoin bookkeeping must stay consistent whichever churn profile —
exponential, heavy-tailed, flash-crowd, diurnal, trace — drives the events.
"""

from __future__ import annotations

import pytest

from repro.chord.ring import ChordRing, RingConfig
from repro.scenarios.churn_profiles import (
    DiurnalChurnProfile,
    FlashCrowdChurnProfile,
    TraceChurnProfile,
    WeibullChurnProfile,
)
from repro.sim.churn import ChurnConfig, ChurnProcess, ChurnProfile
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RandomSource


def _ring(n_nodes: int = 40, seed: int = 5) -> ChordRing:
    return ChordRing.build(RingConfig(n_nodes=n_nodes, fraction_malicious=0.0, seed=seed))


def _process(ring: ChordRing, engine: SimulationEngine, profile, config=None) -> ChurnProcess:
    return ChurnProcess(
        engine,
        config or ChurnConfig(mean_lifetime_seconds=40.0, mean_downtime_seconds=10.0),
        RandomSource(11),
        on_leave=ring.mark_dead,
        on_join=lambda nid: ring.mark_alive(nid, now=engine.now),
        profile=profile,
    )


PROFILES = {
    "exponential": lambda: ChurnProfile(),
    "weibull": lambda: WeibullChurnProfile(shape=0.5),
    "flash-crowd": lambda: FlashCrowdChurnProfile(
        late_fraction=0.3, flash_time_s=30.0, flash_window_s=10.0
    ),
    "diurnal": lambda: DiurnalChurnProfile(on_seconds=60.0, off_seconds=20.0, jitter_s=2.0),
}


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
def test_departure_rejoin_counts_stay_consistent(profile_name):
    """Per node: departures and rejoins alternate, so counts differ by at
    most one and a node never rejoins more often than it departed."""
    ring = _ring()
    engine = SimulationEngine()
    process = _process(ring, engine, PROFILES[profile_name]())
    node_ids = list(ring.nodes)
    process.start(node_ids)
    engine.run(until=300.0)

    log = process.log
    assert log.departures, f"{profile_name}: no churn happened in 300 s"
    for node_id in node_ids:
        departures = log.departures_of(node_id)
        rejoins = log.rejoins_of(node_id)
        assert rejoins <= departures <= rejoins + 1, (profile_name, node_id)
        # is_online agrees with the event parity.
        assert process.is_online(node_id) == (departures == rejoins), node_id
        # The ring's alive flag tracks the churn bookkeeping exactly.
        assert ring.nodes[node_id].alive == process.is_online(node_id)
    # Event timestamps are within the simulated horizon and ordered.
    times = [t for t, _ in log.departures] + [t for t, _ in log.rejoins]
    assert all(0.0 <= t <= 300.0 for t in times)


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
def test_rejoined_node_comes_back_with_fresh_routing_state(profile_name):
    """Poison a node's fingers while it is offline: the rejoin (via
    ring.mark_alive) must rebuild them from ground truth, discarding every
    poisoned entry."""
    ring = _ring()
    engine = SimulationEngine()
    process = _process(ring, engine, PROFILES[profile_name]())
    node_ids = list(ring.nodes)
    victim = node_ids[3]
    process.start(node_ids)

    process.force_depart(victim)
    assert not ring.nodes[victim].alive
    bogus = (victim + 12345) % ring.space.size
    table = ring.nodes[victim].finger_table
    for index in range(len(table)):
        table.set(index, bogus)

    process.force_rejoin(victim)
    assert ring.nodes[victim].alive
    fresh = ring.nodes[victim].finger_table.nodes()
    assert bogus not in fresh
    alive_ids = set(ring.alive_ids_sorted())
    assert fresh and set(fresh) <= alive_ids
    assert process.log.rejoins_of(victim) == process.log.departures_of(victim) == 1


def test_trace_profile_replays_exact_events_and_counts():
    events = [
        {"t": 5.0, "node": 0, "op": "leave"},
        {"t": 8.0, "node": 1, "op": "leave"},
        {"t": 12.0, "node": 0, "op": "join"},
        {"t": 20.0, "node": 0, "op": "leave"},
        # duplicate join for a node that is already online: must be a no-op
        {"t": 25.0, "node": 1, "op": "join"},
        {"t": 26.0, "node": 1, "op": "join"},
    ]
    ring = _ring()
    engine = SimulationEngine()
    # Trace replay runs even with the exponential model disabled.
    process = _process(
        ring,
        engine,
        TraceChurnProfile(events=events),
        config=ChurnConfig(mean_lifetime_seconds=None),
    )
    node_ids = list(ring.nodes)
    process.start(node_ids)
    engine.run(until=60.0)

    first, second = node_ids[0], node_ids[1]
    assert process.log.departures_of(first) == 2
    assert process.log.rejoins_of(first) == 1
    assert process.log.departures_of(second) == 1
    assert process.log.rejoins_of(second) == 1  # the duplicate join was ignored
    assert not process.is_online(first)
    assert process.is_online(second)
    assert [t for t, n in process.log.departures if n == first] == [5.0, 20.0]


def test_trace_profile_rejects_malformed_ops():
    with pytest.raises(ValueError, match="leave.*join|'leave' or 'join'"):
        TraceChurnProfile(events=[{"t": 1.0, "node": 0, "op": "explode"}])
