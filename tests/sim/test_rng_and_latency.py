"""Tests for the random-source registry and the King-like latency model."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.latency import KING_MEAN_RTT, ConstantLatencyModel, KingLatencyModel
from repro.sim.rng import RandomSource, derive_seed


class TestRandomSource:
    def test_same_seed_same_streams(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.stream("x").random() for _ in range(5)] == [b.stream("x").random() for _ in range(5)]

    def test_different_names_give_different_streams(self):
        src = RandomSource(42)
        xs = [src.stream("x").random() for _ in range(5)]
        ys = [src.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_different_seeds_give_different_streams(self):
        assert RandomSource(1).stream("x").random() != RandomSource(2).stream("x").random()

    def test_stream_is_cached(self):
        src = RandomSource(0)
        assert src.stream("a") is src.stream("a")

    def test_spawn_is_deterministic(self):
        a = RandomSource(5).spawn("child")
        b = RandomSource(5).spawn("child")
        assert a.stream("s").random() == b.stream("s").random()

    def test_reset_single_stream(self):
        src = RandomSource(9)
        first = src.stream("z").random()
        src.reset("z")
        assert src.stream("z").random() == first

    def test_derive_seed_distinct_for_similar_names(self):
        assert derive_seed(0, "stream1") != derive_seed(0, "stream2")
        assert derive_seed(0, "a") != derive_seed(1, "a")

    def test_helpers_draw_from_named_streams(self):
        src = RandomSource(3)
        assert 0.0 <= src.random("h") <= 1.0
        assert 1 <= src.randint("h", 1, 10) <= 10
        assert src.choice("h", [1, 2, 3]) in (1, 2, 3)
        sample = src.sample("h", list(range(10)), 3)
        assert len(sample) == 3

    @given(seed=st.integers(min_value=0, max_value=2**31), name=st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_derive_seed_in_64bit_range(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64


class TestConstantLatencyModel:
    def test_self_latency_zero(self):
        model = ConstantLatencyModel(0.05)
        assert model.one_way(3, 3) == 0.0

    def test_constant_between_distinct_nodes(self):
        model = ConstantLatencyModel(0.05)
        assert model.one_way(1, 2) == pytest.approx(0.05)
        assert model.rtt(1, 2) == pytest.approx(0.10)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatencyModel(-1.0)


class TestKingLatencyModel:
    def test_symmetric_base_rtt(self):
        model = KingLatencyModel(seed=1)
        assert model.base_rtt(10, 20) == model.base_rtt(20, 10)

    def test_deterministic_across_instances(self):
        a = KingLatencyModel(seed=7)
        b = KingLatencyModel(seed=7)
        assert a.base_rtt(1, 2) == b.base_rtt(1, 2)

    def test_different_pairs_heterogeneous(self):
        model = KingLatencyModel(seed=3)
        rtts = {model.base_rtt(i, i + 1000) for i in range(50)}
        assert len(rtts) > 40  # almost all distinct

    def test_mean_rtt_close_to_king(self):
        model = KingLatencyModel(seed=5)
        mean = model.empirical_mean_rtt(n_pairs=3000)
        assert 0.5 * KING_MEAN_RTT < mean < 1.8 * KING_MEAN_RTT

    def test_rtt_within_plausible_wan_range(self):
        model = KingLatencyModel(seed=2)
        for i in range(200):
            rtt = model.base_rtt(i, i + 7)
            assert 0.002 <= rtt <= 1.5

    def test_jitter_bounded_by_cap_and_fraction(self):
        model = KingLatencyModel(seed=0, jitter_cap=0.010, jitter_fraction=0.10)
        rng = random.Random(0)
        base = 0.200
        for _ in range(100):
            assert 0.0 <= model.jitter(base, rng) <= 0.010
        small_base = 0.020
        for _ in range(100):
            assert 0.0 <= model.jitter(small_base, rng) <= 0.002 + 1e-12

    def test_sample_delay_at_least_base(self):
        model = KingLatencyModel(seed=0)
        rng = random.Random(1)
        base = model.one_way(1, 2)
        for _ in range(20):
            assert model.sample_delay(1, 2, rng) >= base

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            KingLatencyModel(long_path_fraction=1.5)
        with pytest.raises(ValueError):
            KingLatencyModel(mean_rtt=0.0)
