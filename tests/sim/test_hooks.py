"""The hook bus's determinism contract, and the engagement recorder.

The control plane's whole value rests on three properties pinned here:
subscribers fire in registration order (no other ordering source), dispatch
is by exact event type (one dict lookup), and with no subscribers the bus is
zero-overhead — publishers guard on ``has_subscribers`` before constructing
events, so a baseline run with the bus present is byte-identical to one
without it (the golden digests in ``tests/kernel/`` pin the end-to-end
version of that claim; ``tests/scenarios/test_adaptive.py`` pins the
static-controller version).
"""

from __future__ import annotations

import pytest

from repro.sim.control import EngagementRecorder
from repro.sim.engine import SimulationEngine
from repro.sim.hooks import (
    EVENT_TYPES,
    CertificateRevoked,
    HookBus,
    NodeCompromised,
    NodeDeparted,
    NodeRejoined,
)


class TestHookBus:
    def test_engine_carries_a_bus(self):
        engine = SimulationEngine()
        assert isinstance(engine.hooks, HookBus)
        assert engine.hooks.subscriber_count() == 0

    def test_registration_order_is_delivery_order(self):
        bus = HookBus()
        seen = []
        for tag in ("first", "second", "third"):
            bus.subscribe(NodeDeparted, lambda e, tag=tag: seen.append(tag))
        fired = bus.publish(NodeDeparted(time=1.0, node_id=7))
        assert fired == 3
        assert seen == ["first", "second", "third"]

    def test_dispatch_is_exact_type(self):
        bus = HookBus()
        seen = []
        bus.subscribe(NodeDeparted, seen.append)
        assert bus.publish(NodeRejoined(time=1.0, node_id=7)) == 0
        assert seen == []
        assert bus.publish(NodeDeparted(time=2.0, node_id=7)) == 1
        assert [e.node_id for e in seen] == [7]

    def test_subscribe_rejects_non_classes(self):
        bus = HookBus()
        with pytest.raises(TypeError):
            bus.subscribe("NodeDeparted", lambda e: None)

    def test_has_subscribers_tracks_cancel(self):
        bus = HookBus()
        assert not bus.has_subscribers(NodeDeparted)
        sub = bus.subscribe(NodeDeparted, lambda e: None)
        assert bus.has_subscribers(NodeDeparted)
        assert not bus.has_subscribers(NodeRejoined)
        sub.cancel()
        assert not bus.has_subscribers(NodeDeparted)
        assert bus.subscriber_count() == 0
        sub.cancel()  # idempotent

    def test_clear_empties_the_bus_and_kills_old_handles(self):
        bus = HookBus()
        seen = []
        sub = bus.subscribe(NodeDeparted, seen.append)
        bus.clear()
        assert bus.subscriber_count() == 0
        assert not bus.has_subscribers(NodeDeparted)
        assert not sub.active
        sub.cancel()  # stale handle stays a harmless no-op
        assert bus.publish(NodeDeparted(time=1.0, node_id=7)) == 0
        assert seen == []
        # The cleared bus is still live for new subscribers.
        bus.subscribe(NodeDeparted, seen.append)
        assert bus.publish(NodeDeparted(time=2.0, node_id=8)) == 1

    def test_engine_reset_clears_hook_subscribers(self):
        """Regression: ``reset()`` dropped the heap and clock but kept hook
        subscribers, so a reused engine replayed the previous run's
        controllers into the next run."""
        engine = SimulationEngine()
        bus_before = engine.hooks
        seen = []
        sub = engine.hooks.subscribe(NodeDeparted, seen.append)
        engine.reset()
        # Same bus object (publishers that bound it keep working) but empty.
        assert engine.hooks is bus_before
        assert engine.hooks.subscriber_count() == 0
        assert not sub.active
        assert engine.hooks.publish(NodeDeparted(time=0.0, node_id=1)) == 0
        assert seen == []

    def test_cancel_during_dispatch_suppresses_later_subscriber(self):
        bus = HookBus()
        seen = []
        subs = {}

        def first(event):
            seen.append("first")
            subs["second"].cancel()

        subs["first"] = bus.subscribe(NodeDeparted, first)
        subs["second"] = bus.subscribe(NodeDeparted, lambda e: seen.append("second"))
        assert bus.publish(NodeDeparted(time=0.0, node_id=1)) == 1
        assert seen == ["first"]

    def test_subscribe_during_dispatch_first_fires_next_publish(self):
        bus = HookBus()
        seen = []
        added = []

        def first(event):
            seen.append("first")
            if not added:
                added.append(bus.subscribe(NodeDeparted, lambda e: seen.append("late")))

        bus.subscribe(NodeDeparted, first)
        bus.publish(NodeDeparted(time=0.0, node_id=1))
        assert seen == ["first"]  # the late subscriber did not fire in-flight
        bus.publish(NodeDeparted(time=1.0, node_id=1))
        assert seen == ["first", "first", "late"]

    def test_event_types_are_frozen(self):
        event = NodeDeparted(time=1.0, node_id=3)
        with pytest.raises(Exception):
            event.node_id = 4
        assert len(EVENT_TYPES) == 6


class TestEngagementRecorder:
    def test_latency_measured_from_most_recent_compromise(self):
        recorder = EngagementRecorder()
        bus = HookBus()
        recorder.seed_compromised([5, 9])
        recorder.attach(bus)
        # Node 9 is re-compromised mid-run: latency restarts from there.
        bus.publish(NodeCompromised(time=40.0, node_id=9, reason="re-eclipse"))
        bus.publish(CertificateRevoked(time=50.0, node_id=9))
        bus.publish(CertificateRevoked(time=30.0, node_id=5))
        assert [r.latency for r in recorder.revocations] == [10.0, 30.0]
        assert recorder.replacements == [(40.0, 9)]

    def test_honest_revocations_have_no_latency(self):
        recorder = EngagementRecorder()
        bus = HookBus()
        recorder.seed_compromised([1])
        recorder.attach(bus)
        bus.publish(CertificateRevoked(time=20.0, node_id=2))  # honest collateral
        bus.publish(CertificateRevoked(time=21.0, node_id=1))
        summary = recorder.summary()
        assert summary["engagement_revocations_total"] == 2.0
        # Only the compromised node's latency enters the mean.
        assert summary["engagement_identification_latency_mean_s"] == 21.0

    def test_detach_stops_recording(self):
        recorder = EngagementRecorder()
        bus = HookBus()
        recorder.attach(bus)
        recorder.detach()
        bus.publish(CertificateRevoked(time=1.0, node_id=1))
        assert recorder.revocations == []
        assert bus.subscriber_count() == 0

    def test_rounds_bucket_and_clamp(self):
        recorder = EngagementRecorder()
        bus = HookBus()
        recorder.seed_compromised([1, 2, 3])
        recorder.attach(bus)
        bus.publish(CertificateRevoked(time=5.0, node_id=1))
        bus.publish(CertificateRevoked(time=15.0, node_id=2))
        # Past-the-end events clamp into the final round instead of vanishing.
        bus.publish(CertificateRevoked(time=99.0, node_id=3))
        residual = [(0.0, 0.3), (10.0, 0.2), (20.0, 0.1)]
        rows = recorder.rounds(sample_interval=10.0, duration=25.0, residual_series=residual)
        assert [row["round"] for row in rows] == [0.0, 1.0, 2.0]
        assert [row["revocations"] for row in rows] == [1.0, 1.0, 1.0]
        assert rows[0]["residual_malicious_fraction"] == 0.2  # last sample <= t_end
        assert rows[2]["t_end"] == 25.0  # clamped to duration
        assert rows[2]["identification_latency_mean_s"] == 99.0

    def test_rounds_empty_for_degenerate_inputs(self):
        recorder = EngagementRecorder()
        assert recorder.rounds(0.0, 10.0, []) == []
        assert recorder.rounds(10.0, 0.0, []) == []

    def test_bumped_counters_surface_sorted(self):
        recorder = EngagementRecorder()
        recorder.bump("zeta")
        recorder.bump("alpha", 2.0)
        recorder.bump("zeta")
        summary = recorder.summary()
        assert summary["engagement_alpha"] == 2.0
        assert summary["engagement_zeta"] == 2.0
        keys = [k for k in summary if k in ("engagement_alpha", "engagement_zeta")]
        assert keys == sorted(keys)
