"""Regression: revoked (permanently removed) nodes must not rejoin via churn.

Before the mid-run control plane landed, ``ChordRing.mark_alive`` happily
resurrected a node the CA had revoked and the ring had permanently removed:
a churn rejoin scheduled *before* the revocation would fire after it and put
the node back online with full standing — silently voiding the revocation.
The ``join-leave-cycling`` attacker strategy leans exactly on that window,
so the ring now refuses rebirth for ``removed_ids`` on both kernels.
"""

from __future__ import annotations

import pytest

from repro.chord.ring import ChordRing, RingConfig
from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RandomSource


def _build_ring(kernel: str) -> ChordRing:
    config = RingConfig(
        n_nodes=40, fraction_malicious=0.25, id_bits=16, seed=11, kernel=kernel
    )
    return ChordRing.build(config=config, rng=RandomSource(11))


@pytest.mark.parametrize("kernel", ["object", "array"])
def test_mark_alive_refuses_removed_nodes(kernel):
    ring = _build_ring(kernel)
    victim = sorted(ring.malicious_ids)[0]
    ring.remove_permanently(victim)
    assert not ring.node(victim).alive
    ring.mark_alive(victim)
    assert not ring.node(victim).alive
    assert victim not in ring.alive_ids_sorted()


@pytest.mark.parametrize("kernel", ["object", "array"])
def test_set_malicious_refuses_removed_nodes(kernel):
    ring = _build_ring(kernel)
    honest = ring.honest_ids(alive_only=True)[0]
    ring.remove_permanently(honest)
    assert ring.set_malicious(honest, True) is False
    assert honest not in ring.malicious_ids
    # And unknown ids are a quiet no-op, not a crash.
    assert ring.set_malicious(-1, True) is False


@pytest.mark.parametrize("kernel", ["object", "array"])
def test_churn_rejoin_after_revocation_stays_dead(kernel):
    """The load-bearing interleaving: depart -> revoke+remove -> rejoin fires."""
    ring = _build_ring(kernel)
    engine = SimulationEngine()
    churn = ChurnProcess(
        engine,
        ChurnConfig(mean_lifetime_seconds=1e9),  # no organic churn
        RandomSource(1),
        on_leave=ring.mark_dead,
        on_join=ring.mark_alive,
    )
    victim = sorted(ring.malicious_ids)[0]
    churn.set_online(victim, True)
    churn.force_depart(victim)
    churn.schedule_rejoin(victim, delay=10.0)
    # The revocation lands while the node is offline, rejoin already queued.
    ring.remove_permanently(victim)
    engine.run(until=20.0)

    # Churn bookkeeping recorded the attempt, but the ring refused rebirth.
    assert churn.log.rejoins_of(victim) == 1
    assert not ring.node(victim).alive
    assert victim not in ring.alive_ids_sorted()
    assert victim in ring.removed_ids
    # Removal is permanent for allegiance flips too.
    assert ring.set_malicious(victim, False) is False


@pytest.mark.parametrize("kernel", ["object", "array"])
def test_non_removed_rejoin_still_works(kernel):
    """The guard must not break ordinary churn rebirth."""
    ring = _build_ring(kernel)
    engine = SimulationEngine()
    churn = ChurnProcess(
        engine,
        ChurnConfig(mean_lifetime_seconds=1e9),
        RandomSource(1),
        on_leave=ring.mark_dead,
        on_join=ring.mark_alive,
    )
    node = ring.honest_ids(alive_only=True)[0]
    churn.set_online(node, True)
    churn.force_depart(node)
    assert not ring.node(node).alive
    churn.schedule_rejoin(node, delay=5.0)
    engine.run(until=10.0)
    assert ring.node(node).alive
    assert node in ring.alive_ids_sorted()
