"""Engine-phase profiling: opt-in observation, zero behavioural footprint.

Two properties matter and both are pinned here:

* **observation** — with a profiler captured, the engine, hook bus and both
  ring kernels report their dispatch/publish/churn/finger activity;
* **transparency** — a profiled run returns byte-identical results to an
  unprofiled one, records only grow a ``timing.profile`` block (inside the
  ``strip_timing``-dropped view), and with profiling off no component holds
  a profiler at all — the golden-digest suite runs exactly as before.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.campaign.aggregate import strip_timing
from repro.campaign.backends.base import execute_trial
from repro.sim import profiling
from repro.sim.engine import SimulationEngine
from repro.sim.hooks import HookBus, NodeDeparted
from repro.sim.kernel import make_ring_kernel
from repro.sim.metrics import Histogram


TOY_TRIAL = {
    "trial_id": "load-toy",
    "kind": "load",
    "params": {
        "n_nodes": 25,
        "duration": 10.0,
        "sample_interval": 5.0,
        "offered_rps": 8.0,
        "seed": 1,
    },
}


# -------------------------------------------------------------- the profiler
def test_profiler_counters_and_timers():
    prof = profiling.SimProfiler()
    prof.incr("a")
    prof.incr("a", 2)
    prof.add_time("t", 0.5)
    with prof.timed("t"):
        pass
    snap = prof.snapshot()
    assert snap["counters"] == {"a": 3}
    assert snap["timers_s"]["t"] >= 0.5
    assert json.loads(json.dumps(snap)) == snap


def test_capture_is_scoped_and_reentrant():
    assert profiling.active() is None
    with profiling.capture(force=True) as outer:
        assert profiling.active() is outer
        with profiling.capture(force=True) as inner:
            assert profiling.active() is inner
        assert profiling.active() is outer
    assert profiling.active() is None


@pytest.mark.parametrize(
    "value,expected",
    [("1", True), ("true", True), ("ON", True), ("0", False), ("", False),
     ("off", False), ("no", False), ("false", False)],
)
def test_env_gating(monkeypatch, value, expected):
    monkeypatch.setenv(profiling.PROFILE_ENV, value)
    assert profiling.enabled_by_env() is expected
    with profiling.capture() as prof:
        assert (prof is not None) is expected


def test_capture_without_request_yields_none(monkeypatch):
    monkeypatch.delenv(profiling.PROFILE_ENV, raising=False)
    with profiling.capture() as prof:
        assert prof is None
        assert profiling.active() is None


# ----------------------------------------------------- component observation
def test_engine_counts_dispatches_under_capture():
    with profiling.capture(force=True) as prof:
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None, name="tick")
        engine.schedule(2.0, lambda: None)
        engine.run(until=5.0)
    assert prof.counters["engine.events_dispatched"] == 2
    assert prof.counters["engine.event.tick"] == 1
    assert prof.timers_s["engine.dispatch"] >= 0.0


def test_hook_bus_counts_publishes_and_deliveries():
    with profiling.capture(force=True) as prof:
        bus = HookBus()
        seen = []
        bus.subscribe(NodeDeparted, seen.append)
        bus.subscribe(NodeDeparted, seen.append)
        bus.publish(NodeDeparted(time=1.0, node_id=7))
    assert len(seen) == 2
    assert prof.counters["hooks.publishes"] == 1
    assert prof.counters["hooks.deliveries"] == 2


def test_hook_bus_zero_subscriber_fast_path_counts_nothing():
    with profiling.capture(force=True) as prof:
        HookBus().publish(NodeDeparted(time=1.0, node_id=7))
    assert "hooks.publishes" not in prof.counters


@pytest.mark.parametrize("kernel_name", ["object", "array"])
def test_kernels_count_churn_ops(kernel_name):
    with profiling.capture(force=True) as prof:
        kernel = make_ring_kernel(kernel_name, 128)
        kernel.load([1, 5, 9, 13], malicious_ids=[5])
        kernel.set_alive(5, False)
        kernel.set_alive(5, False)  # no-op flip: not a churn op
        kernel.set_alive(5, True)
        kernel.set_alive(999, False)  # unknown id: ignored
    assert prof.counters["kernel.churn_ops"] == 2


def test_array_kernel_counts_finger_cache_hits_and_misses():
    with profiling.capture(force=True) as prof:
        kernel = make_ring_kernel("array", 128)
        kernel.load([1, 5, 9, 13], malicious_ids=[])
        ideals = [2, 6, 10]
        kernel.resolve_fingers(1, ideals)   # cold: miss
        kernel.resolve_fingers(1, ideals)   # cached row: hit
        kernel.resolve_fingers(1, [3, 7])   # ideals changed: miss again
    assert prof.counters["kernel.finger_cache_misses"] == 2
    assert prof.counters["kernel.finger_cache_hits"] == 1


def test_object_kernel_counts_finger_resolves():
    with profiling.capture(force=True) as prof:
        kernel = make_ring_kernel("object", 128)
        kernel.load([1, 5, 9], malicious_ids=[])
        kernel.resolve_fingers(1, [2])
        kernel.resolve_fingers(1, [2])
    assert prof.counters["kernel.finger_resolves"] == 2


def test_disabled_components_bind_no_profiler():
    assert SimulationEngine().profiler is None
    assert HookBus().profiler is None
    assert make_ring_kernel("object", 8).profiler is None
    assert make_ring_kernel("array", 8).profiler is None


# ------------------------------------------------------------- transparency
def test_profiled_trial_record_is_identical_outside_timing(monkeypatch):
    monkeypatch.delenv(profiling.PROFILE_ENV, raising=False)
    plain = execute_trial(dict(TOY_TRIAL), worker="w")
    assert "profile" not in plain["timing"]

    monkeypatch.setenv(profiling.PROFILE_ENV, "1")
    profiled = execute_trial(dict(TOY_TRIAL), worker="w")
    profile = profiled["timing"]["profile"]
    assert profile["counters"]["engine.events_dispatched"] > 0
    assert "engine.dispatch" in profile["timers_s"]

    # The determinism-compared view cannot tell the two runs apart: the
    # profile block rides inside "timing", which strip_timing drops wholesale.
    assert json.dumps(strip_timing(plain), sort_keys=True) == json.dumps(
        strip_timing(profiled), sort_keys=True
    )
    assert profiling.active() is None  # nothing leaked past the capture


# --------------------------------------------------------- Histogram.merge
def test_histogram_merge_is_byte_equal_to_single_stream():
    rng = random.Random(5)
    samples = [rng.uniform(0.0, 3.0) for _ in range(1000)]
    single = Histogram("all")
    for s in samples:
        single.record(s)

    cuts = sorted(rng.sample(range(1, len(samples)), 6))
    chunks = []
    for a, b in zip([0] + cuts, cuts + [len(samples)]):
        part = Histogram(f"chunk{a}")
        for s in samples[a:b]:
            part.record(s)
        chunks.append(part)
    merged = Histogram.merge(chunks, name="all")

    assert merged.count == single.count
    assert merged.samples == single.samples          # same order, same bytes
    assert merged.mean() == single.mean()            # identical left-fold sum
    for pct in (0.0, 50.0, 90.0, 99.0, 100.0):
        assert merged.percentile(pct) == single.percentile(pct)
    assert merged.cdf(n_points=40) == single.cdf(n_points=40)
    assert merged.stddev() == single.stddev()


def test_load_chunked_histogram_seals_and_merges():
    from repro.experiments.load import _ChunkedHistogram

    rec = _ChunkedHistogram("lat", chunk_samples=8)
    values = [float(i) for i in range(30)]
    for v in values:
        rec.record(v)
    assert rec.n_chunks == 4  # 8+8+8+6
    assert rec.count == 30
    merged = rec.merged()
    assert merged.samples == values
    single = Histogram("lat")
    for v in values:
        single.record(v)
    assert merged.mean() == single.mean()
    assert merged.percentile(99.0) == single.percentile(99.0)
    with pytest.raises(ValueError):
        _ChunkedHistogram("x", chunk_samples=0)
