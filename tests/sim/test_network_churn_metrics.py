"""Tests for the simulated network, churn process, bandwidth and metrics."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bandwidth import BandwidthAccountant, MessageSizeModel
from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.engine import SimulationEngine
from repro.sim.latency import ConstantLatencyModel
from repro.sim.metrics import Histogram, MetricsRegistry, TimeSeries, percentile
from repro.sim.network import SimulatedNetwork
from repro.sim.rng import RandomSource
from repro.sim.trace import TraceLog


class TestSimulatedNetwork:
    def _net(self, drop=0.0):
        engine = SimulationEngine()
        net = SimulatedNetwork(engine, ConstantLatencyModel(0.01), RandomSource(1), drop_probability=drop)
        return engine, net

    def test_delivers_message_after_latency(self):
        engine, net = self._net()
        received = []
        net.register(2, lambda m: received.append((engine.now, m.payload)))
        net.register(1, lambda m: None)
        net.send(1, 2, "ping", payload="hello", size_bytes=10)
        engine.run()
        assert len(received) == 1
        assert received[0][1] == "hello"
        assert received[0][0] >= 0.01

    def test_message_to_unregistered_endpoint_dropped(self):
        engine, net = self._net()
        net.register(1, lambda m: None)
        net.send(1, 99, "ping")
        engine.run()
        assert net.messages_dropped == 1
        assert net.messages_delivered == 0

    def test_message_to_dead_endpoint_dropped(self):
        engine, net = self._net()
        received = []
        net.register(2, lambda m: received.append(m))
        net.set_alive(2, False)
        net.register(1, lambda m: None)
        net.send(1, 2, "ping")
        engine.run()
        assert received == []
        assert net.messages_dropped == 1

    def test_bandwidth_accounted_even_when_dropped(self):
        engine, net = self._net()
        net.register(1, lambda m: None)
        net.send(1, 99, "ping", size_bytes=123)
        engine.run()
        assert net.accountant.sent[1] == 123

    def test_drop_probability(self):
        engine, net = self._net(drop=1.0)
        received = []
        net.register(2, lambda m: received.append(m))
        net.register(1, lambda m: None)
        for _ in range(10):
            net.send(1, 2, "ping")
        engine.run()
        assert received == []
        assert net.delivery_ratio() == 0.0


class TestChurnProcess:
    def test_disabled_churn_never_fires(self):
        engine = SimulationEngine()
        left = []
        churn = ChurnProcess(engine, ChurnConfig.from_minutes(None), RandomSource(1), left.append, lambda n: None)
        churn.start([1, 2, 3])
        engine.run(until=1000.0)
        assert left == []

    def test_nodes_leave_and_rejoin(self):
        engine = SimulationEngine()
        left, joined = [], []
        config = ChurnConfig(mean_lifetime_seconds=10.0, mean_downtime_seconds=5.0)
        churn = ChurnProcess(engine, config, RandomSource(2), left.append, joined.append)
        churn.start(list(range(20)))
        engine.run(until=200.0)
        assert len(left) > 0
        assert len(joined) > 0
        assert len(left) >= len(joined)

    def test_from_minutes_conversion(self):
        config = ChurnConfig.from_minutes(60)
        assert config.mean_lifetime_seconds == 3600.0
        assert config.enabled

    def test_stop_prevents_further_events(self):
        engine = SimulationEngine()
        left = []
        config = ChurnConfig(mean_lifetime_seconds=5.0)
        churn = ChurnProcess(engine, config, RandomSource(3), left.append, lambda n: None)
        churn.start([1])
        churn.stop()
        engine.run(until=100.0)
        assert left == []


class TestMessageSizeModel:
    def test_routing_table_grows_with_entries(self):
        model = MessageSizeModel()
        assert model.routing_table_bytes(20) > model.routing_table_bytes(5)

    def test_signature_adds_overhead(self):
        model = MessageSizeModel()
        assert model.routing_table_bytes(10, signed=True) > model.routing_table_bytes(10, signed=False)
        diff = model.routing_table_bytes(10, signed=True) - model.routing_table_bytes(10, signed=False)
        assert diff == model.signature_bytes + model.timestamp_bytes + model.certificate_bytes

    def test_onion_layers_pad_to_block(self):
        model = MessageSizeModel()
        wrapped = model.query_bytes(onion_layers=4)
        assert wrapped > model.query_bytes(onion_layers=0)
        assert wrapped % model.aes_block_bytes == 0

    @given(entries=st.integers(min_value=0, max_value=100), layers=st.integers(min_value=0, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_reply_bytes_monotone_in_layers(self, entries, layers):
        model = MessageSizeModel()
        assert model.reply_bytes(entries, onion_layers=layers) >= model.routing_table_bytes(entries)


class TestBandwidthAccountant:
    def test_record_and_totals(self):
        acc = BandwidthAccountant()
        acc.record(1, 2, 100)
        acc.record(2, 1, 50)
        assert acc.total_bytes() == 150
        assert acc.node_bytes(1) == 150
        assert acc.total_messages == 2

    def test_kbps_calculation(self):
        acc = BandwidthAccountant()
        acc.record(1, 2, 1000)
        # 2 nodes, 2000 bytes total traffic counted at both ends over 10 s
        kbps = acc.mean_node_kbps(duration_seconds=10.0, n_nodes=2)
        assert kbps == pytest.approx(1000 * 8 / 1000 / 10)

    def test_negative_size_rejected(self):
        acc = BandwidthAccountant()
        with pytest.raises(ValueError):
            acc.record(1, 2, -5)


class TestMetrics:
    def test_time_series_ordering_enforced(self):
        series = TimeSeries("x")
        series.record(1.0, 5.0)
        with pytest.raises(ValueError):
            series.record(0.5, 6.0)

    def test_time_series_value_at(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(10.0, 2.0)
        assert series.value_at(5.0) == 1.0
        assert series.value_at(10.0) == 2.0
        assert series.value_at(-1.0) is None

    def test_histogram_statistics(self):
        hist = Histogram()
        hist.extend([1.0, 2.0, 3.0, 4.0])
        assert hist.mean() == pytest.approx(2.5)
        assert hist.median() == pytest.approx(2.5)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 4.0

    def test_histogram_cdf_monotone(self):
        hist = Histogram()
        hist.extend(range(100))
        cdf = hist.cdf(n_points=10)
        values = [v for v, _ in cdf]
        fracs = [f for _, f in cdf]
        assert values == sorted(values)
        assert fracs[-1] == pytest.approx(1.0)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_percentile_is_monotone_in_pct(self, seed):
        """Property: percentile is non-decreasing in pct and bounded by the
        sample extremes, on arbitrary (unsorted, duplicated) samples."""
        rng = random.Random(seed)
        samples = [rng.uniform(-50.0, 50.0) for _ in range(rng.randrange(1, 40))]
        samples += rng.choices(samples, k=5)  # force ties
        hist = Histogram()
        hist.extend(samples)
        pcts = [0.0] + sorted(rng.uniform(0.0, 100.0) for _ in range(25)) + [100.0]
        values = [hist.percentile(p) for p in pcts]
        assert values == sorted(values)
        assert values[0] == pytest.approx(min(samples))
        assert values[-1] == pytest.approx(max(samples))

    @pytest.mark.parametrize("seed", [4, 5, 6])
    def test_cdf_is_monotone_on_random_samples(self, seed):
        rng = random.Random(seed)
        hist = Histogram()
        hist.extend(rng.expovariate(2.0) for _ in range(rng.randrange(1, 200)))
        for n_points in (1, 2, 7, 40):
            cdf = hist.cdf(n_points=n_points)
            assert len(cdf) == n_points
            assert [v for v, _ in cdf] == sorted(v for v, _ in cdf)
            fracs = [f for _, f in cdf]
            assert fracs == sorted(fracs)
            assert fracs[-1] == pytest.approx(1.0)

    @pytest.mark.parametrize("n_samples", [1, 2, 3, 50])
    def test_histogram_cdf_agrees_with_canonical_percentile(self, n_samples):
        """cdf() must be the percentile helper evaluated on a fraction grid —
        the old order-statistic indexing skipped/duplicated samples at small n."""
        samples = [float(7 * i % 13) for i in range(n_samples)]
        hist = Histogram()
        hist.extend(samples)
        for value, frac in hist.cdf(n_points=50):
            assert value == pytest.approx(percentile(samples, 100.0 * frac))

    def test_histogram_cdf_small_sample_endpoints(self):
        """With n=2, the first point is (near) the min and the last the max;
        the buggy indexing collapsed both onto one sample."""
        hist = Histogram()
        hist.extend([1.0, 3.0])
        cdf = hist.cdf(n_points=4)
        assert cdf[0][0] == pytest.approx(1.5)  # 25th pct interpolates toward min
        assert cdf[-1] == (3.0, 1.0)
        assert len({v for v, _ in cdf}) > 1

    def test_histogram_cdf_single_sample(self):
        hist = Histogram()
        hist.record(42.0)
        assert hist.cdf(n_points=3) == [(42.0, pytest.approx(1 / 3)), (42.0, pytest.approx(2 / 3)), (42.0, 1.0)]

    def test_counter_rejects_decrement(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.increment(5)
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_bucketed_metrics(self):
        registry = MetricsRegistry()
        registry.bucket_increment("reports", time=12.0, width=10.0)
        registry.bucket_increment("reports", time=15.0, width=10.0)
        registry.bucket_increment("reports", time=25.0, width=10.0)
        assert registry.buckets("reports", 10.0) == [(10.0, 2.0), (20.0, 1.0)]


class TestTraceLog:
    def test_record_and_filter(self):
        log = TraceLog()
        log.record(1.0, "lookup", node=1)
        log.record(2.0, "attack", node=2)
        log.record(3.0, "lookup", node=3)
        assert log.count("lookup") == 2
        assert [r.get("node") for r in log.filter("lookup")] == [1, 3]
        assert [r.get("node") for r in log.filter(since=2.5)] == [3]

    def test_capacity_limit(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.record(float(i), "x")
        assert len(log) == 2
        assert log.dropped == 3
