"""Tests for the discrete-event engine, clock and events."""

from __future__ import annotations

import pytest

from repro.sim.clock import SimulationClock
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event
from repro.sim.rng import RandomSource


class TestSimulationClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now == 0.0

    def test_advance(self):
        clock = SimulationClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_cannot_go_backwards(self):
        clock = SimulationClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_reset(self):
        clock = SimulationClock(start=3.0)
        clock.advance_to(9.0)
        clock.reset()
        assert clock.now == 0.0


class TestEventOrdering:
    def test_events_order_by_time(self):
        early = Event(time=1.0)
        late = Event(time=2.0)
        assert early < late

    def test_ties_broken_by_priority(self):
        a = Event(time=1.0, priority=0)
        b = Event(time=1.0, priority=1)
        assert a < b

    def test_ties_broken_by_sequence(self):
        a = Event(time=1.0)
        b = Event(time=1.0)
        assert a < b  # a was created first

    def test_cancelled_event_does_not_fire(self):
        fired = []
        event = Event(time=1.0, callback=lambda: fired.append(1))
        event.cancel()
        event.fire()
        assert fired == []


class TestSimulationEngine:
    def test_runs_events_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(2.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(3.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_with_events(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(1.5, lambda: times.append(engine.now))
        engine.schedule(4.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [1.5, 4.0]

    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending == 1

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)

    def test_cancelled_events_skipped(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("cancelled"))
        engine.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        engine.run()
        assert fired == ["kept"]

    def test_max_events_bounds_run(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule(float(i + 1), lambda: None)
        fired = engine.run(max_events=3)
        assert fired == 3
        assert engine.pending == 7

    def test_stop_from_within_event(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_stop_then_rerun_fires_remaining_events_at_their_times(self):
        """stop() must not advance the clock past still-pending events: a
        follow-up run() fires them at their originally scheduled times."""
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: (fired.append(("a", engine.now)), engine.stop()))
        engine.schedule(2.0, lambda: fired.append(("b", engine.now)))
        engine.schedule(3.0, lambda: fired.append(("c", engine.now)))
        engine.run(until=10.0)
        assert fired == [("a", 1.0)]
        assert engine.now == 1.0  # not stranded at until=10
        assert engine.pending == 2
        engine.run(until=10.0)
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
        assert engine.now == 10.0  # queue drained -> clock does advance

    def test_max_events_exit_does_not_advance_clock_past_pending(self):
        engine = SimulationEngine()
        times = []
        for i in range(5):
            engine.schedule(float(i + 1), lambda: times.append(engine.now))
        assert engine.run(until=10.0, max_events=2) == 2
        assert engine.now == 2.0
        assert engine.run(until=10.0) == 3
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert engine.now == 10.0

    def test_run_until_advances_clock_when_only_cancelled_events_remain(self):
        engine = SimulationEngine()
        event = engine.schedule(3.0, lambda: None)
        event.cancel()
        engine.run(until=5.0)
        assert engine.now == 5.0
        assert engine.pending == 0

    def test_events_scheduled_during_run_execute(self):
        engine = SimulationEngine()
        fired = []

        def first():
            fired.append("first")
            engine.schedule(1.0, lambda: fired.append("nested"))

        engine.schedule(1.0, first)
        engine.run()
        assert fired == ["first", "nested"]

    def test_periodic_scheduling(self):
        engine = SimulationEngine()
        ticks = []
        engine.schedule_periodic(10.0, lambda: ticks.append(engine.now), start=10.0)
        engine.run(until=45.0)
        assert ticks == [10.0, 20.0, 30.0, 40.0]

    def test_periodic_with_stop_predicate(self):
        engine = SimulationEngine()
        ticks = []

        def tick():
            ticks.append(engine.now)

        engine.schedule_periodic(5.0, tick, start=5.0, stop_predicate=lambda: len(ticks) >= 3)
        engine.run(until=100.0)
        assert len(ticks) == 3

    def test_periodic_stop_predicate_checked_before_first_firing(self):
        """A node that dies between scheduling and the first tick must not run
        one last maintenance round."""
        engine = SimulationEngine()
        alive = [True]
        ticks = []
        engine.schedule_periodic(5.0, lambda: ticks.append(engine.now), start=5.0,
                                 stop_predicate=lambda: not alive[0])
        alive[0] = False  # dies before the first firing
        engine.run(until=30.0)
        assert ticks == []

    def test_periodic_stops_mid_stream_when_predicate_flips(self):
        engine = SimulationEngine()
        alive = [True]
        ticks = []

        def tick():
            ticks.append(engine.now)

        engine.schedule_periodic(5.0, tick, start=5.0, stop_predicate=lambda: not alive[0])
        engine.schedule(12.0, lambda: alive.__setitem__(0, False))
        engine.run(until=60.0)
        assert ticks == [5.0, 10.0]  # the 15.0 tick sees the death and never fires

    def test_periodic_jitter_requires_rng(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_periodic(5.0, lambda: None, jitter=1.0)

    def test_periodic_with_jitter_stays_roughly_periodic(self):
        engine = SimulationEngine()
        rng = RandomSource(3).stream("jitter")
        ticks = []
        engine.schedule_periodic(10.0, lambda: ticks.append(engine.now), start=0.0, jitter=2.0, rng=rng)
        engine.run(until=100.0)
        assert len(ticks) >= 8
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(10.0 <= g <= 12.0 for g in gaps)

    def test_reset(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending == 0
        assert engine.events_processed == 0

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        engine.run()
        assert engine.events_processed == 5
