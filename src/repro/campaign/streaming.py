"""Incremental, mergeable aggregation of trial records.

This module is the streaming core behind :mod:`repro.campaign.aggregate`:
instead of re-reading every trial record into memory and folding them in one
pass, summaries are built from *accumulators* that

* **update** one record at a time (a worker folds each record the moment it
  lands),
* **merge** with each other (per-worker partial summaries combine into the
  campaign summary), and
* **serialize** to JSON (a worker commits its partial state to disk as it
  drains the queue; the producer merges the committed partials).

Exactness contract
------------------
The campaign determinism suite compares serial, pool and queue backends
byte-identically under ``strip_timing`` — which means the merged-partials
summary must reproduce the serial summary *to the last bit*, even though
workers fold records in nondeterministic completion order and the partials
merge in directory order.

Floating-point accumulation cannot deliver that (float addition is not
associative), so :class:`MetricAccumulator` keeps its running first and
second moments as exact :class:`fractions.Fraction` values.  Every float is a
dyadic rational, so sums and products of sample values are exact, and exact
sums are order-independent; the single rounding step happens in
:meth:`MetricAccumulator.summary` when the exact moments convert to floats
(``float(Fraction)`` is correctly rounded).  The textbook reason to prefer
the Welford recurrence and Chan's parallel combine — cancellation in
floating-point — therefore vanishes: the moment sums *are* the
Welford/Chan quantities, computed without error, and ``merge`` is Chan's
combine specialised to exact arithmetic (plain addition of moments).

Duplicates
----------
Queue campaigns can execute one trial twice (a claim stolen from a slow —
not dead — worker), putting the same trial into two workers' partials.
Records are deterministic, so the two copies are byte-identical;
:meth:`remove` subtracts one copy's exact contribution, which is why the
accumulators support removal at all.  ``min``/``max`` stay valid under this
restricted removal because the other copy of the value remains accounted.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .spec import CampaignSpec, canonical_json, cost_key


def group_key(params: Mapping[str, object]) -> str:
    """Canonical identity of a grid cell: the parameters without the seed."""
    return canonical_json({k: v for k, v in params.items() if k != "seed"})


def _fraction_state(value: Fraction) -> List[int]:
    return [value.numerator, value.denominator]


def _fraction_from_state(state: Sequence[int]) -> Fraction:
    return Fraction(int(state[0]), int(state[1]))


class MetricAccumulator:
    """Exact streaming mean/std/ci95/min/max/n for one metric of one group."""

    __slots__ = ("n", "_sum", "_sumsq", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._sum = Fraction(0)
        self._sumsq = Fraction(0)
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def update(self, value: float) -> None:
        v = Fraction(float(value))
        self.n += 1
        self._sum += v
        self._sumsq += v * v
        fv = float(value)
        if self.min is None or fv < self.min:
            self.min = fv
        if self.max is None or fv > self.max:
            self.max = fv

    def merge(self, other: "MetricAccumulator") -> None:
        """Chan's parallel combine — exact, so it reduces to adding moments."""
        self.n += other.n
        self._sum += other._sum
        self._sumsq += other._sumsq
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def remove(self, value: float) -> None:
        """Subtract one duplicate contribution of ``value``.

        Only valid when another exactly-equal contribution of the same trial
        remains accounted (the queue-backend double-execution case): the
        moments are exact inverses, and ``min``/``max`` stay correct because
        the surviving copy still covers the extremes.
        """
        if self.n <= 0:
            raise ValueError("cannot remove from an empty accumulator")
        v = Fraction(float(value))
        self.n -= 1
        self._sum -= v
        self._sumsq -= v * v
        if self.n == 0:
            self.min = None
            self.max = None

    def summary(self) -> Dict[str, float]:
        """The ``{mean, std, ci95, min, max, n}`` block of ``summary.json``.

        Matches :func:`repro.campaign.aggregate.summarize` edge cases
        exactly: ``{"n": 0}`` when empty, ``std == ci95 == 0.0`` for a single
        sample.  The mean is the correctly-rounded float of the exact mean,
        so it does not depend on accumulation or merge order.
        """
        if self.n == 0:
            return {"n": 0}
        mean = float(self._sum / self.n)
        if self.n > 1:
            variance = (self._sumsq - self._sum * self._sum / self.n) / (self.n - 1)
            if variance < 0:  # pragma: no cover - exact arithmetic: impossible
                variance = Fraction(0)
            std = math.sqrt(float(variance))
            ci95 = 1.96 * std / math.sqrt(self.n)
        else:
            std = 0.0
            ci95 = 0.0
        return {
            "mean": mean,
            "std": std,
            "ci95": ci95,
            "min": self.min,
            "max": self.max,
            "n": self.n,
        }

    def to_state(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "sum": _fraction_state(self._sum),
            "sumsq": _fraction_state(self._sumsq),
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "MetricAccumulator":
        acc = cls()
        acc.n = int(state["n"])
        acc._sum = _fraction_from_state(state["sum"])
        acc._sumsq = _fraction_from_state(state["sumsq"])
        acc.min = state.get("min")
        acc.max = state.get("max")
        return acc


class TimingAccumulator:
    """Streaming version of the summary's ``timing`` block.

    Wall-clock genuinely varies between runs and lives outside the
    determinism-compared view (``strip_timing`` drops it wholesale), so plain
    float running sums suffice here — no exact arithmetic needed.  Folding
    records one at a time in their given order produces the same left-fold
    float sums as the batch ``sum()`` the block historically used.
    """

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # cost_key -> [n, total, max]
        self.cells: Dict[str, List[float]] = {}
        # worker -> [n, total]
        self.workers: Dict[str, List[float]] = {}
        # profiling counters summed over profiled trials (ints: exact).
        self.profile_counters: Dict[str, float] = {}
        self.profile_timers: Dict[str, float] = {}
        self.n_profiled = 0

    def add_record(self, record: Mapping[str, object]) -> None:
        timing = record.get("timing")
        if not isinstance(timing, Mapping):
            return
        elapsed = timing.get("elapsed_s")
        if isinstance(elapsed, (int, float)):
            seconds = float(elapsed)
            self.n += 1
            self.total += seconds
            if self.min is None or seconds < self.min:
                self.min = seconds
            if self.max is None or seconds > self.max:
                self.max = seconds
            key = cost_key(str(record.get("kind", "")), record.get("params", {}) or {})
            cell = self.cells.setdefault(key, [0, 0.0, seconds])
            cell[0] += 1
            cell[1] += seconds
            cell[2] = max(cell[2], seconds)
            worker = timing.get("worker")
            if worker:
                per_worker = self.workers.setdefault(str(worker), [0, 0.0])
                per_worker[0] += 1
                per_worker[1] += seconds
        profile = timing.get("profile")
        if isinstance(profile, Mapping):
            self.n_profiled += 1
            for name, value in (profile.get("counters") or {}).items():
                if isinstance(value, (int, float)):
                    self.profile_counters[str(name)] = (
                        self.profile_counters.get(str(name), 0) + value
                    )
            for name, value in (profile.get("timers_s") or {}).items():
                if isinstance(value, (int, float)):
                    self.profile_timers[str(name)] = (
                        self.profile_timers.get(str(name), 0.0) + float(value)
                    )

    def merge(self, other: "TimingAccumulator") -> None:
        self.n += other.n
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for key, (count, total, peak) in other.cells.items():
            cell = self.cells.setdefault(key, [0, 0.0, peak])
            cell[0] += count
            cell[1] += total
            cell[2] = max(cell[2], peak)
        for worker, (count, total) in other.workers.items():
            per_worker = self.workers.setdefault(worker, [0, 0.0])
            per_worker[0] += count
            per_worker[1] += total
        self.n_profiled += other.n_profiled
        for name, value in other.profile_counters.items():
            self.profile_counters[name] = self.profile_counters.get(name, 0) + value
        for name, value in other.profile_timers.items():
            self.profile_timers[name] = self.profile_timers.get(name, 0.0) + value

    def remove_record(self, record: Mapping[str, object]) -> None:
        """Subtract one duplicate record's timing contribution (best effort).

        Duplicate executions of a deterministic trial have *different*
        wall-clock, so exact inversion is neither possible nor needed — the
        timing block sits outside the determinism-compared view.  Counts are
        kept honest; min/max may conservatively over-cover.
        """
        timing = record.get("timing")
        if not isinstance(timing, Mapping):
            return
        elapsed = timing.get("elapsed_s")
        if isinstance(elapsed, (int, float)) and self.n > 0:
            seconds = float(elapsed)
            self.n -= 1
            self.total -= seconds
            key = cost_key(str(record.get("kind", "")), record.get("params", {}) or {})
            cell = self.cells.get(key)
            if cell is not None:
                cell[0] -= 1
                cell[1] -= seconds
                if cell[0] <= 0:
                    del self.cells[key]
            worker = timing.get("worker")
            if worker and str(worker) in self.workers:
                per_worker = self.workers[str(worker)]
                per_worker[0] -= 1
                per_worker[1] -= seconds
                if per_worker[0] <= 0:
                    del self.workers[str(worker)]
        if isinstance(timing.get("profile"), Mapping) and self.n_profiled > 0:
            self.n_profiled -= 1

    def summary(self) -> Dict[str, object]:
        if not self.n:
            return {"n": 0}
        summary: Dict[str, object] = {
            "n": self.n,
            "total_elapsed_s": self.total,
            "mean_elapsed_s": self.total / self.n,
            "min_elapsed_s": self.min,
            "max_elapsed_s": self.max,
            "cells": {
                key: {
                    "n": int(count),
                    "mean_elapsed_s": total / count,
                    "max_elapsed_s": peak,
                }
                for key, (count, total, peak) in sorted(self.cells.items())
            },
        }
        if self.workers:
            summary["workers"] = {
                worker: {
                    "n": int(count),
                    "total_elapsed_s": total,
                    "mean_elapsed_s": total / count,
                }
                for worker, (count, total) in sorted(self.workers.items())
            }
        if self.n_profiled:
            summary["profile"] = {
                "n": self.n_profiled,
                "counters": dict(sorted(self.profile_counters.items())),
                "timers_s": dict(sorted(self.profile_timers.items())),
            }
        return summary

    def to_state(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "cells": {k: list(v) for k, v in self.cells.items()},
            "workers": {k: list(v) for k, v in self.workers.items()},
            "n_profiled": self.n_profiled,
            "profile_counters": dict(self.profile_counters),
            "profile_timers": dict(self.profile_timers),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "TimingAccumulator":
        acc = cls()
        acc.n = int(state.get("n", 0))
        acc.total = float(state.get("total", 0.0))
        acc.min = state.get("min")
        acc.max = state.get("max")
        acc.cells = {str(k): list(v) for k, v in (state.get("cells") or {}).items()}
        acc.workers = {str(k): list(v) for k, v in (state.get("workers") or {}).items()}
        acc.n_profiled = int(state.get("n_profiled", 0))
        acc.profile_counters = dict(state.get("profile_counters") or {})
        acc.profile_timers = dict(state.get("profile_timers") or {})
        return acc


class IgnoredAxesAccumulator:
    """Streaming per-base-kind rollup of scenario axes trials could not apply."""

    def __init__(self) -> None:
        # base_kind -> (set of axis names, record count)
        self.by_kind: Dict[str, Tuple[Set[str], int]] = {}

    @staticmethod
    def _ignored(record: Mapping[str, object]) -> Optional[Tuple[str, List[str]]]:
        detail = record.get("detail")
        scenario = detail.get("scenario") if isinstance(detail, Mapping) else None
        if not isinstance(scenario, Mapping):
            return None
        axes = scenario.get("ignored_axes") or []
        if not axes:
            return None
        return str(scenario.get("base_kind", "unknown")), [str(a) for a in axes]

    def add_record(self, record: Mapping[str, object]) -> None:
        ignored = self._ignored(record)
        if ignored is None:
            return
        base_kind, axes = ignored
        entry = self.by_kind.get(base_kind)
        if entry is None:
            entry = (set(), 0)
        entry[0].update(axes)
        self.by_kind[base_kind] = (entry[0], entry[1] + 1)

    def remove_record(self, record: Mapping[str, object]) -> None:
        """Drop one duplicate record's count (axis sets keep the union —
        the duplicate is byte-identical, so its axes are already covered)."""
        ignored = self._ignored(record)
        if ignored is None:
            return
        base_kind, _axes = ignored
        entry = self.by_kind.get(base_kind)
        if entry is None:
            return
        if entry[1] <= 1:
            del self.by_kind[base_kind]
        else:
            self.by_kind[base_kind] = (entry[0], entry[1] - 1)

    def merge(self, other: "IgnoredAxesAccumulator") -> None:
        for base_kind, (axes, count) in other.by_kind.items():
            entry = self.by_kind.get(base_kind)
            if entry is None:
                self.by_kind[base_kind] = (set(axes), count)
            else:
                entry[0].update(axes)
                self.by_kind[base_kind] = (entry[0], entry[1] + count)

    def summary(self) -> Dict[str, Dict[str, object]]:
        return {
            base_kind: {"axes": sorted(axes), "n_trials": count}
            for base_kind, (axes, count) in sorted(self.by_kind.items())
        }

    def to_state(self) -> Dict[str, object]:
        return {
            base_kind: {"axes": sorted(axes), "n_trials": count}
            for base_kind, (axes, count) in self.by_kind.items()
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "IgnoredAxesAccumulator":
        acc = cls()
        for base_kind, entry in (state or {}).items():
            acc.by_kind[str(base_kind)] = (
                {str(a) for a in entry.get("axes", [])},
                int(entry.get("n_trials", 0)),
            )
        return acc


class GroupAccumulator:
    """All metric accumulators of one grid cell, plus its trial roster."""

    def __init__(self, key: str, params: Optional[Mapping[str, object]] = None) -> None:
        self.key = key
        self.params: Dict[str, object] = dict(params) if params else {}
        # trial_id -> seed; the roster that orders seeds/trial_ids at finalize.
        self.trial_seeds: Dict[str, object] = {}
        self.metrics: Dict[str, MetricAccumulator] = {}

    def add_record(self, record: Mapping[str, object]) -> None:
        params = record["params"]
        if not self.params:
            self.params = {k: v for k, v in params.items() if k != "seed"}
        self.trial_seeds[str(record["trial_id"])] = params.get("seed")
        for name, value in (record.get("metrics") or {}).items():
            acc = self.metrics.get(name)
            if acc is None:
                acc = self.metrics[name] = MetricAccumulator()
            acc.update(float(value))

    def remove_record(self, record: Mapping[str, object]) -> None:
        """Subtract one *duplicate* record (its twin stays accounted)."""
        for name, value in (record.get("metrics") or {}).items():
            acc = self.metrics.get(name)
            if acc is not None:
                acc.remove(float(value))

    def merge(self, other: "GroupAccumulator") -> None:
        if not self.params:
            self.params = dict(other.params)
        self.trial_seeds.update(other.trial_seeds)
        for name, acc in other.metrics.items():
            mine = self.metrics.get(name)
            if mine is None:
                self.metrics[name] = acc
            else:
                mine.merge(acc)

    def summary(self) -> Dict[str, object]:
        # Trials order by seed (spec order within a cell); the trial id breaks
        # the tie for hand-crafted records without seeds, keeping the output a
        # pure function of the accumulated set.
        ordered = sorted(
            self.trial_seeds.items(),
            key=lambda item: (item[1] if item[1] is not None else 0, item[0]),
        )
        return {
            "params": dict(self.params),
            "seeds": [seed for _tid, seed in ordered],
            "trial_ids": [tid for tid, _seed in ordered],
            "metrics": {
                name: self.metrics[name].summary() for name in sorted(self.metrics)
            },
        }

    def to_state(self) -> Dict[str, object]:
        return {
            "params": dict(self.params),
            "trials": dict(self.trial_seeds),
            "metrics": {name: acc.to_state() for name, acc in self.metrics.items()},
        }

    @classmethod
    def from_state(cls, key: str, state: Mapping[str, object]) -> "GroupAccumulator":
        acc = cls(key, params=state.get("params"))
        acc.trial_seeds = dict(state.get("trials") or {})
        acc.metrics = {
            str(name): MetricAccumulator.from_state(metric_state)
            for name, metric_state in (state.get("metrics") or {}).items()
        }
        return acc


#: on-disk schema version of serialized partial summaries.
PARTIAL_STATE_VERSION = 1


class CampaignAccumulator:
    """One campaign's summary under construction — updatable and mergeable.

    ``finalize`` emits exactly the structure ``aggregate_records`` always
    wrote; because the per-metric math is exact, a serial accumulator and any
    merge of per-worker partials over the same trial set produce byte-
    identical summaries (after ``strip_timing`` — the timing block keeps
    honest float wall-clock, which differs by construction).
    """

    def __init__(self) -> None:
        self.groups: Dict[str, GroupAccumulator] = {}
        self.timing = TimingAccumulator()
        self.ignored_axes = IgnoredAxesAccumulator()
        self._trial_ids: Set[str] = set()

    @property
    def trial_ids(self) -> Set[str]:
        """Ids of every trial this accumulator has folded in."""
        return self._trial_ids

    def __len__(self) -> int:
        return len(self._trial_ids)

    def add_record(self, record: Mapping[str, object]) -> bool:
        """Fold one record in; duplicates (same trial id) are skipped.

        Trial records are deterministic functions of their parameters, so a
        second record with an already-accounted id is byte-identical (modulo
        timing) and skipping it is exact.  Returns whether the record was new.
        """
        trial_id = str(record["trial_id"])
        if trial_id in self._trial_ids:
            return False
        self._trial_ids.add(trial_id)
        key = group_key(record["params"])
        group = self.groups.get(key)
        if group is None:
            group = self.groups[key] = GroupAccumulator(key)
        group.add_record(record)
        self.timing.add_record(record)
        self.ignored_axes.add_record(record)
        return True

    def remove_record(self, record: Mapping[str, object]) -> None:
        """Subtract one duplicate record's contribution (pre-merge dedupe).

        Used on a *partial* accumulator whose roster overlaps an already-
        merged one: the overlapping trial's numeric contribution is removed
        here so the subsequent :meth:`merge` counts it exactly once.  The
        trial id itself stays in the roster — the union is what merge wants.
        """
        key = group_key(record["params"])
        group = self.groups.get(key)
        if group is not None:
            group.remove_record(record)
        self.timing.remove_record(record)
        self.ignored_axes.remove_record(record)

    def merge(self, other: "CampaignAccumulator") -> None:
        """Combine another accumulator in (caller has deduped overlaps)."""
        for key, group in other.groups.items():
            mine = self.groups.get(key)
            if mine is None:
                self.groups[key] = group
            else:
                mine.merge(group)
        self.timing.merge(other.timing)
        self.ignored_axes.merge(other.ignored_axes)
        self._trial_ids.update(other._trial_ids)

    def finalize(self, spec: Optional[CampaignSpec] = None) -> Dict[str, object]:
        """The ``summary.json`` structure (see ``aggregate_records``)."""
        group_summaries = [self.groups[key].summary() for key in sorted(self.groups)]
        summary: Dict[str, object] = {
            "n_trials": len(self._trial_ids),
            "n_groups": len(group_summaries),
            "groups": group_summaries,
            "timing": self.timing.summary(),
        }
        ignored = self.ignored_axes.summary()
        if ignored:
            summary["ignored_axes"] = ignored
        if spec is not None:
            summary["name"] = spec.name
            summary["kind"] = spec.kind
            summary["n_trials_expected"] = spec.n_trials()
        return summary

    def to_state(self) -> Dict[str, object]:
        """JSON-serializable state — the partial-summary commit format."""
        return {
            "version": PARTIAL_STATE_VERSION,
            "n_trials": len(self._trial_ids),
            "groups": {key: group.to_state() for key, group in self.groups.items()},
            "timing": self.timing.to_state(),
            "ignored_axes": self.ignored_axes.to_state(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "CampaignAccumulator":
        version = state.get("version")
        if version != PARTIAL_STATE_VERSION:
            raise ValueError(f"unsupported partial-summary version {version!r}")
        acc = cls()
        for key, group_state in (state.get("groups") or {}).items():
            group = GroupAccumulator.from_state(str(key), group_state)
            acc.groups[str(key)] = group
            acc._trial_ids.update(group.trial_seeds)
        acc.timing = TimingAccumulator.from_state(state.get("timing") or {})
        acc.ignored_axes = IgnoredAxesAccumulator.from_state(state.get("ignored_axes") or {})
        return acc


def merge_partial_summaries(store, trials) -> CampaignAccumulator:
    """Assemble a campaign accumulator from committed per-worker partials.

    ``store`` is the campaign's :class:`~repro.campaign.persistence
    .CampaignStore`; ``trials`` the spec's expanded
    :class:`~repro.campaign.spec.TrialSpec` list.  Partials merge in sorted
    file order; overlapping trials (claim-steal double executions) are
    deduplicated by subtracting the duplicate's exact contribution, read back
    from its record with a *targeted* load — never a wholesale re-read.  Any
    spec trial no partial accounts for (resume-skipped trials, a worker that
    died before its final flush) is topped up the same way, record by record.

    A partial naming a duplicate whose record cannot be read is skipped
    wholesale (its unique trials fall through to the top-up), so a corrupt
    file can never double-count.
    """
    merged = CampaignAccumulator()
    for path in store.list_partials():
        state = store.load_partial(path)
        if state is None:
            continue
        try:
            part = CampaignAccumulator.from_state(state)
        except (ValueError, KeyError, TypeError):
            continue
        duplicates = sorted(part.trial_ids & merged.trial_ids)
        usable = True
        for trial_id in duplicates:
            record = store.load_trial(trial_id)
            if record is None:
                usable = False
                break
            part.remove_record(record)
        if usable:
            merged.merge(part)
    for trial in trials:
        if trial.trial_id not in merged.trial_ids:
            record = store.load_trial(trial.trial_id)
            if record is not None:
                merged.add_record(record)
    return merged
