"""On-disk layout of a campaign results directory.

::

    <out_dir>/
      spec.json             # the campaign spec as run
      summary.json          # aggregated metrics (see aggregate.py)
      trials/
        <trial_id>.json     # one record per completed trial
      queue/                # file-queue backend only (see backends/queue.py)
        enqueue-complete.json       # producer is done enqueueing; an empty
                                    # queue now means "campaign finished"
        pending/
          <order>-<trial_id>.json   # enqueued job, claimable by any worker
        claims/
          <trial_id>.json           # job claimed by a live (or dead) worker
        heartbeats/
          <worker_id>.json          # liveness/progress beacon, rewritten every
                                    # couple of seconds by each worker's
                                    # heartbeat thread (repro.campaign.telemetry)
        partials/
          <worker_id>.json          # that worker's mergeable partial summary
                                    # (repro.campaign.streaming state), committed
                                    # as records land; summary.json is produced
                                    # by merging these

Trial files are written atomically (tmp file + ``os.replace``) so a killed
run never leaves a half-written record; resume support treats only files
that parse and carry a ``metrics`` mapping as completed — a truncated or
otherwise corrupt file is indistinguishable from an absent one and the trial
re-runs.  Because trial ids are content-addressed hashes of the trial
parameters (see ``spec.py``), a record on disk is valid exactly as long as
the spec still expands to that trial — edited parameters yield new ids and
re-run automatically.

Each record also carries a ``timing`` block (``{"elapsed_s": ...}``, written
by the runner) with the trial's wall-clock cost.  It is informational only:
resumed trials keep the timing of the run that actually produced them, and
determinism comparisons go through ``aggregate.strip_timing``.

The queue layout exists so independent worker processes — possibly on other
machines sharing the directory over a network filesystem — can cooperate on
one campaign with no coordinator: ``os.rename`` of a pending job file into
``claims/`` is the atomic claim primitive (exactly one renamer succeeds; the
loser gets ``FileNotFoundError`` and moves on).  Pending filenames embed the
producer's dispatch order (zero-padded), so a plain sorted directory listing
is the schedule.  Claim files carry ``claimed_at``/``worker`` metadata; a
claim older than the TTL whose trial has no record is presumed orphaned by a
dead worker and is renamed back into ``pending/`` — and because trials are
deterministic functions of their parameters, the worst case of a *slow* (not
dead) worker losing its claim is two workers writing byte-identical records.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Union

from .spec import CampaignSpec


def sanitize_worker_id(worker_id: str) -> str:
    """A worker id reduced to filesystem-safe characters for telemetry files."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", str(worker_id)) or "worker"


def _write_json_atomic(path: Path, data: object) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


class CampaignStore:
    """Reads and writes one campaign's results directory."""

    def __init__(self, out_dir: Union[str, Path]) -> None:
        self.out_dir = Path(out_dir)
        self.trials_dir = self.out_dir / "trials"
        self.spec_path = self.out_dir / "spec.json"
        self.summary_path = self.out_dir / "summary.json"
        self.queue_dir = self.out_dir / "queue"
        self.pending_dir = self.queue_dir / "pending"
        self.claims_dir = self.queue_dir / "claims"
        # Present only once the producer has finished enqueueing: workers may
        # not treat an empty queue as a finished campaign before this exists.
        self.enqueue_complete_path = self.queue_dir / "enqueue-complete.json"
        # Worker telemetry (see repro.campaign.telemetry): heartbeat files
        # live next to the claims they vouch for; partial summaries are the
        # per-worker aggregation states summary.json is merged from.
        self.heartbeats_dir = self.queue_dir / "heartbeats"
        self.partials_dir = self.queue_dir / "partials"
        # Sweeper-local heartbeat watch, same skew-proof scheme as
        # _claim_watch below: worker id -> (identity token, local monotonic
        # time of the last observed content change).
        self._hb_watch: Dict[str, tuple] = {}
        # Sweeper-local claim watch: claim file name -> (identity token,
        # local monotonic first-seen).  Claim timestamps are written by the
        # *claiming* host's clock, which on a multi-machine filesystem may be
        # skewed relative to ours — observing a claim sit unchanged for a TTL
        # on OUR clock is the skew-proof way to call it orphaned.
        self._claim_watch: Dict[str, tuple] = {}

    def ensure_layout(self) -> None:
        self.trials_dir.mkdir(parents=True, exist_ok=True)

    def ensure_queue_layout(self) -> None:
        self.ensure_layout()
        self.pending_dir.mkdir(parents=True, exist_ok=True)
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        self.heartbeats_dir.mkdir(parents=True, exist_ok=True)
        self.partials_dir.mkdir(parents=True, exist_ok=True)

    # --------------------------------------------------------------- spec
    def write_spec(self, spec: CampaignSpec) -> None:
        self.ensure_layout()
        _write_json_atomic(self.spec_path, spec.to_dict())

    def load_spec(self) -> CampaignSpec:
        return CampaignSpec.from_json_file(self.spec_path)

    # -------------------------------------------------------------- trials
    def trial_path(self, trial_id: str) -> Path:
        return self.trials_dir / f"{trial_id}.json"

    def write_trial(self, record: Dict[str, object]) -> None:
        _write_json_atomic(self.trial_path(str(record["trial_id"])), record)

    def discard_trial(self, trial_id: str) -> None:
        """Delete a trial's record (it is about to be re-executed)."""
        try:
            self.trial_path(trial_id).unlink()
        except FileNotFoundError:
            pass

    def load_trial(self, trial_id: str) -> Optional[Dict[str, object]]:
        """The trial's record, or ``None`` if absent or unreadable."""
        path = self.trial_path(trial_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or "metrics" not in record:
            return None
        return record

    def completed_trial_ids(self) -> Set[str]:
        """Ids of every trial with a complete, parseable record on disk."""
        if not self.trials_dir.is_dir():
            return set()
        done: Set[str] = set()
        for path in sorted(self.trials_dir.glob("*.json")):
            if self.load_trial(path.stem) is not None:
                done.add(path.stem)
        return done

    def load_trials(self, trial_ids: Iterable[str]) -> List[Dict[str, object]]:
        """Records for the given ids, in the given order, missing ones skipped."""
        records = []
        for trial_id in trial_ids:
            record = self.load_trial(trial_id)
            if record is not None:
                records.append(record)
        return records

    # --------------------------------------------------------------- queue
    # The job queue used by the file-queue backend (backends/queue.py).  All
    # multi-process coordination reduces to atomic renames within queue/.

    def pending_job_path(self, order: int, trial_id: str) -> Path:
        return self.pending_dir / f"{int(order):06d}-{trial_id}.json"

    def claim_path(self, trial_id: str) -> Path:
        return self.claims_dir / f"{trial_id}.json"

    @staticmethod
    def _job_trial_id(path: Path) -> str:
        """Trial id from a pending filename ``<order>-<trial_id>.json``."""
        return path.stem.partition("-")[2]

    def enqueue_trial(
        self,
        order: int,
        trial: Dict[str, object],
        known_queued: Optional[Set[str]] = None,
    ) -> bool:
        """Add one trial-dict job to ``pending/`` unless already queued/claimed/done.

        Returns ``True`` if a job file was written.  The job carries its
        dispatch ``order`` in both filename (for cheap sorted listing) and
        body (so an expired claim can be renamed back to the right slot).
        A caller enqueueing a batch can pass ``known_queued`` — one upfront
        snapshot of the pending/claimed trial ids — to replace the per-call
        directory scan that would otherwise make bulk enqueue O(n²).
        """
        trial_id = str(trial["trial_id"])
        if self.load_trial(trial_id) is not None:
            return False
        if known_queued is not None:
            if trial_id in known_queued:
                return False
        elif self.claim_path(trial_id).exists() or (
            self.pending_dir.is_dir()
            and next(self.pending_dir.glob(f"*-{trial_id}.json"), None)  # repro-lint: ignore[D202] — existence probe; at most one pending file matches a trial id
        ):
            return False
        job = dict(trial)
        job["order"] = int(order)
        _write_json_atomic(self.pending_job_path(order, trial_id), job)
        return True

    def queued_trial_ids(self) -> Set[str]:
        """One snapshot of every trial id currently pending or claimed."""
        ids = {self._job_trial_id(p) for p in self.list_pending()}
        ids.update(p.stem for p in self.list_claims())
        return ids

    def purge_foreign_jobs(self, keep_ids: Set[str]) -> List[str]:
        """Drop queued jobs/claims whose trial is not in ``keep_ids``.

        A campaign directory holds exactly one spec; job files left by an
        earlier (edited or failed) spec would otherwise be claimed and
        executed forever — a requeued-on-failure job from a since-removed
        grid cell would poison every later queue run.  Returns the purged
        trial ids.
        """
        purged: List[str] = []
        for path in self.list_pending():
            trial_id = self._job_trial_id(path)
            if trial_id in keep_ids:
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                continue  # claimed (or purged) by someone else meanwhile
            purged.append(trial_id)
        for claim in self.list_claims():
            if claim.stem in keep_ids:
                continue
            try:
                claim.unlink()
            except FileNotFoundError:
                continue
            purged.append(claim.stem)
        return purged

    def list_pending(self) -> List[Path]:
        """Pending job files in dispatch order (filename-sorted)."""
        if not self.pending_dir.is_dir():
            return []
        return sorted(self.pending_dir.glob("*.json"))

    def list_claims(self) -> List[Path]:
        if not self.claims_dir.is_dir():
            return []
        return sorted(self.claims_dir.glob("*.json"))

    def peek_job(self, pending_path: Path) -> Optional[Dict[str, object]]:
        """Read a pending job's body without claiming it.

        ``None`` when the file vanished (claimed by another worker between
        the listing and the read) or is unparseable.  Purely advisory: the
        job may still be claimed away after a successful peek, so callers
        must go through :meth:`claim_job` before executing.
        """
        try:
            with open(pending_path, "r", encoding="utf-8") as handle:
                job = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(job, dict) or "trial_id" not in job:
            return None
        return job

    def claim_job(self, pending_path: Path, worker_id: str) -> Optional[Dict[str, object]]:
        """Atomically claim one pending job; ``None`` if another worker won.

        The claim is the rename itself — exactly one process moves the file
        into ``claims/``.  The winner then rewrites the claim file with
        ``claimed_at``/``worker`` so stale claims can be aged out; a crash
        inside that tiny window just leaves a claim whose age falls back to
        the file's mtime.
        """
        trial_id = self._job_trial_id(pending_path)
        claim = self.claim_path(trial_id)
        try:
            os.rename(pending_path, claim)
        except (FileNotFoundError, PermissionError):
            return None  # lost the race (PermissionError: Windows semantics)
        try:
            # Rename preserves the *enqueue* mtime; stamp the claim time now
            # so the mtime-based expiry fallback can't see a fresh claim as
            # already orphaned while the metadata rewrite below is in flight.
            os.utime(claim, None)
        except OSError:
            pass
        try:
            with open(claim, "r", encoding="utf-8") as handle:
                job = json.load(handle)
        except (OSError, ValueError):
            return None
        job["claimed_at"] = time.time()
        job["worker"] = worker_id
        _write_json_atomic(claim, job)
        return job

    def complete_job(self, trial_id: str) -> None:
        """Drop the claim of a trial whose record has been written."""
        try:
            self.claim_path(trial_id).unlink()
        except FileNotFoundError:
            pass

    def claim_age_s(self, claim_path: Path, now: Optional[float] = None) -> float:
        """Seconds since the claim was taken (mtime fallback for odd files).

        Clamped to >= 0: a negative age just means the claiming host's clock
        runs ahead of ours, not that the claim comes from the future.
        """
        now = time.time() if now is None else now
        try:
            with open(claim_path, "r", encoding="utf-8") as handle:
                job = json.load(handle)
            claimed_at = job.get("claimed_at")
            if isinstance(claimed_at, (int, float)):
                return max(now - float(claimed_at), 0.0)
        except (OSError, ValueError):
            pass
        try:
            return max(now - claim_path.stat().st_mtime, 0.0)
        except OSError:
            return 0.0

# ----------------------------------------------------------- telemetry
    # Heartbeat and partial-summary files written by repro.campaign.telemetry;
    # the store only owns their paths, atomic writes, and tolerant reads.

    def heartbeat_path(self, worker_id: str) -> Path:
        return self.heartbeats_dir / f"{sanitize_worker_id(worker_id)}.json"

    def write_heartbeat(self, worker_id: str, data: Dict[str, object]) -> None:
        self.heartbeats_dir.mkdir(parents=True, exist_ok=True)
        _write_json_atomic(self.heartbeat_path(worker_id), data)

    def list_heartbeats(self) -> List[Path]:
        if not self.heartbeats_dir.is_dir():
            return []
        return sorted(self.heartbeats_dir.glob("*.json"))

    def load_heartbeat(self, path: Union[str, Path]) -> Optional[Dict[str, object]]:
        """A heartbeat file's content, or ``None`` if unreadable/mid-rewrite."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def clear_heartbeats(self) -> None:
        """Drop all heartbeat files (producer start: stale workers are gone;
        live ones rewrite theirs within a beat interval)."""
        for path in self.list_heartbeats():
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        self._hb_watch.clear()

    def partial_path(self, worker_id: str) -> Path:
        return self.partials_dir / f"{sanitize_worker_id(worker_id)}.json"

    def write_partial(self, worker_id: str, state: Dict[str, object]) -> None:
        self.partials_dir.mkdir(parents=True, exist_ok=True)
        _write_json_atomic(self.partial_path(worker_id), state)

    def list_partials(self) -> List[Path]:
        """Committed partial-summary files in deterministic (sorted) order."""
        if not self.partials_dir.is_dir():
            return []
        return sorted(self.partials_dir.glob("*.json"))

    def load_partial(self, path: Union[str, Path]) -> Optional[Dict[str, object]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, ValueError):
            return None
        return state if isinstance(state, dict) else None

    def clear_partials(self) -> None:
        """Drop all partial summaries (producer start: this run's workers
        commit fresh ones; anything they don't cover is topped up from the
        trial records themselves)."""
        for path in self.list_partials():
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def heartbeat_fresh(self, worker_id: str, ttl_s: float) -> bool:
        """Whether a worker's heartbeat shows it alive within ``ttl_s``.

        Freshness deliberately errs toward "alive" (a false positive delays
        one reclaim by a TTL; a false negative steals a live worker's claim):

        * a heartbeat whose own ``updated_at`` stamp is within the TTL is
          fresh (fast path — heartbeats rewrite every couple of seconds, so
          this is orders of magnitude fresher than typical TTLs);
        * a heartbeat whose *content changed* since this process last looked
          is fresh regardless of its stamp (the skew-proof path: a live
          worker on a clock-skewed host keeps mutating the file);
        * only a heartbeat observed unchanged for a full TTL on our own
          monotonic clock — or explicitly marked ``state: "stopped"``, or
          absent entirely — counts as not fresh.
        """
        path = self.heartbeat_path(worker_id)
        try:
            stat = path.stat()
            token = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            return False  # no heartbeat: fall back to plain claim-TTL aging
        data = self.load_heartbeat(path)
        if data is not None and data.get("state") == "stopped":
            return False
        local_now = time.monotonic()
        seen = self._hb_watch.get(worker_id)
        if seen is None or seen[0] != token:
            self._hb_watch[worker_id] = (token, local_now)
            return True
        updated_at = (data or {}).get("updated_at")
        if isinstance(updated_at, (int, float)) and time.time() - float(updated_at) < ttl_s:
            return True
        return local_now - seen[1] <= ttl_s

    def claim_worker(self, claim_path: Path) -> str:
        """The worker id recorded on a claim ('' for a bare/unreadable one)."""
        try:
            with open(claim_path, "r", encoding="utf-8") as handle:
                job = json.load(handle)
            return str(job.get("worker") or "")
        except (OSError, ValueError):
            return ""

    def _claim_expired(self, claim_path: Path, claim_ttl_s: float) -> bool:
        """Whether a claim is presumed orphaned, robust to cross-host skew.

        Two independent criteria, either suffices:

        * the claim's own timestamp says it is older than the TTL (fast path
          for claims that were already stale before we started looking; with
          a behind-skewed claimer clock this can fire early, which costs a
          redundant — deterministically identical — execution, never a wrong
          result);
        * *this process* has watched the claim sit unchanged for a full TTL
          on its own monotonic clock (the skew-proof backstop: a dead
          worker's claim is reclaimed even if its clock ran arbitrarily
          ahead, so a campaign can never hang on it forever).
        """
        if self.claim_age_s(claim_path) > claim_ttl_s:
            return True
        try:
            stat = claim_path.stat()
            token = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            return False  # vanished: nothing to expire
        name = claim_path.name
        seen = self._claim_watch.get(name)
        local_now = time.monotonic()
        if seen is None or seen[0] != token:
            self._claim_watch[name] = (token, local_now)
            return False
        return local_now - seen[1] > claim_ttl_s

    def sweep_claims(self, claim_ttl_s: float) -> List[str]:
        """Clear finished claims and requeue expired ones; returns requeued ids.

        A claim whose trial already has a record is left over from a worker
        that died between writing the record and unlinking the claim — drop
        it.  A claim past the TTL with no record (see :meth:`_claim_expired`
        for the skew-robust criteria) is presumed orphaned and renamed back
        into ``pending/`` for any worker to re-claim (the rename keeps this
        race-safe: concurrent sweepers can't requeue one claim twice).

        A *fresh heartbeat* from the claim's worker vetoes expiry (see
        :meth:`heartbeat_fresh`): a single 10⁵-node trial can legitimately
        outlast any reasonable TTL, and the worker's heartbeat thread — not
        the untouched claim file's age — is the signal that it is slow
        rather than dead.  Workers without heartbeats (older code, manual
        claims) age out on the claim TTL exactly as before.
        """
        requeued: List[str] = []
        for claim in self.list_claims():
            trial_id = claim.stem
            if self.load_trial(trial_id) is not None:
                self.complete_job(trial_id)
                self._claim_watch.pop(claim.name, None)
                continue
            if not self._claim_expired(claim, claim_ttl_s):
                continue
            worker = self.claim_worker(claim)
            if worker and self.heartbeat_fresh(worker, claim_ttl_s):
                continue  # slow worker, not a dead one: leave its claim alone
            if self.requeue_claim(trial_id):
                self._claim_watch.pop(claim.name, None)
                requeued.append(trial_id)
        return requeued

    def requeue_claim(self, trial_id: str) -> bool:
        """Move a claim back into ``pending/`` (expired, or its trial failed).

        Returns ``False`` when there was nothing to requeue — the claim is
        gone (a concurrent sweeper moved it, or the worker finished after
        all).  Race-safe for the same reason claiming is: only one renamer
        of the claim file succeeds.
        """
        claim = self.claim_path(trial_id)
        try:
            with open(claim, "r", encoding="utf-8") as handle:
                job = json.load(handle)
            order = int(job.get("order", 0))
        except (OSError, ValueError, TypeError):
            order = 0
        try:
            os.rename(claim, self.pending_job_path(order, trial_id))
        except (FileNotFoundError, PermissionError):
            return False
        return True

    def queue_drained(self) -> bool:
        """True when no pending jobs and no claims remain."""
        return not self.list_pending() and not self.list_claims()

    def mark_enqueue_complete(self, n_trials: int) -> None:
        """Producer signal: every job of the campaign is now in the queue."""
        _write_json_atomic(self.enqueue_complete_path, {"n_trials": int(n_trials)})

    def clear_enqueue_complete(self) -> None:
        """Re-open the queue before (re-)enqueueing a batch of jobs."""
        try:
            self.enqueue_complete_path.unlink()
        except FileNotFoundError:
            pass

    def enqueue_complete(self) -> bool:
        return self.enqueue_complete_path.exists()

    # ------------------------------------------------------------- summary
    def write_summary(self, summary: Dict[str, object]) -> None:
        self.ensure_layout()
        _write_json_atomic(self.summary_path, summary)

    def load_summary(self) -> Optional[Dict[str, object]]:
        try:
            with open(self.summary_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None


@dataclass
class CampaignResults:
    """A loaded campaign results directory (spec + trials + summary)."""

    out_dir: Path
    spec: CampaignSpec
    records: List[Dict[str, object]] = field(default_factory=list)
    summary: Optional[Dict[str, object]] = None

    def metric_values(self, name: str) -> List[float]:
        """All per-trial values of one scalar metric, in trial order."""
        return [
            float(r["metrics"][name])
            for r in self.records
            if isinstance(r.get("metrics"), dict) and name in r["metrics"]
        ]

    def elapsed_values(self) -> List[float]:
        """Per-trial wall-clock seconds, in trial order (timed trials only)."""
        return [
            float(r["timing"]["elapsed_s"])
            for r in self.records
            if isinstance(r.get("timing"), dict)
            and isinstance(r["timing"].get("elapsed_s"), (int, float))
        ]


def load_campaign_results(out_dir: Union[str, Path]) -> CampaignResults:
    """Load a results directory written by :func:`repro.campaign.run_campaign`."""
    store = CampaignStore(out_dir)
    spec = store.load_spec()
    trial_ids = [t.trial_id for t in spec.expand()]
    return CampaignResults(
        out_dir=store.out_dir,
        spec=spec,
        records=store.load_trials(trial_ids),
        summary=store.load_summary(),
    )
