"""On-disk layout of a campaign results directory.

::

    <out_dir>/
      spec.json             # the campaign spec as run
      summary.json          # aggregated metrics (see aggregate.py)
      trials/
        <trial_id>.json     # one record per completed trial

Trial files are written atomically (tmp file + ``os.replace``) so a killed
run never leaves a half-written record; resume support treats only files
that parse and carry a ``metrics`` mapping as completed — a truncated or
otherwise corrupt file is indistinguishable from an absent one and the trial
re-runs.  Because trial ids are content-addressed hashes of the trial
parameters (see ``spec.py``), a record on disk is valid exactly as long as
the spec still expands to that trial — edited parameters yield new ids and
re-run automatically.

Each record also carries a ``timing`` block (``{"elapsed_s": ...}``, written
by the runner) with the trial's wall-clock cost.  It is informational only:
resumed trials keep the timing of the run that actually produced them, and
determinism comparisons go through ``aggregate.strip_timing``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Union

from .spec import CampaignSpec


def _write_json_atomic(path: Path, data: object) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


class CampaignStore:
    """Reads and writes one campaign's results directory."""

    def __init__(self, out_dir: Union[str, Path]) -> None:
        self.out_dir = Path(out_dir)
        self.trials_dir = self.out_dir / "trials"
        self.spec_path = self.out_dir / "spec.json"
        self.summary_path = self.out_dir / "summary.json"

    def ensure_layout(self) -> None:
        self.trials_dir.mkdir(parents=True, exist_ok=True)

    # --------------------------------------------------------------- spec
    def write_spec(self, spec: CampaignSpec) -> None:
        self.ensure_layout()
        _write_json_atomic(self.spec_path, spec.to_dict())

    def load_spec(self) -> CampaignSpec:
        return CampaignSpec.from_json_file(self.spec_path)

    # -------------------------------------------------------------- trials
    def trial_path(self, trial_id: str) -> Path:
        return self.trials_dir / f"{trial_id}.json"

    def write_trial(self, record: Dict[str, object]) -> None:
        _write_json_atomic(self.trial_path(str(record["trial_id"])), record)

    def load_trial(self, trial_id: str) -> Optional[Dict[str, object]]:
        """The trial's record, or ``None`` if absent or unreadable."""
        path = self.trial_path(trial_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or "metrics" not in record:
            return None
        return record

    def completed_trial_ids(self) -> Set[str]:
        """Ids of every trial with a complete, parseable record on disk."""
        if not self.trials_dir.is_dir():
            return set()
        done: Set[str] = set()
        for path in self.trials_dir.glob("*.json"):
            if self.load_trial(path.stem) is not None:
                done.add(path.stem)
        return done

    def load_trials(self, trial_ids: Iterable[str]) -> List[Dict[str, object]]:
        """Records for the given ids, in the given order, missing ones skipped."""
        records = []
        for trial_id in trial_ids:
            record = self.load_trial(trial_id)
            if record is not None:
                records.append(record)
        return records

    # ------------------------------------------------------------- summary
    def write_summary(self, summary: Dict[str, object]) -> None:
        self.ensure_layout()
        _write_json_atomic(self.summary_path, summary)

    def load_summary(self) -> Optional[Dict[str, object]]:
        try:
            with open(self.summary_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None


@dataclass
class CampaignResults:
    """A loaded campaign results directory (spec + trials + summary)."""

    out_dir: Path
    spec: CampaignSpec
    records: List[Dict[str, object]] = field(default_factory=list)
    summary: Optional[Dict[str, object]] = None

    def metric_values(self, name: str) -> List[float]:
        """All per-trial values of one scalar metric, in trial order."""
        return [
            float(r["metrics"][name])
            for r in self.records
            if isinstance(r.get("metrics"), dict) and name in r["metrics"]
        ]

    def elapsed_values(self) -> List[float]:
        """Per-trial wall-clock seconds, in trial order (timed trials only)."""
        return [
            float(r["timing"]["elapsed_s"])
            for r in self.records
            if isinstance(r.get("timing"), dict)
            and isinstance(r["timing"].get("elapsed_s"), (int, float))
        ]


def load_campaign_results(out_dir: Union[str, Path]) -> CampaignResults:
    """Load a results directory written by :func:`repro.campaign.run_campaign`."""
    store = CampaignStore(out_dir)
    spec = store.load_spec()
    trial_ids = [t.trial_id for t in spec.expand()]
    return CampaignResults(
        out_dir=store.out_dir,
        spec=spec,
        records=store.load_trials(trial_ids),
        summary=store.load_summary(),
    )
