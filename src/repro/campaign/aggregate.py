"""Aggregation of per-trial metrics into per-configuration summaries.

Trials are grouped by their parameters *minus the seed*: each group is one
cell of the campaign's parameter grid, its seeds the repeated measurements.
Every scalar metric is summarised as mean / sample standard deviation /
95% confidence half-width / min / max / n.

The confidence interval uses the normal approximation ``1.96 * std / sqrt(n)``
(not Student's t) — campaigns usually run enough seeds for the difference not
to matter, and it keeps the stdlib-only promise.  ``n`` is reported so a
stricter reader can re-derive t-based intervals.

Since the streaming refactor, the arithmetic lives in
:mod:`repro.campaign.streaming`: the batch entry points here are thin folds
over the same mergeable accumulators the queue workers commit as partial
summaries.  The per-metric moments are kept exact (see the streaming module's
docstring), so the summary is a pure function of the *set* of records — not
of completion order, worker assignment, or partial-merge order.  This is what
lets the acceptance check "serial and parallel runs produce identical
aggregates" hold exactly, not just approximately.

The one exception is the ``timing`` block: per-trial wall-clock seconds
(recorded by the runner under ``record["timing"]``) are summarised into
``summary["timing"]`` so campaign cost is visible, but wall-clock genuinely
differs between runs, so :func:`strip_timing` defines the view under which
serial and parallel outputs must compare byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .spec import CampaignSpec, canonical_json
from .streaming import (
    CampaignAccumulator,
    IgnoredAxesAccumulator,
    MetricAccumulator,
    TimingAccumulator,
    group_key,
)

__all__ = [
    "aggregate_records",
    "group_key",
    "group_metric_cells",
    "strip_timing",
    "summarize",
    "summarize_ignored_axes",
    "summarize_timing",
    "summary_rows",
]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean/std/ci95/min/max/n for one metric across one group's trials."""
    acc = MetricAccumulator()
    for value in values:
        acc.update(float(value))
    return acc.summary()


def strip_timing(data: Mapping[str, object]) -> Dict[str, object]:
    """A trial record or summary without its wall-clock ``timing`` block.

    This is the determinism-compared view: serial and parallel runs of the
    same spec must produce byte-identical trial records and summaries *after*
    this projection, because elapsed wall-clock is the one field that
    legitimately varies between otherwise identical runs.  The per-trial
    profiling snapshot (``timing.profile``, opt-in via ``REPRO_PROFILE``)
    rides inside the timing block for exactly this reason.
    """
    return {k: v for k, v in data.items() if k != "timing"}


def summarize_timing(records: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Fold per-trial ``timing.elapsed_s`` values into totals for the summary.

    Records written before timing capture existed (or hand-crafted ones)
    simply don't contribute; ``n`` counts only timed trials so the mean stays
    honest when old and new records are mixed in one directory.

    Besides the campaign-wide totals, the block carries a per-grid-cell
    breakdown under ``cells`` (keyed by :func:`repro.campaign.spec.cost_key`).
    That is the elapsed history :func:`repro.campaign.scheduling.schedule_trials`
    reads on the next run to dispatch longest-expected-first.

    Records whose ``timing`` names the executing worker (queue workers stamp
    their claim-owner id, see ``execute_trial``) additionally roll up into a
    ``workers`` breakdown — ``{worker_id: n / total / mean elapsed}`` — so a
    distributed campaign shows how the wall-clock split across its workers.
    Records without a worker label (serial and pool execution) simply don't
    contribute and the block is omitted when nobody is labelled.  Likewise,
    records carrying a ``timing.profile`` snapshot roll up into a ``profile``
    block of summed counters/timers.

    Everything here lives under the summary's top-level ``timing`` key, so
    :func:`strip_timing` removes it wholesale and the determinism contract is
    untouched.
    """
    acc = TimingAccumulator()
    for record in records:
        acc.add_record(record)
    return acc.summary()


def summarize_ignored_axes(
    records: Sequence[Mapping[str, object]],
) -> Dict[str, Dict[str, object]]:
    """Per-base-kind rollup of scenario axes the trials could not apply.

    Scenario records report axes their base harness cannot express under
    ``detail.scenario.ignored_axes`` (see :mod:`repro.scenarios.experiment`);
    this folds them into ``{base_kind: {"axes": [...], "n_trials": N}}`` so a
    sweep over kinds surfaces the gap at the summary/CLI level instead of
    only inside individual trial files.  Non-scenario records (and scenario
    records with nothing ignored) contribute nothing; the result is empty —
    and the summary key omitted — for the common all-applied case.
    """
    acc = IgnoredAxesAccumulator()
    for record in records:
        acc.add_record(record)
    return acc.summary()


def aggregate_records(
    records: Sequence[Mapping[str, object]],
    spec: Optional[CampaignSpec] = None,
) -> Dict[str, object]:
    """Fold trial records into the ``summary.json`` structure.

    A batch fold over :class:`~repro.campaign.streaming.CampaignAccumulator`
    — the streaming runner and the queue backend's merged partial summaries
    produce byte-identical structures because they share this accumulator.
    Records with an already-seen trial id are folded once (records are
    deterministic, so dropping the duplicate is exact).
    """
    acc = CampaignAccumulator()
    for record in records:
        acc.add_record(record)
    return acc.finalize(spec=spec)


def group_metric_cells(
    group: Mapping[str, object], metric_names: Sequence[str]
) -> Tuple[int, List[object]]:
    """(n, formatted cells) of one summary group's metric columns.

    The single definition of the metric-cell contract every rendered table
    shares: ``mean±ci95`` per metric, an empty cell for a metric the group
    never recorded, and ``n`` as the max over the group's metrics.
    """
    stats = group["metrics"]
    ns = [s.get("n", 0) for s in stats.values()]
    cells: List[object] = []
    for name in metric_names:
        stat = stats.get(name)
        if not stat or stat.get("n", 0) == 0:
            cells.append("")
        else:
            cells.append(f"{stat['mean']:.4g}±{stat['ci95']:.2g}")
    return (max(ns) if ns else 0), cells


def summary_rows(summary: Mapping[str, object], metrics: Optional[Sequence[str]] = None) -> Tuple[List[str], List[List[object]]]:
    """Flatten a summary into (headers, rows) for ``format_table``.

    One row per group; varied parameters first, then ``mean±ci95`` per metric.
    ``metrics`` selects/orders the metric columns (default: all, sorted).
    """
    groups = summary.get("groups", [])
    if not groups:
        return [], []
    # Only show parameters that actually vary between groups (plus n).
    all_params = sorted({k for g in groups for k in g["params"]})
    varied = [
        k for k in all_params
        if len({canonical_json(g["params"].get(k)) for g in groups}) > 1
    ] or all_params[:1]
    metric_names = list(metrics) if metrics else sorted({m for g in groups for m in g["metrics"]})
    headers = varied + ["n"] + metric_names
    rows: List[List[object]] = []
    for g in groups:
        row: List[object] = [g["params"].get(k, "") for k in varied]
        n, cells = group_metric_cells(g, metric_names)
        row.append(n)
        row.extend(cells)
        rows.append(row)
    return headers, rows
