"""Aggregation of per-trial metrics into per-configuration summaries.

Trials are grouped by their parameters *minus the seed*: each group is one
cell of the campaign's parameter grid, its seeds the repeated measurements.
Every scalar metric is summarised as mean / sample standard deviation /
95% confidence half-width / min / max / n.

The confidence interval uses the normal approximation ``1.96 * std / sqrt(n)``
(not Student's t) — campaigns usually run enough seeds for the difference not
to matter, and it keeps the stdlib-only promise.  ``n`` is reported so a
stricter reader can re-derive t-based intervals.

Determinism: groups are ordered by the canonical JSON of their parameters and
trials within a group by seed, so the summary — including float rounding of
the incremental sums — is identical no matter which worker finished first.
This is what lets the acceptance check "serial and parallel runs produce
identical aggregates" hold exactly, not just approximately.

The one exception is the ``timing`` block: per-trial wall-clock seconds
(recorded by the runner under ``record["timing"]``) are summarised into
``summary["timing"]`` so campaign cost is visible, but wall-clock genuinely
differs between runs, so :func:`strip_timing` defines the view under which
serial and parallel outputs must compare byte-identical.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .spec import CampaignSpec, canonical_json, cost_key


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean/std/ci95/min/max/n for one metric across one group's trials."""
    n = len(values)
    if n == 0:
        return {"n": 0}
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return {
        "mean": mean,
        "std": std,
        "ci95": 1.96 * std / math.sqrt(n) if n > 1 else 0.0,
        "min": min(values),
        "max": max(values),
        "n": n,
    }


def group_key(params: Mapping[str, object]) -> str:
    """Canonical identity of a grid cell: the parameters without the seed."""
    return canonical_json({k: v for k, v in params.items() if k != "seed"})


def strip_timing(data: Mapping[str, object]) -> Dict[str, object]:
    """A trial record or summary without its wall-clock ``timing`` block.

    This is the determinism-compared view: serial and parallel runs of the
    same spec must produce byte-identical trial records and summaries *after*
    this projection, because elapsed wall-clock is the one field that
    legitimately varies between otherwise identical runs.
    """
    return {k: v for k, v in data.items() if k != "timing"}


def summarize_timing(records: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Fold per-trial ``timing.elapsed_s`` values into totals for the summary.

    Records written before timing capture existed (or hand-crafted ones)
    simply don't contribute; ``n`` counts only timed trials so the mean stays
    honest when old and new records are mixed in one directory.

    Besides the campaign-wide totals, the block carries a per-grid-cell
    breakdown under ``cells`` (keyed by :func:`repro.campaign.spec.cost_key`).
    That is the elapsed history :func:`repro.campaign.scheduling.schedule_trials`
    reads on the next run to dispatch longest-expected-first.

    Records whose ``timing`` names the executing worker (queue workers stamp
    their claim-owner id, see ``execute_trial``) additionally roll up into a
    ``workers`` breakdown — ``{worker_id: n / total / mean elapsed}`` — so a
    distributed campaign shows how the wall-clock split across its workers.
    Records without a worker label (serial and pool execution) simply don't
    contribute and the block is omitted when nobody is labelled.

    Everything here lives under the summary's top-level ``timing`` key, so
    :func:`strip_timing` removes it wholesale and the determinism contract is
    untouched.
    """
    elapsed: List[float] = []
    by_cell: Dict[str, List[float]] = {}
    by_worker: Dict[str, List[float]] = {}
    for record in records:
        timing = record.get("timing")
        if isinstance(timing, Mapping) and isinstance(timing.get("elapsed_s"), (int, float)):
            seconds = float(timing["elapsed_s"])
            elapsed.append(seconds)
            key = cost_key(str(record.get("kind", "")), record.get("params", {}) or {})
            by_cell.setdefault(key, []).append(seconds)
            worker = timing.get("worker")
            if worker:
                by_worker.setdefault(str(worker), []).append(seconds)
    if not elapsed:
        return {"n": 0}
    summary: Dict[str, object] = {
        "n": len(elapsed),
        "total_elapsed_s": sum(elapsed),
        "mean_elapsed_s": sum(elapsed) / len(elapsed),
        "min_elapsed_s": min(elapsed),
        "max_elapsed_s": max(elapsed),
        "cells": {
            key: {
                "n": len(values),
                "mean_elapsed_s": sum(values) / len(values),
                "max_elapsed_s": max(values),
            }
            for key, values in sorted(by_cell.items())
        },
    }
    if by_worker:
        summary["workers"] = {
            worker: {
                "n": len(values),
                "total_elapsed_s": sum(values),
                "mean_elapsed_s": sum(values) / len(values),
            }
            for worker, values in sorted(by_worker.items())
        }
    return summary


def summarize_ignored_axes(
    records: Sequence[Mapping[str, object]],
) -> Dict[str, Dict[str, object]]:
    """Per-base-kind rollup of scenario axes the trials could not apply.

    Scenario records report axes their base harness cannot express under
    ``detail.scenario.ignored_axes`` (see :mod:`repro.scenarios.experiment`);
    this folds them into ``{base_kind: {"axes": [...], "n_trials": N}}`` so a
    sweep over kinds surfaces the gap at the summary/CLI level instead of
    only inside individual trial files.  Non-scenario records (and scenario
    records with nothing ignored) contribute nothing; the result is empty —
    and the summary key omitted — for the common all-applied case.
    """
    by_kind: Dict[str, Dict[str, object]] = {}
    for record in records:
        detail = record.get("detail")
        scenario = detail.get("scenario") if isinstance(detail, Mapping) else None
        if not isinstance(scenario, Mapping):
            continue
        axes = scenario.get("ignored_axes") or []
        if not axes:
            continue
        base_kind = str(scenario.get("base_kind", "unknown"))
        entry = by_kind.setdefault(base_kind, {"axes": set(), "n_trials": 0})
        entry["axes"].update(str(axis) for axis in axes)
        entry["n_trials"] += 1
    return {
        base_kind: {"axes": sorted(entry["axes"]), "n_trials": entry["n_trials"]}
        for base_kind, entry in sorted(by_kind.items())
    }


def aggregate_records(
    records: Sequence[Mapping[str, object]],
    spec: Optional[CampaignSpec] = None,
) -> Dict[str, object]:
    """Fold trial records into the ``summary.json`` structure."""
    groups: Dict[str, List[Mapping[str, object]]] = {}
    for record in records:
        groups.setdefault(group_key(record["params"]), []).append(record)

    group_summaries: List[Dict[str, object]] = []
    for key in sorted(groups):
        trials = sorted(groups[key], key=lambda r: r["params"].get("seed", 0))
        metric_names = sorted({name for t in trials for name in t.get("metrics", {})})
        metrics = {
            name: summarize([float(t["metrics"][name]) for t in trials if name in t["metrics"]])
            for name in metric_names
        }
        group_summaries.append(
            {
                "params": {k: v for k, v in trials[0]["params"].items() if k != "seed"},
                "seeds": [t["params"].get("seed") for t in trials],
                "trial_ids": [t["trial_id"] for t in trials],
                "metrics": metrics,
            }
        )

    summary: Dict[str, object] = {
        "n_trials": len(records),
        "n_groups": len(group_summaries),
        "groups": group_summaries,
        "timing": summarize_timing(records),
    }
    ignored_axes = summarize_ignored_axes(records)
    if ignored_axes:
        # Deterministic (sorted, content-derived) — safely inside the
        # strip_timing-compared view, identical across backends.
        summary["ignored_axes"] = ignored_axes
    if spec is not None:
        summary["name"] = spec.name
        summary["kind"] = spec.kind
        summary["n_trials_expected"] = spec.n_trials()
    return summary


def group_metric_cells(
    group: Mapping[str, object], metric_names: Sequence[str]
) -> Tuple[int, List[object]]:
    """(n, formatted cells) of one summary group's metric columns.

    The single definition of the metric-cell contract every rendered table
    shares: ``mean±ci95`` per metric, an empty cell for a metric the group
    never recorded, and ``n`` as the max over the group's metrics.
    """
    stats = group["metrics"]
    ns = [s.get("n", 0) for s in stats.values()]
    cells: List[object] = []
    for name in metric_names:
        stat = stats.get(name)
        if not stat or stat.get("n", 0) == 0:
            cells.append("")
        else:
            cells.append(f"{stat['mean']:.4g}±{stat['ci95']:.2g}")
    return (max(ns) if ns else 0), cells


def summary_rows(summary: Mapping[str, object], metrics: Optional[Sequence[str]] = None) -> Tuple[List[str], List[List[object]]]:
    """Flatten a summary into (headers, rows) for ``format_table``.

    One row per group; varied parameters first, then ``mean±ci95`` per metric.
    ``metrics`` selects/orders the metric columns (default: all, sorted).
    """
    groups = summary.get("groups", [])
    if not groups:
        return [], []
    # Only show parameters that actually vary between groups (plus n).
    all_params = sorted({k for g in groups for k in g["params"]})
    varied = [
        k for k in all_params
        if len({canonical_json(g["params"].get(k)) for g in groups}) > 1
    ] or all_params[:1]
    metric_names = list(metrics) if metrics else sorted({m for g in groups for m in g["metrics"]})
    headers = varied + ["n"] + metric_names
    rows: List[List[object]] = []
    for g in groups:
        row: List[object] = [g["params"].get(k, "") for k in varied]
        n, cells = group_metric_cells(g, metric_names)
        row.append(n)
        row.extend(cells)
        rows.append(row)
    return headers, rows
