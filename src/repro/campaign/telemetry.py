"""Worker-side telemetry: heartbeat files and partial-summary commits.

Every queue participant — standalone ``repro campaign-worker`` processes and
the producer's own drain loop — carries a :class:`WorkerTelemetry` that does
two things as trials execute:

* **Heartbeats** (``queue/heartbeats/<worker>.json``): a small JSON beacon
  rewritten every ``interval_s`` seconds by a daemon thread, so it stays
  fresh even while the main thread is deep inside a single long trial.  The
  claim sweeper reads it to tell *slow* workers from *dead* ones
  (:meth:`~repro.campaign.persistence.CampaignStore.heartbeat_fresh`), and
  ``repro campaign-status`` reads it for per-worker throughput.

* **Partial summaries** (``queue/partials/<worker>.json``): the worker's
  :class:`~repro.campaign.streaming.CampaignAccumulator` state, committed
  atomically after each executed record.  The producer merges these into
  ``summary.json`` instead of re-reading every trial record.

Heartbeat file format (all timestamps ``time.time()`` epoch seconds)::

    {
      "worker": "host-pid1234",        # claim-owner id
      "host": "host", "pid": 1234,
      "state": "running" | "idle" | "stopped",
      "started_at": ..., "updated_at": ...,
      "current_trial": "<trial_id>" | null,
      "current_trial_started_at": ... | null,
      "last_claim_at": ... | null,
      "trials_done": 3, "trials_skipped": 0,
      "trials_per_min": 12.4            # over a recent window of finishes
    }

Nothing here touches trial records or the determinism-compared view: both
file families live under ``queue/`` and are ignored by ``strip_timing``
comparisons entirely.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

from .persistence import CampaignStore
from .streaming import CampaignAccumulator

#: how often the heartbeat thread rewrites the beacon file.
DEFAULT_HEARTBEAT_INTERVAL_S = 2.0
#: finishes kept for the recent-throughput estimate.
_RATE_WINDOW = 32


class WorkerHeartbeat:
    """A worker's liveness beacon, kept fresh by a daemon thread.

    The writer thread exists because the interesting case is precisely when
    the worker's main thread is *not* available: a single huge trial blocks
    it for longer than any claim TTL, and the beacon must keep proving the
    process alive throughout.  All mutation goes through a lock; the thread
    only ever snapshots and writes.
    """

    def __init__(
        self,
        store: CampaignStore,
        worker_id: str,
        interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.store = store
        self.worker_id = worker_id
        self.interval_s = float(interval_s)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        now = time.time()
        self._state: Dict[str, object] = {
            "worker": worker_id,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "state": "idle",
            "started_at": now,
            "updated_at": now,
            "current_trial": None,
            "current_trial_started_at": None,
            "last_claim_at": None,
            "trials_done": 0,
            "trials_skipped": 0,
            "trials_per_min": 0.0,
        }
        self._finish_times: Deque[float] = deque(maxlen=_RATE_WINDOW)

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "WorkerHeartbeat":
        self.write_now()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{self.worker_id}", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.write_now()

    def stop(self) -> None:
        """Stop the thread and leave a final ``state: "stopped"`` beacon."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s + 1.0)
            self._thread = None
        with self._lock:
            self._state["state"] = "stopped"
            self._state["current_trial"] = None
            self._state["current_trial_started_at"] = None
        self.write_now()

    def write_now(self) -> None:
        with self._lock:
            self._state["updated_at"] = time.time()
            snapshot = dict(self._state)
        try:
            self.store.write_heartbeat(self.worker_id, snapshot)
        except OSError:
            pass  # telemetry must never kill the worker it describes

    # --------------------------------------------------------------- events
    def note_claim(self) -> None:
        with self._lock:
            self._state["last_claim_at"] = time.time()

    def trial_started(self, trial_id: str) -> None:
        with self._lock:
            self._state["state"] = "running"
            self._state["current_trial"] = trial_id
            self._state["current_trial_started_at"] = time.time()

    def trial_finished(self, ran: bool) -> None:
        now = time.time()
        with self._lock:
            self._state["current_trial"] = None
            self._state["current_trial_started_at"] = None
            self._state["state"] = "idle"
            if ran:
                self._state["trials_done"] = int(self._state["trials_done"]) + 1
                self._finish_times.append(now)
            else:
                self._state["trials_skipped"] = int(self._state["trials_skipped"]) + 1
            if len(self._finish_times) >= 2:
                span = self._finish_times[-1] - self._finish_times[0]
                if span > 0:
                    self._state["trials_per_min"] = (
                        (len(self._finish_times) - 1) * 60.0 / span
                    )
            elif self._finish_times:
                span = now - float(self._state["started_at"])
                self._state["trials_per_min"] = 60.0 / span if span > 0 else 0.0


class PartialSummaryWriter:
    """Commits a worker's streaming aggregation state after each record."""

    def __init__(
        self, store: CampaignStore, worker_id: str, flush_every: int = 1
    ) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be at least 1")
        self.store = store
        self.worker_id = worker_id
        self.flush_every = int(flush_every)
        self.accumulator = CampaignAccumulator()
        self._unflushed = 0

    def add(self, record: Dict[str, object]) -> None:
        if not self.accumulator.add_record(record):
            return
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if len(self.accumulator) == 0 and self._unflushed == 0:
            return  # nothing accounted: don't litter an empty partial
        try:
            self.store.write_partial(self.worker_id, self.accumulator.to_state())
        except OSError:
            return  # keep accumulating; the next flush (or top-up) covers us
        self._unflushed = 0


class WorkerTelemetry:
    """Facade the queue loops drive: heartbeat + partial commits together.

    The claim/execute helpers accept this (optionally — ``None`` keeps the
    old silent behaviour) and call :meth:`trial_started` /
    :meth:`trial_finished` around each execution.  ``close`` is idempotent
    and safe on every exit path: it flushes the partial and downgrades the
    heartbeat to ``stopped`` so the sweeper stops trusting it immediately.
    """

    def __init__(
        self,
        store: CampaignStore,
        worker_id: str,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        flush_every: int = 1,
    ) -> None:
        self.worker_id = worker_id
        self.heartbeat = WorkerHeartbeat(store, worker_id, heartbeat_interval_s)
        self.partials = PartialSummaryWriter(store, worker_id, flush_every)
        self._closed = False

    def start(self) -> "WorkerTelemetry":
        self.heartbeat.start()
        return self

    def note_claim(self) -> None:
        self.heartbeat.note_claim()

    def trial_started(self, trial_id: str) -> None:
        self.heartbeat.trial_started(trial_id)

    def trial_finished(self, record: Dict[str, object], ran: bool) -> None:
        # Only records this worker physically executed enter its partial:
        # a skipped (already-recorded) trial belongs to whichever worker
        # wrote it — or, if that worker died unflushed, to the producer's
        # record-by-record top-up.
        if ran:
            self.partials.add(record)
        self.heartbeat.trial_finished(ran)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.partials.flush()
        self.heartbeat.stop()
