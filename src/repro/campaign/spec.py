"""Declarative campaign specifications and their expansion into trials.

A campaign is ``experiment kind × parameter grid × seed list``.  The spec is
plain data (JSON-friendly), so campaigns can live in version-controlled files
next to the figures they regenerate::

    {
      "name": "fig3a-sweep",
      "kind": "security",
      "base": {"n_nodes": 150, "duration": 400, "attack": "lookup-bias"},
      "grid": {"attack_rate": [1.0, 0.5]},
      "seeds": [0, 1, 2, 3]
    }

``expand()`` turns the spec into the full cross product of grid axes and
seeds: one :class:`TrialSpec` per (combination, seed), each carrying a
deterministic ``trial_id``.  Trial ids are purely content-addressed (a hash
of the kind and the exact parameter mapping, prefixed with the seed for
readability), which is what makes resume support safe: a finished trial is
recognised across runs *even when the grid or seed list has since grown*,
and any edit to its parameters changes its id and forces a re-run.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union


def canonical_json(data: object) -> str:
    """Key-sorted, whitespace-free JSON — the hashing/grouping canonical form."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def cost_key(kind: str, params: Mapping[str, object]) -> str:
    """Stable identity of a grid cell for timing purposes: kind + params − seed.

    Trials of the same cell differ only by seed and therefore cost roughly the
    same wall-clock, so per-cell elapsed history (``summary.json``'s
    ``timing.cells`` block) is keyed by this string and consulted by
    :func:`repro.campaign.scheduling.schedule_trials` to dispatch
    longest-expected-first.  The key is canonical JSON, so it survives
    round-trips through summary files and is identical across processes.
    """
    cell = {k: v for k, v in params.items() if k != "seed"}
    return canonical_json({"kind": kind, "cell": cell})


@dataclass(frozen=True)
class TrialSpec:
    """One independent unit of work: an experiment kind plus its parameters.

    ``params`` includes the trial's ``seed``; two trials of a campaign never
    share a ``trial_id`` because the (kind, params) pair is unique within the
    expanded grid.
    """

    trial_id: str
    kind: str
    params: Mapping[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {"trial_id": self.trial_id, "kind": self.kind, "params": dict(self.params)}

    @property
    def cost_key(self) -> str:
        """The trial's grid-cell timing key (see :func:`cost_key`)."""
        return cost_key(self.kind, self.params)


@dataclass
class CampaignSpec:
    """A declarative multi-trial experiment campaign."""

    kind: str
    name: str = ""
    #: parameters shared by every trial (overridden by grid axes).
    base: Dict[str, object] = field(default_factory=dict)
    #: parameter name -> list of values; the cross product of all axes is run.
    grid: Dict[str, List[object]] = field(default_factory=dict)
    #: each grid combination is run once per seed.
    seeds: Tuple[int, ...] = (0,)
    #: optional provenance: the paper figure/table this campaign regenerates
    #: (a key of :mod:`repro.campaign.figures`, e.g. ``"fig3a"``).  Purely
    #: informational for trial identity — it is not part of the trial hash, so
    #: tagging an existing campaign never invalidates finished trials.
    figure: str = ""

    def __post_init__(self) -> None:
        self.seeds = tuple(self.seeds)
        if not self.name:
            self.name = f"{self.kind}-campaign"

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        from .registry import available_kinds

        if self.kind not in available_kinds():
            raise ValueError(
                f"unknown experiment kind {self.kind!r}; choose from {sorted(available_kinds())}"
            )
        if not self.seeds:
            raise ValueError("a campaign needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError("duplicate seeds would run identical trials twice")
        for axis, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"grid axis {axis!r} must be a non-empty list of values")
            if len({canonical_json(v) for v in values}) != len(values):
                raise ValueError(f"grid axis {axis!r} contains duplicate values")
        if "seed" in self.base or "seed" in self.grid:
            raise ValueError("put seeds in the 'seeds' list, not in base/grid parameters")
        if self.figure:
            from .figures import available_figures, get_figure

            if self.figure not in available_figures():
                raise ValueError(
                    f"unknown figure {self.figure!r}; choose from {sorted(available_figures())}"
                )
            expected = get_figure(self.figure).kind
            if expected != self.kind:
                raise ValueError(
                    f"figure {self.figure!r} is produced by kind {expected!r}, "
                    f"not {self.kind!r}"
                )

    # -------------------------------------------------------------- expansion
    def expand(self) -> List[TrialSpec]:
        """Cross product of grid axes × seeds, in deterministic order.

        Axes iterate in sorted-name order and seeds in the order given, so the
        trial list (and every trial id) is identical between runs of the same
        spec — the property resume support and the serial/parallel equality
        guarantee both rest on.
        """
        self.validate()
        axes = sorted(self.grid)
        value_lists = [self.grid[a] for a in axes]
        trials: List[TrialSpec] = []
        for combo in itertools.product(*value_lists):
            overrides = dict(zip(axes, combo))
            for seed in self.seeds:
                params = {**self.base, **overrides, "seed": seed}
                digest = hashlib.sha256(
                    canonical_json({"kind": self.kind, "params": params}).encode("utf-8")
                ).hexdigest()[:12]
                # The id is purely content-derived (no positional index): adding
                # seeds or grid values must not rename unchanged trials, or
                # resume would re-run work it already has on disk.
                trials.append(
                    TrialSpec(trial_id=f"s{seed}-{digest}", kind=self.kind, params=params)
                )
        return trials

    def n_trials(self) -> int:
        count = len(self.seeds)
        for values in self.grid.values():
            count *= len(values)
        return count

    # ------------------------------------------------------------- (de)serial
    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "base": dict(self.base),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "seeds": list(self.seeds),
        }
        # Written only when set, so spec.json files from before the figure
        # field existed round-trip to an identical document.
        if self.figure:
            data["figure"] = self.figure
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        known = {"name", "kind", "base", "grid", "seeds", "figure"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown campaign spec keys: {', '.join(unknown)}")
        if "kind" not in data:
            raise ValueError("campaign spec needs a 'kind'")
        base = data.get("base", {})
        grid = data.get("grid", {})
        seeds = data.get("seeds", (0,))
        if not isinstance(base, dict):
            raise ValueError("'base' must be a mapping of parameter name -> value")
        if not isinstance(grid, dict) or any(
            not isinstance(v, (list, tuple)) for v in grid.values()
        ):
            raise ValueError("'grid' must map parameter names to lists of values")
        if not isinstance(seeds, (list, tuple)) or any(
            not isinstance(s, int) or isinstance(s, bool) for s in seeds
        ):
            raise ValueError("'seeds' must be a list of integers")
        return cls(
            kind=str(data["kind"]),
            name=str(data.get("name", "")),
            base=dict(base),
            grid={k: list(v) for k, v in grid.items()},
            seeds=tuple(seeds),
            figure=str(data.get("figure", "")),
        )

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
