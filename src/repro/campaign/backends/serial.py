"""In-process, one-at-a-time execution — the determinism/debugging baseline."""

from __future__ import annotations

from typing import Dict, Iterator, Sequence

from ..persistence import CampaignStore
from ..spec import TrialSpec
from .base import Backend, execute_trial


class SerialBackend(Backend):
    """Run every trial in the calling process, in the order given.

    This is the ``jobs=1`` path: flat tracebacks, working ``pdb``/profilers,
    and the reference output the parallel backends are compared against.
    ``reorders`` is False — with a single worker the makespan is the same in
    any order, so the runner keeps spec order for predictable debugging.
    """

    name = "serial"
    reorders = False

    def submit(
        self, trials: Sequence[TrialSpec], store: CampaignStore
    ) -> Iterator[Dict[str, object]]:
        for trial in trials:
            record = execute_trial(trial.to_dict())
            store.write_trial(record)
            yield record
