"""File-queue execution: cooperating worker processes over a shared directory.

The producer (``run_campaign(..., backend="queue")``) persists every pending
trial as a claimable job file under ``<out_dir>/queue/pending/`` in dispatch
order, then *itself* enters the worker loop — so a queue campaign always
completes even when no external worker ever shows up.  Any number of extra
workers (``python -m repro campaign-worker <out_dir>``, on this machine, over
SSH, or anywhere that mounts the same filesystem) join by running the same
loop:

    claim (atomic rename into ``claims/``) → execute → write record → drop
    claim → next

No sockets, no coordinator: the directory *is* the queue, and atomic rename
is the only synchronisation primitive (see
:mod:`repro.campaign.persistence`).  Fault tolerance falls out of the claim
files: a worker that dies mid-trial leaves a claim that ages past the TTL and
is swept back into ``pending/`` for someone else; a worker that dies between
writing the record and dropping its claim leaves a claim whose record already
exists, which the sweep simply clears.  Because trials are deterministic, the
pathological case — a claim stolen from a worker that was merely slow — ends
with two byte-identical records, not a conflict.

The producer yields each of its trials' records exactly once, in completion
order, whether it executed the trial locally or harvested a record written by
a remote worker.
"""

from __future__ import annotations

import os
import random
import socket
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple, Union

from ..persistence import CampaignStore
from ..scheduling import load_timing_history
from ..spec import TrialSpec, cost_key
from ..telemetry import DEFAULT_HEARTBEAT_INTERVAL_S, WorkerTelemetry
from .base import Backend, execute_trial

#: how long a claim may sit unreaped before it is presumed orphaned.
DEFAULT_CLAIM_TTL_S = 300.0
#: how long an idle worker sleeps between queue polls (backoff floor).
DEFAULT_POLL_INTERVAL_S = 0.2
#: idle-poll backoff ceiling: a long-idle worker never sleeps longer than this.
DEFAULT_MAX_POLL_INTERVAL_S = 5.0
#: grid cells whose recorded mean elapsed time reaches this claim singly even
#: under ``--claim-batch``: holding several expensive trials behind one claim
#: starves other workers and widens the crash-reexecution window.
DEFAULT_BATCH_EXPENSIVE_S = 5.0


def default_worker_id() -> str:
    """A claim owner label unique across hosts sharing the queue directory."""
    return f"{socket.gethostname()}-pid{os.getpid()}"


class PollBackoff:
    """Exponential idle-poll backoff with jitter for queue workers.

    A fixed poll interval makes many idle workers hammer the shared
    filesystem in lockstep; this decays the poll rate while the queue stays
    empty and snaps back the moment work appears.  Each consecutive idle
    poll doubles the delay (``base_s`` up to ``max_s``); :meth:`reset` — on a
    claimed job — drops back to the floor.  Jitter spreads a ±``jitter``
    fraction around each delay so co-started workers desynchronize; it
    perturbs *when* a worker looks, never *what* it computes, so trial
    records stay byte-identical.
    """

    def __init__(
        self,
        base_s: float,
        max_s: float = DEFAULT_MAX_POLL_INTERVAL_S,
        factor: float = 2.0,
        jitter: float = 0.25,
        rng: Optional[random.Random] = None,
    ) -> None:
        if base_s <= 0:
            raise ValueError("base_s must be positive")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.base_s = float(base_s)
        self.max_s = max(float(max_s), self.base_s)
        self.factor = float(factor)
        self.jitter = float(jitter)
        # Jitter only perturbs poll timing, never records, but it must still
        # be explicitly seeded: the pid keeps co-started workers apart while
        # staying derivable (a caller wanting exact replay passes its own rng).
        self._rng = rng if rng is not None else random.Random(os.getpid())
        self._idle_polls = 0

    @property
    def idle_polls(self) -> int:
        """Escalation steps taken since the last reset (capped at the ceiling)."""
        return self._idle_polls

    def current_delay(self) -> float:
        """The undithered delay the next :meth:`next_delay` is based on."""
        return min(self.base_s * self.factor ** self._idle_polls, self.max_s)

    def next_delay(self) -> float:
        """Record one idle poll and return how long to sleep before the next."""
        delay = self.current_delay()
        # Stop escalating once the ceiling is reached: factor**idle_polls
        # would otherwise overflow after enough idle polls (a worker parked
        # on an empty queue for an hour would crash instead of waiting).
        if delay < self.max_s and self.factor > 1.0:
            self._idle_polls += 1
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def reset(self) -> None:
        """Work was found: poll at full rate again."""
        self._idle_polls = 0


def claim_and_execute_next(
    store: CampaignStore,
    worker_id: str,
    telemetry: Optional[WorkerTelemetry] = None,
) -> Tuple[Optional[Dict[str, object]], bool]:
    """Claim the first claimable pending job and return ``(record, ran)``.

    ``record`` is ``None`` when every pending job was claimed by someone else
    first (or the queue is empty).  Jobs whose record already exists —
    enqueued twice across crashed runs, or re-executed after a claim steal —
    are not re-run: their claim is cleared and the existing record returned
    with ``ran=False``, so callers can account executions honestly.

    ``telemetry`` (optional) is notified around each claim and execution so
    the worker's heartbeat names the in-flight trial and its partial summary
    accumulates each record it physically executed.
    """
    for path in store.list_pending():
        job = store.claim_job(path, worker_id)
        if job is None:
            continue  # lost the rename race; try the next job
        if telemetry is not None:
            telemetry.note_claim()
        trial_id = str(job["trial_id"])
        record = store.load_trial(trial_id)
        ran = False
        if record is None:
            if telemetry is not None:
                telemetry.trial_started(trial_id)
            try:
                record = execute_trial(
                    {"trial_id": trial_id, "kind": job["kind"], "params": job["params"]},
                    worker=worker_id,
                )
                store.write_trial(record)
            except BaseException:
                # Covers the record write too (ENOSPC, mount errors): put the
                # job straight back so recovery (--resume, or another worker)
                # doesn't have to wait out the claim TTL first.
                store.requeue_claim(trial_id)
                raise
            ran = True
        store.complete_job(trial_id)
        if telemetry is not None:
            telemetry.trial_finished(record, ran)
        return record, ran
    return None, False


def expensive_cost_keys(
    store: CampaignStore, threshold_s: float = DEFAULT_BATCH_EXPENSIVE_S
) -> frozenset:
    """Grid cells whose recorded mean wall-clock reaches ``threshold_s``.

    Sourced from the campaign summary's timing block (a previous run, or a
    ``--resume``); a campaign with no summary yet has no history, so every
    cell batches until evidence says otherwise.
    """
    summary = store.load_summary()
    if summary is None:
        return frozenset()
    history = load_timing_history(summary)
    return frozenset(key for key, mean_s in history.items() if mean_s >= threshold_s)


def claim_and_execute_batch(
    store: CampaignStore,
    worker_id: str,
    batch_size: int = 1,
    expensive_keys: frozenset = frozenset(),
    telemetry: Optional[WorkerTelemetry] = None,
) -> list:
    """Claim up to ``batch_size`` same-cost-key pending jobs, execute in order.

    The first claimable job anchors the batch; further pending jobs join only
    while they share its :func:`~repro.campaign.spec.cost_key` (same kind and
    grid cell — seeds differ), so a batch is a run of cheap look-alike trials
    and never mixes cells with different costs.  Anchors whose cost key is in
    ``expensive_keys`` claim singly.  Returns ``[(record, ran), ...]`` in
    execution order (empty when nothing was claimable).  A failing trial
    requeues every not-yet-executed claim of the batch — already-written
    records are kept — then re-raises, so nothing is lost to a mid-batch
    crash beyond the claim-TTL wait ``claim_and_execute_next`` already risks.
    """
    if batch_size <= 1:
        record, ran = claim_and_execute_next(store, worker_id, telemetry)
        return [] if record is None else [(record, ran)]

    claimed: list = []
    anchor_key: Optional[str] = None
    for path in store.list_pending():
        if not claimed:
            job = store.claim_job(path, worker_id)
            if job is None:
                continue  # lost the rename race; try the next job
            if telemetry is not None:
                telemetry.note_claim()
            claimed.append(job)
            anchor_key = cost_key(str(job["kind"]), job["params"])
            if anchor_key in expensive_keys:
                break  # expensive cells claim singly
            continue
        if len(claimed) >= batch_size:
            break
        peeked = store.peek_job(path)
        if peeked is None:  # claimed away (or unreadable); leave it
            continue
        if cost_key(str(peeked["kind"]), peeked["params"]) != anchor_key:
            continue  # different cell: stays claimable for other workers
        job = store.claim_job(path, worker_id)
        if job is not None:
            if telemetry is not None:
                telemetry.note_claim()
            claimed.append(job)

    results: list = []
    for index, job in enumerate(claimed):
        trial_id = str(job["trial_id"])
        record = store.load_trial(trial_id)
        ran = False
        if record is None:
            if telemetry is not None:
                telemetry.trial_started(trial_id)
            try:
                record = execute_trial(
                    {"trial_id": trial_id, "kind": job["kind"], "params": job["params"]},
                    worker=worker_id,
                )
                store.write_trial(record)
            except BaseException:
                for unexecuted in claimed[index:]:
                    store.requeue_claim(str(unexecuted["trial_id"]))
                raise
            ran = True
        store.complete_job(trial_id)
        if telemetry is not None:
            telemetry.trial_finished(record, ran)
        results.append((record, ran))
    return results


class FileQueueBackend(Backend):
    """Run trials through the shared on-disk job queue, participating in it."""

    name = "queue"
    # The producer and every worker commit per-worker partial summaries; the
    # runner assembles summary.json by merging them (plus a targeted top-up)
    # instead of re-reading all trial records.
    commits_partials = True

    def __init__(
        self,
        worker_id: Optional[str] = None,
        claim_ttl_s: float = DEFAULT_CLAIM_TTL_S,
        poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
        claim_batch: int = 1,
        batch_expensive_s: float = DEFAULT_BATCH_EXPENSIVE_S,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ) -> None:
        if claim_ttl_s <= 0:
            raise ValueError("claim_ttl_s must be positive")
        if claim_batch < 1:
            raise ValueError("claim_batch must be at least 1")
        self.worker_id = worker_id or default_worker_id()
        self.claim_ttl_s = claim_ttl_s
        self.poll_interval_s = poll_interval_s
        self.claim_batch = int(claim_batch)
        self.batch_expensive_s = float(batch_expensive_s)
        self.heartbeat_interval_s = float(heartbeat_interval_s)

    def prepare(self, store: CampaignStore) -> None:
        # Re-open the queue as the very first campaign action: workers only
        # treat "drained" as "campaign finished" while the enqueue-complete
        # marker exists, so clearing it here (before the runner's resume
        # probe, which scales with the campaign size) keeps concurrently
        # started workers from exiting on a previous run's finished state.
        store.ensure_queue_layout()
        store.clear_enqueue_complete()

    def submit(
        self, trials: Sequence[TrialSpec], store: CampaignStore
    ) -> Iterator[Dict[str, object]]:
        store.ensure_queue_layout()
        store.clear_enqueue_complete()  # no-op unless submit is called directly
        # One campaign directory holds one spec: jobs left by an earlier,
        # since-edited spec (e.g. a failing trial requeued before its grid
        # cell was removed) must not keep getting claimed and executed.
        store.purge_foreign_jobs({t.trial_id for t in trials})
        # Fresh run, fresh telemetry: partial summaries and heartbeats left by
        # a previous run of this directory describe records the loop below is
        # about to discard — merging them into this run's summary would
        # resurrect stale results.  (Workers already attached re-write their
        # heartbeat within one interval, and their partials only ever name
        # records executed *after* this point.)
        store.clear_partials()
        store.clear_heartbeats()
        # The runner decided these trials must run (no record, or a run
        # without --resume): a leftover record would otherwise make the queue
        # serve stale results where serial/pool re-execute.  Discard BEFORE
        # snapshotting the queue: any record appearing after this point was
        # written by a live worker running current code and is fresh by
        # definition, so the worst race outcome is a redundant (and
        # determinism-tolerated) re-execution — never a lost trial.
        for trial in trials:
            store.discard_trial(trial.trial_id)
        queued = store.queued_trial_ids()  # one snapshot, not a scan per trial
        for order, trial in enumerate(trials):
            store.enqueue_trial(order, trial.to_dict(), known_queued=queued)
        store.mark_enqueue_complete(len(trials))

        # Batch membership is advisory (cheap cells claim together); the
        # records themselves are untouched, so serial == pool == queue holds
        # for any claim_batch value.
        expensive = (
            expensive_cost_keys(store, self.batch_expensive_s)
            if self.claim_batch > 1
            else frozenset()
        )
        wanted = [t.trial_id for t in trials]
        outstanding = set(wanted)
        # The producer is a queue participant like any other: its heartbeat
        # and partial summary cover the trials it executes locally.  Records
        # harvested from other workers are NOT folded into its partial — they
        # belong to the executing worker's partial (or, if that worker died
        # unflushed, to the runner's targeted top-up).
        telemetry = WorkerTelemetry(
            store, self.worker_id, heartbeat_interval_s=self.heartbeat_interval_s
        ).start()
        try:
            while outstanding:
                batch = claim_and_execute_batch(
                    store, self.worker_id, self.claim_batch, expensive, telemetry
                )
                if batch:
                    for record, _ran in batch:
                        trial_id = str(record["trial_id"])
                        if trial_id in outstanding:
                            outstanding.discard(trial_id)
                            yield record
                    continue  # keep draining while there is claimable work

                # Nothing claimable: harvest records produced by other workers.
                # One directory listing bounds the cost per poll; only names that
                # actually appeared are opened and parsed.
                harvested = False
                present = {p.stem for p in store.trials_dir.glob("*.json")}
                for trial_id in wanted:
                    if trial_id not in outstanding or trial_id not in present:
                        continue
                    record = store.load_trial(trial_id)
                    if record is not None:
                        outstanding.discard(trial_id)
                        harvested = True
                        yield record
                if not outstanding:
                    break
                # Requeue orphaned claims (dead workers) so someone — possibly
                # this very loop on its next pass — can pick them up again.
                if store.sweep_claims(self.claim_ttl_s):
                    continue
                if not harvested:
                    time.sleep(self.poll_interval_s)
        finally:
            # Runs on normal completion, mid-drain exceptions, and generator
            # close alike: flush the partial, downgrade the heartbeat.
            telemetry.close()


#: ``progress(event, trial_id, n_executed)`` with event in {"run", "skip"}.
WorkerProgress = Callable[[str, str, int], None]


def run_worker(
    out_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    claim_ttl_s: float = DEFAULT_CLAIM_TTL_S,
    poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
    max_trials: Optional[int] = None,
    wait_for_queue_s: float = 30.0,
    progress: Optional[WorkerProgress] = None,
    max_poll_interval_s: Optional[float] = None,
    claim_batch: int = 1,
    batch_expensive_s: float = DEFAULT_BATCH_EXPENSIVE_S,
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
) -> int:
    """The standalone worker loop behind ``repro campaign-worker``.

    Claims, executes and records jobs from ``out_dir``'s queue until it is
    fully drained (no pending jobs *and* no live claims — while another
    worker still holds a claim this worker keeps polling, so it can take over
    if that claim expires), or until ``max_trials`` have been executed.
    Returns the number of trials this worker executed.

    Idle polling self-tunes: consecutive empty polls back off exponentially
    from ``poll_interval_s`` up to ``max_poll_interval_s`` (with jitter so
    co-started workers desynchronize) and snap back to the floor the moment
    a job is claimed — a worker parked on a quiet shared filesystem costs
    almost nothing, yet reacts quickly while work is flowing.

    A worker may be started before the producer: ``wait_for_queue_s`` bounds
    how long it waits for ``out_dir/queue/`` to appear before giving up.  The
    same budget covers an *empty* queue whose producer is still enqueueing:
    "drained" only means "campaign finished" once the producer's
    enqueue-complete marker is present, so a worker racing the producer's
    enqueue loop keeps polling instead of exiting after zero trials.

    ``claim_batch > 1`` amortizes claim-file round-trips over shared
    filesystems: each poll claims up to that many *same-cost-key* pending
    jobs at once (cheap grid cells, typically seed siblings), while cells
    whose recorded mean elapsed time reaches ``batch_expensive_s`` keep
    claiming singly.  Batching changes only claim grouping, never records.

    While the loop runs, the worker's telemetry is live: a heartbeat file
    under ``queue/heartbeats/`` (rewritten every ``heartbeat_interval_s``
    seconds, keeping long trials from being presumed dead and feeding
    ``repro campaign-status``) and a partial summary under ``queue/partials/``
    committed after every executed record (merged into ``summary.json`` by
    the producer).
    """
    store = CampaignStore(out_dir)
    worker = worker_id or default_worker_id()
    if claim_batch < 1:
        raise ValueError("claim_batch must be at least 1")
    if max_poll_interval_s is None:
        max_poll_interval_s = max(DEFAULT_MAX_POLL_INTERVAL_S, poll_interval_s)
    backoff = PollBackoff(
        base_s=poll_interval_s,
        max_s=max_poll_interval_s,
        # Seeded from the worker id: distinct workers desynchronize, while a
        # re-run of the same worker id paces its polls identically.
        rng=random.Random(f"poll-jitter:{worker}"),
    )

    deadline = time.monotonic() + wait_for_queue_s
    while not store.pending_dir.is_dir():
        if time.monotonic() >= deadline:
            return 0
        time.sleep(min(poll_interval_s, 0.1))

    expensive = (
        expensive_cost_keys(store, batch_expensive_s) if claim_batch > 1 else frozenset()
    )
    executed = 0
    telemetry = WorkerTelemetry(
        store, worker, heartbeat_interval_s=heartbeat_interval_s
    ).start()
    try:
        while max_trials is None or executed < max_trials:
            remaining = None if max_trials is None else max_trials - executed
            size = claim_batch if remaining is None else min(claim_batch, remaining)
            batch = claim_and_execute_batch(store, worker, size, expensive, telemetry)
            if batch:
                backoff.reset()
                for record, ran in batch:
                    if ran:
                        executed += 1
                    if progress:
                        progress("run" if ran else "skip", str(record["trial_id"]), executed)
                continue
            store.sweep_claims(claim_ttl_s)
            if store.queue_drained() and (
                store.enqueue_complete() or time.monotonic() >= deadline
            ):
                break
            time.sleep(backoff.next_delay())
    finally:
        telemetry.close()
    return executed
