"""The backend contract: how a campaign's pending trials get executed.

A backend receives the pending trials *in dispatch order* (the runner has
already applied timing-aware scheduling, see
:mod:`repro.campaign.scheduling`) plus the campaign's
:class:`~repro.campaign.persistence.CampaignStore`.  It must

* execute every trial exactly once (double execution is tolerated — trials
  are deterministic — but wasteful),
* persist each record via ``store.write_trial`` the moment it is available,
  *before* yielding it, so a crash mid-campaign never loses finished work,
* yield records in completion order.

The runner consumes the iterator, appending each yielded record's trial id to
the report and firing progress callbacks as results land — so even when a
later trial raises, everything persisted up to that point is accounted for.

``execute_trial`` lives here (not in ``runner.py``) because every backend —
including pool worker processes, which pickle it by reference to this
module — needs it without importing the runner.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Dict, Iterator, Sequence

from ...sim import profiling
from ..persistence import CampaignStore
from ..registry import get_experiment
from ..spec import TrialSpec


def execute_trial(trial: Dict[str, object], worker: str = "") -> Dict[str, object]:
    """Run one trial (dict form of :class:`TrialSpec`) and return its record.

    ``worker`` optionally labels the executing worker in the record's
    ``timing`` block (queue workers pass their claim-owner id), feeding the
    per-worker attribution in ``summary.json`` — like elapsed time itself it
    lives under ``timing`` only, outside the determinism-compared view.

    When profiling is requested (``REPRO_PROFILE``, inherited by pool and
    queue worker processes; see :mod:`repro.sim.profiling`) the run executes
    under a scoped profiler and its counter/timer snapshot is stored under
    ``timing["profile"]`` — inside the stripped block, so the determinism
    contract and golden digests are unaffected whether it is on or off.
    """
    adapter = get_experiment(str(trial["kind"]))
    started = time.perf_counter()
    with profiling.capture() as profiler:
        result = adapter.run(trial["params"])
    elapsed = time.perf_counter() - started
    # to_dict() embeds scalar_metrics() for standalone use; the record keeps
    # the metrics once, at top level, so the two copies can never drift.
    detail = result.to_dict()
    metrics = detail.pop("metrics", None) or result.scalar_metrics()
    # Wall-clock (and the executor label) live under "timing", never inside
    # "metrics": the determinism guarantee (serial == parallel) covers a
    # record with "timing" stripped — see aggregate.strip_timing.
    timing: Dict[str, object] = {"elapsed_s": elapsed}
    if worker:
        timing["worker"] = worker
    if profiler is not None:
        timing["profile"] = profiler.snapshot()
    return {
        "trial_id": trial["trial_id"],
        "kind": trial["kind"],
        "params": dict(trial["params"]),
        "metrics": metrics,
        "detail": detail,
        "timing": timing,
    }


class Backend(ABC):
    """One strategy for executing a campaign's pending trials."""

    #: registry key (and the CLI's ``--backend`` value).
    name: str = ""

    #: whether dispatch order affects this backend's makespan — the runner
    #: only applies timing-aware scheduling when it does.
    reorders: bool = True

    #: whether this backend's workers commit per-worker partial summaries
    #: (``queue/partials/``) as they execute.  When True the runner builds
    #: ``summary.json`` by merging those partials
    #: (:func:`repro.campaign.streaming.merge_partial_summaries`) instead of
    #: streaming records through its own accumulator.
    commits_partials: bool = False

    def prepare(self, store: CampaignStore) -> None:
        """Early hook, called before the runner probes resume state.

        The file-queue backend uses it to re-open its on-disk queue the
        moment the campaign starts, so externally started workers don't
        mistake a previous run's finished queue for this run's — the resume
        probe between campaign start and ``submit`` can take a while.
        """

    @abstractmethod
    def submit(
        self, trials: Sequence[TrialSpec], store: CampaignStore
    ) -> Iterator[Dict[str, object]]:
        """Execute ``trials``, persisting and yielding records as they land."""
