"""Pluggable campaign execution backends.

Three interchangeable strategies implement the :class:`Backend` contract
(execute pending trials, persist each record before yielding it):

* :class:`SerialBackend` — in-process, spec order; the determinism and
  debugging baseline (``jobs=1``).
* :class:`ProcessPoolBackend` — local ``ProcessPoolExecutor`` fan-out.
* :class:`FileQueueBackend` — a shared on-disk job queue under
  ``<out_dir>/queue/`` that independent ``repro campaign-worker`` processes
  (same machine, SSH, or a network filesystem) cooperatively drain.

All three produce byte-identical records and summaries on the
timing-stripped view — the differential suite in
``tests/campaign/test_backends.py`` enforces it.  ``make_backend`` is the
string → instance factory the runner and CLI share.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type, Union

from .base import Backend, execute_trial
from .pool import ProcessPoolBackend
from .queue import (
    FileQueueBackend,
    PollBackoff,
    claim_and_execute_batch,
    claim_and_execute_next,
    default_worker_id,
    expensive_cost_keys,
    run_worker,
)
from .serial import SerialBackend

_BACKENDS: Dict[str, Type[Backend]] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    FileQueueBackend.name: FileQueueBackend,
}


def available_backends() -> Tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def make_backend(backend: Union[str, Backend, None], jobs: int = 1) -> Backend:
    """Resolve a backend name (or pass an instance through) for ``run_campaign``.

    ``None`` keeps the historical behaviour: serial for ``jobs=1``, a process
    pool otherwise.  ``jobs`` only parameterises the pool backend — the queue
    backend's parallelism is however many workers join the queue.
    """
    if isinstance(backend, Backend):
        return backend
    if backend is None:
        backend = "serial" if jobs == 1 else "pool"
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(_BACKENDS)}"
        )
    if backend == ProcessPoolBackend.name:
        # --backend pool --jobs 1 is a 1-worker pool: still subprocess
        # isolation, just no concurrency.
        return ProcessPoolBackend(jobs=jobs)
    return _BACKENDS[backend]()


__all__ = [
    "Backend",
    "FileQueueBackend",
    "PollBackoff",
    "ProcessPoolBackend",
    "SerialBackend",
    "available_backends",
    "claim_and_execute_batch",
    "claim_and_execute_next",
    "default_worker_id",
    "execute_trial",
    "expensive_cost_keys",
    "make_backend",
    "run_worker",
]
