"""Process-pool execution: fan trials out over local worker processes."""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, Iterator, Sequence

from ..persistence import CampaignStore
from ..spec import TrialSpec
from .base import Backend, execute_trial


class ProcessPoolBackend(Backend):
    """Run trials on a ``ProcessPoolExecutor`` of ``jobs`` local workers.

    Workers receive only the trial's plain dict and rebuild typed configs via
    the adapter registry inside their own process, so nothing that crosses
    the process boundary needs to be pickleable beyond builtins.  Trials are
    submitted in the order given — which is why the runner's
    longest-expected-first scheduling matters here: the executor dispatches
    from the front of the submission order as workers free up.

    Records are persisted and yielded as futures complete; a worker exception
    surfaces on the consumer only *after* every sibling that finished has
    been persisted and yielded, so nothing finished is ever unaccounted for.
    On failure, trials still queued behind the failing one are cancelled
    rather than pointlessly executed and discarded — only trials already
    in flight run to completion (and their records are kept).
    """

    name = "pool"

    def __init__(self, jobs: int = 2) -> None:
        if jobs < 1:
            raise ValueError("pool backend needs jobs >= 1")
        self.jobs = jobs

    def submit(
        self, trials: Sequence[TrialSpec], store: CampaignStore
    ) -> Iterator[Dict[str, object]]:
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            outstanding = {pool.submit(execute_trial, t.to_dict()) for t in trials}
            failed = None
            while outstanding:
                complete, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in complete:
                    if future.cancelled():
                        continue
                    if future.exception() is not None:
                        if failed is None:
                            failed = future
                        continue
                    record = future.result()
                    store.write_trial(record)
                    yield record
                if failed is not None and outstanding:
                    # Stop dispatching queued trials; the in-flight ones keep
                    # running and their records are persisted by the loop
                    # above before the failure is re-raised below.
                    for future in outstanding:
                        future.cancel()
                    outstanding = {f for f in outstanding if not f.cancelled()}
            if failed is not None:
                failed.result()  # raises the worker exception
