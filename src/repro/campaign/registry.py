"""Registry mapping experiment kinds to pickleable campaign entry points.

Each adapter pairs a config dataclass with the module-level ``run_<kind>``
function from :mod:`repro.experiments`.  Workers receive only the kind name
and a plain parameter dict, look the adapter up in their own process, build
the typed config, and run — so nothing that crosses the process boundary
needs to be pickleable beyond builtins.

``register_experiment`` is public: tests and downstream extensions can add
kinds (e.g. toy experiments, future distributed workloads) without touching
this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

from ..experiments.ablation import AblationConfig, run_ablation
from ..experiments.anonymity import AnonymityExperimentConfig, run_anonymity
from ..experiments.efficiency import EfficiencyExperimentConfig, run_efficiency
from ..experiments.load import LoadConfig, run_load
from ..experiments.results import config_from_dict
from ..experiments.security import SecurityExperimentConfig, run_security
from ..experiments.timing import TimingExperimentConfig, run_timing
from ..scenarios.adaptive import AdaptiveConfig, run_adaptive
from ..scenarios.experiment import ScenarioConfig, run_scenario


@dataclass(frozen=True)
class ExperimentAdapter:
    """Binds an experiment kind to its config class and entry point.

    ``entry_point`` must be a module-level callable ``(config) -> result``
    whose result exposes ``scalar_metrics() -> Dict[str, float]`` and
    ``to_dict() -> dict`` (all :mod:`repro.experiments` harnesses do).
    """

    kind: str
    config_cls: type
    entry_point: Callable
    description: str = ""

    def build_config(self, params: Mapping[str, object]):
        return config_from_dict(self.config_cls, dict(params))

    def run(self, params: Mapping[str, object]):
        return self.entry_point(self.build_config(params))


_REGISTRY: Dict[str, ExperimentAdapter] = {}


def register_experiment(adapter: ExperimentAdapter, replace: bool = False) -> None:
    """Add an experiment kind to the registry (``replace=True`` to override)."""
    if adapter.kind in _REGISTRY and not replace:
        raise ValueError(f"experiment kind {adapter.kind!r} is already registered")
    _REGISTRY[adapter.kind] = adapter


def get_experiment(kind: str) -> ExperimentAdapter:
    if kind not in _REGISTRY:
        raise KeyError(f"unknown experiment kind {kind!r}; choose from {sorted(_REGISTRY)}")
    return _REGISTRY[kind]


def available_kinds() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


for _adapter in (
    ExperimentAdapter(
        kind="security",
        config_cls=SecurityExperimentConfig,
        entry_point=run_security,
        description="attacker identification under active attacks (Figs 3/4/9, Table 2)",
    ),
    ExperimentAdapter(
        kind="anonymity",
        config_cls=AnonymityExperimentConfig,
        entry_point=run_anonymity,
        description="initiator/target anonymity sweeps (Figs 5/6)",
    ),
    ExperimentAdapter(
        kind="efficiency",
        config_cls=EfficiencyExperimentConfig,
        entry_point=run_efficiency,
        description="latency/bandwidth comparison (Table 3, Fig 7(a))",
    ),
    ExperimentAdapter(
        kind="timing",
        config_cls=TimingExperimentConfig,
        entry_point=run_timing,
        description="timing-analysis error rates (Table 1)",
    ),
    ExperimentAdapter(
        kind="ablation",
        config_cls=AblationConfig,
        entry_point=run_ablation,
        description="multi-path / dummy-query design ablation (Section 4.2)",
    ),
    ExperimentAdapter(
        kind="load",
        config_cls=LoadConfig,
        entry_point=run_load,
        description="open-loop sustained-RPS load sweep (offered vs delivered, latency knee)",
    ),
    ExperimentAdapter(
        kind="scenario",
        config_cls=ScenarioConfig,
        entry_point=run_scenario,
        description="any base experiment under named churn/workload/adversary axes (repro.scenarios)",
    ),
    ExperimentAdapter(
        kind="adaptive",
        config_cls=AdaptiveConfig,
        entry_point=run_adaptive,
        description="security run under mid-run attacker strategy x defense policy controllers",
    ),
):
    register_experiment(_adapter)
