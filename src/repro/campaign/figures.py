"""Figure adapters: the bridge between benchmarks and campaign aggregates.

Every benchmark in ``benchmarks/`` regenerates one figure or table of the
paper.  A :class:`FigureAdapter` records, per figure, which campaign ``kind``
produces its data, which scalar metrics the figure reports (as ``fnmatch``
patterns, because several harnesses derive metric names from swept values —
e.g. ``error_rate_100ms_alpha_0.5pct``), and how to turn a campaign summary
into printable mean±ci95 rows.  The registry is what lets *every* benchmark
accept ``--campaign-results DIR`` through one shared code path instead of 14
hand-rolled ones::

    from repro.campaign.figures import render_figure_aggregates
    print(render_figure_aggregates("fig3a", campaign_results))

Rendering is deliberately forgiving about *which* campaign it is given: a
results directory of the wrong experiment kind yields a one-line note, not an
error, because ``--campaign-results`` is a session-wide pytest option — one
campaign directory is shared by every collected benchmark, and only the
benchmarks whose kind matches should print aggregate rows.

Scenario campaigns get their own adapter family (``scenarios``,
``table3-scenarios``): their groups are grid cells of *scenario* parameters
(preset, axis generators, base-experiment overrides), so the rows are
labelled by the scenario — the preset name, or the non-default axes when the
scenario was composed by hand — via :func:`scenario_summary_rows`, and each
adapter filters to the base experiment kind whose metrics it reports (one
scenario campaign may sweep presets of several base kinds).
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..experiments.results import format_table
from .aggregate import group_metric_cells, summary_rows
from .spec import canonical_json

#: ``formatter(adapter, summary) -> str`` renders one figure's aggregate rows.
FigureFormatter = Callable[["FigureAdapter", Mapping[str, object]], str]


@dataclass(frozen=True)
class FigureAdapter:
    """Binds one paper figure/table to the campaign data that reproduces it.

    ``metrics`` are ``fnmatch`` patterns matched against the scalar metric
    names in a campaign summary, in order; matched names keep the pattern
    order (then sort within a pattern), so the printed columns follow the
    figure's reading order rather than plain alphabetical order.
    """

    figure: str
    bench: str
    title: str
    kind: str
    metrics: Tuple[str, ...]
    formatter: Optional[FigureFormatter] = None

    def resolve_metrics(self, summary: Mapping[str, object]) -> List[str]:
        """Concrete metric names present in ``summary`` matching my patterns."""
        available = sorted(
            {name for group in summary.get("groups", []) for name in group.get("metrics", {})}
        )
        resolved: List[str] = []
        for pattern in self.metrics:
            for name in available:
                if fnmatchcase(name, pattern) and name not in resolved:
                    resolved.append(name)
        return resolved


_REGISTRY: Dict[str, FigureAdapter] = {}


def register_figure(adapter: FigureAdapter, replace: bool = False) -> None:
    """Add a figure adapter to the registry (``replace=True`` to override)."""
    if adapter.figure in _REGISTRY and not replace:
        raise ValueError(f"figure {adapter.figure!r} is already registered")
    _REGISTRY[adapter.figure] = adapter


def get_figure(figure: str) -> FigureAdapter:
    if figure not in _REGISTRY:
        raise KeyError(f"unknown figure {figure!r}; choose from {sorted(_REGISTRY)}")
    return _REGISTRY[figure]


def available_figures() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def figure_aggregate_rows(
    figure: str, summary: Mapping[str, object]
) -> Tuple[List[str], List[List[object]]]:
    """(headers, rows) of one figure's mean±ci95 table from a campaign summary.

    Empty when none of the figure's metrics appear in the summary — never the
    every-metric table ``summary_rows`` would fall back to on an empty
    selection (e.g. a matching-kind campaign recorded before a figure's
    metrics existed).
    """
    adapter = get_figure(figure)
    resolved = adapter.resolve_metrics(summary)
    if not resolved:
        return [], []
    return summary_rows(summary, metrics=resolved)


def _timing_line(summary: Mapping[str, object]) -> str:
    """The ``campaign timing: ...`` suffix, or ``""`` for untimed summaries."""
    timing = summary.get("timing") or {}
    if not timing.get("n"):
        return ""
    return (
        f"\ncampaign timing: {timing['total_elapsed_s']:.2f} s total over "
        f"{timing['n']} timed trial(s), mean {timing['mean_elapsed_s']:.2f} s/trial"
    )


def _missing_metrics_note(adapter: FigureAdapter) -> str:
    return (
        f"{adapter.title}: campaign summary contains none of this figure's "
        f"metrics ({', '.join(adapter.metrics)}) — re-run the campaign with "
        f"current code to record them"
    )


def _default_formatter(adapter: FigureAdapter, summary: Mapping[str, object]) -> str:
    resolved = adapter.resolve_metrics(summary)
    if not resolved:
        return _missing_metrics_note(adapter)
    headers, rows = summary_rows(summary, metrics=resolved)
    if not rows:
        return f"{adapter.title}: campaign summary has no aggregated groups yet"
    title = f"{adapter.title} — campaign aggregates (mean±ci95 over seeds)"
    return format_table(headers, rows, title=title) + _timing_line(summary)


# ------------------------------------------------------------------ scenarios

#: the scenario axis fields, in presentation order.
_SCENARIO_AXES = ("churn", "workload", "adversary")


def _resolved_scenario(params: Mapping[str, object]):
    """The group's :class:`~repro.scenarios.experiment.ScenarioConfig`,
    preset-resolved, or ``None`` when the params aren't scenario-shaped
    (hand-crafted summaries, foreign kinds)."""
    from ..scenarios.experiment import ScenarioConfig
    from ..experiments.results import config_from_dict

    try:
        return config_from_dict(ScenarioConfig, dict(params)).resolved()
    except (TypeError, ValueError):
        return None


def _label_for(cfg, params: Mapping[str, object]) -> str:
    """Display label for a group whose resolved config is ``cfg`` (may be
    ``None`` for non-scenario-shaped params)."""
    if cfg is None:
        return str(params.get("preset", "") or "custom")
    if cfg.preset:
        # A preset label must still show axes the user overrode on top of
        # it, or a grid sweeping an axis under one preset would render
        # indistinguishable rows.  Compare against the *pure* preset's
        # resolution, not the dataclass defaults.
        baseline = type(cfg)(preset=cfg.preset).resolved()
        overrides = [
            f"{axis}={getattr(cfg, axis)}"
            for axis in _SCENARIO_AXES
            if getattr(cfg, axis) != getattr(baseline, axis)
        ]
        return " ".join([cfg.preset] + overrides)
    defaults = type(cfg)()
    axes = [
        f"{axis}={getattr(cfg, axis)}"
        for axis in _SCENARIO_AXES
        if getattr(cfg, axis) != getattr(defaults, axis)
    ]
    return ",".join(axes) or "plain"


def scenario_group_label(params: Mapping[str, object]) -> str:
    """One scenario group's display label: the preset name, or the
    non-default axes (``workload=zipf,adversary=eclipse``) of a hand-composed
    scenario, or ``plain`` for the all-defaults environment."""
    return _label_for(_resolved_scenario(params), params)


def scenario_summary_rows(
    summary: Mapping[str, object],
    metrics: Optional[Sequence[str]] = None,
    base_kind: Optional[str] = None,
) -> Tuple[List[str], List[List[object]]]:
    """(headers, rows) of a scenario campaign's aggregates, one row per
    scenario group, labelled by preset / composed axes.

    ``base_kind`` filters to groups whose (preset-resolved) base experiment
    matches — a scenario campaign may sweep presets of several base kinds,
    and a figure only reports the metrics of one of them.  Default metric
    columns come from the groups that survive the filter, so excluded kinds
    contribute no blank columns.  Groups the label alone cannot tell apart
    (same preset, different ``*_params``/``base`` grid cells) get the
    varying grid params appended; rows are sorted by label so per-preset
    comparisons read top-to-bottom.
    """
    included: List[Tuple[object, Mapping[str, object], Mapping[str, object]]] = []
    for group in summary.get("groups", []):
        params = group.get("params", {})
        cfg = _resolved_scenario(params)
        experiment = cfg.experiment if cfg else params.get("experiment", "security")
        if base_kind is not None and experiment != base_kind:
            continue
        included.append((cfg, params, group))
    if not included:
        return [], []
    metric_names = (
        list(metrics)
        if metrics
        else sorted({m for _cfg, _params, g in included for m in g["metrics"]})
    )
    headers = ["scenario", "n"] + metric_names
    labels = [_label_for(cfg, params) for cfg, params, _group in included]
    if len(set(labels)) < len(labels):
        # The label shows the preset / axis choices only; when groups differ
        # in params it cannot show (axis kwargs, base overrides, the base
        # experiment itself), append the varying ones so duplicate-labelled
        # rows stay distinguishable.
        label_shown = {"preset", *_SCENARIO_AXES}
        varied = sorted(
            key
            for key in {k for _cfg, p, _g in included for k in p}
            if key not in label_shown
            and len({canonical_json(p.get(key)) for _cfg, p, _g in included}) > 1
        )
        if varied:
            labels = [
                f"{label} {canonical_json({k: p.get(k) for k in varied})}"
                for label, (_cfg, p, _g) in zip(labels, included)
            ]
    rows: List[List[object]] = []
    for label, (_cfg, _params, group) in zip(labels, included):
        n, cells = group_metric_cells(group, metric_names)
        rows.append([label, n] + cells)
    rows.sort(key=lambda r: str(r[0]))
    return headers, rows


def _scenario_formatter(base_kind: str) -> FigureFormatter:
    """A formatter for scenario-kind campaigns reporting one base kind's
    metrics, grouped per preset."""

    def formatter(adapter: FigureAdapter, summary: Mapping[str, object]) -> str:
        resolved = adapter.resolve_metrics(summary)
        if not resolved:
            return _missing_metrics_note(adapter)
        headers, rows = scenario_summary_rows(summary, resolved, base_kind=base_kind)
        if not rows:
            return (
                f"{adapter.title}: campaign has no scenario groups with base "
                f"kind {base_kind!r} yet"
            )
        title = f"{adapter.title} — per-scenario campaign aggregates (mean±ci95 over seeds)"
        return format_table(headers, rows, title=title) + _timing_line(summary)

    return formatter


# ------------------------------------------------------------------- adaptive


def _resolved_adaptive(params: Mapping[str, object]):
    """The group's :class:`~repro.scenarios.adaptive.AdaptiveConfig`,
    preset-resolved, or ``None`` when the params aren't adaptive-shaped."""
    from ..experiments.results import config_from_dict
    from ..scenarios.adaptive import AdaptiveConfig

    try:
        return config_from_dict(AdaptiveConfig, dict(params)).resolved()
    except (TypeError, ValueError):
        return None


def adaptive_group_label(params: Mapping[str, object]) -> str:
    """One adaptive group's display label: ``attacker vs defense``, prefixed
    with the preset name when one was used."""
    cfg = _resolved_adaptive(params)
    if cfg is None:
        return str(params.get("preset", "") or "custom")
    engagement = f"{cfg.attacker} vs {cfg.defense}"
    return f"{cfg.preset}: {engagement}" if cfg.preset else engagement


def adaptive_summary_rows(
    summary: Mapping[str, object],
    metrics: Optional[Sequence[str]] = None,
) -> Tuple[List[str], List[List[object]]]:
    """(headers, rows) of an adaptive campaign's aggregates, one row per
    attacker-strategy × defense-policy group.

    Same shape contract as :func:`scenario_summary_rows`: groups the label
    cannot tell apart (same controllers, different param/base grid cells)
    get the varying grid params appended; rows sort by label.
    """
    groups = list(summary.get("groups", []))
    if not groups:
        return [], []
    metric_names = (
        list(metrics) if metrics else sorted({m for g in groups for m in g["metrics"]})
    )
    headers = ["engagement", "n"] + metric_names
    labels = [adaptive_group_label(g.get("params", {})) for g in groups]
    if len(set(labels)) < len(labels):
        label_shown = {"preset", "attacker", "defense"}
        varied = sorted(
            key
            for key in {k for g in groups for k in g.get("params", {})}
            if key not in label_shown
            and len({canonical_json(g.get("params", {}).get(key)) for g in groups}) > 1
        )
        if varied:
            labels = [
                f"{label} {canonical_json({k: g.get('params', {}).get(k) for k in varied})}"
                for label, g in zip(labels, groups)
            ]
    rows: List[List[object]] = []
    for label, group in zip(labels, groups):
        n, cells = group_metric_cells(group, metric_names)
        rows.append([label, n] + cells)
    rows.sort(key=lambda r: str(r[0]))
    return headers, rows


def _adaptive_formatter(adapter: FigureAdapter, summary: Mapping[str, object]) -> str:
    resolved = adapter.resolve_metrics(summary)
    if not resolved:
        return _missing_metrics_note(adapter)
    headers, rows = adaptive_summary_rows(summary, resolved)
    if not rows:
        return f"{adapter.title}: campaign summary has no aggregated groups yet"
    title = f"{adapter.title} — per-engagement campaign aggregates (mean±ci95 over seeds)"
    return format_table(headers, rows, title=title) + _timing_line(summary)


def render_figure_aggregates(figure: str, results) -> str:
    """Render a loaded :class:`repro.campaign.CampaignResults` for one figure.

    Returns a table of mean±ci95 rows when the campaign's kind matches the
    figure's, and an explanatory one-liner otherwise (no summary yet, or a
    campaign of a different experiment kind).
    """
    adapter = get_figure(figure)
    if results is None:
        return ""
    kind = getattr(results.spec, "kind", None)
    if kind != adapter.kind:
        return (
            f"{adapter.title}: --campaign-results is a {kind!r} campaign; "
            f"this figure needs kind {adapter.kind!r} — skipping aggregates"
        )
    if not results.summary:
        return f"{adapter.title}: campaign directory has no summary.json yet"
    formatter = adapter.formatter or _default_formatter
    return formatter(adapter, results.summary)


for _adapter in (
    FigureAdapter(
        figure="fig3a",
        bench="bench_fig3a_lookup_bias.py",
        title="Figure 3(a) — malicious fraction under lookup bias",
        kind="security",
        metrics=("initial_malicious_fraction", "final_malicious_fraction", "false_positive_rate"),
    ),
    FigureAdapter(
        figure="fig3b",
        bench="bench_fig3b_biased_lookups.py",
        title="Figure 3(b) — cumulative lookups vs biased lookups",
        kind="security",
        metrics=("total_lookups", "total_biased_lookups"),
    ),
    FigureAdapter(
        figure="fig3c",
        bench="bench_fig3c_fingertable_manipulation.py",
        title="Figure 3(c) — malicious fraction under fingertable manipulation",
        kind="security",
        metrics=("final_malicious_fraction", "false_negative_rate", "false_positive_rate"),
    ),
    FigureAdapter(
        figure="fig4",
        bench="bench_fig4_fingertable_pollution.py",
        title="Figure 4 — malicious fraction under fingertable pollution",
        kind="security",
        metrics=(
            "final_malicious_fraction",
            "false_positive_rate",
            "false_negative_rate",
            "false_alarm_rate",
        ),
    ),
    FigureAdapter(
        figure="fig5a",
        bench="bench_fig5a_initiator_anonymity.py",
        title="Figure 5(a) — Octopus initiator anonymity H(I)",
        kind="anonymity",
        metrics=("octopus_initiator_entropy", "octopus_initiator_leak"),
    ),
    FigureAdapter(
        figure="fig5b",
        bench="bench_fig5b_initiator_comparison.py",
        title="Figure 5(b) — initiator anonymity comparison",
        kind="anonymity",
        metrics=("octopus_initiator_entropy", "*_initiator_leak"),
    ),
    FigureAdapter(
        figure="fig5c",
        bench="bench_fig5c_target_anonymity.py",
        title="Figure 5(c) — Octopus target anonymity H(T)",
        kind="anonymity",
        metrics=("octopus_target_entropy", "octopus_target_leak"),
    ),
    FigureAdapter(
        figure="fig6",
        bench="bench_fig6_target_comparison.py",
        title="Figure 6 — target anonymity comparison",
        kind="anonymity",
        metrics=("octopus_target_entropy", "*_target_leak"),
    ),
    FigureAdapter(
        figure="fig7a",
        bench="bench_fig7a_latency_cdf.py",
        title="Figure 7(a) — lookup latency CDF",
        kind="efficiency",
        metrics=("*_mean_latency_s", "*_median_latency_s"),
    ),
    FigureAdapter(
        figure="fig7b",
        bench="bench_fig7b_ca_workload.py",
        title="Figure 7(b) — CA workload",
        kind="security",
        metrics=("ca_messages_total", "ca_messages_peak_per_s"),
    ),
    FigureAdapter(
        figure="fig9",
        bench="bench_fig9_selective_dos.py",
        title="Figure 9 — malicious fraction under selective DoS",
        kind="security",
        metrics=("final_malicious_fraction", "false_positive_rate"),
    ),
    FigureAdapter(
        figure="table1",
        bench="bench_table1_timing_analysis.py",
        title="Table 1 — timing-analysis error rates",
        kind="timing",
        metrics=("min_error_rate", "max_information_leak_bits", "error_rate_*"),
    ),
    FigureAdapter(
        figure="table2",
        bench="bench_table2_identification_accuracy.py",
        title="Table 2 — identification accuracy under churn",
        kind="security",
        metrics=("false_positive_rate", "false_negative_rate", "false_alarm_rate"),
    ),
    FigureAdapter(
        figure="table3",
        bench="bench_table3_efficiency.py",
        title="Table 3 — latency / bandwidth comparison",
        kind="efficiency",
        metrics=("*_mean_latency_s", "*_median_latency_s", "*_kbps_lk_int_*"),
    ),
    FigureAdapter(
        figure="scenarios",
        bench="bench_scenarios.py",
        title="Scenario sweep — identification across environments",
        kind="scenario",
        metrics=(
            "initial_malicious_fraction",
            "final_malicious_fraction",
            "churn_departures",
            "churn_rejoins",
            "total_lookups",
        ),
        formatter=_scenario_formatter("security"),
    ),
    FigureAdapter(
        figure="table3-scenarios",
        bench="bench_table3_scenarios.py",
        title="Table 3 under scenarios — efficiency per workload environment",
        kind="scenario",
        metrics=("*_mean_latency_s", "*_median_latency_s", "*_kbps_lk_int_*"),
        formatter=_scenario_formatter("efficiency"),
    ),
    FigureAdapter(
        figure="load",
        bench="bench_load.py",
        title="Open-loop load sweep — offered RPS vs latency/success",
        kind="load",
        metrics=(
            "offered_rps_measured",
            "delivered_rps",
            "success_rate",
            "latency_p50_s",
            "latency_p90_s",
            "latency_p99_s",
            "queue_delay_p99_s",
            "inflight_mean",
        ),
    ),
    FigureAdapter(
        figure="adaptive",
        bench="bench_adaptive.py",
        title="Adaptive engagements — attacker strategy vs defense policy",
        kind="adaptive",
        metrics=(
            "initial_malicious_fraction",
            "final_malicious_fraction",
            "engagement_identification_latency_mean_s",
            "engagement_revocations_total",
            "engagement_re_placements_total",
            "engagement_*",
            "false_positive_rate",
        ),
        formatter=_adaptive_formatter,
    ),
):
    register_figure(_adapter)
