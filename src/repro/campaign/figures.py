"""Figure adapters: the bridge between benchmarks and campaign aggregates.

Every benchmark in ``benchmarks/`` regenerates one figure or table of the
paper.  A :class:`FigureAdapter` records, per figure, which campaign ``kind``
produces its data, which scalar metrics the figure reports (as ``fnmatch``
patterns, because several harnesses derive metric names from swept values —
e.g. ``error_rate_100ms_alpha_0.5pct``), and how to turn a campaign summary
into printable mean±ci95 rows.  The registry is what lets *every* benchmark
accept ``--campaign-results DIR`` through one shared code path instead of 14
hand-rolled ones::

    from repro.campaign.figures import render_figure_aggregates
    print(render_figure_aggregates("fig3a", campaign_results))

Rendering is deliberately forgiving about *which* campaign it is given: a
results directory of the wrong experiment kind yields a one-line note, not an
error, because ``--campaign-results`` is a session-wide pytest option — one
campaign directory is shared by every collected benchmark, and only the
benchmarks whose kind matches should print aggregate rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..experiments.results import format_table
from .aggregate import summary_rows

#: ``formatter(adapter, summary) -> str`` renders one figure's aggregate rows.
FigureFormatter = Callable[["FigureAdapter", Mapping[str, object]], str]


@dataclass(frozen=True)
class FigureAdapter:
    """Binds one paper figure/table to the campaign data that reproduces it.

    ``metrics`` are ``fnmatch`` patterns matched against the scalar metric
    names in a campaign summary, in order; matched names keep the pattern
    order (then sort within a pattern), so the printed columns follow the
    figure's reading order rather than plain alphabetical order.
    """

    figure: str
    bench: str
    title: str
    kind: str
    metrics: Tuple[str, ...]
    formatter: Optional[FigureFormatter] = None

    def resolve_metrics(self, summary: Mapping[str, object]) -> List[str]:
        """Concrete metric names present in ``summary`` matching my patterns."""
        available = sorted(
            {name for group in summary.get("groups", []) for name in group.get("metrics", {})}
        )
        resolved: List[str] = []
        for pattern in self.metrics:
            for name in available:
                if fnmatchcase(name, pattern) and name not in resolved:
                    resolved.append(name)
        return resolved


_REGISTRY: Dict[str, FigureAdapter] = {}


def register_figure(adapter: FigureAdapter, replace: bool = False) -> None:
    """Add a figure adapter to the registry (``replace=True`` to override)."""
    if adapter.figure in _REGISTRY and not replace:
        raise ValueError(f"figure {adapter.figure!r} is already registered")
    _REGISTRY[adapter.figure] = adapter


def get_figure(figure: str) -> FigureAdapter:
    if figure not in _REGISTRY:
        raise KeyError(f"unknown figure {figure!r}; choose from {sorted(_REGISTRY)}")
    return _REGISTRY[figure]


def available_figures() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def figure_aggregate_rows(
    figure: str, summary: Mapping[str, object]
) -> Tuple[List[str], List[List[object]]]:
    """(headers, rows) of one figure's mean±ci95 table from a campaign summary.

    Empty when none of the figure's metrics appear in the summary — never the
    every-metric table ``summary_rows`` would fall back to on an empty
    selection (e.g. a matching-kind campaign recorded before a figure's
    metrics existed).
    """
    adapter = get_figure(figure)
    resolved = adapter.resolve_metrics(summary)
    if not resolved:
        return [], []
    return summary_rows(summary, metrics=resolved)


def _default_formatter(adapter: FigureAdapter, summary: Mapping[str, object]) -> str:
    resolved = adapter.resolve_metrics(summary)
    if not resolved:
        return (
            f"{adapter.title}: campaign summary contains none of this figure's "
            f"metrics ({', '.join(adapter.metrics)}) — re-run the campaign with "
            f"current code to record them"
        )
    headers, rows = summary_rows(summary, metrics=resolved)
    if not rows:
        return f"{adapter.title}: campaign summary has no aggregated groups yet"
    title = f"{adapter.title} — campaign aggregates (mean±ci95 over seeds)"
    table = format_table(headers, rows, title=title)
    timing = summary.get("timing") or {}
    if timing.get("n"):
        table += (
            f"\ncampaign timing: {timing['total_elapsed_s']:.2f} s total over "
            f"{timing['n']} timed trial(s), mean {timing['mean_elapsed_s']:.2f} s/trial"
        )
    return table


def render_figure_aggregates(figure: str, results) -> str:
    """Render a loaded :class:`repro.campaign.CampaignResults` for one figure.

    Returns a table of mean±ci95 rows when the campaign's kind matches the
    figure's, and an explanatory one-liner otherwise (no summary yet, or a
    campaign of a different experiment kind).
    """
    adapter = get_figure(figure)
    if results is None:
        return ""
    kind = getattr(results.spec, "kind", None)
    if kind != adapter.kind:
        return (
            f"{adapter.title}: --campaign-results is a {kind!r} campaign; "
            f"this figure needs kind {adapter.kind!r} — skipping aggregates"
        )
    if not results.summary:
        return f"{adapter.title}: campaign directory has no summary.json yet"
    formatter = adapter.formatter or _default_formatter
    return formatter(adapter, results.summary)


for _adapter in (
    FigureAdapter(
        figure="fig3a",
        bench="bench_fig3a_lookup_bias.py",
        title="Figure 3(a) — malicious fraction under lookup bias",
        kind="security",
        metrics=("initial_malicious_fraction", "final_malicious_fraction", "false_positive_rate"),
    ),
    FigureAdapter(
        figure="fig3b",
        bench="bench_fig3b_biased_lookups.py",
        title="Figure 3(b) — cumulative lookups vs biased lookups",
        kind="security",
        metrics=("total_lookups", "total_biased_lookups"),
    ),
    FigureAdapter(
        figure="fig3c",
        bench="bench_fig3c_fingertable_manipulation.py",
        title="Figure 3(c) — malicious fraction under fingertable manipulation",
        kind="security",
        metrics=("final_malicious_fraction", "false_negative_rate", "false_positive_rate"),
    ),
    FigureAdapter(
        figure="fig4",
        bench="bench_fig4_fingertable_pollution.py",
        title="Figure 4 — malicious fraction under fingertable pollution",
        kind="security",
        metrics=(
            "final_malicious_fraction",
            "false_positive_rate",
            "false_negative_rate",
            "false_alarm_rate",
        ),
    ),
    FigureAdapter(
        figure="fig5a",
        bench="bench_fig5a_initiator_anonymity.py",
        title="Figure 5(a) — Octopus initiator anonymity H(I)",
        kind="anonymity",
        metrics=("octopus_initiator_entropy", "octopus_initiator_leak"),
    ),
    FigureAdapter(
        figure="fig5b",
        bench="bench_fig5b_initiator_comparison.py",
        title="Figure 5(b) — initiator anonymity comparison",
        kind="anonymity",
        metrics=("octopus_initiator_entropy", "*_initiator_leak"),
    ),
    FigureAdapter(
        figure="fig5c",
        bench="bench_fig5c_target_anonymity.py",
        title="Figure 5(c) — Octopus target anonymity H(T)",
        kind="anonymity",
        metrics=("octopus_target_entropy", "octopus_target_leak"),
    ),
    FigureAdapter(
        figure="fig6",
        bench="bench_fig6_target_comparison.py",
        title="Figure 6 — target anonymity comparison",
        kind="anonymity",
        metrics=("octopus_target_entropy", "*_target_leak"),
    ),
    FigureAdapter(
        figure="fig7a",
        bench="bench_fig7a_latency_cdf.py",
        title="Figure 7(a) — lookup latency CDF",
        kind="efficiency",
        metrics=("*_mean_latency_s", "*_median_latency_s"),
    ),
    FigureAdapter(
        figure="fig7b",
        bench="bench_fig7b_ca_workload.py",
        title="Figure 7(b) — CA workload",
        kind="security",
        metrics=("ca_messages_total", "ca_messages_peak_per_s"),
    ),
    FigureAdapter(
        figure="fig9",
        bench="bench_fig9_selective_dos.py",
        title="Figure 9 — malicious fraction under selective DoS",
        kind="security",
        metrics=("final_malicious_fraction", "false_positive_rate"),
    ),
    FigureAdapter(
        figure="table1",
        bench="bench_table1_timing_analysis.py",
        title="Table 1 — timing-analysis error rates",
        kind="timing",
        metrics=("min_error_rate", "max_information_leak_bits", "error_rate_*"),
    ),
    FigureAdapter(
        figure="table2",
        bench="bench_table2_identification_accuracy.py",
        title="Table 2 — identification accuracy under churn",
        kind="security",
        metrics=("false_positive_rate", "false_negative_rate", "false_alarm_rate"),
    ),
    FigureAdapter(
        figure="table3",
        bench="bench_table3_efficiency.py",
        title="Table 3 — latency / bandwidth comparison",
        kind="efficiency",
        metrics=("*_mean_latency_s", "*_median_latency_s", "*_kbps_lk_int_*"),
    ),
):
    register_figure(_adapter)
