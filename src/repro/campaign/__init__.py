"""Parallel experiment-campaign runner.

Turns the repository's one-shot experiment harnesses into multi-seed,
parameter-grid campaigns:

* :mod:`repro.campaign.spec` — declarative spec and grid expansion;
* :mod:`repro.campaign.registry` — experiment kind → pickleable entry point;
* :mod:`repro.campaign.runner` — campaign lifecycle: expand, resume,
  schedule, delegate to a backend, aggregate;
* :mod:`repro.campaign.backends` — interchangeable execution strategies
  (serial / process pool / shared file queue + ``campaign-worker`` loop);
* :mod:`repro.campaign.scheduling` — longest-expected-first dispatch from
  per-grid-cell elapsed history;
* :mod:`repro.campaign.aggregate` — mean/std/CI summaries per grid cell;
* :mod:`repro.campaign.streaming` — the mergeable accumulators behind both
  the batch aggregation and the queue workers' partial-summary commits;
* :mod:`repro.campaign.telemetry` — worker heartbeats and partial-summary
  writers (the files ``repro campaign-status`` reads);
* :mod:`repro.campaign.status` — the read-only live campaign status view;
* :mod:`repro.campaign.persistence` — the JSON results-directory layout,
  including the queue/claim files behind the file-queue backend;
* :mod:`repro.campaign.figures` — figure adapters mapping every paper
  figure/table benchmark to the campaign kind and metrics it reports.

Typical use::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        kind="security",
        base={"n_nodes": 150, "duration": 400.0, "attack": "lookup-bias"},
        grid={"attack_rate": [1.0, 0.5]},
        seeds=(0, 1, 2, 3),
    )
    report = run_campaign(spec, out_dir="results/fig3a", jobs=4, resume=True)
    print(report.summary["groups"][0]["metrics"]["final_malicious_fraction"])

or, from the command line, ``python -m repro campaign --help``.
"""

from .aggregate import (
    aggregate_records,
    group_key,
    strip_timing,
    summarize,
    summarize_ignored_axes,
    summarize_timing,
    summary_rows,
)
from .backends import (
    Backend,
    FileQueueBackend,
    PollBackoff,
    ProcessPoolBackend,
    SerialBackend,
    available_backends,
    make_backend,
    run_worker,
)
from .figures import (
    FigureAdapter,
    adaptive_group_label,
    adaptive_summary_rows,
    available_figures,
    figure_aggregate_rows,
    get_figure,
    register_figure,
    render_figure_aggregates,
    scenario_group_label,
    scenario_summary_rows,
)
from .persistence import CampaignResults, CampaignStore, load_campaign_results
from .registry import (
    ExperimentAdapter,
    available_kinds,
    get_experiment,
    register_experiment,
)
from .runner import (
    CampaignExecutionError,
    CampaignReport,
    execute_trial,
    run_campaign,
)
from .scheduling import load_timing_history, schedule_trials
from .spec import CampaignSpec, TrialSpec, canonical_json, cost_key
from .status import campaign_status, render_status
from .streaming import (
    CampaignAccumulator,
    GroupAccumulator,
    IgnoredAxesAccumulator,
    MetricAccumulator,
    TimingAccumulator,
    merge_partial_summaries,
)
from .telemetry import PartialSummaryWriter, WorkerHeartbeat, WorkerTelemetry

__all__ = [
    "Backend",
    "CampaignAccumulator",
    "CampaignExecutionError",
    "CampaignReport",
    "CampaignResults",
    "CampaignSpec",
    "CampaignStore",
    "ExperimentAdapter",
    "GroupAccumulator",
    "IgnoredAxesAccumulator",
    "MetricAccumulator",
    "PartialSummaryWriter",
    "TimingAccumulator",
    "WorkerHeartbeat",
    "WorkerTelemetry",
    "FigureAdapter",
    "FileQueueBackend",
    "PollBackoff",
    "ProcessPoolBackend",
    "SerialBackend",
    "TrialSpec",
    "adaptive_group_label",
    "adaptive_summary_rows",
    "aggregate_records",
    "available_backends",
    "available_figures",
    "available_kinds",
    "campaign_status",
    "canonical_json",
    "cost_key",
    "execute_trial",
    "merge_partial_summaries",
    "figure_aggregate_rows",
    "get_experiment",
    "get_figure",
    "group_key",
    "load_campaign_results",
    "load_timing_history",
    "make_backend",
    "register_experiment",
    "register_figure",
    "render_figure_aggregates",
    "render_status",
    "run_campaign",
    "run_worker",
    "scenario_group_label",
    "scenario_summary_rows",
    "schedule_trials",
    "strip_timing",
    "summarize",
    "summarize_ignored_axes",
    "summarize_timing",
    "summary_rows",
]
