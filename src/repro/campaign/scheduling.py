"""Timing-aware trial scheduling: longest-expected-first dispatch.

When a campaign mixes grid cells of very different cost (say a 60-node and a
2000-node security run), submission order decides the parallel makespan: if a
long trial is dispatched last, every other worker drains the queue and then
idles behind it.  The classic remedy is LPT — longest processing time first —
and campaigns already record exactly the data it needs: every ``summary.json``
carries a ``timing.cells`` block with the mean elapsed seconds of each grid
cell (see :func:`repro.campaign.aggregate.summarize_timing`), keyed by the
stable :func:`repro.campaign.spec.cost_key`.

:func:`schedule_trials` folds that history into a dispatch order:

* trials of cells with no history keep their spec order and go *first* —
  an unknown cell might be the expensive one, so it must not be dispatched
  last;
* trials of known cells follow, longest expected cost first;
* ties (and trials within one cell) preserve spec order, so the schedule is
  deterministic.

Scheduling is pure ordering.  It never adds, drops or renames trials — the
records written and the aggregated summary are byte-identical whatever the
order, which is what keeps it outside the determinism contract entirely.
Serial runs skip it: with one worker the makespan is order-independent and
spec order keeps debugging sessions predictable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from .spec import TrialSpec


def load_timing_history(summary: Optional[Mapping[str, object]]) -> Dict[str, float]:
    """Extract ``{cost_key: expected seconds}`` from a summary dict.

    Reads the ``timing.cells`` block a prior :func:`run_campaign` wrote;
    summaries from before that block existed (or ``None`` for a fresh
    directory) yield an empty history, which makes scheduling a no-op.
    """
    if not isinstance(summary, Mapping):
        return {}
    timing = summary.get("timing")
    if not isinstance(timing, Mapping):
        return {}
    cells = timing.get("cells")
    if not isinstance(cells, Mapping):
        return {}
    history: Dict[str, float] = {}
    for key, stats in cells.items():
        if isinstance(stats, Mapping) and isinstance(
            stats.get("mean_elapsed_s"), (int, float)
        ):
            history[str(key)] = float(stats["mean_elapsed_s"])
    return history


def schedule_trials(
    trials: Sequence[TrialSpec],
    history: Optional[Mapping[str, float]] = None,
) -> List[TrialSpec]:
    """Order ``trials`` for dispatch, longest expected cost first.

    ``history`` maps :func:`repro.campaign.spec.cost_key` strings to expected
    seconds (see :func:`load_timing_history`).  With no history — the cold
    start — the result is exactly ``list(trials)``.  Unknown cells sort as
    infinitely expensive (dispatch early, see module docstring); the sort is
    stable on spec position, so equal-cost trials never swap.
    """
    trials = list(trials)
    if not history:
        return trials
    expected = {
        t.trial_id: float(history.get(t.cost_key, math.inf)) for t in trials
    }
    position = {t.trial_id: i for i, t in enumerate(trials)}
    return sorted(
        trials,
        key=lambda t: (-expected[t.trial_id], position[t.trial_id]),
    )
