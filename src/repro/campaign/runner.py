"""Campaign execution: serial or process-pool fan-out with resume support.

``execute_trial`` is the worker entry point.  It is a module-level function
taking and returning plain dicts, so submitting it to a
``concurrent.futures.ProcessPoolExecutor`` never trips over pickling: the
experiment objects themselves are built *inside* the worker process from the
parameter dict, via the adapter registry.

Every trial is seeded from its own parameters, so results do not depend on
which worker ran it or in what order trials completed — serial (``jobs=1``)
and parallel runs of the same spec produce byte-identical trial records and
aggregates once the per-trial ``timing`` block (wall-clock seconds, the one
intentionally non-deterministic field) is stripped; see
:func:`repro.campaign.aggregate.strip_timing`.  ``jobs=1`` bypasses the pool entirely, which keeps tracebacks
flat and makes ``pdb``/profiling work, hence its role as the determinism and
debugging fallback.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from .aggregate import aggregate_records
from .persistence import CampaignStore
from .registry import get_experiment
from .spec import CampaignSpec, TrialSpec

#: ``progress(event, trial_id, done, total)`` with event in {"run", "skip"}.
ProgressCallback = Callable[[str, str, int, int], None]


def execute_trial(trial: Dict[str, object]) -> Dict[str, object]:
    """Run one trial (dict form of :class:`TrialSpec`) and return its record."""
    adapter = get_experiment(str(trial["kind"]))
    started = time.perf_counter()
    result = adapter.run(trial["params"])
    elapsed = time.perf_counter() - started
    # to_dict() embeds scalar_metrics() for standalone use; the record keeps
    # the metrics once, at top level, so the two copies can never drift.
    detail = result.to_dict()
    metrics = detail.pop("metrics", None) or result.scalar_metrics()
    return {
        "trial_id": trial["trial_id"],
        "kind": trial["kind"],
        "params": dict(trial["params"]),
        "metrics": metrics,
        "detail": detail,
        # Wall-clock lives under its own key, never inside "metrics": the
        # determinism guarantee (serial == parallel) covers a record with
        # "timing" stripped — see aggregate.strip_timing.
        "timing": {"elapsed_s": elapsed},
    }


@dataclass
class CampaignReport:
    """What one ``run_campaign`` invocation did."""

    spec: CampaignSpec
    out_dir: Path
    executed_trial_ids: List[str] = field(default_factory=list)
    skipped_trial_ids: List[str] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)

    @property
    def n_executed(self) -> int:
        return len(self.executed_trial_ids)

    @property
    def n_skipped(self) -> int:
        return len(self.skipped_trial_ids)


def run_campaign(
    spec: CampaignSpec,
    out_dir: Union[str, Path],
    jobs: int = 1,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> CampaignReport:
    """Expand ``spec``, run every trial, and write records + summary.

    With ``resume=True``, trials whose records already exist under
    ``out_dir/trials/`` are skipped (memoization across runs); the summary is
    recomputed from *all* records either way.  ``jobs`` > 1 fans pending
    trials out over a process pool of that many workers.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    trials = spec.expand()
    store = CampaignStore(out_dir)
    store.ensure_layout()
    store.write_spec(spec)

    # Probe only this spec's trial ids — not every file in trials/ — so resume
    # cost scales with the campaign, not with whatever else shares the directory.
    done = (
        {t.trial_id for t in trials if store.load_trial(t.trial_id) is not None}
        if resume
        else set()
    )
    pending = [t for t in trials if t.trial_id not in done]
    skipped = [t.trial_id for t in trials if t.trial_id in done]
    total = len(trials)
    finished = 0

    for trial_id in skipped:
        finished += 1
        if progress:
            progress("skip", trial_id, finished, total)

    report = CampaignReport(spec=spec, out_dir=store.out_dir, skipped_trial_ids=skipped)

    if pending:
        if jobs == 1:
            for trial in pending:
                record = execute_trial(trial.to_dict())
                store.write_trial(record)
                finished += 1
                report.executed_trial_ids.append(trial.trial_id)
                if progress:
                    progress("run", trial.trial_id, finished, total)
        else:
            _run_parallel(pending, store, report, jobs, progress, finished, total)

    records = store.load_trials([t.trial_id for t in trials])
    report.summary = aggregate_records(records, spec=spec)
    store.write_summary(report.summary)
    return report


def _run_parallel(
    pending: List[TrialSpec],
    store: CampaignStore,
    report: CampaignReport,
    jobs: int,
    progress: Optional[ProgressCallback],
    finished: int,
    total: int,
) -> None:
    """Fan ``pending`` out over a process pool, persisting as results land."""
    executed = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(execute_trial, t.to_dict()): t.trial_id for t in pending}
        outstanding = set(futures)
        while outstanding:
            complete, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            for future in complete:
                record = future.result()  # propagate worker exceptions
                store.write_trial(record)
                finished += 1
                executed.append(futures[future])
                if progress:
                    progress("run", futures[future], finished, total)
    # Report executed ids in spec order, not completion order.
    order = {t.trial_id: i for i, t in enumerate(pending)}
    report.executed_trial_ids.extend(sorted(executed, key=order.__getitem__))
