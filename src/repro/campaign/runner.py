"""Campaign execution: pluggable backends, timing-aware scheduling, resume.

``run_campaign`` owns the campaign lifecycle — expand the spec, skip trials
already recorded (``resume=True``), schedule the rest, hand them to an
execution backend, and aggregate everything into ``summary.json``.  *How*
trials run is delegated to :mod:`repro.campaign.backends`:

* ``backend="serial"`` — in this process, one at a time (the ``jobs=1``
  default; flat tracebacks, working ``pdb``);
* ``backend="pool"`` — a local ``ProcessPoolExecutor`` of ``jobs`` workers
  (the default whenever ``jobs > 1``);
* ``backend="queue"`` — a shared on-disk job queue under
  ``<out_dir>/queue/`` that any number of ``repro campaign-worker``
  processes, on any machine sharing the filesystem, cooperatively drain.

Every trial is seeded from its own parameters, so results do not depend on
which backend, worker, or completion order produced them — all three
backends yield byte-identical trial records and aggregates once the
per-trial ``timing`` block (wall-clock seconds, the one intentionally
non-deterministic field) is stripped; see
:func:`repro.campaign.aggregate.strip_timing`.

For the parallel backends, pending trials are dispatched
longest-expected-first (:func:`repro.campaign.scheduling.schedule_trials`),
fed by the per-grid-cell elapsed history a previous run of the directory left
in ``summary.json``'s ``timing.cells`` block — scheduling changes only the
makespan, never the outputs.

Records are persisted (and accounted on the report) as each one lands, so a
trial that raises mid-campaign never discards finished work: the failure
surfaces as :class:`CampaignExecutionError` carrying the partial report, with
a best-effort summary of everything that did complete already on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from .backends import Backend, execute_trial, make_backend
from .persistence import CampaignStore
from .scheduling import load_timing_history, schedule_trials
from .spec import CampaignSpec
from .streaming import CampaignAccumulator, merge_partial_summaries

__all__ = [
    "CampaignExecutionError",
    "CampaignReport",
    "ProgressCallback",
    "execute_trial",
    "run_campaign",
]

#: ``progress(event, trial_id, done, total)`` with event in {"run", "skip"}.
ProgressCallback = Callable[[str, str, int, int], None]


@dataclass
class CampaignReport:
    """What one ``run_campaign`` invocation did.

    ``executed_trial_ids`` counts every record this invocation accounted for
    — including, under the queue backend, trials physically executed by a
    cooperating ``campaign-worker`` process.  Ids end up in spec order.
    """

    spec: CampaignSpec
    out_dir: Path
    executed_trial_ids: List[str] = field(default_factory=list)
    skipped_trial_ids: List[str] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)

    @property
    def n_executed(self) -> int:
        return len(self.executed_trial_ids)

    @property
    def n_skipped(self) -> int:
        return len(self.skipped_trial_ids)


class CampaignExecutionError(RuntimeError):
    """A trial failed mid-campaign.

    Carries the partial :class:`CampaignReport`: everything executed before
    the failure is persisted under ``trials/``, accounted in
    ``report.executed_trial_ids``, and already folded into a best-effort
    ``summary.json`` — re-running with ``resume=True`` picks up from there.
    The original worker exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, report: CampaignReport) -> None:
        super().__init__(message)
        self.report = report


def run_campaign(
    spec: CampaignSpec,
    out_dir: Union[str, Path],
    jobs: int = 1,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    backend: Union[str, Backend, None] = None,
) -> CampaignReport:
    """Expand ``spec``, run every trial, and write records + summary.

    With ``resume=True``, trials whose records already exist under
    ``out_dir/trials/`` are skipped (memoization across runs); the summary is
    recomputed from *all* records either way.  ``backend`` picks the
    execution strategy by name (``"serial"``, ``"pool"``, ``"queue"``) or as
    a :class:`~repro.campaign.backends.Backend` instance; by default ``jobs``
    keeps its historical meaning — serial when 1, a process pool of that many
    workers otherwise.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    executor = make_backend(backend, jobs=jobs)
    trials = spec.expand()
    store = CampaignStore(out_dir)
    # Per-cell elapsed history from a previous run of this directory, read
    # before write_spec/summary updates can touch anything.
    history = load_timing_history(store.load_summary()) if executor.reorders else {}
    store.ensure_layout()
    store.write_spec(spec)
    # Let the backend stake out its state before the resume probe below
    # (which scales with the campaign): the queue backend re-opens its
    # on-disk queue here so concurrently started workers keep polling.
    executor.prepare(store)

    # The summary is built incrementally: records stream into this
    # accumulator as they land (resume-skipped ones right here, executed ones
    # in the loop below) instead of being wholesale re-read at the end.  The
    # queue backend goes one step further — its workers commit partial
    # summaries, and finalization merges those instead (see the finally).
    accumulator = CampaignAccumulator()

    # Probe only this spec's trial ids — not every file in trials/ — so resume
    # cost scales with the campaign, not with whatever else shares the directory.
    done = set()
    if resume:
        for trial in trials:
            record = store.load_trial(trial.trial_id)
            if record is not None:
                done.add(trial.trial_id)
                if not executor.commits_partials:
                    accumulator.add_record(record)
    pending = [t for t in trials if t.trial_id not in done]
    skipped = [t.trial_id for t in trials if t.trial_id in done]
    total = len(trials)
    finished = 0

    for trial_id in skipped:
        finished += 1
        if progress:
            progress("skip", trial_id, finished, total)

    report = CampaignReport(spec=spec, out_dir=store.out_dir, skipped_trial_ids=skipped)
    spec_order = {t.trial_id: i for i, t in enumerate(trials)}

    # The backend always runs, even with nothing pending: the queue backend
    # reconciles its on-disk queue (purging jobs a since-edited spec left
    # behind, re-sealing the enqueue-complete marker) as part of submit.
    ordered = schedule_trials(pending, history) if executor.reorders else pending
    try:
        # Backends persist each record before yielding it, and ids are
        # appended per result — so a later trial raising can never
        # discard the accounting of records already on disk.
        for record in executor.submit(ordered, store):
            finished += 1
            trial_id = str(record["trial_id"])
            report.executed_trial_ids.append(trial_id)
            if not executor.commits_partials:
                accumulator.add_record(record)
            if progress:
                progress("run", trial_id, finished, total)
    except Exception as exc:
        raise CampaignExecutionError(
            f"campaign {spec.name!r} failed after {report.n_executed} of "
            f"{len(pending)} pending trial(s): {exc}",
            report,
        ) from exc
    finally:
        # Success, failure, even KeyboardInterrupt: executed ids end up in
        # spec order (not completion order) and whatever records exist are
        # folded into an on-disk summary — the partial report carried by
        # CampaignExecutionError is finalized here too, since the finally
        # block runs before the exception reaches the caller.
        report.executed_trial_ids.sort(key=spec_order.__getitem__)
        if executor.commits_partials:
            # Queue campaigns: per-worker partial summaries (committed as the
            # workers drained) merge into the summary; only trials no partial
            # accounts for are read back individually.
            final = merge_partial_summaries(store, trials)
        else:
            # Streaming path: everything yielded (and resume-skipped) is
            # already folded in.  Top up records that exist on disk but never
            # reached the iterator — e.g. pool results persisted by worker
            # processes right before a crash — with targeted loads only.
            final = accumulator
            for trial in trials:
                if trial.trial_id not in final.trial_ids:
                    record = store.load_trial(trial.trial_id)
                    if record is not None:
                        final.add_record(record)
        report.summary = final.finalize(spec=spec)
        store.write_summary(report.summary)
    return report
