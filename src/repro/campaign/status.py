"""Read-only live view over a (possibly running) campaign directory.

``repro campaign-status <out_dir>`` is built on :func:`campaign_status`: a
pure snapshot function that only *reads* the directory — spec, queue state,
recorded trial ids, worker heartbeats, committed partial summaries — and
derives:

* per-worker telemetry (state, current trial, trials/min, staleness),
* per-grid-cell completion counts (done / expected),
* an ETA from the per-cell elapsed history in the partials' timing blocks
  (falling back to a previous run's ``summary.json``),
* the rolled-up ``ignored_axes`` the campaign has hit so far.

Nothing here mutates the campaign: no claims are swept, no files written, so
running it against a live producer+worker fleet is always safe.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from .persistence import CampaignStore
from .scheduling import load_timing_history
from .spec import cost_key
from .streaming import CampaignAccumulator, IgnoredAxesAccumulator, TimingAccumulator

#: a heartbeat older than this (default) is flagged stale in the status view.
DEFAULT_STALE_AFTER_S = 15.0


def _worker_row(
    beat: Mapping[str, object], now: float, stale_after_s: float
) -> Dict[str, object]:
    updated_at = beat.get("updated_at")
    age_s = (now - float(updated_at)) if isinstance(updated_at, (int, float)) else None
    state = str(beat.get("state", "unknown"))
    stale = state != "stopped" and (age_s is None or age_s > stale_after_s)
    return {
        "worker": str(beat.get("worker", "?")),
        "state": state,
        "stale": stale,
        "age_s": age_s,
        "current_trial": beat.get("current_trial"),
        "trials_done": int(beat.get("trials_done") or 0),
        "trials_skipped": int(beat.get("trials_skipped") or 0),
        "trials_per_min": float(beat.get("trials_per_min") or 0.0),
        "last_claim_at": beat.get("last_claim_at"),
    }


def campaign_status(
    out_dir: Union[str, Path],
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
    now: Optional[float] = None,
) -> Dict[str, object]:
    """One read-only snapshot of a campaign directory's live state."""
    store = CampaignStore(out_dir)
    now = time.time() if now is None else now
    try:
        spec = store.load_spec()
    except (OSError, ValueError) as exc:
        raise FileNotFoundError(
            f"{store.out_dir} does not look like a campaign directory "
            f"(cannot load spec.json: {exc})"
        )
    trials = spec.expand()
    recorded = {p.stem for p in store.trials_dir.glob("*.json")}

    # Per-cell completion: expected from the spec grid, done from the trial
    # records present on disk right now.
    cells: Dict[str, Dict[str, int]] = {}
    done_ids: List[str] = []
    for trial in trials:
        key = cost_key(spec.kind, trial.params)
        cell = cells.setdefault(key, {"expected": 0, "done": 0})
        cell["expected"] += 1
        if trial.trial_id in recorded:
            cell["done"] += 1
            done_ids.append(trial.trial_id)

    # Workers, from their heartbeat beacons.
    workers = []
    for path in store.list_heartbeats():
        beat = store.load_heartbeat(path)
        if beat is not None:
            workers.append(_worker_row(beat, now, stale_after_s))
    active = [w for w in workers if w["state"] in ("running", "idle") and not w["stale"]]

    # Timing history + ignored-axes rollup from the committed partials; a
    # previous run's summary.json fills timing gaps for cells no partial has
    # seen yet (e.g. at campaign start).
    timing = TimingAccumulator()
    ignored = IgnoredAxesAccumulator()
    for path in store.list_partials():
        state = store.load_partial(path)
        if state is None:
            continue
        try:
            part = CampaignAccumulator.from_state(state)
        except (ValueError, KeyError, TypeError):
            continue
        timing.merge(part.timing)
        ignored.merge(part.ignored_axes)
    cell_means: Dict[str, float] = {
        key: total / count for key, (count, total, _peak) in timing.cells.items() if count
    }
    for key, mean_s in load_timing_history(store.load_summary()).items():
        cell_means.setdefault(key, mean_s)

    # ETA: per-cell remaining x per-cell mean elapsed, divided across the
    # workers currently alive (the producer is one of them).  Cells with no
    # elapsed history yet contribute unknown time — flagged, not guessed.
    eta_known = True
    remaining_s = 0.0
    n_remaining = 0
    for key, cell in cells.items():
        left = cell["expected"] - cell["done"]
        if left <= 0:
            continue
        n_remaining += left
        if key in cell_means:
            remaining_s += left * cell_means[key]
        else:
            eta_known = False
    eta_s: Optional[float]
    if n_remaining == 0:
        eta_s = 0.0
    elif eta_known or remaining_s > 0:
        eta_s = remaining_s / max(len(active), 1)
    else:
        eta_s = None

    return {
        "out_dir": str(store.out_dir),
        "generated_at": now,
        "campaign": {
            "name": spec.name,
            "kind": spec.kind,
            "n_trials_expected": len(trials),
        },
        "trials": {
            "expected": len(trials),
            "recorded": len(done_ids),
            "remaining": len(trials) - len(done_ids),
        },
        "queue": {
            "pending": len(store.list_pending()),
            "claims": len(store.list_claims()),
            "enqueue_complete": store.enqueue_complete(),
            "partials": len(store.list_partials()),
        },
        "workers": workers,
        "cells": [
            {"cell": key, "done": cell["done"], "expected": cell["expected"],
             "mean_elapsed_s": cell_means.get(key)}
            for key, cell in sorted(cells.items())
        ],
        "eta_s": eta_s,
        "eta_partial": not eta_known and n_remaining > 0,
        "ignored_axes": ignored.summary(),
    }


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "unknown"
    seconds = max(0.0, float(seconds))
    if seconds < 90:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 90:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _shorten(text: str, width: int = 48) -> str:
    return text if len(text) <= width else text[: width - 1] + "…"


def render_status(status: Mapping[str, object]) -> str:
    """The human-readable ``repro campaign-status`` report."""
    campaign = status["campaign"]
    trials = status["trials"]
    queue = status["queue"]
    lines: List[str] = []
    lines.append(
        f"campaign {campaign['name']!r} ({campaign['kind']}) in {status['out_dir']}"
    )
    lines.append(
        f"trials: {trials['recorded']}/{trials['expected']} recorded, "
        f"{trials['remaining']} remaining  "
        f"(queue: {queue['pending']} pending, {queue['claims']} claimed, "
        f"enqueue {'complete' if queue['enqueue_complete'] else 'in progress'})"
    )
    eta = status.get("eta_s")
    if trials["remaining"] == 0:
        lines.append("eta: done")
    elif eta is None:
        lines.append("eta: unknown (no elapsed history yet)")
    else:
        suffix = " (partial history)" if status.get("eta_partial") else ""
        lines.append(f"eta: ~{_fmt_duration(eta)}{suffix}")

    workers = status.get("workers") or []
    if workers:
        lines.append(f"workers ({len(workers)}):")
        for w in workers:
            marks = []
            if w["stale"]:
                marks.append("STALE")
            state = w["state"] + ("," + ",".join(marks) if marks else "")
            current = f" on {_shorten(str(w['current_trial']), 20)}" if w["current_trial"] else ""
            age = f", beat {_fmt_duration(w['age_s'])} ago" if w["age_s"] is not None else ""
            lines.append(
                f"  {w['worker']}: {state}{current} — "
                f"{w['trials_done']} done, {w['trials_per_min']:.1f} trials/min{age}"
            )
    else:
        lines.append("workers: none seen (no heartbeats)")

    cells = status.get("cells") or []
    incomplete = [c for c in cells if c["done"] < c["expected"]]
    lines.append(
        f"cells: {len(cells) - len(incomplete)}/{len(cells)} complete"
    )
    for cell in incomplete[:12]:
        mean = (
            f", mean {_fmt_duration(cell['mean_elapsed_s'])}/trial"
            if cell.get("mean_elapsed_s") is not None
            else ""
        )
        lines.append(
            f"  [{cell['done']}/{cell['expected']}{mean}] {_shorten(cell['cell'])}"
        )
    if len(incomplete) > 12:
        lines.append(f"  … and {len(incomplete) - 12} more incomplete cell(s)")

    for base_kind, info in sorted((status.get("ignored_axes") or {}).items()):
        lines.append(
            f"warning: {info['n_trials']} trial(s) on base kind {base_kind!r} "
            f"ignored axes: {', '.join(info['axes'])}"
        )
    return "\n".join(lines)
