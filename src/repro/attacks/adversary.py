"""The colluding adversary.

The threat model (Section 3.2): a partial adversary controls a fraction ``f``
of nodes (typically up to 20%).  Compromised nodes may behave arbitrarily —
manipulate routing state, drop or inject messages — and they share everything
they observe over a fast out-of-band channel.

:class:`Adversary` is the coordination point: it knows which nodes it
controls, holds the shared observation log, and installs attack behaviours on
its nodes.  Attack behaviours themselves live in the sibling modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..chord.node import NodeBehavior
from ..chord.ring import ChordRing
from ..sim.trace import TraceLog


@dataclass
class AdversaryStats:
    """Aggregate counters of the adversary's activity."""

    queries_seen: int = 0
    lookups_biased: int = 0
    tables_manipulated: int = 0
    messages_dropped: int = 0


class Adversary:
    """Coordinates all malicious nodes in a ring.

    Parameters
    ----------
    ring:
        The network; the adversary controls ``ring.malicious_ids``.
    rng:
        Random source for probabilistic attack decisions.
    attack_rate:
        Probability that a malicious node actually attacks a given
        opportunity (the paper evaluates 100% and 50% attack rates).
    """

    def __init__(self, ring: ChordRing, rng, attack_rate: float = 1.0) -> None:
        if not 0.0 <= attack_rate <= 1.0:
            raise ValueError("attack_rate must be in [0, 1]")
        self.ring = ring
        self.rng = rng
        self.attack_rate = attack_rate
        self.observation_log = TraceLog()
        self.stats = AdversaryStats()

    # ---------------------------------------------------------------- control
    def controlled_ids(self, alive_only: bool = True) -> List[int]:
        """Node ids currently under the adversary's control."""
        ids = self.ring.malicious_ids
        if not alive_only:
            return sorted(ids)
        return sorted(nid for nid in ids if nid in self.ring.nodes and self.ring.nodes[nid].alive)

    def controls(self, node_id: int) -> bool:
        return self.ring.is_malicious(node_id)

    def colluders_near(self, key: int, count: int = 3) -> List[int]:
        """Malicious nodes closest (clockwise) after ``key`` — used to bias lookups."""
        space = self.ring.space
        candidates = self.controlled_ids(alive_only=True)
        candidates.sort(key=lambda nid: space.distance(key, nid))
        return candidates[:count]

    def should_attack(self, stream: str = "attack-rate") -> bool:
        """Whether to attack this particular opportunity (per attack rate)."""
        if self.attack_rate >= 1.0:
            return True
        if self.attack_rate <= 0.0:
            return False
        return self.rng.stream(stream).random() < self.attack_rate

    # -------------------------------------------------------------- behaviours
    def install_behavior(self, behavior_factory, node_ids: Optional[Iterable[int]] = None) -> int:
        """Attach ``behavior_factory(adversary, node)`` to controlled nodes.

        Returns the number of nodes the behaviour was installed on.  Already
        removed (revoked) nodes are skipped.
        """
        count = 0
        targets = node_ids if node_ids is not None else self.controlled_ids(alive_only=False)
        for node_id in targets:
            node = self.ring.get(node_id)
            if node is None or not node.malicious:
                continue
            node.behavior = behavior_factory(self, node)
            count += 1
        return count

    def reset_behaviors(self) -> None:
        """Restore honest behaviour on every controlled node (for ablations)."""
        for node_id in self.controlled_ids(alive_only=False):
            node = self.ring.get(node_id)
            if node is not None:
                node.behavior = NodeBehavior()

    # ------------------------------------------------------------ observations
    def observe(self, time: float, category: str, **data) -> None:
        """Record an observation in the shared adversary log."""
        self.stats.queries_seen += 1
        self.observation_log.record(time, category, **data)
