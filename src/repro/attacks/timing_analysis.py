"""End-to-end timing analysis attack (Section 4.7, Table 1).

An adversary controlling both the entry relay ``A`` and the exit relay ``D_i``
of the same anonymous path could link them — and hence link the initiator to
the queried node — by noticing that the upstream latency (A to D) equals the
downstream latency (D to A) in a noise-free network.  Octopus defeats this by
having the middle relay ``B`` add a random delay (up to 100 ms by default) to
forwarded messages, on top of natural latency jitter.

Table 1 reports the attack's error rate: for each true (A, D) pair the
adversary picks, among all concurrently observed candidate flows, the one
whose downstream latency best matches the observed upstream latency; the
error rate is the fraction of wrong matches, and the residual information
leak is ``(1 - error) * log2(N * (1 - f) + N * alpha * f)`` bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.latency import KingLatencyModel, LatencyModel
from ..sim.rng import RandomSource


@dataclass
class TimingAnalysisResult:
    """Outcome of one timing-analysis simulation."""

    n_flows: int
    max_delay: float
    concurrent_lookup_rate: float
    correct_matches: int
    error_rate: float
    information_leak_bits: float


class TimingAnalysisAttack:
    """Simulates the timing-analysis attack and measures its error rate.

    Parameters
    ----------
    latency_model:
        Pairwise latency model; defaults to the King-like synthetic model.
    rng:
        Random source (streams ``"timing-*"``).
    jitter_cap / jitter_fraction:
        The jitter window: ``min(cap, fraction * latency)``, following the
        Acharya & Saltz measurement the paper cites (10 ms or 10%).
    """

    def __init__(
        self,
        latency_model: Optional[LatencyModel] = None,
        rng: Optional[RandomSource] = None,
        jitter_cap: float = 0.010,
        jitter_fraction: float = 0.10,
    ) -> None:
        self.latency_model = latency_model or KingLatencyModel(seed=0)
        self.rng = rng or RandomSource(0)
        self.jitter_cap = jitter_cap
        self.jitter_fraction = jitter_fraction

    # ------------------------------------------------------------------ model
    def _jitter(self, base: float, stream) -> float:
        window = min(self.jitter_cap, self.jitter_fraction * base)
        return stream.uniform(0.0, window) if window > 0 else 0.0

    def _flow_latencies(self, flow_index: int, max_delay: float) -> Tuple[float, float]:
        """Observed (upstream, downstream) latencies of one anonymous path.

        The path between A and D traverses the middle relays B and C; the
        adversary at A and D only sees the total transit time in each
        direction.  The base propagation is symmetric; jitter and the random
        delay added at B are not.
        """
        stream = self.rng.stream(f"timing-flow")
        # Synthetic endpoints: A, B, C, D drawn per flow.
        a = flow_index * 4 + 1
        b = flow_index * 4 + 2
        c = flow_index * 4 + 3
        d = flow_index * 4 + 4
        base = (
            self.latency_model.one_way(a, b)
            + self.latency_model.one_way(b, c)
            + self.latency_model.one_way(c, d)
        )
        upstream = base + self._jitter(base, stream) + stream.uniform(0.0, max_delay)
        downstream = base + self._jitter(base, stream) + stream.uniform(0.0, max_delay)
        return upstream, downstream

    # -------------------------------------------------------------------- run
    def run(
        self,
        n_nodes: int = 1_000_000,
        fraction_malicious: float = 0.2,
        concurrent_lookup_rate: float = 0.01,
        max_delay: float = 0.100,
        n_flows: Optional[int] = None,
        max_candidate_flows: int = 4000,
    ) -> TimingAnalysisResult:
        """Simulate the attack for one (max delay, alpha) cell of Table 1.

        ``n_flows`` defaults to the number of concurrent anonymous paths whose
        exit side the adversary observes, ``N * alpha * f``, capped at
        ``max_candidate_flows`` for tractability (the error rate is already
        saturated well below the cap).
        """
        if n_flows is None:
            n_flows = int(n_nodes * concurrent_lookup_rate * fraction_malicious)
        n_flows = max(2, min(n_flows, max_candidate_flows))

        flows = [self._flow_latencies(i, max_delay) for i in range(n_flows)]
        correct = 0
        for i, (upstream, _) in enumerate(flows):
            # The adversary matches the observed upstream latency of flow i
            # against every candidate downstream latency and picks the closest.
            best_j = min(range(n_flows), key=lambda j: abs(flows[j][1] - upstream))
            if best_j == i:
                correct += 1
        error_rate = 1.0 - correct / n_flows

        anonymity_set = n_nodes * (1.0 - fraction_malicious) + n_nodes * concurrent_lookup_rate * fraction_malicious
        leak = (1.0 - error_rate) * math.log2(max(anonymity_set, 2.0))
        return TimingAnalysisResult(
            n_flows=n_flows,
            max_delay=max_delay,
            concurrent_lookup_rate=concurrent_lookup_rate,
            correct_matches=correct,
            error_rate=error_rate,
            information_leak_bits=leak,
        )

    def table1(
        self,
        max_delays: Tuple[float, ...] = (0.100, 0.200),
        alphas: Tuple[float, ...] = (0.005, 0.01, 0.05),
        n_nodes: int = 1_000_000,
        fraction_malicious: float = 0.2,
    ) -> List[TimingAnalysisResult]:
        """Reproduce every cell of Table 1 (two delays x three lookup rates)."""
        results = []
        for max_delay in max_delays:
            for alpha in alphas:
                results.append(
                    self.run(
                        n_nodes=n_nodes,
                        fraction_malicious=fraction_malicious,
                        concurrent_lookup_rate=alpha,
                        max_delay=max_delay,
                    )
                )
        return results
