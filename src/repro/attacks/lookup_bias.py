"""Lookup bias attack (Section 4.3, Figures 3(a) and 3(b)).

A malicious intermediate node biases a lookup by manipulating its successor
list so that the lookup key appears to fall between itself and a colluding
"successor"; the initiator then accepts the colluder as the key owner.  The
attack comes in two flavours:

* **Direct bias** — the malicious node, when queried, returns a successor
  list headed by a colluder (or with honest successors removed so a colluder
  close to the key becomes the claimed owner).
* **Successor-list pollution** — the malicious node feeds manipulated
  successor lists to honest neighbours during stabilization so that *honest*
  nodes evict the victim from their lists (Figure 2(b)); the pollution
  variant is modelled in :mod:`repro.attacks.fingertable_pollution`'s sibling
  behaviour below because it shares the stabilization hook.

Because Octopus routes surveillance probes through anonymous paths, the
attacker cannot distinguish a genuine lookup from a secret-neighbor-
surveillance check, which is exactly what gets it caught.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..chord.node import ChordNode, NodeBehavior
from ..chord.routing_table import RoutingTableSnapshot
from ..chord.successor_list import SignedSuccessorList
from .adversary import Adversary


class LookupBiasBehavior(NodeBehavior):
    """Malicious behaviour implementing the lookup bias attack.

    The node manipulates the successor list it returns for lookup-type
    queries: honest successors are dropped and colluders are promoted so that
    whatever key the querier is chasing appears owned by a colluder.  Finger
    entries are left untouched (that is the separate fingertable-manipulation
    attack).
    """

    is_malicious = True

    def __init__(self, adversary: Adversary, node: ChordNode, attack_stabilization: bool = False) -> None:
        self.adversary = adversary
        self.node = node
        #: when True, manipulated lists are also fed to honest neighbours
        #: during stabilization (successor-list pollution, Figure 2(b)).
        self.attack_stabilization = attack_stabilization

    # ------------------------------------------------------------ manipulation
    def _manipulated_successors(self) -> Tuple[int, ...]:
        """A successor list consisting of colluders only (honest nodes evicted)."""
        ring = self.adversary.ring
        space = ring.space
        capacity = self.node.successor_list.capacity
        colluders = [
            nid
            for nid in self.adversary.controlled_ids(alive_only=True)
            if nid != self.node.node_id
        ]
        colluders.sort(key=lambda nid: space.distance(self.node.node_id, nid))
        manipulated = tuple(colluders[:capacity])
        if manipulated:
            self.adversary.stats.tables_manipulated += 1
        return manipulated or tuple(self.node.successor_list.nodes)

    def _sign_successor_list(self, nodes: Tuple[int, ...], now: float, received_from: Optional[int] = None) -> SignedSuccessorList:
        snapshot = SignedSuccessorList(
            owner_id=self.node.node_id, nodes=nodes, timestamp=now, received_from=received_from
        )
        signature = self.node.keypair.sign(snapshot.payload())
        return SignedSuccessorList(
            owner_id=snapshot.owner_id,
            nodes=snapshot.nodes,
            timestamp=snapshot.timestamp,
            signature=signature,
            received_from=received_from,
        )

    # ---------------------------------------------------------------- responses
    def provide_routing_table(
        self, node: ChordNode, requester: Optional[int], purpose: str, now: float
    ) -> RoutingTableSnapshot:
        honest = node.snapshot(now=now)
        if purpose not in ("anonymous-lookup", "lookup", "finger-update"):
            return honest
        if not self.adversary.should_attack("lookup-bias"):
            return honest
        manipulated = self._manipulated_successors()
        self.adversary.observe(now, "biased-lookup-response", node=node.node_id, requester=requester)
        self.adversary.stats.lookups_biased += 1
        biased = RoutingTableSnapshot(
            owner_id=honest.owner_id,
            fingers=honest.fingers,
            successors=manipulated,
            predecessors=honest.predecessors,
            timestamp=now,
        )
        signature = node.keypair.sign(biased.payload())
        return RoutingTableSnapshot(
            owner_id=biased.owner_id,
            fingers=biased.fingers,
            successors=biased.successors,
            predecessors=biased.predecessors,
            timestamp=biased.timestamp,
            signature=signature,
        )

    def provide_successor_list(
        self, node: ChordNode, requester: Optional[int], purpose: str, now: float
    ) -> SignedSuccessorList:
        attack_contexts = {"anonymous-lookup", "lookup"}
        if self.attack_stabilization:
            attack_contexts.add("stabilize-successors")
        if purpose in attack_contexts and self.adversary.should_attack("lookup-bias"):
            self.adversary.observe(now, "biased-successor-list", node=node.node_id, requester=requester)
            return self._sign_successor_list(self._manipulated_successors(), now)
        return node.signed_successor_list(now=now)
