"""Selective denial-of-service attack (Section 4.7, Appendix II, Figure 9).

Malicious relays on an anonymous path drop queries or replies whenever the
relay adjacent to the initiator is *not* malicious: killing paths the
adversary cannot observe forces the initiator to rebuild them, and each
rebuild is a fresh chance that the new first relay is compromised.

Octopus's defense (receipts + witnesses, :mod:`repro.core.dos_defense`)
identifies droppers: a relay that dropped a message cannot produce a receipt
from its next hop while witnesses confirm that next hop is alive.
"""

from __future__ import annotations

from typing import Dict

from ..chord.node import ChordNode, NodeBehavior
from .adversary import Adversary


class SelectiveDosBehavior(NodeBehavior):
    """Malicious relay behaviour: drop when the first relay is honest."""

    is_malicious = True

    def __init__(self, adversary: Adversary, node: ChordNode, drop_probability: float = 1.0) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.adversary = adversary
        self.node = node
        self.drop_probability = drop_probability

    def should_drop(self, node: ChordNode, purpose: str, context: Dict, now: float) -> bool:
        """Drop forwarded lookup traffic when the entry relay is honest.

        ``context["relays"]`` carries the path's relay list as seen by the
        anonymous-path model; the relay adjacent to the initiator is the first
        entry.  The adversary only drops when that relay is honest (dropping
        otherwise would sabotage its own observation opportunity).
        """
        if purpose not in ("anonymous-lookup",):
            return False
        if not self.adversary.should_attack("selective-dos"):
            return False
        relays = context.get("relays") or []
        if not relays:
            return False
        first_relay = relays[0]
        if self.adversary.controls(first_relay):
            return False
        if self.adversary.rng.stream("selective-dos-drop").random() >= self.drop_probability:
            return False
        self.adversary.stats.messages_dropped += 1
        self.adversary.observe(now, "selective-drop", relay=node.node_id, first_relay=first_relay)
        return True
