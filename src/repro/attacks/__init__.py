"""Adversary models: every attack evaluated in the paper.

Active attacks install malicious :class:`~repro.chord.node.NodeBehavior`
strategies on the nodes controlled by the :class:`Adversary`; passive attacks
(range estimation, timing analysis) are estimators run over the adversary's
observations.
"""

from .adversary import Adversary, AdversaryStats
from .fingertable_manipulation import FingertableManipulationBehavior
from .fingertable_pollution import FingertablePollutionBehavior
from .lookup_bias import LookupBiasBehavior
from .range_estimation import EstimationRange, RangeEstimator
from .selective_dos import SelectiveDosBehavior
from .timing_analysis import TimingAnalysisAttack, TimingAnalysisResult

__all__ = [
    "Adversary",
    "AdversaryStats",
    "FingertableManipulationBehavior",
    "FingertablePollutionBehavior",
    "LookupBiasBehavior",
    "EstimationRange",
    "RangeEstimator",
    "SelectiveDosBehavior",
    "TimingAnalysisAttack",
    "TimingAnalysisResult",
]
