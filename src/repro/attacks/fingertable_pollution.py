"""Fingertable pollution attack (Section 4.5, Figure 4).

Where the manipulation attack lies about a fingertable *when asked*, the
pollution attack corrupts the fingertables that **honest** nodes build for
themselves: Octopus nodes refresh fingers by performing (non-anonymous)
lookups towards ideal finger identifiers, and malicious intermediate nodes
bias those lookups so honest nodes adopt colluders as fingers.

The behaviour therefore targets the ``finger-update`` lookup context: when a
finger-refresh lookup reaches a malicious node, the node claims a colluder
near the queried region as its immediate successor, so the refresh resolves
to that colluder.  The defense (Section 4.5) checks the candidate against a
predecessor's successor list before adoption; colluding predecessors cover
for the pollution with probability ``collusion_consistency``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..chord.node import ChordNode, NodeBehavior
from ..chord.routing_table import RoutingTableSnapshot
from ..chord.successor_list import SignedSuccessorList
from .adversary import Adversary


class FingertablePollutionBehavior(NodeBehavior):
    """Malicious behaviour that biases honest nodes' finger-refresh lookups."""

    is_malicious = True

    def __init__(self, adversary: Adversary, node: ChordNode, collusion_consistency: float = 0.5) -> None:
        self.adversary = adversary
        self.node = node
        self.collusion_consistency = collusion_consistency

    # ---------------------------------------------------------------- helpers
    def _colluding_successors(self) -> Tuple[int, ...]:
        ring = self.adversary.ring
        space = ring.space
        capacity = self.node.successor_list.capacity
        colluders = [nid for nid in self.adversary.controlled_ids(alive_only=True) if nid != self.node.node_id]
        colluders.sort(key=lambda nid: space.distance(self.node.node_id, nid))
        return tuple(colluders[:capacity]) or tuple(self.node.successor_list.nodes)

    # --------------------------------------------------------------- responses
    def provide_routing_table(
        self, node: ChordNode, requester: Optional[int], purpose: str, now: float
    ) -> RoutingTableSnapshot:
        honest = node.snapshot(now=now)
        # Pollution specifically targets finger-update lookups; regular
        # (anonymous) lookups are left alone so the attack is stealthier.
        if purpose != "finger-update" or not self.adversary.should_attack("fingertable-pollution"):
            return honest
        manipulated_successors = self._colluding_successors()
        self.adversary.stats.tables_manipulated += 1
        self.adversary.observe(now, "pollution-response", node=node.node_id, requester=requester)
        polluted = RoutingTableSnapshot(
            owner_id=honest.owner_id,
            fingers=honest.fingers,
            successors=manipulated_successors,
            predecessors=honest.predecessors,
            timestamp=now,
        )
        signature = node.keypair.sign(polluted.payload())
        return RoutingTableSnapshot(
            owner_id=polluted.owner_id,
            fingers=polluted.fingers,
            successors=polluted.successors,
            predecessors=polluted.predecessors,
            timestamp=polluted.timestamp,
            signature=signature,
        )

    def provide_predecessor_list(
        self, node: ChordNode, requester: Optional[int], purpose: str, now: float
    ) -> Tuple[int, ...]:
        """A polluted finger must also lie about its predecessors when checked."""
        if purpose == "finger-check" and self.adversary.should_attack("fingertable-pollution"):
            ring = self.adversary.ring
            space = ring.space
            capacity = node.predecessor_list.capacity
            colluders = [nid for nid in self.adversary.controlled_ids(alive_only=True) if nid != node.node_id]
            colluders.sort(key=lambda nid: space.distance(nid, node.node_id))
            if colluders:
                return tuple(colluders[:capacity])
        return tuple(node.predecessor_list.nodes)

    def provide_successor_list(
        self, node: ChordNode, requester: Optional[int], purpose: str, now: float
    ) -> SignedSuccessorList:
        """Cover for colluders on anonymous checks with bounded probability."""
        if purpose == "anonymous-lookup" and self.adversary.rng.stream("collusion").random() < self.collusion_consistency:
            nodes = self._colluding_successors()
            snapshot = SignedSuccessorList(owner_id=node.node_id, nodes=nodes, timestamp=now)
            signature = node.keypair.sign(snapshot.payload())
            self.adversary.observe(now, "covering-successor-list", node=node.node_id)
            return SignedSuccessorList(
                owner_id=snapshot.owner_id, nodes=snapshot.nodes, timestamp=snapshot.timestamp, signature=signature
            )
        return node.signed_successor_list(now=now)
