"""Fingertable manipulation attack (Section 4.4, Figure 3(c)).

A malicious node replaces honest fingers in the tables it hands out with
colluding nodes.  The goal is not (only) to bias lookup results but to
misdirect random walks and to get *more malicious nodes queried* during a
lookup, creating more observation opportunities.

Detection is by secret finger surveillance: an honest node that buffered such
a manipulated table later checks one of its fingers against the successor
list of one of that finger's claimed predecessors.  To survive the check the
adversary has to manipulate the finger's predecessor list too, which in turn
sacrifices either the finger or the checked predecessor (Section 4.4).  The
``collusion_consistency`` parameter models how often a checked colluding
predecessor backs up the manipulation with a consistent (manipulated)
successor list — the paper's Table 2 uses 50%.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..chord.node import ChordNode, NodeBehavior
from ..chord.routing_table import RoutingTableSnapshot
from ..chord.successor_list import SignedSuccessorList
from .adversary import Adversary


class FingertableManipulationBehavior(NodeBehavior):
    """Malicious behaviour that substitutes colluders into returned fingertables."""

    is_malicious = True

    def __init__(
        self,
        adversary: Adversary,
        node: ChordNode,
        collusion_consistency: float = 0.5,
        fingers_to_manipulate: int = 4,
    ) -> None:
        self.adversary = adversary
        self.node = node
        #: probability that this node, when checked as a *predecessor* of a
        #: manipulated finger, returns a successor list consistent with the
        #: manipulation (Table 2 caption: 50%).
        self.collusion_consistency = collusion_consistency
        self.fingers_to_manipulate = fingers_to_manipulate

    # ------------------------------------------------------------ manipulation
    def _manipulated_fingers(
        self, honest_fingers: Tuple[Tuple[int, Optional[int]], ...]
    ) -> Tuple[Tuple[int, Optional[int]], ...]:
        """Replace the farthest fingers with the colluders closest to their ideals.

        Replacing the *far* fingers keeps the manipulation within NISAN-style
        bound checks (each substitute is still near its ideal identifier)
        while maximising the chance the victim routes through colluders.
        """
        ring = self.adversary.ring
        space = ring.space
        colluders = self.adversary.controlled_ids(alive_only=True)
        if not colluders:
            return honest_fingers
        out = list(honest_fingers)
        manipulated = 0
        for idx in range(len(out) - 1, -1, -1):
            if manipulated >= self.fingers_to_manipulate:
                break
            ideal, _current = out[idx]
            best = min(colluders, key=lambda nid: space.distance(ideal, nid))
            if best == self.node.node_id:
                continue
            out[idx] = (ideal, best)
            manipulated += 1
        if manipulated:
            self.adversary.stats.tables_manipulated += 1
        return tuple(out)

    # ---------------------------------------------------------------- responses
    def provide_routing_table(
        self, node: ChordNode, requester: Optional[int], purpose: str, now: float
    ) -> RoutingTableSnapshot:
        honest = node.snapshot(now=now)
        if purpose not in ("random-walk", "anonymous-lookup", "lookup", "finger-update"):
            return honest
        if not self.adversary.should_attack("fingertable-manipulation"):
            return honest
        self.adversary.observe(now, "manipulated-fingertable", node=node.node_id, requester=requester)
        manipulated = RoutingTableSnapshot(
            owner_id=honest.owner_id,
            fingers=self._manipulated_fingers(honest.fingers),
            successors=honest.successors,
            predecessors=honest.predecessors,
            timestamp=now,
        )
        signature = node.keypair.sign(manipulated.payload())
        return RoutingTableSnapshot(
            owner_id=manipulated.owner_id,
            fingers=manipulated.fingers,
            successors=manipulated.successors,
            predecessors=manipulated.predecessors,
            timestamp=manipulated.timestamp,
            signature=signature,
        )

    def provide_predecessor_list(
        self, node: ChordNode, requester: Optional[int], purpose: str, now: float
    ) -> Tuple[int, ...]:
        """When asked for predecessors (finger check), claim colluders only.

        This is the adversary's only way to survive a secret finger check on a
        colluding finger: the claimed predecessors must also be colluders so
        that the follow-up successor-list query can be answered consistently.
        """
        if purpose == "finger-check" and self.adversary.should_attack("fingertable-manipulation"):
            ring = self.adversary.ring
            space = ring.space
            capacity = node.predecessor_list.capacity
            colluders = [nid for nid in self.adversary.controlled_ids(alive_only=True) if nid != node.node_id]
            colluders.sort(key=lambda nid: space.distance(nid, node.node_id))
            if colluders:
                return tuple(colluders[:capacity])
        return tuple(node.predecessor_list.nodes)

    def provide_successor_list(
        self, node: ChordNode, requester: Optional[int], purpose: str, now: float
    ) -> SignedSuccessorList:
        """When anonymously checked as a predecessor, sometimes cover for colluders.

        With probability ``collusion_consistency`` the node strips honest
        entries from its successor list so a manipulated finger looks
        legitimate; otherwise it answers honestly (covering is risky — it is
        what secret neighbor surveillance catches).
        """
        if purpose == "anonymous-lookup" and self.adversary.rng.stream("collusion").random() < self.collusion_consistency:
            ring = self.adversary.ring
            space = ring.space
            capacity = node.successor_list.capacity
            colluders = [nid for nid in self.adversary.controlled_ids(alive_only=True) if nid != node.node_id]
            colluders.sort(key=lambda nid: space.distance(node.node_id, nid))
            nodes = tuple(colluders[:capacity]) or tuple(node.successor_list.nodes)
            snapshot = SignedSuccessorList(owner_id=node.node_id, nodes=nodes, timestamp=now)
            signature = node.keypair.sign(snapshot.payload())
            self.adversary.observe(now, "covering-successor-list", node=node.node_id)
            return SignedSuccessorList(
                owner_id=snapshot.owner_id, nodes=snapshot.nodes, timestamp=snapshot.timestamp, signature=signature
            )
        return node.signed_successor_list(now=now)
