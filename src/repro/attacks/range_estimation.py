"""Range estimation attack (Wang et al. 2010; Section 6.3 / Appendix III).

Even when the lookup key is never revealed, a passive adversary who can link
several observed queries to the same lookup can bound the target's position:

* the **lower bound** is the last (clockwise-most) observed queried node,
  because nodes succeeding the target are never queried; and
* the **upper bound** follows from greediness: between two consecutively
  queried nodes ``E_k`` and ``E_k+1`` the lookup always chose the finger most
  closely preceding the key, so the key must precede the *next* finger of
  ``E_k`` after ``E_k+1``.

This module implements the estimator the anonymity analysis uses and the
dummy-query filtering test from Appendix III (a candidate subset of observed
queries is only plausible if it is ordered and lies on the virtual lookup
path between its own first and last elements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..chord.ring import ChordRing


@dataclass
class EstimationRange:
    """An estimated interval (clockwise) that must contain the lookup target."""

    lower: int
    upper: int
    #: alive node ids inside the range, in clockwise order from the lower bound
    candidates: List[int]

    @property
    def size(self) -> int:
        return len(self.candidates)

    def position_of(self, node_id: int) -> Optional[int]:
        """1-based clockwise position of ``node_id`` in the range, if present."""
        try:
            return self.candidates.index(node_id) + 1
        except ValueError:
            return None


class RangeEstimator:
    """Implements the range-estimation attack over a known ring topology.

    The adversary is assumed to know the network membership well enough to
    simulate lookups locally (the paper grants it this: malicious nodes share
    all observed routing state).  We model that knowledge with ground-truth
    fingers, which maximises the information leaked and therefore gives a
    conservative (worst-case) anonymity estimate.
    """

    def __init__(self, ring: ChordRing) -> None:
        self.ring = ring
        self.space = ring.space

    # -------------------------------------------------------------- estimation
    def estimate(self, observed_queries_in_order: Sequence[int]) -> Optional[EstimationRange]:
        """Estimate the target range from linkable observed queries.

        ``observed_queries_in_order`` are queried node ids in the order they
        were issued.  With a single observation the range is the whole arc
        from that node's successor to its predecessor (the paper's fallback);
        with two or more, greedy-routing constraints tighten the upper bound.
        """
        observed = [q for q in observed_queries_in_order if q in self.ring.nodes]
        if not observed:
            return None
        space = self.space
        if len(observed) == 1:
            lower = observed[0]
            upper = self._predecessor_on_ring(lower)
            return self._build_range(lower, upper)

        first, last = observed[0], observed[-1]
        lower = last
        upper = first
        # Simulate the lookup locally between consecutive observed queries and
        # tighten the upper bound using the "next finger" argument.
        for k in range(len(observed) - 1):
            e_k, e_next = observed[k], observed[k + 1]
            bound = self._next_finger_after(e_k, e_next)
            if bound is not None and space.distance(lower, bound) < space.distance(lower, upper):
                upper = bound
        return self._build_range(lower, upper)

    def _next_finger_after(self, node_id: int, chosen_finger: int) -> Optional[int]:
        """The finger of ``node_id`` immediately after ``chosen_finger``.

        If the lookup chose ``chosen_finger`` greedily, the key precedes this
        next finger (otherwise the lookup would have jumped further).
        """
        space = self.space
        alive_sorted = self.ring.alive_ids_sorted()
        node = self.ring.get(node_id)
        if node is None:
            return None
        fingers = []
        import bisect

        size = node.finger_table.size
        for i in range(size):
            ideal = space.normalize(node_id + (1 << (space.bits - size + i)))
            pos = bisect.bisect_left(alive_sorted, ideal)
            if pos == len(alive_sorted):
                pos = 0
            fingers.append(alive_sorted[pos])
        fingers = sorted(set(fingers), key=lambda nid: space.distance(node_id, nid))
        if chosen_finger not in fingers:
            return None
        idx = fingers.index(chosen_finger)
        if idx + 1 < len(fingers):
            return fingers[idx + 1]
        return None

    def _predecessor_on_ring(self, node_id: int) -> int:
        alive = self.ring.alive_ids_sorted()
        import bisect

        pos = bisect.bisect_left(alive, node_id)
        return alive[pos - 1] if pos > 0 else alive[-1]

    def _build_range(self, lower: int, upper: int) -> EstimationRange:
        """All alive nodes clockwise in ``(lower, upper]``."""
        space = self.space
        alive = self.ring.alive_ids_sorted()
        candidates = [
            nid
            for nid in alive
            if nid != lower and space.in_interval(nid, lower, upper, inclusive_end=True)
        ]
        candidates.sort(key=lambda nid: space.distance(lower, nid))
        return EstimationRange(lower=lower, upper=upper, candidates=candidates)

    # ------------------------------------------------------- dummy filtering
    def passes_filtering_test(self, subset_in_order: Sequence[int]) -> bool:
        """Appendix III filtering test for candidate non-dummy subsets.

        A subset that violates either rule must contain a dummy query:

        1. queries must progress clockwise in the order they were issued;
        2. every query must lie on the virtual (greedy) lookup path from the
           subset's first query to its last.
        """
        observed = list(subset_in_order)
        if len(observed) <= 1:
            return True
        space = self.space
        # Rule 1: clockwise progression.
        for a, b in zip(observed, observed[1:]):
            if space.distance(observed[0], a) > space.distance(observed[0], b):
                return False
        # Rule 2: membership of the virtual lookup path from first to last.
        first, last = observed[0], observed[-1]
        path = self.virtual_lookup_path(first, last)
        path_set = set(path) | {first, last}
        return all(q in path_set for q in observed)

    def virtual_lookup_path(self, start: int, end: int, max_hops: int = 64) -> List[int]:
        """The greedy lookup path from ``start`` towards ``end`` (ground truth)."""
        space = self.space
        alive_sorted = self.ring.alive_ids_sorted()
        import bisect

        path = [start]
        current = start
        for _ in range(max_hops):
            if current == end:
                break
            fingers = []
            node = self.ring.get(current)
            size = node.finger_table.size if node is not None else 12
            for i in range(size):
                ideal = space.normalize(current + (1 << (space.bits - size + i)))
                pos = bisect.bisect_left(alive_sorted, ideal)
                if pos == len(alive_sorted):
                    pos = 0
                fingers.append(alive_sorted[pos])
            # The lookup also routes over the successor list (Octopus returns
            # fingers + successors), so the virtual path must include them.
            succ_count = node.successor_list.capacity if node is not None else 6
            start_pos = bisect.bisect_right(alive_sorted, current)
            for step in range(succ_count):
                fingers.append(alive_sorted[(start_pos + step) % len(alive_sorted)])
            best = None
            best_dist = None
            for nid in fingers:
                if nid == current:
                    continue
                if not space.in_interval(nid, current, end, inclusive_end=True):
                    continue
                d = space.distance(nid, end)
                if best_dist is None or d < best_dist:
                    best, best_dist = nid, d
            if best is None:
                break
            path.append(best)
            current = best
        return path
