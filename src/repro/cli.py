"""Command-line interface for running the reproduction's experiments.

Usage (after ``pip install -e .``)::

    python -m repro security   --attack lookup-bias --nodes 150 --duration 400
    python -m repro anonymity  --nodes 8000 --malicious 0.2
    python -m repro efficiency --nodes 207 --lookups 80
    python -m repro timing
    python -m repro ablation
    python -m repro list-kinds                        # kinds, axes, presets
    python -m repro campaign   --spec campaign.json --jobs 4 --out results/ --resume
    python -m repro campaign   --spec campaign.json --backend queue --out results/
    python -m repro campaign   --kind scenario --param preset=flash-crowd --out results/
    python -m repro campaign-worker results/          # in other terminals/hosts
    python -m repro campaign-status results/ --watch  # live progress view
    python -m repro lint src/repro                    # determinism/layering checks

Each single-run subcommand builds the corresponding harness from
:mod:`repro.experiments`, runs it, and prints the regenerated rows/series in
the same form the benchmarks use.  ``campaign`` fans a whole
multi-seed / parameter-grid sweep out over an execution backend
(``--backend serial|pool|queue``) via :mod:`repro.campaign`;
``campaign-worker`` joins the on-disk job queue of a ``--backend queue``
campaign from any process or machine sharing the results directory.  The
grid can come from a JSON spec file or be given inline::

    python -m repro campaign --kind security \
        --param n_nodes=150 --param duration=400 \
        --param attack_rate=1.0,0.5 --seeds 0-3 --jobs 4 --out results/fig3a

``--figure fig3a`` picks the right kind for a paper figure and tags the spec
(``--list-figures`` shows the figure -> kind/benchmark/metrics map); the
written results directory can then be fed to the matching benchmark via
``pytest benchmarks/<bench> --campaign-results <out>``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from .experiments.ablation import AblationConfig, AnonymityAblation
from .experiments.anonymity import AnonymityExperiment, AnonymityExperimentConfig
from .experiments.efficiency import EfficiencyExperiment, EfficiencyExperimentConfig
from .experiments.results import format_table
from .experiments.security import SecurityExperiment, SecurityExperimentConfig
from .experiments.timing import TimingExperiment, TimingExperimentConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Octopus (ICDCS 2012) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    security = sub.add_parser("security", help="attacker-identification simulation (Figures 3/4/9, Table 2)")
    security.add_argument("--attack", default="lookup-bias",
                          choices=["lookup-bias", "fingertable-manipulation", "fingertable-pollution", "selective-dos", "none"])
    security.add_argument("--nodes", type=int, default=150)
    security.add_argument("--duration", type=float, default=400.0)
    security.add_argument("--attack-rate", type=float, default=1.0)
    security.add_argument("--churn-minutes", type=float, default=60.0)
    security.add_argument("--seed", type=int, default=0)
    security.add_argument("--kernel", default="object", choices=["object", "array"],
                          help="ring-membership backend (array scales to 1e5+ nodes)")

    anonymity = sub.add_parser("anonymity", help="H(I)/H(T) estimation (Figures 5/6)")
    anonymity.add_argument("--nodes", type=int, default=8000)
    anonymity.add_argument("--malicious", type=float, default=0.2)
    anonymity.add_argument("--alpha", type=float, default=0.01)
    anonymity.add_argument("--dummies", type=int, default=6)
    anonymity.add_argument("--worlds", type=int, default=200)
    anonymity.add_argument("--seed", type=int, default=0)
    anonymity.add_argument("--kernel", default="object", choices=["object", "array"],
                           help="lookup-path backend (array scales to 1e5+ nodes)")

    efficiency = sub.add_parser("efficiency", help="latency/bandwidth comparison (Table 3, Figure 7(a))")
    efficiency.add_argument("--nodes", type=int, default=207)
    efficiency.add_argument("--lookups", type=int, default=80)
    efficiency.add_argument("--seed", type=int, default=0)
    efficiency.add_argument("--kernel", default="object", choices=["object", "array"],
                            help="ring-membership backend (array scales to 1e5+ nodes)")

    load = sub.add_parser("load", help="open-loop sustained-RPS load sweep (latency knee)")
    load.add_argument("--nodes", type=int, default=120)
    load.add_argument("--duration", type=float, default=120.0)
    load.add_argument("--rps", default="10,25,50",
                      help="comma-separated offered lookup rates (network-wide, lookups/s)")
    load.add_argument("--workload", default="poisson",
                      help="arrival process / key distribution (poisson, uniform, zipf, hot-key-storm)")
    load.add_argument("--churn-minutes", type=float, default=60.0)
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--kernel", default="object", choices=["object", "array"],
                      help="ring-membership backend (array scales to 1e5+ nodes)")

    timing = sub.add_parser("timing", help="timing-analysis error rate (Table 1)")
    timing.add_argument("--flows", type=int, default=1200)

    ablation = sub.add_parser("ablation", help="multi-path / dummy-query ablation (Section 4.2)")
    ablation.add_argument("--nodes", type=int, default=8000)
    ablation.add_argument("--malicious", type=float, default=0.2)
    ablation.add_argument("--worlds", type=int, default=150)
    ablation.add_argument("--kernel", default="object", choices=["object", "array"],
                          help="lookup-path backend (array scales to 1e5+ nodes)")

    sub.add_parser(
        "list-kinds",
        help="list experiment kinds, scenario axes and scenario presets",
        description=(
            "Print every registered experiment kind (with its description), the "
            "scenario axis generators (churn profiles, workload models, adversary "
            "placements) and the built-in scenario presets runnable via "
            "'repro campaign --kind scenario --param preset=NAME'."
        ),
    )

    campaign = sub.add_parser(
        "campaign",
        help="multi-seed / parameter-grid campaign over worker processes",
        description=(
            "Expand a campaign spec (experiment kind x parameter grid x seeds) into "
            "independent trials, run them serially or on a process pool, and write "
            "per-trial JSON plus a mean/std/CI summary to the results directory."
        ),
    )
    campaign.add_argument("--spec", help="JSON campaign spec file (overrides inline options)")
    campaign.add_argument("--kind", help="experiment kind for an inline campaign")
    campaign.add_argument(
        "--figure",
        default="",
        help=(
            "paper figure/table this campaign regenerates (e.g. fig3a, table3); "
            "implies the matching --kind and is stored in spec.json for provenance"
        ),
    )
    campaign.add_argument("--name", default="", help="campaign name (default: <kind>-campaign)")
    campaign.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=V[,V...]",
        help="inline parameter; one value fixes it, several make a grid axis (repeatable)",
    )
    campaign.add_argument("--seeds", default="0", help="seed list: '0,1,2' or a range '0-7'")
    campaign.add_argument("--jobs", type=int, default=1, help="worker processes (1 = serial)")
    campaign.add_argument(
        "--backend",
        default="",
        choices=["", "serial", "pool", "queue"],
        help=(
            "execution backend (default: serial when --jobs 1, else a process "
            "pool); 'queue' persists claimable job files under <out>/queue/ and "
            "cooperates with any number of 'repro campaign-worker' processes"
        ),
    )
    campaign.add_argument(
        "--claim-ttl", type=float, default=300.0,
        help="queue backend: seconds before an unfinished claim is presumed orphaned and requeued",
    )
    campaign.add_argument(
        "--claim-batch", type=int, default=1,
        help=(
            "queue backend: claim up to N cheap same-grid-cell trials per queue "
            "round-trip (cells with recorded mean elapsed >= 5 s still claim singly)"
        ),
    )
    campaign.add_argument("--out", default="campaign-results", help="results directory")
    campaign.add_argument("--resume", action="store_true",
                          help="skip trials whose records already exist in --out")
    campaign.add_argument("--list-kinds", action="store_true",
                          help="list registered experiment kinds and exit")
    campaign.add_argument("--list-figures", action="store_true",
                          help="list figure adapters (figure -> kind, benchmark, metrics) and exit")
    campaign.add_argument("--quiet", action="store_true", help="suppress per-trial progress lines")
    campaign.add_argument("--profile", action="store_true",
                          help="record engine-phase profiling counters/timers under each "
                               "trial's timing.profile (sets REPRO_PROFILE for all workers)")

    worker = sub.add_parser(
        "campaign-worker",
        help="drain a file-queue campaign's job queue (claim -> execute -> record)",
        description=(
            "Join the shared on-disk job queue of a campaign started with "
            "'repro campaign --backend queue'. Any number of workers — on this "
            "machine, over SSH, or anywhere sharing the results directory via a "
            "network filesystem — may run concurrently; each atomically claims "
            "pending job files, executes them, writes trial records, and exits "
            "once the queue is drained."
        ),
    )
    worker.add_argument("out_dir", help="the campaign results directory (the producer's --out)")
    worker.add_argument("--worker-id", default="", help="claim owner label (default: <host>-pid<pid>)")
    worker.add_argument("--poll-interval", type=float, default=0.2,
                        help="seconds between queue polls when idle (exponential backoff floor)")
    worker.add_argument("--max-poll-interval", type=float, default=None,
                        help="idle-poll backoff ceiling in seconds (default: max(5, poll interval))")
    worker.add_argument("--claim-ttl", type=float, default=300.0,
                        help="seconds before another worker's unfinished claim is presumed orphaned and requeued")
    worker.add_argument("--claim-batch", type=int, default=1,
                        help="claim up to N cheap same-grid-cell trials per queue round-trip "
                             "(cells with recorded mean elapsed >= 5 s still claim singly)")
    worker.add_argument("--max-trials", type=int, default=None,
                        help="exit after executing this many trials (default: until drained)")
    worker.add_argument("--wait-for-queue", type=float, default=30.0,
                        help="seconds to wait for the producer to create the queue before giving up")
    worker.add_argument("--quiet", action="store_true", help="suppress per-trial progress lines")
    worker.add_argument("--heartbeat-interval", type=float, default=2.0,
                        help="seconds between heartbeat-file rewrites (feeds campaign-status "
                             "and keeps long trials from being presumed orphaned)")
    worker.add_argument("--profile", action="store_true",
                        help="record engine-phase profiling counters/timers under each "
                             "trial's timing.profile (sets REPRO_PROFILE)")

    status = sub.add_parser(
        "campaign-status",
        help="read-only live view of a (running) campaign directory",
        description=(
            "Inspect a campaign results directory without touching it: recorded vs "
            "expected trials, queue depth, per-worker heartbeats and throughput, "
            "per-grid-cell completion, an ETA derived from per-cell elapsed history, "
            "and any rolled-up ignored scenario axes. Safe to run against a live "
            "producer + worker fleet."
        ),
    )
    status.add_argument("out_dir", help="the campaign results directory (the producer's --out)")
    status.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the raw status snapshot as JSON instead of the report")
    status.add_argument("--watch", type=float, nargs="?", const=2.0, default=None,
                        metavar="SECONDS",
                        help="refresh every SECONDS (default 2) until the campaign completes")
    status.add_argument("--stale-after", type=float, default=15.0,
                        help="flag a worker heartbeat older than this many seconds as stale")

    lint = sub.add_parser(
        "lint",
        help="determinism & layering static analysis (AST-based, CI-gated)",
        description=(
            "Run the repro-specific static analyzer: banned nondeterminism sources "
            "(global random, wall clock, os.urandom, uuid4, builtin hash), "
            "unordered-iteration hazards (set iteration, unsorted directory "
            "listings), RNG stream discipline, and the documented import-layer DAG. "
            "Run with --rules for the full catalog and suppression policy."
        ),
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: the installed repro package)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the machine-readable report (stable schema)")
    lint.add_argument("--rules", action="store_true",
                      help="print the rule catalog (id, summary, escape hatches) and exit")
    return parser


def _parse_param_value(token: str) -> object:
    """Parse one inline parameter value: JSON literal if possible, else string."""
    try:
        return json.loads(token)
    except ValueError:
        return token


def _parse_seeds(text: str) -> List[int]:
    """Parse ``--seeds``: comma-separated ints or an inclusive 'LO-HI' range."""
    text = text.strip()
    try:
        if "-" in text and "," not in text and not text.startswith("-"):
            lo, hi = text.split("-", 1)
            return list(range(int(lo), int(hi) + 1))
        return [int(tok) for tok in text.split(",") if tok.strip()]
    except ValueError:
        raise SystemExit(
            f"repro campaign: malformed --seeds {text!r} (expected '0,1,2' or a range '0-7')"
        )


def _inline_spec(args) -> "CampaignSpec":
    """Build a CampaignSpec from --kind/--figure/--param/--seeds options."""
    from .campaign import CampaignSpec, get_figure

    kind = args.kind
    if args.figure:
        try:
            adapter = get_figure(args.figure)
        except KeyError as exc:
            raise SystemExit(f"repro campaign: {exc.args[0]}")
        if kind and kind != adapter.kind:
            raise SystemExit(
                f"repro campaign: figure {args.figure!r} is produced by kind "
                f"{adapter.kind!r}, not {kind!r}"
            )
        kind = adapter.kind
    if not kind:
        raise SystemExit("repro campaign: one of --spec FILE, --kind KIND or --figure FIG is required")
    base: Dict[str, object] = {}
    grid: Dict[str, List[object]] = {}
    for item in args.param:
        if "=" not in item:
            raise SystemExit(f"repro campaign: malformed --param {item!r} (expected NAME=VALUE[,VALUE...])")
        name, _, raw = item.partition("=")
        # A value that parses as JSON in one piece is ONE parameter value —
        # this is how list-valued config fields are set inline, e.g.
        # --param max_delays=[0.1,0.2].  Only otherwise does ',' split the
        # string into a grid axis.
        try:
            base[name.strip()] = json.loads(raw)
            continue
        except ValueError:
            pass
        values = [_parse_param_value(tok) for tok in raw.split(",")]
        if len(values) == 1:
            base[name.strip()] = values[0]
        else:
            grid[name.strip()] = values
    return CampaignSpec(
        kind=kind,
        name=args.name,
        base=base,
        grid=grid,
        seeds=tuple(_parse_seeds(args.seeds)),
        figure=args.figure,
    )


def _run_security(args) -> int:
    config = SecurityExperimentConfig(
        n_nodes=args.nodes,
        duration=args.duration,
        attack=args.attack,
        attack_rate=args.attack_rate,
        churn_lifetime_minutes=args.churn_minutes,
        seed=args.seed,
        sample_interval=max(args.duration / 8.0, 1.0),
        kernel=args.kernel,
    )
    result = SecurityExperiment(config).run()
    print(f"attack={args.attack} nodes={args.nodes} duration={args.duration:.0f}s")
    rows = [
        {"time_s": t, "malicious_fraction": round(v, 4)} for t, v in result.malicious_fraction_series
    ]
    print(format_table(["time_s", "malicious_fraction"], [[r["time_s"], r["malicious_fraction"]] for r in rows]))
    print(
        f"identified malicious={result.identified_malicious} honest={result.identified_honest} "
        f"FP={result.false_positive_rate:.4f} FN={result.false_negative_rate:.4f} "
        f"FA={result.false_alarm_rate:.4f} lookups={result.total_lookups} biased={result.total_biased_lookups}"
    )
    return 0


def _run_anonymity(args) -> int:
    config = AnonymityExperimentConfig(
        n_nodes=args.nodes,
        fractions_malicious=(args.malicious,),
        dummy_counts=(args.dummies,),
        concurrent_lookup_rates=(args.alpha,),
        n_worlds=args.worlds,
        seed=args.seed,
        kernel=args.kernel,
    )
    experiment = AnonymityExperiment(config)
    octopus = experiment.run_octopus()
    comparison = experiment.run_comparison(alpha=args.alpha)
    rows = []
    for p in octopus + comparison:
        rows.append([p.scheme, p.fraction_malicious, round(p.initiator_entropy, 2), round(p.initiator_leak, 2),
                     round(p.target_entropy, 2), round(p.target_leak, 2)])
    print(format_table(["scheme", "f", "H(I)", "leak(I)", "H(T)", "leak(T)"], rows))
    return 0


def _run_efficiency(args) -> int:
    from .core.config import OctopusConfig

    config = EfficiencyExperimentConfig(
        n_nodes=args.nodes,
        lookups_per_scheme=args.lookups,
        seed=args.seed,
        octopus=OctopusConfig(expected_network_size=args.nodes),
        kernel=args.kernel,
    )
    result = EfficiencyExperiment(config).run()
    rows = result.table3_rows()
    headers = list(rows[0].keys())
    print(format_table(headers, [[row[h] for h in headers] for row in rows], title="Table 3"))
    return 0


def _run_load(args) -> int:
    from .experiments.load import LoadConfig, LoadExperiment

    rows = []
    for rps in (float(part) for part in args.rps.split(",") if part.strip()):
        config = LoadConfig(
            n_nodes=args.nodes,
            duration=args.duration,
            offered_rps=rps,
            workload=args.workload,
            churn_lifetime_minutes=args.churn_minutes,
            sample_interval=max(args.duration / 8.0, 1.0),
            seed=args.seed,
            kernel=args.kernel,
        )
        m = LoadExperiment(config).run().scalar_metrics()
        rows.append([
            f"{rps:g}",
            f"{m['offered_rps_measured']:.2f}",
            f"{m['delivered_rps']:.2f}",
            f"{m['success_rate']:.4f}",
            f"{m['latency_p50_s'] * 1000:.1f}",
            f"{m['latency_p90_s'] * 1000:.1f}",
            f"{m['latency_p99_s'] * 1000:.1f}",
            f"{m['inflight_mean']:.1f}",
        ])
    print(f"workload={args.workload} nodes={args.nodes} duration={args.duration:.0f}s")
    print(format_table(
        ["offered_rps", "measured_rps", "delivered_rps", "success",
         "p50_ms", "p90_ms", "p99_ms", "inflight"],
        rows,
        title="Open-loop load sweep",
    ))
    return 0


def _run_timing(args) -> int:
    config = TimingExperimentConfig(max_candidate_flows=args.flows)
    result = TimingExperiment(config).run()
    rows = result.table1_rows()
    headers = list(rows[0].keys())
    print(format_table(headers, [[row.get(h, "") for h in headers] for row in rows], title="Table 1"))
    print(f"max residual information leak: {result.max_information_leak():.3f} bit")
    return 0


def _run_ablation(args) -> int:
    config = AblationConfig(
        n_nodes=args.nodes, fraction_malicious=args.malicious, n_worlds=args.worlds, kernel=args.kernel
    )
    result = AnonymityAblation(config).run()
    rows = [[p.variant, p.relay_pairs, p.dummy_queries, round(p.target_entropy, 2), round(p.target_leak, 2)]
            for p in result.points]
    print(format_table(["variant", "relay_pairs", "dummies", "H(T)", "leak(T)"], rows, title="Section 4.2 ablation"))
    return 0


def _run_list_kinds(args) -> int:
    from .campaign import available_kinds, get_experiment
    from .scenarios import (
        ATTACKER_STRATEGIES,
        CHURN_PROFILES,
        DEFENSE_POLICIES,
        PLACEMENTS,
        WORKLOADS,
        describe_adaptive_presets,
        describe_presets,
    )

    print("experiment kinds (repro campaign --kind KIND):")
    for kind in available_kinds():
        print(f"  {kind:12s} {get_experiment(kind).description}")
    for title, registry in (
        ("scenario churn profiles (--param churn=NAME)", CHURN_PROFILES),
        ("scenario workload models (--param workload=NAME)", WORKLOADS),
        ("scenario adversary placements (--param adversary=NAME)", PLACEMENTS),
        ("adaptive attacker strategies (--kind adaptive --param attacker=NAME)", ATTACKER_STRATEGIES),
        ("adaptive defense policies (--kind adaptive --param defense=NAME)", DEFENSE_POLICIES),
    ):
        print(f"{title}:")
        for name, description in registry.describe().items():
            print(f"  {name:18s} {description}")
    print("scenario presets (repro campaign --kind scenario --param preset=NAME):")
    for name, description in describe_presets().items():
        print(f"  {name:18s} {description}")
    print("adaptive presets (repro campaign --kind adaptive --param preset=NAME):")
    for name, description in describe_adaptive_presets().items():
        print(f"  {name:18s} {description}")
    return 0


def _run_campaign(args) -> int:
    from .campaign import (
        CampaignExecutionError,
        CampaignSpec,
        FileQueueBackend,
        available_figures,
        available_kinds,
        get_experiment,
        get_figure,
        run_campaign,
        summary_rows,
    )

    if args.list_kinds:
        for kind in available_kinds():
            print(f"{kind:12s} {get_experiment(kind).description}")
        return 0
    if args.list_figures:
        for figure in available_figures():
            adapter = get_figure(figure)
            print(f"{figure:8s} kind={adapter.kind:10s} {adapter.bench}")
            print(f"{'':8s} metrics: {', '.join(adapter.metrics)}")
        return 0

    if args.spec:
        try:
            spec = CampaignSpec.from_json_file(args.spec)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro campaign: cannot load spec {args.spec!r}: {exc}")
        if args.name:
            spec.name = args.name
    else:
        spec = _inline_spec(args)
    # Fail fast — validate the spec and build every trial's typed config
    # before anything is written or any worker starts.
    try:
        trials = spec.expand()
        adapter = get_experiment(spec.kind)
        for trial in trials:
            config = adapter.build_config(trial.params)
            validate = getattr(config, "validate", None)
            if callable(validate):
                validate()
        if args.jobs < 1:
            raise ValueError("--jobs must be >= 1")
    except (KeyError, TypeError, ValueError) as exc:
        # KeyError's str() wraps the message in quotes; unwrap via args.
        raise SystemExit(f"repro campaign: {exc.args[0] if exc.args else exc}")

    # Progress lines carry completed/total plus the running throughput over
    # *executed* trials (skips are free and would inflate the rate).  The
    # prefix format is stable; the throughput rides as a suffix.
    progress_clock = {"started": None, "ran": 0}

    def progress(event: str, trial_id: str, done: int, total: int) -> None:
        if args.quiet:
            return
        verb = "ran " if event == "run" else "skip"
        rate = ""
        if event == "run":
            import time as _time

            now = _time.monotonic()
            if progress_clock["started"] is None:
                progress_clock["started"] = now
            progress_clock["ran"] += 1
            span = now - progress_clock["started"]
            if progress_clock["ran"] > 1 and span > 0:
                rate = f"  ({(progress_clock['ran'] - 1) * 60.0 / span:.1f} trials/min)"
        print(f"[{done}/{total}] {verb} {trial_id}{rate}", flush=True)

    # --backend queue gets its claim TTL from the CLI; the other names go
    # through by string and take their defaults.  --jobs only means anything
    # for the pool backend — reject contradictory combinations rather than
    # silently running 1-wide.
    if args.backend in ("serial", "queue") and args.jobs != 1:
        hint = (
            "start more 'repro campaign-worker' processes instead"
            if args.backend == "queue"
            else "drop --backend serial to use the process pool"
        )
        raise SystemExit(
            f"repro campaign: --jobs has no effect with --backend {args.backend}; {hint}"
        )
    if args.claim_batch < 1:
        raise SystemExit("repro campaign: --claim-batch must be >= 1")
    if args.profile:
        # Environment, not a parameter: pool and queue worker processes
        # inherit it, so every trial of the campaign profiles uniformly.
        import os

        os.environ["REPRO_PROFILE"] = "1"
    if args.backend == "queue":
        if args.claim_ttl <= 0:
            raise SystemExit("repro campaign: --claim-ttl must be positive")
        backend = FileQueueBackend(claim_ttl_s=args.claim_ttl, claim_batch=args.claim_batch)
    else:
        backend = args.backend or None
    try:
        report = run_campaign(
            spec,
            out_dir=args.out,
            jobs=args.jobs,
            resume=args.resume,
            progress=progress,
            backend=backend,
        )
    except CampaignExecutionError as exc:
        raise SystemExit(
            f"repro campaign: {exc} — completed trials are kept in {args.out!r}; "
            "re-run with --resume to continue"
        )
    print(
        f"campaign {spec.name!r} ({spec.kind}): {report.n_executed} trial(s) executed, "
        f"{report.n_skipped} skipped, results in {report.out_dir}"
    )
    timing = report.summary.get("timing") or {}
    if timing.get("n"):
        print(
            f"trial wall-clock: {timing['total_elapsed_s']:.2f} s total over "
            f"{timing['n']} timed trial(s), mean {timing['mean_elapsed_s']:.2f} s, "
            f"max {timing['max_elapsed_s']:.2f} s"
        )
        for worker, stats in (timing.get("workers") or {}).items():
            print(
                f"  worker {worker}: {stats['n']} trial(s), "
                f"{stats['total_elapsed_s']:.2f} s"
            )
        profile = timing.get("profile") or {}
        if profile.get("n"):
            print(f"profiling ({profile['n']} profiled trial(s)):")
            for name, value in (profile.get("counters") or {}).items():
                print(f"  {name}: {value:g}")
            for name, value in (profile.get("timers_s") or {}).items():
                print(f"  {name}: {value:.3f} s")
    # Scenario trials report axes their base harness cannot express; a sweep
    # that quietly dropped an axis would lie, so surface the gap per kind.
    for base_kind, info in sorted((report.summary.get("ignored_axes") or {}).items()):
        print(
            f"warning: {info['n_trials']} scenario trial(s) on base kind "
            f"{base_kind!r} ignored axes: {', '.join(info['axes'])} "
            f"(the harness cannot express them)"
        )
    headers, rows = summary_rows(report.summary)
    if rows:
        print(format_table(headers, rows, title="aggregate (mean±ci95 over seeds)"))
    return 0


def _run_campaign_worker(args) -> int:
    from .campaign import run_worker

    if args.max_trials is not None and args.max_trials < 1:
        raise SystemExit("repro campaign-worker: --max-trials must be >= 1")
    if args.claim_ttl <= 0:
        raise SystemExit("repro campaign-worker: --claim-ttl must be positive")
    if args.poll_interval <= 0:
        raise SystemExit("repro campaign-worker: --poll-interval must be positive")
    if args.max_poll_interval is not None and args.max_poll_interval < args.poll_interval:
        raise SystemExit(
            "repro campaign-worker: --max-poll-interval must be >= --poll-interval"
        )
    if args.claim_batch < 1:
        raise SystemExit("repro campaign-worker: --claim-batch must be >= 1")
    if args.heartbeat_interval <= 0:
        raise SystemExit("repro campaign-worker: --heartbeat-interval must be positive")
    if args.profile:
        import os

        os.environ["REPRO_PROFILE"] = "1"

    def progress(event: str, trial_id: str, n_executed: int) -> None:
        if not args.quiet:
            verb = "ran " if event == "run" else "skip"
            print(f"[worker {n_executed}] {verb} {trial_id}", flush=True)

    try:
        executed = run_worker(
            args.out_dir,
            worker_id=args.worker_id or None,
            claim_ttl_s=args.claim_ttl,
            poll_interval_s=args.poll_interval,
            max_trials=args.max_trials,
            wait_for_queue_s=args.wait_for_queue,
            progress=progress,
            max_poll_interval_s=args.max_poll_interval,
            claim_batch=args.claim_batch,
            heartbeat_interval_s=args.heartbeat_interval,
        )
    except Exception as exc:  # a failing trial: its job was already requeued
        raise SystemExit(
            f"repro campaign-worker: trial failed ({exc}); "
            "the job went back to the queue"
        )
    print(f"campaign-worker: executed {executed} trial(s) from {args.out_dir}")
    return 0


def _run_campaign_status(args) -> int:
    import time

    from .campaign import campaign_status, render_status

    if args.stale_after <= 0:
        raise SystemExit("repro campaign-status: --stale-after must be positive")
    if args.watch is not None and args.watch <= 0:
        raise SystemExit("repro campaign-status: --watch interval must be positive")

    def snapshot():
        try:
            return campaign_status(args.out_dir, stale_after_s=args.stale_after)
        except FileNotFoundError as exc:
            raise SystemExit(f"repro campaign-status: {exc}")

    status = snapshot()
    while True:
        if args.as_json:
            print(json.dumps(status, indent=2, sort_keys=True), flush=True)
        else:
            print(render_status(status), flush=True)
        if args.watch is None or status["trials"]["remaining"] == 0:
            return 0
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0
        status = snapshot()
        if not args.as_json:
            print(flush=True)  # blank line between refreshes


def _run_lint(args) -> int:
    """Delegate to the standalone linter CLI, reusing its exit-code contract."""
    from .lint.cli import main as lint_main

    argv: List[str] = list(args.paths)
    if args.as_json:
        argv.append("--json")
    if args.rules:
        argv.append("--rules")
    return lint_main(argv)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "security": _run_security,
        "anonymity": _run_anonymity,
        "efficiency": _run_efficiency,
        "load": _run_load,
        "timing": _run_timing,
        "ablation": _run_ablation,
        "list-kinds": _run_list_kinds,
        "campaign": _run_campaign,
        "campaign-worker": _run_campaign_worker,
        "campaign-status": _run_campaign_status,
        "lint": _run_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
