"""Command-line interface for running the reproduction's experiments.

Usage (after ``pip install -e .``)::

    python -m repro security   --attack lookup-bias --nodes 150 --duration 400
    python -m repro anonymity  --nodes 8000 --malicious 0.2
    python -m repro efficiency --nodes 207 --lookups 80
    python -m repro timing
    python -m repro ablation

Each subcommand builds the corresponding harness from
:mod:`repro.experiments`, runs it, and prints the regenerated rows/series in
the same form the benchmarks use.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.ablation import AblationConfig, AnonymityAblation
from .experiments.anonymity import AnonymityExperiment, AnonymityExperimentConfig
from .experiments.efficiency import EfficiencyExperiment, EfficiencyExperimentConfig
from .experiments.results import format_table
from .experiments.security import SecurityExperiment, SecurityExperimentConfig
from .experiments.timing import TimingExperiment, TimingExperimentConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Octopus (ICDCS 2012) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    security = sub.add_parser("security", help="attacker-identification simulation (Figures 3/4/9, Table 2)")
    security.add_argument("--attack", default="lookup-bias",
                          choices=["lookup-bias", "fingertable-manipulation", "fingertable-pollution", "selective-dos", "none"])
    security.add_argument("--nodes", type=int, default=150)
    security.add_argument("--duration", type=float, default=400.0)
    security.add_argument("--attack-rate", type=float, default=1.0)
    security.add_argument("--churn-minutes", type=float, default=60.0)
    security.add_argument("--seed", type=int, default=0)

    anonymity = sub.add_parser("anonymity", help="H(I)/H(T) estimation (Figures 5/6)")
    anonymity.add_argument("--nodes", type=int, default=8000)
    anonymity.add_argument("--malicious", type=float, default=0.2)
    anonymity.add_argument("--alpha", type=float, default=0.01)
    anonymity.add_argument("--dummies", type=int, default=6)
    anonymity.add_argument("--worlds", type=int, default=200)
    anonymity.add_argument("--seed", type=int, default=0)

    efficiency = sub.add_parser("efficiency", help="latency/bandwidth comparison (Table 3, Figure 7(a))")
    efficiency.add_argument("--nodes", type=int, default=207)
    efficiency.add_argument("--lookups", type=int, default=80)
    efficiency.add_argument("--seed", type=int, default=0)

    timing = sub.add_parser("timing", help="timing-analysis error rate (Table 1)")
    timing.add_argument("--flows", type=int, default=1200)

    ablation = sub.add_parser("ablation", help="multi-path / dummy-query ablation (Section 4.2)")
    ablation.add_argument("--nodes", type=int, default=8000)
    ablation.add_argument("--malicious", type=float, default=0.2)
    ablation.add_argument("--worlds", type=int, default=150)
    return parser


def _run_security(args) -> int:
    config = SecurityExperimentConfig(
        n_nodes=args.nodes,
        duration=args.duration,
        attack=args.attack,
        attack_rate=args.attack_rate,
        churn_lifetime_minutes=args.churn_minutes,
        seed=args.seed,
        sample_interval=max(args.duration / 8.0, 1.0),
    )
    result = SecurityExperiment(config).run()
    print(f"attack={args.attack} nodes={args.nodes} duration={args.duration:.0f}s")
    rows = [
        {"time_s": t, "malicious_fraction": round(v, 4)} for t, v in result.malicious_fraction_series
    ]
    print(format_table(["time_s", "malicious_fraction"], [[r["time_s"], r["malicious_fraction"]] for r in rows]))
    print(
        f"identified malicious={result.identified_malicious} honest={result.identified_honest} "
        f"FP={result.false_positive_rate:.4f} FN={result.false_negative_rate:.4f} "
        f"FA={result.false_alarm_rate:.4f} lookups={result.total_lookups} biased={result.total_biased_lookups}"
    )
    return 0


def _run_anonymity(args) -> int:
    config = AnonymityExperimentConfig(
        n_nodes=args.nodes,
        fractions_malicious=(args.malicious,),
        dummy_counts=(args.dummies,),
        concurrent_lookup_rates=(args.alpha,),
        n_worlds=args.worlds,
        seed=args.seed,
    )
    experiment = AnonymityExperiment(config)
    octopus = experiment.run_octopus()
    comparison = experiment.run_comparison(alpha=args.alpha)
    rows = []
    for p in octopus + comparison:
        rows.append([p.scheme, p.fraction_malicious, round(p.initiator_entropy, 2), round(p.initiator_leak, 2),
                     round(p.target_entropy, 2), round(p.target_leak, 2)])
    print(format_table(["scheme", "f", "H(I)", "leak(I)", "H(T)", "leak(T)"], rows))
    return 0


def _run_efficiency(args) -> int:
    from .core.config import OctopusConfig

    config = EfficiencyExperimentConfig(
        n_nodes=args.nodes,
        lookups_per_scheme=args.lookups,
        seed=args.seed,
        octopus=OctopusConfig(expected_network_size=args.nodes),
    )
    result = EfficiencyExperiment(config).run()
    rows = result.table3_rows()
    headers = list(rows[0].keys())
    print(format_table(headers, [[row[h] for h in headers] for row in rows], title="Table 3"))
    return 0


def _run_timing(args) -> int:
    config = TimingExperimentConfig(max_candidate_flows=args.flows)
    result = TimingExperiment(config).run()
    rows = result.table1_rows()
    headers = list(rows[0].keys())
    print(format_table(headers, [[row.get(h, "") for h in headers] for row in rows], title="Table 1"))
    print(f"max residual information leak: {result.max_information_leak():.3f} bit")
    return 0


def _run_ablation(args) -> int:
    config = AblationConfig(n_nodes=args.nodes, fraction_malicious=args.malicious, n_worlds=args.worlds)
    result = AnonymityAblation(config).run()
    rows = [[p.variant, p.relay_pairs, p.dummy_queries, round(p.target_entropy, 2), round(p.target_leak, 2)]
            for p in result.points]
    print(format_table(["variant", "relay_pairs", "dummies", "H(T)", "leak(T)"], rows, title="Section 4.2 ablation"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "security": _run_security,
        "anonymity": _run_anonymity,
        "efficiency": _run_efficiency,
        "timing": _run_timing,
        "ablation": _run_ablation,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
