"""The ``repro lint`` rule catalog.

Every check the linter can emit is declared here, once, as a :class:`Rule`
with a stable id, a one-line summary and its escape hatches (whitelist and
suppression policy).  ``repro lint --rules`` prints this table verbatim, so a
developer staring at a finding can discover what it means — and how to
legitimately silence it — without reading the analyzer source.

Id families
-----------

* ``D1xx`` — banned nondeterminism *sources* (global RNGs, wall clock, OS
  entropy, per-process hashing) in record-producing code;
* ``D2xx`` — unordered-iteration hazards (sets, unsorted directory
  listings) that can silently reorder records or summaries;
* ``D3xx`` — RNG stream / hook-bus discipline (literal ``spawn`` names,
  frozen hook events, no engine-rng reuse in controllers);
* ``L1xx`` — layering: the import DAG from ``docs/architecture.md``,
  declared as one table in :mod:`repro.lint.layers`;
* ``S1xx`` — suppression hygiene (every ``ignore[...]`` needs a reason and
  must actually suppress something);
* ``E1xx`` — the linter could not analyze a file at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: categories a rule can belong to (stable strings, used in ``--json``).
CATEGORY_DETERMINISM = "determinism"
CATEGORY_LAYERING = "layering"
CATEGORY_META = "meta"


@dataclass(frozen=True)
class Rule:
    """One lintable condition: stable id, human summary, escape hatches."""

    id: str
    name: str
    summary: str
    category: str
    #: how the rule can be turned off for legitimate code, beyond a per-line
    #: ``# repro-lint: ignore[ID] — reason`` comment ('' = suppression only).
    whitelist: str = ""


_REGISTRY: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown lint rule {rule_id!r}") from None


def is_known_rule(rule_id: str) -> bool:
    return rule_id in _REGISTRY


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


# --------------------------------------------------------------- determinism
D101 = register(Rule(
    "D101", "global-random",
    "draw from the global `random` module (module-level functions, unseeded "
    "random.Random(), or random.seed) — use a named RandomSource stream",
    CATEGORY_DETERMINISM,
))
D102 = register(Rule(
    "D102", "numpy-global-random",
    "draw from numpy's global generator (numpy.random.*, or "
    "default_rng() without a seed) — pass an explicit seed",
    CATEGORY_DETERMINISM,
))
D103 = register(Rule(
    "D103", "wall-clock",
    "wall-clock read (time.time/monotonic/perf_counter/..., datetime.now) "
    "in simulation or record-producing code — use the engine's virtual clock",
    CATEGORY_DETERMINISM,
    whitelist="config.WALL_CLOCK_MODULES (telemetry/status/timing-capture modules)",
))
D104 = register(Rule(
    "D104", "os-entropy",
    "OS entropy source (os.urandom, secrets.*, random.SystemRandom) — "
    "derive bytes from the experiment seed instead",
    CATEGORY_DETERMINISM,
))
D105 = register(Rule(
    "D105", "uuid",
    "non-deterministic uuid (uuid1/uuid4) — derive ids from trial "
    "parameters (see campaign.spec.trial_id) instead",
    CATEGORY_DETERMINISM,
))
D106 = register(Rule(
    "D106", "builtin-hash",
    "builtin hash() — str/bytes hashing is salted per process "
    "(PYTHONHASHSEED); use hashlib or the id-space hash helpers",
    CATEGORY_DETERMINISM,
))
D201 = register(Rule(
    "D201", "set-iteration",
    "iterating a set/frozenset — iteration order is unspecified; sort it, "
    "or feed it only to order-insensitive consumers (sorted/min/max/sum/...)",
    CATEGORY_DETERMINISM,
))
D202 = register(Rule(
    "D202", "unsorted-listing",
    "unsorted directory listing (Path.glob/rglob/iterdir, os.listdir/"
    "scandir) — filesystem order is arbitrary; wrap in sorted() or build a "
    "membership set",
    CATEGORY_DETERMINISM,
))
D301 = register(Rule(
    "D301", "spawn-literal",
    "rng.spawn() stream name must be a string literal so every stream is "
    "greppable and runs reproduce from (config, seed) alone",
    CATEGORY_DETERMINISM,
))
D302 = register(Rule(
    "D302", "unfrozen-hook-event",
    "hook-bus event dataclasses must be @dataclass(frozen=True): "
    "subscribers may never mutate a published event",
    CATEGORY_DETERMINISM,
    whitelist="applies only to config.FROZEN_DATACLASS_MODULES",
))
D303 = register(Rule(
    "D303", "controller-engine-rng",
    "controller draws from the network/engine RNG — controllers must use "
    "only their dedicated ctx.rng (spawned 'control' source)",
    CATEGORY_DETERMINISM,
    whitelist="applies only to config.CONTROLLER_MODULES",
))

# ------------------------------------------------------------------ layering
L100 = register(Rule(
    "L100", "unmapped-layer",
    "module is not covered by the layer map — add its package to "
    "lint.layers.LAYERS (and the table in docs/architecture.md)",
    CATEGORY_LAYERING,
))
L101 = register(Rule(
    "L101", "layer-violation",
    "import crosses the layer DAG upward (e.g. repro.sim importing "
    "repro.campaign) — see the layer table in docs/architecture.md",
    CATEGORY_LAYERING,
))

# ---------------------------------------------------------------------- meta
S101 = register(Rule(
    "S101", "bare-suppression",
    "suppression comment has no reason — write "
    "`# repro-lint: ignore[ID] — why this is legitimate`",
    CATEGORY_META,
))
S102 = register(Rule(
    "S102", "unused-suppression",
    "suppression comment matches no finding on its line — delete it (or "
    "fix the rule id)",
    CATEGORY_META,
))
E101 = register(Rule(
    "E101", "unparseable",
    "file could not be parsed as Python — nothing on it was checked",
    CATEGORY_META,
))
