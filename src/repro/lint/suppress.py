"""Per-line suppression comments: ``# repro-lint: ignore[D201] — reason``.

A suppression silences matching findings *on its own physical line* (the
line the analyzer reports, which for multi-line statements is the line of
the offending sub-expression).  Policy, enforced by the meta rules:

* every suppression must carry a trailing reason (rule S101) — the comment
  is the audit trail for why the hazard is not one here;
* a suppression that matches no finding is itself a finding (rule S102), so
  stale escapes can't accumulate as the code underneath them changes.

Multiple ids may share one comment: ``ignore[D201,D202]``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

#: Also used by the file-module directive scan in engine.py.
MODULE_DIRECTIVE_RE = re.compile(r"#\s*repro-lint-module:\s*([\w.]+)")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[\s*([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)\s*\]\s*(.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``ignore[...]`` comment."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids


def _iter_comments(source: str) -> Iterable[Tuple[int, str]]:
    """``(line, text)`` of every comment, tokenizer-accurate when possible.

    The tokenizer path means a suppression *example quoted inside a string*
    (docstrings do this) is never mistaken for a live suppression.  When the
    file doesn't even tokenize we fall back to a raw line scan so that the
    E101 finding for an unparseable file stays suppressible.
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            comment_at = text.find("#")
            if comment_at != -1:
                yield lineno, text[comment_at:]
        return
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            yield tok.start[0], tok.string


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """All suppression comments in ``source``, keyed by 1-based line number."""
    suppressions: Dict[int, Suppression] = {}
    for lineno, text in _iter_comments(source):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = tuple(part.strip() for part in match.group(1).split(","))
        # The reason is whatever trails the bracket, minus decorative
        # separators ("—", "--", ":") people naturally put first.
        reason = match.group(2).strip().lstrip("—-–: ").strip()
        suppressions[lineno] = Suppression(line=lineno, rule_ids=ids, reason=reason)
    return suppressions
