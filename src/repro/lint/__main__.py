"""``python -m repro.lint`` entry point."""

import sys

from .cli import main

sys.exit(main())
