"""Import-DAG enforcement (rules L100/L101).

The repository's layering is declared once, here, as :data:`LAYERS` — the
same table rendered in ``docs/architecture.md``.  Each top-level package
under ``repro`` is a layer; the table maps a layer to the set of layers it
may import from (every layer may always import itself).  The checker
resolves both absolute (``from repro.sim import ...``) and relative
(``from ..sim.rng import ...``) imports against the importing module's
dotted name, so a relative spelling can't dodge the rule.  Function-local
imports are checked too: a lazy import is still a dependency edge, it just
needs a suppression with a reason explaining the cycle it breaks.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .determinism import RawFinding

#: The import DAG, bottom-up.  Key: layer (top-level package under
#: ``repro``).  Value: layers it may import from, besides itself.
LAYERS: Dict[str, FrozenSet[str]] = {
    "sim": frozenset(),
    "crypto": frozenset({"sim"}),
    "chord": frozenset({"sim", "crypto"}),
    "core": frozenset({"sim", "crypto", "chord"}),
    "attacks": frozenset({"sim", "crypto", "chord"}),
    "anonymity": frozenset({"sim", "crypto", "chord"}),
    "baselines": frozenset({"sim", "crypto", "chord"}),
    "experiments": frozenset({
        "sim", "crypto", "chord", "core", "attacks", "anonymity", "baselines",
    }),
    "scenarios": frozenset({
        "sim", "crypto", "chord", "core", "attacks", "anonymity", "baselines",
        "experiments",
    }),
    "campaign": frozenset({
        "sim", "crypto", "chord", "core", "attacks", "anonymity", "baselines",
        "experiments", "scenarios",
    }),
    # The linter is self-contained: it may not import the code it checks.
    "lint": frozenset(),
    # The application shell (repro.cli, repro.__main__, the root package
    # __init__) wires everything together and may import any layer.
    "app": frozenset({
        "sim", "crypto", "chord", "core", "attacks", "anonymity", "baselines",
        "experiments", "scenarios", "campaign", "lint",
    }),
}

#: Full module names that belong to the ``app`` layer rather than to the
#: layer their path component would suggest.
APP_MODULES: FrozenSet[str] = frozenset({"repro", "repro.cli", "repro.__main__"})


def layer_of(module: str) -> Optional[str]:
    """The layer a dotted ``repro...`` module belongs to, or None."""
    if module in APP_MODULES:
        return "app"
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != "repro":
        return None
    return parts[1] if parts[1] in LAYERS else None


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: Optional[str]) -> Optional[str]:
    """Absolute dotted name of a ``from ...X import Y`` target, or None."""
    base = module.split(".")
    if not is_package:
        base = base[:-1]
    drop = level - 1
    if drop > len(base):
        return None
    if drop:
        base = base[:-drop]
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


def iter_import_targets(tree: ast.AST, module: str,
                        is_package: bool) -> Iterable[Tuple[str, int, int]]:
    """Every imported module as ``(absolute_name, line, col)``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno, node.col_offset
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                resolved = _resolve_relative(module, is_package, node.level, node.module)
                if resolved:
                    yield resolved, node.lineno, node.col_offset
            elif node.module:
                yield node.module, node.lineno, node.col_offset


def check_layers(tree: ast.AST, module: str, is_package: bool) -> List[RawFinding]:
    """L100/L101 findings for one parsed module."""
    findings: List[RawFinding] = []
    importer_layer = layer_of(module)
    if importer_layer is None:
        if module == "repro" or module.startswith("repro."):
            findings.append(RawFinding(
                "L100", 1, 0,
                f"module {module} is not covered by the layer map "
                "(lint.layers.LAYERS)",
            ))
        return findings
    allowed = LAYERS[importer_layer]
    for target, line, col in iter_import_targets(tree, module, is_package):
        if not (target == "repro" or target.startswith("repro.")):
            continue
        target_layer = layer_of(target)
        if target_layer is None or target_layer == importer_layer:
            continue
        if target_layer not in allowed:
            findings.append(RawFinding(
                "L101", line, col,
                f"{importer_layer} layer imports {target} ({target_layer} "
                f"layer) — allowed: {', '.join(sorted(allowed)) or 'nothing'}",
            ))
    return findings
