"""Lint configuration: whitelists and rule scoping, declared in one place.

The analyzer itself is policy-free; everything repository-specific — which
modules may read the wall clock, which modules must keep their dataclasses
frozen, which rules are enabled — lives here so a reviewer can audit the
escape hatches at a glance.  ``repro lint --rules`` renders the whitelist
column from this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

#: Modules allowed to read the wall clock (rule D103).  These are exactly the
#: modules whose *job* is wall-clock observation and whose output lives
#: outside the determinism-compared view (``aggregate.strip_timing`` drops
#: every ``timing`` block):
#:
#: * ``repro.campaign.backends.base`` — per-trial ``timing.elapsed_s`` capture;
#: * ``repro.campaign.backends.queue`` — claim-TTL deadlines and poll pacing;
#: * ``repro.campaign.persistence``   — claim timestamps and skew-proof expiry;
#: * ``repro.campaign.telemetry``     — worker heartbeats (epoch-stamped);
#: * ``repro.campaign.status``        — read-only staleness/ETA view;
#: * ``repro.sim.profiling``          — opt-in phase timers (``timing.profile``);
#: * ``repro.cli``                    — progress-line throughput.
#:
#: Everything else — the simulator, the protocols, the harnesses — must use
#: the engine's virtual clock; a wall-clock read there can leak into records.
WALL_CLOCK_MODULES: FrozenSet[str] = frozenset({
    "repro.campaign.backends.base",
    "repro.campaign.backends.queue",
    "repro.campaign.persistence",
    "repro.campaign.telemetry",
    "repro.campaign.status",
    "repro.sim.profiling",
    "repro.cli",
})

#: Modules whose ``@dataclass`` definitions must be ``frozen=True`` (rule
#: D302): hook-bus events are shared by every subscriber in registration
#: order, so a mutating subscriber would change what later subscribers see.
FROZEN_DATACLASS_MODULES: FrozenSet[str] = frozenset({
    "repro.sim.hooks",
})

#: Modules holding mid-run controllers (rule D303): controllers must draw
#: only from their dedicated ``ctx.rng`` (the experiment's ``spawn("control")``
#: source) — touching ``*.network.rng`` / ``*.engine.rng`` would perturb the
#: simulation's own streams and break static-vs-adaptive comparability.
CONTROLLER_MODULES: FrozenSet[str] = frozenset({
    "repro.scenarios.controllers",
})


@dataclass(frozen=True)
class LintConfig:
    """Effective configuration for one lint run."""

    wall_clock_modules: FrozenSet[str] = WALL_CLOCK_MODULES
    frozen_dataclass_modules: FrozenSet[str] = FROZEN_DATACLASS_MODULES
    controller_modules: FrozenSet[str] = CONTROLLER_MODULES
    #: rule ids disabled wholesale ('' default: everything runs).
    disabled_rules: FrozenSet[str] = field(default_factory=frozenset)

    def rule_enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disabled_rules

    def whitelisted(self, rule_id: str, module: str) -> bool:
        """Whether ``module`` is whitelisted for ``rule_id``.

        Scoped rules (D302/D303) invert the logic: they only *apply* inside
        their module set, so every other module is trivially whitelisted.
        """
        if rule_id == "D103":
            return module in self.wall_clock_modules
        if rule_id == "D302":
            return module not in self.frozen_dataclass_modules
        if rule_id == "D303":
            return module not in self.controller_modules
        return False


DEFAULT_CONFIG = LintConfig()
