"""Command line for the determinism & layering linter.

Invoked either standalone (``python -m repro.lint [paths...]``) or through
the main CLI (``repro lint [paths...]``); both routes share :func:`main`.
Exit status: 0 clean, 1 findings, 2 usage error (argparse's convention).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import run_lint
from .report import render_json, render_rules, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based determinism & layering checks over the repro tree "
            "(run with --rules for the rule catalog)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package "
        "this linter was imported from)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report (stable schema, version 1)",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="print the rule catalog (id, summary, escape hatches) and exit",
    )
    return parser


def default_paths() -> List[Path]:
    """The installed ``repro`` package itself — lint what we run."""
    return [Path(__file__).resolve().parents[1]]


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.rules:
            print(render_rules())
            return 0
        paths = args.paths or default_paths()
        missing = [p for p in paths if not p.exists()]
        if missing:
            for path in missing:
                print(f"error: no such path: {path}", file=sys.stderr)
            return 2
        result = run_lint(paths, root=Path.cwd())
        print(render_json(result) if args.json else render_text(result))
        return 0 if result.ok else 1
    except BrokenPipeError:
        # reader closed the pipe (e.g. `repro lint --rules | head`); swallow
        # the late flush too so the interpreter doesn't print a traceback
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
