"""AST checks for the determinism rule families (D1xx/D2xx/D3xx).

One pass over a module's tree.  The checker resolves dotted call targets
through the module's *imports* (``import numpy as np`` makes
``np.random.rand`` resolve to ``numpy.random.rand``; ``from time import
time`` makes a bare ``time()`` resolve to ``time.time``), so aliasing can't
hide a banned source.  Resolution is import-based, not type-inferred — a
method named ``.glob`` on a non-Path object would still trigger D202 — which
is the right bias for this repo: false positives are one suppression comment
away, false negatives rot the byte-identity contract silently.

Scope notes:

* D103 findings are emitted everywhere and *filtered* against the wall-clock
  whitelist (``config.WALL_CLOCK_MODULES``) by the engine, so the whitelist
  stays auditable in one place;
* D302/D303 are emitted everywhere and scoped to their module sets the same
  way (outside those modules the hazard does not exist).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional

#: module-level functions of ``random`` that draw from (or reseed) the
#: process-global generator.
RANDOM_DRAW_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "triangular",
    "choice", "choices", "sample", "shuffle",
    "gauss", "normalvariate", "lognormvariate", "expovariate",
    "betavariate", "gammavariate", "paretovariate", "vonmisesvariate",
    "weibullvariate", "binomialvariate",
    "getrandbits", "randbytes",
    "seed", "getstate", "setstate",
})

#: numpy.random constructors that are fine *when given a seed argument*.
NUMPY_SEEDED_CTORS = frozenset({"default_rng", "RandomState", "SeedSequence", "Generator"})

#: wall-clock reads (rule D103), fully resolved.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: directory-listing methods whose result order is filesystem-dependent.
LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})
LISTING_CALLS = frozenset({"os.listdir", "os.scandir"})

#: builtins whose result does not depend on their argument's iteration order.
ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "len", "min", "max", "sum", "any", "all",
})


@dataclass(frozen=True)
class RawFinding:
    """A rule hit before whitelist/suppression filtering (engine's job)."""

    rule: str
    line: int
    col: int
    message: str


class _ImportMap:
    """Name-resolution tables built from every import in the file.

    Scoping is deliberately flat (a function-local ``import numpy as np``
    aliases ``np`` for the whole file): imports are near-universally
    module-unique names, and the flat map keeps resolution O(1) without a
    scope stack.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.modules: Dict[str, str] = {}      # alias -> dotted module
        self.from_names: Dict[str, str] = {}   # name  -> dotted module.attr
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.from_names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def shadows(self, name: str) -> bool:
        return name in self.modules or name in self.from_names

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of an expression rooted at an imported name, else None."""
        if isinstance(node, ast.Name):
            return self.from_names.get(node.id) or self.modules.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            return f"{base}.{node.attr}" if base else None
        return None


def _build_parents(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _is_set_expr(node: ast.AST, imports: _ImportMap) -> bool:
    """Whether ``node`` evaluates to a set with statically-known certainty."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset") and not imports.shadows(node.func.id)
    return False


class DeterminismChecker:
    """Single-pass determinism analysis of one parsed module."""

    def __init__(self, tree: ast.AST, imports: Optional[_ImportMap] = None) -> None:
        self.tree = tree
        self.imports = imports or _ImportMap(tree)
        self.parents = _build_parents(tree)
        self.findings: List[RawFinding] = []

    # ------------------------------------------------------------- helpers
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            RawFinding(rule, getattr(node, "lineno", 0), getattr(node, "col_offset", 0), message)
        )

    def _consumer_call_name(self, node: ast.AST) -> Optional[str]:
        """If ``node`` is an argument of a simple-name call, that name."""
        parent = self.parents.get(node)
        if (
            isinstance(parent, ast.Call)
            and node in parent.args
            and isinstance(parent.func, ast.Name)
            and not self.imports.shadows(parent.func.id)
        ):
            return parent.func.id
        return None

    def _order_insensitive_context(self, node: ast.AST) -> bool:
        """Whether ``node``'s value is consumed order-insensitively:

        * directly an argument to sorted()/set()/len()/min()/... ;
        * the iterable of a set-comprehension generator (membership build);
        * the iterable of a list/dict/generator comprehension that is itself
          an argument to one of those consumers (``sorted(x for x in ...)``).
        """
        if self._consumer_call_name(node) in ORDER_INSENSITIVE_CONSUMERS:
            return True
        parent = self.parents.get(node)
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            owner = self.parents.get(parent)
            if isinstance(owner, ast.SetComp):
                return True
            if isinstance(owner, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                return self._consumer_call_name(owner) in ORDER_INSENSITIVE_CONSUMERS
        return False

    # ---------------------------------------------------------------- walk
    def run(self) -> List[RawFinding]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, ast.For):
                self._check_for(node)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                self._check_comprehension(node)
            elif isinstance(node, ast.ClassDef):
                self._check_classdef(node)
            elif isinstance(node, ast.Attribute):
                self._check_attribute(node)
        return self.findings

    # ------------------------------------------------------- D1xx: sources
    def _check_call(self, node: ast.Call) -> None:
        path = self.imports.resolve(node.func)
        if path is not None:
            self._check_resolved_call(node, path)
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and not self.imports.shadows("hash")
        ):
            self._flag("D106", node, "builtin hash() is salted per process for str/bytes")
        self._check_listing_call(node, path)
        self._check_spawn_call(node)

    def _check_resolved_call(self, node: ast.Call, path: str) -> None:
        if path.startswith("random."):
            tail = path[len("random."):]
            if tail in RANDOM_DRAW_FNS:
                self._flag("D101", node, f"global random draw random.{tail}()")
            elif tail == "Random" and not node.args and not node.keywords:
                self._flag("D101", node, "unseeded random.Random() — pass an explicit seed")
            elif tail == "SystemRandom":
                self._flag("D104", node, "random.SystemRandom draws OS entropy")
        elif path.startswith("numpy.random."):
            tail = path[len("numpy.random."):]
            if tail in NUMPY_SEEDED_CTORS:
                if not node.args and not node.keywords:
                    self._flag("D102", node, f"unseeded numpy.random.{tail}()")
            elif "." not in tail:
                self._flag("D102", node, f"numpy global-generator draw numpy.random.{tail}()")
        elif path in WALL_CLOCK_CALLS:
            self._flag("D103", node, f"wall-clock read {path}()")
        elif path in ("os.urandom", "os.getrandom"):
            self._flag("D104", node, f"OS entropy source {path}()")
        elif path.startswith("secrets."):
            self._flag("D104", node, f"OS entropy source {path}()")
        elif path in ("uuid.uuid1", "uuid.uuid4"):
            self._flag("D105", node, f"non-deterministic {path}()")

    # -------------------------------------------------- D2xx: ordered iter
    def _check_for(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self.imports):
            self._flag(
                "D201",
                node.iter,
                "for-loop over a set — iteration order is unspecified; sort it",
            )

    def _check_comprehension(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            if not _is_set_expr(gen.iter, self.imports):
                continue
            # Building a *set* from a set is pure membership (order-free);
            # anything order-preserving must flow into an order-insensitive
            # consumer to pass.
            if isinstance(node, ast.SetComp):
                continue
            if self._consumer_call_name(node) in ORDER_INSENSITIVE_CONSUMERS:
                continue
            self._flag(
                "D201",
                gen.iter,
                "comprehension over a set — iteration order is unspecified; sort it",
            )

    def _check_listing_call(self, node: ast.Call, path: Optional[str]) -> None:
        is_listing = (
            isinstance(node.func, ast.Attribute) and node.func.attr in LISTING_METHODS
        ) or (path in LISTING_CALLS)
        if not is_listing:
            return
        if self._order_insensitive_context(node):
            return
        name = path or node.func.attr  # type: ignore[union-attr]
        self._flag(
            "D202",
            node,
            f"unsorted directory listing {name}() — wrap in sorted() or build a set",
        )

    # ----------------------------------------------------- D3xx: discipline
    def _check_spawn_call(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Attribute) and node.func.attr == "spawn"):
            return
        if not node.args:
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return
        self._flag(
            "D301",
            node,
            "rng.spawn() stream name must be a string literal",
        )

    def _check_classdef(self, node: ast.ClassDef) -> None:
        for deco in node.decorator_list:
            frozen = self._dataclass_frozen(deco)
            if frozen is None:
                continue
            if not frozen:
                self._flag(
                    "D302",
                    node,
                    f"hook-event dataclass {node.name!r} must be @dataclass(frozen=True)",
                )

    @staticmethod
    def _dataclass_frozen(deco: ast.AST) -> Optional[bool]:
        """None if ``deco`` is not a dataclass decorator, else its frozen-ness."""
        if isinstance(deco, ast.Name) and deco.id == "dataclass":
            return False
        if isinstance(deco, ast.Call):
            func = deco.func
            is_dc = (isinstance(func, ast.Name) and func.id == "dataclass") or (
                isinstance(func, ast.Attribute) and func.attr == "dataclass"
            )
            if is_dc:
                for kw in deco.keywords:
                    if kw.arg == "frozen":
                        return isinstance(kw.value, ast.Constant) and kw.value.value is True
                return False
        if isinstance(deco, ast.Attribute) and deco.attr == "dataclass":
            return False
        return None

    def _check_attribute(self, node: ast.Attribute) -> None:
        if node.attr != "rng":
            return
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr in ("network", "engine"):
            self._flag(
                "D303",
                node,
                f"controller reaching into .{value.attr}.rng — draw from ctx.rng only",
            )


def check_determinism(tree: ast.AST) -> List[RawFinding]:
    """All raw determinism findings for one parsed module."""
    return DeterminismChecker(tree).run()
