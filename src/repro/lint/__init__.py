"""Static analysis for the repro tree: determinism & layering rules.

The byte-identity contract (identical trial records across backends and
kernels under ``strip_timing``) is enforced dynamically by the differential
and golden tests; this package enforces it *statically*, at diff time — a
stray ``time.time()``, an unsorted ``glob`` or a global-``random`` draw is
flagged before it can rot a golden digest.  See ``docs/architecture.md``
("Static analysis") for the rule catalog and suppression policy, or run
``repro lint --rules``.
"""

from .config import DEFAULT_CONFIG, LintConfig
from .engine import Finding, LintResult, lint_file, lint_source, run_lint
from .layers import LAYERS, layer_of
from .report import render_json, render_rules, render_text, to_json_dict
from .rules import Rule, all_rules, get_rule, is_known_rule

__all__ = [
    "DEFAULT_CONFIG",
    "LintConfig",
    "Finding",
    "LintResult",
    "lint_file",
    "lint_source",
    "run_lint",
    "LAYERS",
    "layer_of",
    "Rule",
    "all_rules",
    "get_rule",
    "is_known_rule",
    "render_json",
    "render_rules",
    "render_text",
    "to_json_dict",
]
