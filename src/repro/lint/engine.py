"""Lint engine: runs every check over files, applies whitelists and
suppressions, and emits the final finding list.

Pipeline per file::

    source ──parse──▶ tree ──determinism+layers──▶ raw findings
                                │
       whitelist filter (config.whitelisted)      ─ drops findings in
                                │                   whitelisted modules
       suppression match (same physical line)     ─ drops suppressed ones,
                                │                   tracks which comments fired
       meta rules: S101 (reasonless suppression),
                   S102 (suppression that fired on nothing)

Module names are inferred from the path (the part from the ``repro``
package root down); a leading ``# repro-lint-module: <name>`` directive
overrides the inference so fixture files can claim synthetic module names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from .config import DEFAULT_CONFIG, LintConfig
from .determinism import RawFinding, check_determinism
from .layers import check_layers
from .rules import is_known_rule
from .suppress import MODULE_DIRECTIVE_RE, parse_suppressions


@dataclass(frozen=True)
class Finding:
    """One reportable lint finding, fully attributed."""

    rule: str
    path: str
    module: str
    line: int
    col: int
    message: str

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)


def infer_module(path: Path) -> str:
    """Dotted module name from a filesystem path.

    Finds the last ``repro`` component and joins from there; falls back to
    the bare stem for paths outside any ``repro`` tree (fixtures override
    via the in-file directive anyway).
    """
    parts = list(path.parts)
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        rel = parts[idx:]
    else:
        rel = [path.name]
    if rel[-1].endswith(".py"):
        rel[-1] = rel[-1][:-3]
    if rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel) if rel else path.stem


def _directive_module(source: str) -> Optional[str]:
    """Value of a ``# repro-lint-module:`` directive in the file head."""
    for text in source.splitlines()[:10]:
        match = MODULE_DIRECTIVE_RE.search(text)
        if match:
            return match.group(1)
    return None


def lint_source(
    source: str,
    *,
    module: str,
    path: str = "<string>",
    is_package: bool = False,
    config: LintConfig = DEFAULT_CONFIG,
) -> List[Finding]:
    """Lint one module's source text. The core entry point; everything the
    CLI does reduces to calls of this."""
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    fired_lines = set()

    def emit(raw: RawFinding) -> None:
        if not config.rule_enabled(raw.rule):
            return
        if config.whitelisted(raw.rule, module):
            return
        suppression = suppressions.get(raw.line)
        if suppression is not None and suppression.covers(raw.rule):
            fired_lines.add(raw.line)
            return
        findings.append(Finding(raw.rule, path, module, raw.line, raw.col, raw.message))

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        emit(RawFinding("E101", exc.lineno or 1, 0, f"unparseable: {exc.msg}"))
        tree = None

    if tree is not None:
        for raw in check_determinism(tree):
            emit(raw)
        for raw in check_layers(tree, module, is_package):
            emit(raw)

    # Meta rules over the suppression comments themselves.
    for lineno in sorted(suppressions):
        suppression = suppressions[lineno]
        unknown = [rid for rid in suppression.rule_ids if not is_known_rule(rid)]
        if unknown:
            emit(RawFinding(
                "S102", lineno, 0,
                f"suppression names unknown rule id(s): {', '.join(unknown)}",
            ))
            continue
        if not suppression.reason:
            emit(RawFinding(
                "S101", lineno, 0,
                "suppression has no trailing reason",
            ))
        if lineno not in fired_lines:
            emit(RawFinding(
                "S102", lineno, 0,
                f"suppression for {','.join(suppression.rule_ids)} matched no "
                "finding on this line",
            ))

    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(path: Path, *, config: LintConfig = DEFAULT_CONFIG,
              root: Optional[Path] = None) -> List[Finding]:
    """Lint one file on disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        display = _display_path(path, root)
        return [Finding("E101", display, infer_module(path), 1, 0,
                        f"unreadable: {exc}")]
    module = _directive_module(source) or infer_module(path)
    return lint_source(
        source,
        module=module,
        path=_display_path(path, root),
        is_package=path.name == "__init__.py",
        config=config,
    )


def _display_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return str(path.relative_to(root))
        except ValueError:
            pass
    return str(path)


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for entry in paths:
        if entry.is_dir():
            found.extend(sorted(entry.rglob("*.py")))
        else:
            found.append(entry)
    # De-duplicate while keeping deterministic order.
    seen = set()
    unique: List[Path] = []
    for path in found:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def run_lint(paths: Sequence[Path], *, config: LintConfig = DEFAULT_CONFIG,
             root: Optional[Path] = None) -> "LintResult":
    """Lint every ``.py`` file under ``paths``."""
    files = discover_files(list(paths))
    findings: List[Finding] = []
    for path in files:
        findings.extend(lint_file(path, config=config, root=root))
    findings.sort(key=Finding.sort_key)
    return LintResult(files_checked=len(files), findings=findings)


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    files_checked: int
    findings: List[Finding]

    @property
    def ok(self) -> bool:
        return not self.findings
