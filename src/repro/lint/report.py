"""Rendering of lint results: human text, ``--json``, and ``--rules``."""

from __future__ import annotations

import json
from typing import Dict, List

from .engine import LintResult
from .rules import all_rules

#: bump when the ``--json`` schema changes shape.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report, one line per finding, grep-friendly."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} {finding.message}"
        )
    noun = "file" if result.files_checked == 1 else "files"
    if result.findings:
        count = len(result.findings)
        fnoun = "finding" if count == 1 else "findings"
        lines.append(f"{count} {fnoun} in {result.files_checked} {noun}")
    else:
        lines.append(f"clean: 0 findings in {result.files_checked} {noun}")
    return "\n".join(lines)


def to_json_dict(result: LintResult) -> Dict:
    """The ``--json`` payload (stable schema, see JSON_SCHEMA_VERSION)."""
    summary: Dict[str, int] = {}
    for finding in result.findings:
        summary[finding.rule] = summary.get(finding.rule, 0) + 1
    return {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "module": f.module,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in result.findings
        ],
        "summary": {rule: summary[rule] for rule in sorted(summary)},
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_json_dict(result), indent=2, sort_keys=True)


def render_rules() -> str:
    """The ``--rules`` catalog: id, name, category, whitelist, summary."""
    lines: List[str] = []
    for rule in all_rules():
        escape = rule.whitelist or "suppression comment only"
        lines.append(f"{rule.id}  {rule.name} [{rule.category}]")
        lines.append(f"      {rule.summary}")
        lines.append(f"      escape: {escape}")
    lines.append("")
    lines.append(
        "suppress per line with: # repro-lint: ignore[ID] — <reason> "
        "(reason required; unused suppressions are themselves findings)"
    )
    return "\n".join(lines)
