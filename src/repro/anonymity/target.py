"""Target anonymity H(T) — Monte-Carlo evaluation of Equations (8)–(21).

Appendix III structures the adversary's observations into three classes:

* ``o_n`` — the initiator is not observed: the adversary learns nothing
  (``H = log2 N``);
* ``O_l`` — at least one query of the lookup is linkable to ``I``: the
  adversary applies the range-estimation attack to the plausible non-dummy
  subsets of those queries (Equations (9)–(13));
* ``O_d`` — queries may be observed but none is linkable to ``I``: the
  adversary can at best group queries via the shared relay ``B`` (case 2) or
  fall back to isolated observations (case 3), diluting whatever range it can
  estimate over all concurrent lookups (Equations (14)–(21)).

The estimator evaluates each sampled world exactly in this structure.  The
contribution of *other* concurrent lookups (whose queries are unrelated to
the target) is modelled by sampling uniform positions, which is what their
query positions look like to the adversary; this keeps the estimator
tractable at paper scale while preserving every conditional branch of the
derivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

from ..sim.rng import RandomSource
from .entropy import entropy_of_counts, information_leak, max_entropy
from .observations import AnonymityConfig, LookupSampler, SimulatedLookup, SimulatedQuery
from .presimulation import PresimulatedDistributions, PresimulationBuilder
from .ring_model import LightweightRing


@dataclass
class TargetAnonymityResult:
    """Estimated target anonymity for one configuration."""

    n_nodes: int
    fraction_malicious: float
    concurrent_lookup_rate: float
    dummy_queries: int
    entropy_bits: float
    ideal_entropy_bits: float
    information_leak_bits: float
    n_worlds: int


class TargetAnonymityEstimator:
    """Monte-Carlo estimator of H(T) for Octopus."""

    #: cap on the number of linkable queries for exhaustive subset enumeration;
    #: beyond it, subsets are sampled.
    MAX_EXACT_SUBSET_QUERIES = 10
    #: number of subsets sampled when enumeration is infeasible.
    SUBSET_SAMPLES = 64

    def __init__(
        self,
        ring: LightweightRing,
        config: Optional[AnonymityConfig] = None,
        rng: Optional[RandomSource] = None,
        presim: Optional[PresimulatedDistributions] = None,
        presim_samples: int = 1500,
    ) -> None:
        self.ring = ring
        self.config = config or AnonymityConfig()
        self.rng = rng or RandomSource(ring.rng.master_seed + 13)
        self.sampler = LookupSampler(ring, self.config, rng=self.rng.spawn("sampler"))
        self.presim = presim or PresimulationBuilder(ring, rng=self.rng.spawn("presim")).build(
            n_samples=presim_samples
        )

    # ------------------------------------------------------------------ ranges
    def _estimation_range_size(self, positions_in_order: Sequence[int]) -> int:
        """Size (in nodes) of the range implied by a set of linkable queries.

        With two or more queries the greedy-routing constraint bounds the
        target within roughly the last inter-query gap past the clockwise-most
        query; with a single query the whole remaining ring is possible.
        """
        ring = self.ring
        if not positions_in_order:
            return ring.n_nodes - 1
        if len(positions_in_order) == 1:
            return ring.n_nodes - 1
        ordered = sorted(positions_in_order, key=lambda p: ring.hop_distance(positions_in_order[0], p))
        last, second_last = ordered[-1], ordered[-2]
        gap = ring.hop_distance(second_last, last)
        return max(1, min(gap, ring.n_nodes - 1))

    def _range_entropy(self, range_size: int) -> float:
        """Entropy of the target's position within one estimation range."""
        weights = self.presim.gamma_profile(min(range_size, 256))
        if range_size > 256:
            # Extend the tail uniformly: gamma flattens for far positions.
            tail_weight = weights[-1]
            return entropy_of_counts(weights + [tail_weight] * (range_size - 256))
        return entropy_of_counts(weights)

    def _mixture_entropy(self, range_sizes_and_weights: Sequence[Tuple[int, float]]) -> float:
        """Entropy of a weighted mixture of estimation ranges.

        Ranges from different candidate subsets / lookups overlap arbitrary
        parts of the ring, so we treat them as disjoint supports — the
        standard conservative mixture bound H = H(weights) + sum w_i H_i.
        """
        total_w = sum(w for _, w in range_sizes_and_weights)
        if total_w <= 0:
            return max_entropy(self.ring.n_nodes)
        acc = 0.0
        for size, w in range_sizes_and_weights:
            acc += (w / total_w) * self._range_entropy(size)
        acc += entropy_of_counts([w for _, w in range_sizes_and_weights])
        return min(acc, max_entropy(self.ring.n_nodes))

    # ------------------------------------------------------------- Hm (Eq 10)
    def _entropy_all_dummies(self, stream) -> float:
        """Equation (10): linkable queries are all dummies.

        With probability ``f`` the target is malicious and therefore among the
        observed malicious targets of concurrent lookups; otherwise it hides
        among all honest nodes.
        """
        ring = self.ring
        f = ring.fraction_malicious
        n_concurrent = self.sampler.expected_concurrent()
        mal_targets = 1 + sum(1 for _ in range(n_concurrent - 1) if stream.random() < f)
        honest_term = (1.0 - f) * max_entropy(int(ring.honest_count()))
        malicious_term = f * max_entropy(mal_targets)
        return honest_term + malicious_term

    # -------------------------------------------------------------- O_l branch
    def _candidate_subsets(self, linkable: List[SimulatedQuery], stream) -> List[List[SimulatedQuery]]:
        """Non-empty subsets of the linkable queries that pass the filtering test."""
        ring = self.ring
        queries = sorted(linkable, key=lambda q: q.order)

        def passes(subset: Sequence[SimulatedQuery]) -> bool:
            if len(subset) <= 1:
                return True
            # Rule 1 (Appendix III): clockwise progression in issue order.
            base = subset[0].queried_pos
            dists = [ring.hop_distance(base, q.queried_pos) for q in subset]
            return dists == sorted(dists)

        subsets: List[List[SimulatedQuery]] = []
        if len(queries) <= self.MAX_EXACT_SUBSET_QUERIES:
            for size in range(1, len(queries) + 1):
                for combo in combinations(queries, size):
                    if passes(combo):
                        subsets.append(list(combo))
        else:
            seen = set()
            for _ in range(self.SUBSET_SAMPLES):
                size = stream.randint(1, len(queries))
                combo = tuple(sorted(stream.sample(range(len(queries)), size)))
                if combo in seen:
                    continue
                seen.add(combo)
                subset = [queries[i] for i in combo]
                if passes(subset):
                    subsets.append(subset)
            if not subsets:
                subsets.append(queries)
        return subsets

    def _subset_weight(self, subset: Sequence[SimulatedQuery]) -> float:
        """chi-weight of one candidate subset (Equation (13))."""
        ring = self.ring
        positions = [q.queried_pos for q in sorted(subset, key=lambda q: q.order)]
        largest_hop = 0
        for a, b in zip(positions, positions[1:]):
            largest_hop = max(largest_hop, ring.hop_distance(a, b))
        return self.presim.chi(len(positions), largest_hop)

    def _entropy_linkable(self, lookup: SimulatedLookup, stream) -> float:
        """H(T | o_l): at least one query linkable to I (Equations (9)–(13))."""
        linkable = lookup.linkable_queries()
        nondummy = lookup.linkable_nondummy()
        p_all_dummy = 0.0 if nondummy else 1.0
        if p_all_dummy >= 1.0:
            return self._entropy_all_dummies(stream)

        subsets = self._candidate_subsets(linkable, stream)
        ranges = []
        for subset in subsets:
            positions = [q.queried_pos for q in sorted(subset, key=lambda q: q.order)]
            ranges.append((self._estimation_range_size(positions), self._subset_weight(subset)))
        return self._mixture_entropy(ranges)

    # -------------------------------------------------------------- O_d branch
    def _entropy_unlinkable(self, lookup: SimulatedLookup, stream) -> float:
        """H(T | o_d): observed queries exist but none is linkable to I."""
        ring = self.ring
        observed = lookup.observed_queries()
        if not observed:
            # Case 1: nothing observed at all.
            return self._entropy_all_dummies(stream)

        b_linkable = lookup.b_linkable_queries()
        n_concurrent = self.sampler.expected_concurrent()
        if b_linkable:
            # Case 2 (Equations (15)–(17)): the adversary groups queries by the
            # shared relay B; the true lookup's range competes with the ranges
            # of every other concurrent lookup that also has B-linkable queries.
            nondummy = lookup.b_linkable_nondummy()
            if not nondummy:
                return self._entropy_all_dummies(stream)
            own_positions = [q.queried_pos for q in sorted(nondummy, key=lambda q: q.order)]
            own_range = self._estimation_range_size(own_positions)
            # Other concurrent lookups with B-linkable queries: each is equally
            # likely to be psi_I (Equation (17)) and contributes a wide range.
            p_b = max(len(b_linkable) / max(len(lookup.queries), 1), 0.05)
            competitors = sum(1 for _ in range(n_concurrent - 1) if stream.random() < p_b * 0.5)
            ranges = [(own_range, 1.0)] + [(ring.n_nodes - 1, 1.0)] * competitors
            f = ring.fraction_malicious
            spread = self._mixture_entropy(ranges)
            return f * max_entropy(max(int(n_concurrent * f), 1)) + (1.0 - f) * spread

        # Case 3 (Equations (18)–(21)): isolated observations; the closest
        # observed query bounds the target only weakly, and it is diluted over
        # every observed query of every concurrent lookup.
        own_range = ring.n_nodes - 1
        p_obs = max(len(observed) / max(len(lookup.queries), 1), 0.05)
        other_observed = sum(1 for _ in range(n_concurrent - 1) if stream.random() < p_obs)
        ranges = [(own_range, 1.0)] + [(ring.n_nodes - 1, 1.0)] * other_observed
        f = ring.fraction_malicious
        return f * max_entropy(max(int(n_concurrent * f), 1)) + (1.0 - f) * self._mixture_entropy(ranges)

    # -------------------------------------------------------------------- run
    def estimate(self, n_worlds: int = 300) -> TargetAnonymityResult:
        """Estimate H(T) by averaging over ``n_worlds`` sampled worlds."""
        ring = self.ring
        stream = self.rng.stream("worlds")
        ideal = max_entropy(ring.n_nodes)
        total = 0.0
        for i in range(n_worlds):
            lookup = self.sampler.sample_lookup(stream_name=f"world-{i}")
            if not lookup.initiator_observed:
                total += ideal
                continue
            if lookup.linkable_queries():
                total += self._entropy_linkable(lookup, stream)
            else:
                total += self._entropy_unlinkable(lookup, stream)
        achieved = min(total / n_worlds, ideal)
        return TargetAnonymityResult(
            n_nodes=ring.n_nodes,
            fraction_malicious=ring.fraction_malicious,
            concurrent_lookup_rate=self.config.concurrent_lookup_rate,
            dummy_queries=self.config.dummy_queries,
            entropy_bits=achieved,
            ideal_entropy_bits=ideal,
            information_leak_bits=information_leak(achieved, ideal),
            n_worlds=n_worlds,
        )


def estimate_target_anonymity(
    n_nodes: int = 10_000,
    fraction_malicious: float = 0.2,
    concurrent_lookup_rate: float = 0.01,
    dummy_queries: int = 6,
    seed: int = 0,
    n_worlds: int = 300,
) -> TargetAnonymityResult:
    """Convenience wrapper building the ring, sampler and estimator in one call."""
    ring = LightweightRing(n_nodes=n_nodes, fraction_malicious=fraction_malicious, seed=seed)
    config = AnonymityConfig(
        concurrent_lookup_rate=concurrent_lookup_rate,
        dummy_queries=dummy_queries,
    )
    estimator = TargetAnonymityEstimator(ring, config=config)
    return estimator.estimate(n_worlds=n_worlds)
