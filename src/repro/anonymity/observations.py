"""Sampling the adversary's observations of Octopus lookups (Section 6.1).

The anonymity estimators are Monte-Carlo evaluations of Equations (1)–(21):
they repeatedly sample a *world* — the target lookup plus all concurrent
lookups, each with its relay structure — derive which queries the adversary
observes and can link, and average the conditional entropies.

The observation/linkability model follows Section 6.1:

* relays are (approximately) uniformly random nodes, so each is malicious
  independently with probability ``f`` (the two-phase random walk plus the
  attacker-identification mechanisms are what justify this assumption — see
  Section 5);
* a query is **observed** when the queried node or its exit relay ``D_i`` is
  malicious;
* an observed query is **linkable to I** when the entry relay ``A`` and the
  query's relay ``C_i`` are both malicious (they bridge across the honest
  middle relay ``B``), or when the exit relay is linkable to I through its
  selection random walk (which requires a contiguous chain of malicious walk
  hops and is therefore rare);
* an observed query is **linkable to B** when ``C_i`` is malicious; queries of
  the same lookup that are linkable to B can be grouped together, and if any
  of them is linkable to I the whole group is (Section 6.1);
* the initiator is **observed** when ``A`` is malicious or some random walk
  exposes it through its first hop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.rng import RandomSource
from .ring_model import LightweightRing


@dataclass
class AnonymityConfig:
    """Workload and protocol parameters of the anonymity analysis."""

    #: concurrent lookup rate alpha (fraction of nodes looking up concurrently).
    concurrent_lookup_rate: float = 0.01
    #: dummy queries injected per lookup.
    dummy_queries: int = 6
    #: relay pairs (C_i, D_i) per lookup; queries cycle over them.
    relay_pairs_per_lookup: int = 4
    #: hops per random-walk phase (l); walk-based linkability needs a
    #: contiguous malicious chain over 2l-1 hops.
    random_walk_phase_length: int = 3
    #: cap on the number of concurrent lookups actually simulated per world
    #: (the remainder is accounted for analytically through counts).
    max_simulated_concurrent: int = 400


@dataclass
class SimulatedQuery:
    """One (possibly dummy) query of a simulated lookup."""

    queried_pos: int
    order: int
    is_dummy: bool
    observed: bool
    linkable_to_initiator: bool
    linkable_to_b: bool


@dataclass
class SimulatedLookup:
    """One lookup in a sampled world."""

    initiator_pos: int
    target_pos: int
    initiator_observed: bool
    target_observed: bool
    queries: List[SimulatedQuery] = field(default_factory=list)

    def observed_queries(self) -> List[SimulatedQuery]:
        return [q for q in self.queries if q.observed]

    def linkable_queries(self) -> List[SimulatedQuery]:
        """Queries linkable to I (after group closure over the shared relay B)."""
        return [q for q in self.queries if q.linkable_to_initiator]

    def linkable_nondummy(self) -> List[SimulatedQuery]:
        return [q for q in self.queries if q.linkable_to_initiator and not q.is_dummy]

    def b_linkable_queries(self) -> List[SimulatedQuery]:
        return [q for q in self.queries if q.linkable_to_b]

    def b_linkable_nondummy(self) -> List[SimulatedQuery]:
        return [q for q in self.queries if q.linkable_to_b and not q.is_dummy]


class LookupSampler:
    """Samples lookups with their relay structure and adversary observations."""

    def __init__(self, ring: LightweightRing, config: AnonymityConfig, rng: Optional[RandomSource] = None) -> None:
        self.ring = ring
        self.config = config
        self.rng = rng or RandomSource(ring.rng.master_seed + 1)

    # ----------------------------------------------------------------- helpers
    def _random_relay_is_malicious(self, stream) -> bool:
        """Whether a uniformly selected relay is malicious."""
        return stream.random() < self.ring.fraction_malicious

    def _walk_linkable(self, stream) -> bool:
        """Whether a selected relay is linkable to I through its random walk.

        Requires every hop between the initiator and the relay to be
        malicious: probability ``f ** (2l - 1)``.
        """
        hops = 2 * self.config.random_walk_phase_length - 1
        f = self.ring.fraction_malicious
        return stream.random() < f**hops

    def _walk_exposes_initiator(self, stream) -> bool:
        """Whether one random walk lets the adversary link the *lookup* to I.

        The first hop of a walk is contacted by I directly, but observing a
        node performing a random walk is uninformative: every Octopus node
        runs a relay-selection walk every 15 seconds regardless of whether it
        is looking anything up.  A walk only exposes I as the initiator of
        *this lookup* when the whole chain from I to the selected relay is
        malicious (probability ``f ** (2l - 1)``), in which case the relay is
        linkable to I.
        """
        hops = 2 * self.config.random_walk_phase_length - 1
        return stream.random() < self.ring.fraction_malicious**hops

    # ------------------------------------------------------------------ lookups
    def sample_lookup(
        self,
        initiator_pos: Optional[int] = None,
        target_pos: Optional[int] = None,
        stream_name: str = "world",
    ) -> SimulatedLookup:
        """Sample one lookup: path, dummies, relays and observations."""
        stream = self.rng.stream(stream_name)
        ring = self.ring
        if initiator_pos is None:
            initiator_pos = stream.randrange(ring.n_nodes)
        if target_pos is None:
            target_pos = stream.randrange(ring.n_nodes)

        a_malicious = self._random_relay_is_malicious(stream)
        # Every relay pair was produced by a random walk; each walk's first hop
        # may expose the initiator.
        n_walks = self.config.relay_pairs_per_lookup + 1
        walk_exposed = any(self._walk_exposes_initiator(stream) for _ in range(n_walks))
        initiator_observed = a_malicious or walk_exposed
        target_observed = ring.is_malicious(target_pos)

        lookup = SimulatedLookup(
            initiator_pos=initiator_pos,
            target_pos=target_pos,
            initiator_observed=initiator_observed,
            target_observed=target_observed,
        )

        # Relay pairs for this lookup: (C_i malicious?, D_i malicious?, walk-linkable?)
        pairs = []
        for _ in range(max(self.config.relay_pairs_per_lookup, 1)):
            pairs.append(
                (
                    self._random_relay_is_malicious(stream),
                    self._random_relay_is_malicious(stream),
                    self._walk_linkable(stream),
                )
            )

        path = ring.query_path_positions(initiator_pos, target_pos)
        order = 0
        for idx, queried_pos in enumerate(path):
            c_mal, d_mal, d_walk_linkable = pairs[idx % len(pairs)]
            self._append_query(lookup, queried_pos, order, False, a_malicious, c_mal, d_mal, d_walk_linkable)
            order += 1

        dummy_stream = self.rng.stream(stream_name + "-dummies")
        for _ in range(self.config.dummy_queries):
            queried_pos = dummy_stream.randrange(ring.n_nodes)
            idx = dummy_stream.randrange(len(pairs))
            c_mal, d_mal, d_walk_linkable = pairs[idx]
            self._append_query(lookup, queried_pos, order, True, a_malicious, c_mal, d_mal, d_walk_linkable)
            order += 1

        self._close_linkability_over_b(lookup)
        return lookup

    def _append_query(
        self,
        lookup: SimulatedLookup,
        queried_pos: int,
        order: int,
        is_dummy: bool,
        a_malicious: bool,
        c_malicious: bool,
        d_malicious: bool,
        d_walk_linkable: bool,
    ) -> None:
        observed = d_malicious or self.ring.is_malicious(queried_pos)
        linkable_to_b = observed and c_malicious
        linkable_to_i = observed and ((a_malicious and c_malicious) or d_walk_linkable)
        lookup.queries.append(
            SimulatedQuery(
                queried_pos=queried_pos,
                order=order,
                is_dummy=is_dummy,
                observed=observed,
                linkable_to_initiator=linkable_to_i,
                linkable_to_b=linkable_to_b,
            )
        )

    def _close_linkability_over_b(self, lookup: SimulatedLookup) -> None:
        """Section 6.1: if one query is linkable to both I and B, every query
        linkable to B becomes linkable to I."""
        if any(q.linkable_to_initiator and q.linkable_to_b for q in lookup.queries):
            for q in lookup.queries:
                if q.linkable_to_b:
                    q.linkable_to_initiator = True

    # ------------------------------------------------------------------- worlds
    def sample_concurrent_lookups(self, n: int, stream_name: str = "concurrent") -> List[SimulatedLookup]:
        """Sample ``n`` concurrent lookups with random initiators/targets."""
        return [self.sample_lookup(stream_name=f"{stream_name}-{i}") for i in range(n)]

    def expected_concurrent(self) -> int:
        """The number of concurrent lookups implied by alpha."""
        return max(1, int(round(self.ring.n_nodes * self.config.concurrent_lookup_rate)))
