"""Entropy-based anonymity metrics.

The paper quantifies anonymity with Shannon entropy over the adversary's
posterior distribution of the initiator / target (Diaz et al., "Towards
measuring anonymity"), and reports *information leak* — the difference
between the ideal entropy ``log2`` of the anonymity-set size and the achieved
entropy.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def entropy(probabilities: Iterable[float]) -> float:
    """Shannon entropy (bits) of a probability distribution.

    Zero-probability entries are ignored; the distribution is *not* required
    to be normalised exactly (tiny numerical drift is tolerated) but raises if
    it is badly off, because that almost always indicates a modelling bug.
    """
    probs = [p for p in probabilities if p > 0.0]
    if not probs:
        return 0.0
    total = sum(probs)
    if not 0.99 <= total <= 1.01:
        raise ValueError(f"probabilities sum to {total:.4f}, expected ~1")
    return -sum((p / total) * math.log2(p / total) for p in probs)


def entropy_of_counts(counts: Iterable[float]) -> float:
    """Entropy of a distribution given as unnormalised non-negative weights."""
    weights = [c for c in counts if c > 0.0]
    total = sum(weights)
    if total <= 0.0:
        return 0.0
    return -sum((w / total) * math.log2(w / total) for w in weights)


def max_entropy(n_candidates: int) -> float:
    """Ideal entropy of a uniform anonymity set of ``n_candidates`` members."""
    if n_candidates <= 1:
        return 0.0
    return math.log2(n_candidates)


def uniform_entropy(n_candidates: float) -> float:
    """``log2`` of a (possibly fractional) anonymity-set size, floored at 1."""
    return math.log2(max(n_candidates, 1.0))


def information_leak(achieved_entropy: float, ideal_entropy: float) -> float:
    """Bits of information leaked: ideal minus achieved (never negative)."""
    return max(ideal_entropy - achieved_entropy, 0.0)


def combine_conditional(terms: Sequence[tuple]) -> float:
    """Combine ``(probability, conditional_entropy)`` terms: ``sum p * H``.

    This is Equation (1) of the paper: the system-wide entropy is the
    expectation of the conditional entropy over the observation distribution.
    The probabilities must (approximately) sum to one.
    """
    if not terms:
        return 0.0
    total_p = sum(p for p, _ in terms)
    if not 0.99 <= total_p <= 1.01:
        raise ValueError(f"observation probabilities sum to {total_p:.4f}, expected ~1")
    return sum(p * h for p, h in terms) / total_p


def degree_of_anonymity(achieved_entropy: float, ideal_entropy: float) -> float:
    """Normalised anonymity degree ``H / H_max`` in [0, 1]."""
    if ideal_entropy <= 0.0:
        return 1.0
    return min(max(achieved_entropy / ideal_entropy, 0.0), 1.0)
