"""Pre-simulated probability distributions used by the anonymity estimators.

Section 6 and Appendix III rely on three distributions the adversary obtains
"via pre-simulations of the lookup":

* ``xi(x)`` — for the target lookup, the probability that the minimum
  hop-distance from its linkable queried nodes to the target is ``x``
  (Equation (7); used to weight which concurrent lookup is the target's).
* ``gamma(i, z)`` — the probability that the ``i``-th node (clockwise) of an
  estimation range of size ``z`` is the target (Appendix III; query density
  rises towards the target, so small ``i`` is more likely).
* ``chi(x, y)`` — the probability that a candidate subset of ``x`` linkable
  queries whose virtual lookup has largest hop ``y`` is the true set of
  non-dummy linkable queries (Equation (13)).

We estimate all three empirically by simulating honest lookups on the
lightweight ring, with additive smoothing so that unseen bins never yield
zero probabilities (which would break the Bayesian weighting).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.rng import RandomSource
from .ring_model import LightweightRing


def _log_bucket(value: int) -> int:
    """Bucket a positive hop distance logarithmically (0, 1, 2, 4, 8, ...)."""
    if value <= 0:
        return 0
    return 1 << (value.bit_length() - 1)


@dataclass
class PresimulatedDistributions:
    """Empirical ``xi``, ``gamma`` and ``chi`` with additive smoothing."""

    xi_counts: Dict[int, float] = field(default_factory=dict)
    xi_total: float = 0.0
    gamma_counts: Dict[Tuple[int, int], float] = field(default_factory=dict)
    gamma_totals: Dict[int, float] = field(default_factory=dict)
    chi_counts: Dict[Tuple[int, int], float] = field(default_factory=dict)
    chi_total: float = 0.0
    smoothing: float = 0.5

    # ------------------------------------------------------------------- xi
    def xi(self, min_hop_distance: int) -> float:
        """P(minimum hop distance from linkable queries to the target == x)."""
        bucket = _log_bucket(min_hop_distance)
        numer = self.xi_counts.get(bucket, 0.0) + self.smoothing
        denom = self.xi_total + self.smoothing * (len(self.xi_counts) + 1)
        return numer / denom if denom > 0 else 0.0

    # ---------------------------------------------------------------- gamma
    def gamma(self, position_in_range: int, range_size: int) -> float:
        """P(the ``i``-th node of a size-``z`` estimation range is the target)."""
        if range_size <= 0:
            return 0.0
        z_bucket = _log_bucket(range_size)
        i_bucket = _log_bucket(position_in_range)
        numer = self.gamma_counts.get((z_bucket, i_bucket), 0.0) + self.smoothing
        denom = self.gamma_totals.get(z_bucket, 0.0) + self.smoothing * (math.log2(max(range_size, 2)) + 1)
        if denom <= 0:
            return 1.0 / range_size
        return numer / denom

    def gamma_profile(self, range_size: int) -> List[float]:
        """Unnormalised gamma weights for every position of a range (1..z)."""
        return [self.gamma(i, range_size) for i in range(1, range_size + 1)]

    # ------------------------------------------------------------------ chi
    def chi(self, n_queries: int, largest_hop: int) -> float:
        """P(a subset with ``x`` queries and largest virtual hop ``y`` is real)."""
        key = (min(n_queries, 32), _log_bucket(largest_hop))
        numer = self.chi_counts.get(key, 0.0) + self.smoothing
        denom = self.chi_total + self.smoothing * (len(self.chi_counts) + 1)
        return numer / denom if denom > 0 else 0.0


class PresimulationBuilder:
    """Builds :class:`PresimulatedDistributions` by simulating honest lookups."""

    def __init__(self, ring: LightweightRing, rng: Optional[RandomSource] = None) -> None:
        self.ring = ring
        self.rng = rng or RandomSource(ring.rng.master_seed + 7)

    def build(self, n_samples: int = 2000, observation_probability: float = 0.2) -> PresimulatedDistributions:
        """Simulate ``n_samples`` lookups and accumulate the three distributions.

        ``observation_probability`` is the per-query probability that the
        adversary observes (and can link) a query — used to subsample the
        query path the way the real adversary would see it.
        """
        dist = PresimulatedDistributions()
        stream = self.rng.stream("presim")
        ring = self.ring
        for _ in range(n_samples):
            initiator = stream.randrange(ring.n_nodes)
            target = stream.randrange(ring.n_nodes)
            path = ring.query_path_positions(initiator, target)
            if not path:
                continue
            observed = [p for p in path if stream.random() < observation_probability]
            if not observed:
                continue

            # xi: minimum hop distance from observed queries to the target.
            min_dist = min(ring.hop_distance(p, target) for p in observed)
            bucket = _log_bucket(min_dist)
            dist.xi_counts[bucket] = dist.xi_counts.get(bucket, 0.0) + 1.0
            dist.xi_total += 1.0

            # gamma: where the target sits inside the estimation range implied
            # by the last observed query (lower bound) and the first (upper
            # bound proxy).  Position 1 is immediately after the lower bound.
            # The clockwise-most observed query (closest to the target).
            lower = min(observed, key=lambda p: ring.hop_distance(p, target))
            upper_extent = max(ring.hop_distance(lower, target) * 4, 4)
            range_size = min(upper_extent, ring.n_nodes - 1)
            position = ring.hop_distance(lower, target)
            z_bucket = _log_bucket(range_size)
            i_bucket = _log_bucket(position)
            dist.gamma_counts[(z_bucket, i_bucket)] = dist.gamma_counts.get((z_bucket, i_bucket), 0.0) + 1.0
            dist.gamma_totals[z_bucket] = dist.gamma_totals.get(z_bucket, 0.0) + 1.0

            # chi: characterise the observed (non-dummy) subset by its size and
            # the largest hop of the virtual lookup over it.
            ordered = sorted(observed, key=lambda p: ring.hop_distance(path[0], p))
            largest_hop = 0
            for a, b in zip(ordered, ordered[1:]):
                largest_hop = max(largest_hop, ring.hop_distance(a, b))
            key = (min(len(ordered), 32), _log_bucket(largest_hop))
            dist.chi_counts[key] = dist.chi_counts.get(key, 0.0) + 1.0
            dist.chi_total += 1.0
        return dist
