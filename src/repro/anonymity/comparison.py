"""Anonymity of the comparison schemes: Chord, NISAN and Torsk.

Figures 5(b) and 6 compare Octopus against the baseline Chord lookup and the
two prior anonymous/secure lookups.  The models below follow how each scheme
exposes information (Section 2 and [38]):

* **Chord** — iterative lookup, key revealed to every queried node, initiator
  contacts intermediate nodes directly.  Any malicious queried node therefore
  learns both the initiator *and* the key/target exactly.
* **NISAN** — key hidden (whole fingertables returned) but the initiator still
  contacts every queried node directly, so the adversary always knows ``I``
  for observed queries and applies the range-estimation attack to recover
  ``T`` to within a small candidate set.
* **Torsk** — the lookup is delegated to a *buddy* found by a random walk, so
  the initiator is hidden unless the buddy (or the walk) is compromised; the
  buddy however performs a Myrmic lookup that reveals the key, so the target
  is learnt by any malicious queried node regardless of whether ``I`` is
  known.

Each estimator returns the same result dataclasses as the Octopus estimators
so the comparison benchmarks can print uniform tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..sim.rng import RandomSource
from .entropy import entropy_of_counts, information_leak, max_entropy
from .initiator import InitiatorAnonymityResult
from .presimulation import PresimulationBuilder
from .ring_model import LightweightRing
from .target import TargetAnonymityResult


@dataclass
class SchemeAnonymity:
    """Initiator and target anonymity of one scheme at one operating point."""

    scheme: str
    initiator: InitiatorAnonymityResult
    target: TargetAnonymityResult


class ComparisonAnonymityModel:
    """Estimates H(I) and H(T) for Chord, NISAN and Torsk."""

    def __init__(
        self,
        ring: LightweightRing,
        concurrent_lookup_rate: float = 0.01,
        rng: Optional[RandomSource] = None,
        random_walk_length: int = 6,
    ) -> None:
        self.ring = ring
        self.alpha = concurrent_lookup_rate
        self.rng = rng or RandomSource(ring.rng.master_seed + 17)
        self.random_walk_length = random_walk_length
        self.presim = PresimulationBuilder(ring, rng=self.rng.spawn("presim")).build(n_samples=1000)

    # ----------------------------------------------------------------- helpers
    def _path_length_sample(self, stream) -> int:
        initiator = stream.randrange(self.ring.n_nodes)
        target = stream.randrange(self.ring.n_nodes)
        return max(1, len(self.ring.query_path_positions(initiator, target)))

    def _p_path_observed(self, n_samples: int = 60) -> float:
        """P(at least one queried node of a lookup is malicious)."""
        stream = self.rng.stream("paths")
        f = self.ring.fraction_malicious
        total = 0.0
        for _ in range(n_samples):
            hops = self._path_length_sample(stream)
            total += 1.0 - (1.0 - f) ** hops
        return total / n_samples

    def _nisan_range_entropy(self, n_samples: int = 120) -> float:
        """Average entropy of the target within NISAN's estimation range.

        The adversary links all observed queries of a lookup (they all carry
        the initiator's address), so the range collapses to roughly the gap
        between the last two malicious-observed queries — a handful of nodes.
        """
        stream = self.rng.stream("nisan-range")
        ring = self.ring
        total = 0.0
        counted = 0
        for _ in range(n_samples):
            initiator = stream.randrange(ring.n_nodes)
            target = stream.randrange(ring.n_nodes)
            path = ring.query_path_positions(initiator, target)
            observed = [p for p in path if ring.is_malicious(p)]
            if not observed:
                continue
            last = min(observed, key=lambda p: ring.hop_distance(p, target))
            range_size = max(1, min(ring.hop_distance(last, target) * 2 + 1, ring.n_nodes - 1))
            weights = self.presim.gamma_profile(min(range_size, 128))
            total += entropy_of_counts(weights) if weights else 0.0
            counted += 1
        if counted == 0:
            return max_entropy(ring.n_nodes)
        return total / counted

    # ------------------------------------------------------------------- Chord
    def chord(self) -> SchemeAnonymity:
        ring = self.ring
        f = ring.fraction_malicious
        ideal = max_entropy(ring.n_nodes)
        honest_ideal = max_entropy(int(ring.honest_count()))
        p_obs = self._p_path_observed()

        # Initiator: usable only when T is malicious (prob f); then any
        # malicious queried node reveals I exactly (entropy 0).
        h_i = (1.0 - f) * honest_ideal + f * ((1.0 - p_obs) * honest_ideal + p_obs * 0.0)
        # Target: usable only when I is observed, which happens whenever a
        # queried node is malicious; the key is revealed so H(T|observed) = 0.
        h_t = (1.0 - p_obs) * ideal + p_obs * 0.0
        return self._package("chord", h_i, h_t)

    # ------------------------------------------------------------------- NISAN
    def nisan(self) -> SchemeAnonymity:
        ring = self.ring
        f = ring.fraction_malicious
        ideal = max_entropy(ring.n_nodes)
        honest_ideal = max_entropy(int(ring.honest_count()))
        p_obs = self._p_path_observed()
        range_entropy = self._nisan_range_entropy()

        # Initiator: when T is malicious and some query was observed, the
        # adversary knows the observed initiator identity but must still decide
        # whether that lookup targets T — the range estimate makes that likely.
        n_concurrent = max(int(ring.n_nodes * self.alpha), 1)
        # The initiator hides among the concurrent initiators whose estimated
        # ranges also cover T; with NISAN's narrow ranges this is a small set.
        competing = max(1.0, n_concurrent * (2.0 ** range_entropy) / ring.n_nodes)
        h_i = (1.0 - f) * honest_ideal + f * ((1.0 - p_obs) * honest_ideal + p_obs * math.log2(competing + 1.0))
        # Target: when I is observed (any malicious queried node sees I), the
        # range-estimation attack reduces T to the estimated range.
        h_t = (1.0 - p_obs) * ideal + p_obs * range_entropy
        return self._package("nisan", h_i, h_t)

    # ------------------------------------------------------------------- Torsk
    def torsk(self) -> SchemeAnonymity:
        ring = self.ring
        f = ring.fraction_malicious
        ideal = max_entropy(ring.n_nodes)
        honest_ideal = max_entropy(int(ring.honest_count()))
        p_obs = self._p_path_observed()
        # The buddy (and the random walk that found it) hides the initiator;
        # the initiator is exposed when the buddy is malicious or the walk's
        # first hop is malicious.
        p_initiator_exposed = 1.0 - (1.0 - f) ** 2

        # Initiator: needs T observed (T malicious OR the key was seen by a
        # malicious queried node — Myrmic reveals the key); then I is known
        # only if the buddy path is compromised.
        p_t_known = f + (1.0 - f) * p_obs
        h_i = (1.0 - p_t_known) * honest_ideal + p_t_known * (
            (1.0 - p_initiator_exposed) * honest_ideal + p_initiator_exposed * 0.0
        )
        # Target: the key is revealed to queried nodes, so T is learnt whenever
        # a queried node is malicious, regardless of I; given I observed
        # (precondition of H(T)), the entropy collapses with probability p_obs.
        h_t = (1.0 - p_obs) * ideal + p_obs * 0.0
        return self._package("torsk", h_i, h_t)

    # ---------------------------------------------------------------- plumbing
    def _package(self, scheme: str, h_i: float, h_t: float) -> SchemeAnonymity:
        ring = self.ring
        ideal = max_entropy(ring.n_nodes)
        initiator = InitiatorAnonymityResult(
            n_nodes=ring.n_nodes,
            fraction_malicious=ring.fraction_malicious,
            concurrent_lookup_rate=self.alpha,
            dummy_queries=0,
            entropy_bits=h_i,
            ideal_entropy_bits=ideal,
            information_leak_bits=information_leak(h_i, ideal),
            n_worlds=0,
        )
        target = TargetAnonymityResult(
            n_nodes=ring.n_nodes,
            fraction_malicious=ring.fraction_malicious,
            concurrent_lookup_rate=self.alpha,
            dummy_queries=0,
            entropy_bits=h_t,
            ideal_entropy_bits=ideal,
            information_leak_bits=information_leak(h_t, ideal),
            n_worlds=0,
        )
        return SchemeAnonymity(scheme=scheme, initiator=initiator, target=target)

    def all_schemes(self) -> dict:
        """H(I)/H(T) for every comparison scheme, keyed by scheme name."""
        return {"chord": self.chord(), "nisan": self.nisan(), "torsk": self.torsk()}
