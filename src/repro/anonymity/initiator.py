"""Initiator anonymity H(I) — Monte-Carlo evaluation of Equations (2)–(7).

The estimator samples *worlds*: the target lookup (with its relay structure
and the adversary's observations of it) plus the population of concurrent
lookups.  For each world it evaluates the conditional entropy of the
initiator given the observation, exactly following Section 6.2:

* the adversary must observe the target ``T`` (i.e. ``T`` is malicious) for
  any initiator information to be usable — otherwise the entropy is the ideal
  ``log2((1-f) N)`` over honest nodes (Equation (3));
* when ``T`` is observed but no non-dummy query of the target lookup is
  linkable to ``I``, the initiator remains hidden among either the observed
  honest initiators (if ``I`` happened to be observed) or all honest nodes
  (Equation (5));
* when linkable non-dummy queries exist, every concurrent lookup with at
  least one linkable query is a candidate for "the lookup whose target is
  T"; candidates are weighted by ``xi`` of the minimum hop distance from
  their linkable queried nodes to ``T`` (Equations (6)–(7)).

Concurrent lookups other than the target's are handled by sampling their
linkable-query counts and positions (their queries are uniformly distributed
relative to ``T``), which keeps the estimator tractable at N = 100,000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.rng import RandomSource
from .entropy import entropy_of_counts, information_leak, max_entropy
from .observations import AnonymityConfig, LookupSampler, SimulatedLookup
from .presimulation import PresimulatedDistributions, PresimulationBuilder
from .ring_model import LightweightRing


@dataclass
class InitiatorAnonymityResult:
    """Estimated initiator anonymity for one configuration."""

    n_nodes: int
    fraction_malicious: float
    concurrent_lookup_rate: float
    dummy_queries: int
    entropy_bits: float
    ideal_entropy_bits: float
    information_leak_bits: float
    n_worlds: int


class InitiatorAnonymityEstimator:
    """Monte-Carlo estimator of H(I) for Octopus."""

    def __init__(
        self,
        ring: LightweightRing,
        config: Optional[AnonymityConfig] = None,
        rng: Optional[RandomSource] = None,
        presim: Optional[PresimulatedDistributions] = None,
        presim_samples: int = 1500,
    ) -> None:
        self.ring = ring
        self.config = config or AnonymityConfig()
        self.rng = rng or RandomSource(ring.rng.master_seed + 11)
        self.sampler = LookupSampler(ring, self.config, rng=self.rng.spawn("sampler"))
        self.presim = presim or PresimulationBuilder(ring, rng=self.rng.spawn("presim")).build(
            n_samples=presim_samples
        )
        # Calibrated once: per-lookup probabilities used for concurrent lookups.
        self._calibrate()

    # ------------------------------------------------------------ calibration
    def _calibrate(self, n_samples: int = 200) -> None:
        """Estimate per-lookup observation statistics from sampled lookups."""
        linkable_lookups = 0
        linkable_counts: List[int] = []
        initiator_observed = 0
        for i in range(n_samples):
            lookup = self.sampler.sample_lookup(stream_name=f"calib-{i}")
            linkable = lookup.linkable_queries()
            if linkable:
                linkable_lookups += 1
                linkable_counts.append(len(linkable))
            if lookup.initiator_observed:
                initiator_observed += 1
        self.p_lookup_has_linkable = linkable_lookups / n_samples
        self.mean_linkable_count = (
            sum(linkable_counts) / len(linkable_counts) if linkable_counts else 1.0
        )
        self.p_initiator_observed = initiator_observed / n_samples

    # ------------------------------------------------------------------- core
    def _competing_lookup_weight(self, target_pos: int, stream) -> float:
        """xi-weight of one concurrent lookup that has linkable queries.

        Its linkable queried nodes are (to the adversary) positions unrelated
        to T, so we sample that many uniform positions and take the minimum
        hop distance to T.
        """
        k = max(1, int(round(self.mean_linkable_count)))
        min_dist = self.ring.n_nodes
        for _ in range(k):
            pos = stream.randrange(self.ring.n_nodes)
            min_dist = min(min_dist, self.ring.hop_distance(pos, target_pos))
        return self.presim.xi(min_dist)

    def _entropy_given_target_observed(self, lookup: SimulatedLookup, stream) -> float:
        """H(I | o_o) for one sampled world (Equations (4)–(7))."""
        ring = self.ring
        n_concurrent = max(self.sampler.expected_concurrent() - 1, 0)
        honest_ideal = max_entropy(int(ring.honest_count()))

        linkable_nondummy = lookup.linkable_nondummy()
        if not linkable_nondummy:
            # Equation (5): I hides among observed honest initiators (if it was
            # observed at all) or among all honest nodes.
            if lookup.initiator_observed:
                expected_observed = 1 + n_concurrent * self.p_initiator_observed * (1.0 - ring.fraction_malicious)
                return max_entropy(max(int(round(expected_observed)), 1))
            return honest_ideal

        # Equation (6)/(7): candidates are all concurrent lookups with at least
        # one linkable query, weighted by xi of their distance to T.
        target_pos = lookup.target_pos
        own_min_dist = min(ring.hop_distance(q.queried_pos, target_pos) for q in lookup.linkable_queries())
        weights = [self.presim.xi(own_min_dist)]

        # Number of competing lookups with linkable queries.
        competing = 0
        for _ in range(n_concurrent):
            if stream.random() < self.p_lookup_has_linkable:
                competing += 1
        for _ in range(competing):
            weights.append(self._competing_lookup_weight(target_pos, stream))
        return entropy_of_counts(weights)

    # -------------------------------------------------------------------- run
    def estimate(self, n_worlds: int = 300) -> InitiatorAnonymityResult:
        """Estimate H(I) by averaging over ``n_worlds`` sampled worlds."""
        ring = self.ring
        stream = self.rng.stream("worlds")
        honest_ideal = max_entropy(int(ring.honest_count()))
        total = 0.0
        for i in range(n_worlds):
            lookup = self.sampler.sample_lookup(stream_name=f"world-{i}")
            if not lookup.target_observed:
                # Equation (3): T unobserved, maximal entropy over honest nodes.
                total += honest_ideal
                continue
            total += self._entropy_given_target_observed(lookup, stream)
        achieved = total / n_worlds
        ideal = max_entropy(ring.n_nodes)
        return InitiatorAnonymityResult(
            n_nodes=ring.n_nodes,
            fraction_malicious=ring.fraction_malicious,
            concurrent_lookup_rate=self.config.concurrent_lookup_rate,
            dummy_queries=self.config.dummy_queries,
            entropy_bits=achieved,
            ideal_entropy_bits=ideal,
            information_leak_bits=information_leak(achieved, ideal),
            n_worlds=n_worlds,
        )


def estimate_initiator_anonymity(
    n_nodes: int = 10_000,
    fraction_malicious: float = 0.2,
    concurrent_lookup_rate: float = 0.01,
    dummy_queries: int = 6,
    seed: int = 0,
    n_worlds: int = 300,
) -> InitiatorAnonymityResult:
    """Convenience wrapper building the ring, sampler and estimator in one call."""
    ring = LightweightRing(n_nodes=n_nodes, fraction_malicious=fraction_malicious, seed=seed)
    config = AnonymityConfig(
        concurrent_lookup_rate=concurrent_lookup_rate,
        dummy_queries=dummy_queries,
    )
    estimator = InitiatorAnonymityEstimator(ring, config=config)
    return estimator.estimate(n_worlds=n_worlds)
