"""Lightweight ring model for large-scale anonymity estimation.

The anonymity analysis of Section 6 considers networks of 100,000 nodes — far
too many to instantiate full :class:`~repro.chord.node.ChordNode` objects for
a Monte-Carlo estimator that resamples thousands of lookups.  The
:class:`LightweightRing` keeps only what the probabilistic model needs:

* the sorted identifier list (node *positions* are indices into it),
* which positions are malicious,
* ground-truth greedy lookup paths (the adversary is conservatively granted
  perfect knowledge of routing state, which maximises the leak), and
* successor/hop-distance arithmetic expressed in positions, so "distance in
  number of hops" from the paper maps to index differences.

Both the anonymity estimators and the pre-simulation distribution builders
(:mod:`repro.anonymity.presimulation`) run on this model.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..chord.idspace import IdSpace
from ..sim.kernel import FingerMatrix, greedy_path_positions, validate_kernel
from ..sim.rng import RandomSource


class LightweightRing:
    """A positional view of a Chord ring for anonymity calculations.

    Parameters
    ----------
    n_nodes:
        Number of nodes.
    fraction_malicious:
        Fraction of nodes controlled by the adversary.
    seed:
        Seed for identifier placement and malicious-set sampling.
    id_bits:
        Identifier width; defaults to 40 bits which keeps 100k nodes sparse.
    finger_count:
        Fingers per node assumed in the greedy lookup model.  Defaults to the
        identifier width (as in Chord, where a node keeps one finger per bit;
        only ``log2 N`` of them are distinct).
    placement:
        Optional adversary placement strategy: a callable ``(sorted_ids,
        n_malicious, stream, space_size) -> positions`` choosing which ring
        positions the adversary corrupts (uniform random when ``None``).
        :mod:`repro.scenarios.adversary` supplies clustered-eclipse,
        join-leave and high-degree strategies through this hook.
    kernel:
        Lookup-path backend (see :mod:`repro.sim.kernel`): ``"object"``
        walks finger candidates with per-candidate bisects (the historical
        loop below), ``"array"`` precomputes a flat finger-position matrix
        and runs the same greedy selection over it — byte-identical paths,
        built for the paper's 100,000-node sweeps.
    """

    def __init__(
        self,
        n_nodes: int,
        fraction_malicious: float = 0.2,
        seed: int = 0,
        id_bits: int = 40,
        finger_count: Optional[int] = None,
        placement=None,
        kernel: str = "object",
    ) -> None:
        if n_nodes < 8:
            raise ValueError("the lightweight ring needs at least 8 nodes")
        if not 0.0 <= fraction_malicious <= 1.0:
            raise ValueError("fraction_malicious must be in [0, 1]")
        self.kernel = validate_kernel(kernel)
        self._finger_matrix: Optional[FingerMatrix] = None
        self.n_nodes = n_nodes
        self.fraction_malicious = fraction_malicious
        self.space = IdSpace(bits=id_bits)
        self.rng = RandomSource(seed)

        id_stream = self.rng.stream("ids")
        ids: Set[int] = set()
        while len(ids) < n_nodes:
            ids.add(id_stream.randrange(self.space.size))
        self.ids: List[int] = sorted(ids)

        n_mal = int(round(fraction_malicious * n_nodes))
        if not n_mal:
            mal_positions: Sequence[int] = []
        elif placement is not None:
            mal_positions = list(
                placement(self.ids, n_mal, self.rng.stream("placement"), self.space.size)
            )
        else:
            mal_positions = self.rng.sample("malicious", range(n_nodes), n_mal)
        self.malicious: List[bool] = [False] * n_nodes
        for pos in mal_positions:
            self.malicious[pos % n_nodes] = True

        if finger_count is None:
            finger_count = self.space.bits
        self.finger_count = min(finger_count, self.space.bits)

    # ---------------------------------------------------------------- position
    def position_of_id(self, ident: int) -> int:
        """Index of the node owning identifier ``ident`` (its successor)."""
        pos = bisect.bisect_left(self.ids, ident % self.space.size)
        return pos % self.n_nodes

    def id_of(self, position: int) -> int:
        return self.ids[position % self.n_nodes]

    def is_malicious(self, position: int) -> bool:
        return self.malicious[position % self.n_nodes]

    def hop_distance(self, from_pos: int, to_pos: int) -> int:
        """Clockwise distance in *nodes* from one position to another."""
        return (to_pos - from_pos) % self.n_nodes

    def successor_position(self, key: int) -> int:
        return self.position_of_id(key)

    # ------------------------------------------------------------------ lookup
    def query_path_positions(self, initiator_pos: int, target_pos: int, max_hops: int = 64) -> List[int]:
        """Positions queried by a greedy lookup from initiator to target.

        The lookup uses correct fingers (``node + 2**i`` successors) and a
        successor list of six entries, mirroring the honest protocol; the
        returned list excludes the initiator and is ordered as queried.  The
        final queried node is the target's predecessor region, which is where
        the query density peaks — the property the range-estimation adversary
        exploits.
        """
        if self.kernel == "array":
            matrix = self._finger_matrix
            if matrix is None:
                matrix = FingerMatrix(
                    self.ids, self.space.size, self.finger_count, self.space.bits
                )
                self._finger_matrix = matrix
            return greedy_path_positions(matrix, initiator_pos, target_pos, max_hops)
        space = self.space
        path: List[int] = []
        current_pos = initiator_pos
        for _ in range(max_hops):
            current_id = self.ids[current_pos]
            # Termination: the current node's immediate successor owns the key.
            succ_pos = (current_pos + 1) % self.n_nodes
            if self.hop_distance(current_pos, target_pos) <= 1:
                break
            if succ_pos == target_pos:
                break
            # Candidate next hops: true fingers + 6 successors.
            best_pos = None
            best_gap = None
            for i in range(self.finger_count):
                ideal = space.normalize(current_id + (1 << i))
                cand = self.position_of_id(ideal)
                gap = self.hop_distance(cand, target_pos)
                if cand == current_pos:
                    continue
                # Candidate must precede (or be) the target.
                if self.hop_distance(current_pos, cand) > self.hop_distance(current_pos, target_pos):
                    continue
                if best_gap is None or gap < best_gap:
                    best_pos, best_gap = cand, gap
            for step in range(1, 7):
                cand = (current_pos + step) % self.n_nodes
                if self.hop_distance(current_pos, cand) > self.hop_distance(current_pos, target_pos):
                    break
                gap = self.hop_distance(cand, target_pos)
                if best_gap is None or gap < best_gap:
                    best_pos, best_gap = cand, gap
            if best_pos is None or best_pos == current_pos:
                break
            path.append(best_pos)
            if best_pos == target_pos:
                break
            current_pos = best_pos
        return path

    # --------------------------------------------------------------- sampling
    def random_position(self, stream: str = "positions") -> int:
        return self.rng.stream(stream).randrange(self.n_nodes)

    def random_honest_position(self, stream: str = "positions") -> int:
        rng = self.rng.stream(stream)
        while True:
            pos = rng.randrange(self.n_nodes)
            if not self.malicious[pos]:
                return pos

    def honest_count(self) -> int:
        return self.n_nodes - sum(self.malicious)
