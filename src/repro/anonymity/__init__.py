"""Anonymity analysis (Section 6 and Appendix III).

Entropy-based Monte-Carlo estimators of initiator anonymity H(I) and target
anonymity H(T) for Octopus, plus comparison models for Chord, NISAN and
Torsk, built on a lightweight positional ring model and pre-simulated
query-density distributions.
"""

from .comparison import ComparisonAnonymityModel, SchemeAnonymity
from .entropy import (
    combine_conditional,
    degree_of_anonymity,
    entropy,
    entropy_of_counts,
    information_leak,
    max_entropy,
    uniform_entropy,
)
from .initiator import (
    InitiatorAnonymityEstimator,
    InitiatorAnonymityResult,
    estimate_initiator_anonymity,
)
from .observations import AnonymityConfig, LookupSampler, SimulatedLookup, SimulatedQuery
from .presimulation import PresimulatedDistributions, PresimulationBuilder
from .ring_model import LightweightRing
from .target import TargetAnonymityEstimator, TargetAnonymityResult, estimate_target_anonymity

__all__ = [
    "ComparisonAnonymityModel",
    "SchemeAnonymity",
    "combine_conditional",
    "degree_of_anonymity",
    "entropy",
    "entropy_of_counts",
    "information_leak",
    "max_entropy",
    "uniform_entropy",
    "InitiatorAnonymityEstimator",
    "InitiatorAnonymityResult",
    "estimate_initiator_anonymity",
    "AnonymityConfig",
    "LookupSampler",
    "SimulatedLookup",
    "SimulatedQuery",
    "PresimulatedDistributions",
    "PresimulationBuilder",
    "LightweightRing",
    "TargetAnonymityEstimator",
    "TargetAnonymityResult",
    "estimate_target_anonymity",
]
