"""Workload models beyond uniform periodic lookups.

The paper's simulator has every honest node look up a uniformly random key
on a fixed period.  Real DHT workloads are nothing like that: key
popularity is Zipf-skewed, load arrives open-loop (and ramps), and content
going viral concentrates lookups on a handful of hot keys.  Each model here
plugs into the harnesses through :class:`repro.sim.workload.WorkloadModel`
— both the engine-scheduled surface the security simulation drives and the
closed-loop ``next_initiator``/``next_key`` draw surface the efficiency
harness consumes (``zipf`` and ``hot-key-storm`` support both; open-loop
``poisson`` is engine-only and says so via ``closed_loop = False``).

Keys for ranked/hot distributions are derived by hashing the rank label
onto the identifier space, so a given rank always maps to the same key —
across processes, backends and runs — without the model ever needing to see
the ring.

Registered names (see :data:`WORKLOADS`):

* ``uniform`` — the paper's model (the :mod:`repro.sim.workload` default);
* ``zipf`` — Zipf-skewed popularity over a fixed key universe;
* ``poisson`` — open-loop Poisson arrivals with a step-function rate ramp;
* ``hot-key-storm`` — uniform background plus a hot-key burst window.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Optional, Sequence

from ..sim.engine import SimulationEngine
from ..sim.rng import RandomSource
from ..sim.workload import AliveView, IssueLookup, WorkloadModel
from .registry import AxisRegistry


def key_for_label(label: str, space_size: int) -> int:
    """Deterministically hash a key label onto the identifier space."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % space_size


class ZipfWorkload(WorkloadModel):
    """Zipf-skewed key popularity: rank ``r`` drawn with weight ``r^-s``.

    Lookups target a fixed universe of ``n_keys`` ranked keys; with
    ``exponent`` around 1 the head few ranks absorb most of the traffic —
    the classic shape of measured DHT content popularity.  The arrival
    process stays the paper's per-node periodic schedule.
    """

    name = "zipf"

    def __init__(self, exponent: float = 1.2, n_keys: int = 512) -> None:
        if exponent <= 0:
            raise ValueError("zipf exponent must be positive")
        if n_keys < 1:
            raise ValueError("zipf needs at least one key")
        self.exponent = float(exponent)
        self.n_keys = int(n_keys)
        self._cumulative: List[float] = []
        total = 0.0
        for rank in range(1, self.n_keys + 1):
            total += rank ** -self.exponent
            self._cumulative.append(total)

    def next_key(self, space_size: int, stream, now: float) -> int:
        point = stream.random() * self._cumulative[-1]
        rank = bisect.bisect_left(self._cumulative, point) + 1
        return key_for_label(f"zipf-key-{min(rank, self.n_keys)}", space_size)


class HotKeyStormWorkload(WorkloadModel):
    """Uniform background traffic with a hot-key burst window.

    Inside ``[storm_start_s, storm_end_s)`` each lookup targets the single
    hot key with probability ``storm_intensity`` (uniform otherwise) — the
    flash-crowd-for-one-key pattern that stresses whichever nodes own the
    hot key's region.
    """

    name = "hot-key-storm"

    def __init__(
        self,
        storm_start_s: float = 100.0,
        storm_end_s: float = 250.0,
        storm_intensity: float = 0.9,
        hot_key_label: str = "hot-key",
    ) -> None:
        if storm_end_s < storm_start_s:
            raise ValueError("storm_end_s must not precede storm_start_s")
        if not 0.0 <= storm_intensity <= 1.0:
            raise ValueError("storm_intensity must be in [0, 1]")
        self.storm_start_s = float(storm_start_s)
        self.storm_end_s = float(storm_end_s)
        self.storm_intensity = float(storm_intensity)
        self.hot_key_label = str(hot_key_label)

    def next_key(self, space_size: int, stream, now: float) -> int:
        in_storm = self.storm_start_s <= now < self.storm_end_s
        # The uniform draw doubles as the storm coin flip's complement
        # source: always draw the coin first so the stream stays aligned
        # whether or not the storm is active.
        coin = stream.random()
        if in_storm and coin < self.storm_intensity:
            return key_for_label(self.hot_key_label, space_size)
        return stream.randrange(space_size)


class PoissonWorkload(WorkloadModel):
    """Open-loop Poisson arrivals with a step-function rate ramp.

    Arrivals form one network-wide Poisson process of rate
    ``rate_per_node_per_s × alive population × ramp(t)``; each arrival picks
    a uniformly random *currently alive* issuing node (when the harness
    passes an ``alive_view``; without one, the install-time population —
    draw-for-draw identical in churn-free runs).  ``ramp`` is a list of
    ``[t, multiplier]`` steps (sorted by ``t``, multiplier 1.0 before the
    first step), so load can ramp up, spike and recover inside one run — the
    open-loop behaviour closed per-node schedules cannot express.
    ``rate_per_node_per_s=None`` defaults to ``1/interval``, matching the
    closed-loop model's average offered load.

    Each inter-arrival gap is drawn at the rate in force *now* and capped at
    the next ramp boundary: a gap that would span a step is discarded and
    re-drawn at the boundary at the new rate (valid by the memorylessness of
    the exponential).  Without the cap, ramping up from near-idle leaves the
    first post-step arrival exponentially delayed at the old low rate.

    The model's essence *is* the arrival process, so it cannot be expressed
    through the closed-loop draw surface alone (its key distribution is
    plain uniform): harnesses without an engine report the workload axis as
    ignored instead of running it.
    """

    name = "poisson"
    closed_loop = False

    def __init__(
        self,
        rate_per_node_per_s: Optional[float] = None,
        ramp: Sequence[Sequence[float]] = (),
    ) -> None:
        if rate_per_node_per_s is not None and rate_per_node_per_s <= 0:
            raise ValueError("rate_per_node_per_s must be positive")
        self.rate_per_node_per_s = rate_per_node_per_s
        steps: List[List[float]] = []
        for entry in ramp:
            try:
                t, mult = entry
                steps.append([float(t), float(mult)])
            except (TypeError, ValueError):
                raise ValueError(
                    f"ramp entries must be (time, multiplier) pairs, got {entry!r}"
                ) from None
        self.ramp: List[List[float]] = sorted(steps, key=lambda step: step[0])
        if any(mult < 0 for _, mult in self.ramp):
            raise ValueError("ramp multipliers must be non-negative")

    def _multiplier(self, now: float) -> float:
        value = 1.0
        for t, mult in self.ramp:
            if t <= now:
                value = mult
            else:
                break
        return value

    def _next_boundary(self, now: float) -> Optional[float]:
        """First ramp step strictly after ``now``, or ``None``."""
        for t, _mult in self.ramp:
            if t > now:
                return t
        return None

    def schedule(
        self,
        engine: SimulationEngine,
        node_ids: List[int],
        interval: float,
        space_size: int,
        rng: RandomSource,
        issue: IssueLookup,
        alive_view: Optional[AliveView] = None,
    ) -> None:
        if not node_ids:
            return
        per_node = self.rate_per_node_per_s or (1.0 / interval)
        arrivals = rng.stream("workload-arrivals")
        picker = rng.stream("workload-initiator")
        keys = rng.stream("workload")
        population: AliveView = alive_view if alive_view is not None else (lambda: node_ids)

        def fire() -> None:
            alive = population()
            if alive:
                node_id = picker.choice(alive)
                issue(node_id, lambda: self.next_key(space_size, keys, engine.now))
            schedule_next()

        def schedule_next() -> None:
            now = engine.now
            boundary = self._next_boundary(now)
            mult = self._multiplier(now)
            if mult <= 0.0:
                # Ramped to zero: the process is off until the next step.
                if boundary is not None:
                    engine.schedule_at(boundary, schedule_next, name="poisson-ramp")
                return
            rate = per_node * len(population()) * mult
            if rate <= 0.0:
                # Everyone is offline: probe at the closed-loop period so
                # churn rejoins can restart arrivals.
                engine.schedule(interval, schedule_next, name="poisson-idle")
                return
            gap = arrivals.expovariate(rate)
            if boundary is not None and now + gap >= boundary:
                # The gap spans a ramp step where the rate changes; discard
                # it and re-draw at the boundary at the new rate.
                engine.schedule_at(boundary, schedule_next, name="poisson-ramp")
                return
            engine.schedule(gap, fire, name="poisson-lookup")

        schedule_next()


WORKLOADS = AxisRegistry("workload model")
WORKLOADS.register(
    "uniform", WorkloadModel, "the paper's uniform keys on a per-node period"
)
WORKLOADS.register(
    "zipf", ZipfWorkload, "Zipf-skewed key popularity over a fixed key universe"
)
WORKLOADS.register(
    "poisson", PoissonWorkload, "open-loop Poisson arrivals with a rate ramp"
)
WORKLOADS.register(
    "hot-key-storm", HotKeyStormWorkload, "uniform traffic plus a hot-key burst window"
)
