"""Named, per-axis registries of scenario generator factories.

Every scenario axis — churn profile, workload model, adversary placement —
is a small registry of named factories.  A factory takes the axis's plain
JSON parameter dict (as it appears in campaign specs) and returns a fresh
generator instance; factories hold no state, so building the same name with
the same parameters is always equivalent, which is what keeps scenario
trials content-addressable.

Registries are public: downstream code can add its own profiles/models/
strategies (``CHURN_PROFILES.register("my-trace", ...)``) without touching
this package, mirroring ``repro.campaign.register_experiment``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple


@dataclass(frozen=True)
class AxisEntry:
    """One named generator of a scenario axis."""

    name: str
    factory: Callable[..., object]
    description: str = ""


class AxisRegistry:
    """Registry of named generator factories for one scenario axis."""

    def __init__(self, axis: str) -> None:
        self.axis = axis
        self._entries: Dict[str, AxisEntry] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., object],
        description: str = "",
        replace: bool = False,
    ) -> None:
        if name in self._entries and not replace:
            raise ValueError(f"{self.axis} {name!r} is already registered")
        self._entries[name] = AxisEntry(name=name, factory=factory, description=description)

    def get(self, name: str) -> AxisEntry:
        if name not in self._entries:
            raise KeyError(
                f"unknown {self.axis} {name!r}; choose from {sorted(self._entries)}"
            )
        return self._entries[name]

    def build(self, name: str, params: Mapping[str, object]):
        """Instantiate the named generator from its JSON parameter dict."""
        entry = self.get(name)
        try:
            return entry.factory(**dict(params))
        except TypeError as exc:
            raise ValueError(f"bad parameters for {self.axis} {name!r}: {exc}") from exc

    def available(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def describe(self) -> Dict[str, str]:
        """``{name: description}`` for CLI listings."""
        return {name: self._entries[name].description for name in self.available()}
