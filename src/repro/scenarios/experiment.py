"""The ``scenario`` experiment kind: any base experiment × three axes.

:class:`ScenarioConfig` names a base experiment kind plus one generator per
scenario axis (churn profile, workload model, adversary placement, each with
its JSON parameter dict, see the sibling modules).  :func:`run_scenario` is
the pickleable campaign entry point: it resolves the optional preset, builds
the axis generators, injects them into the base harness through the
injection points the harnesses expose, and wraps the base result so
``scalar_metrics()``/``to_dict()`` keep the campaign contract.

Axes that a base kind cannot express are *reported*, never silently
dropped: the result's ``ignored_axes`` lists every non-default axis that
did not apply (the analytical ``timing`` model, for instance, has no ring
to place an adversary on), so a sweep over kinds stays honest.

Default axes are injected as ``None`` — the harnesses' historical inline
code paths — so the ``paper-baseline`` scenario reproduces the plain base
kind's records draw-for-draw.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..experiments.ablation import AblationConfig, AnonymityAblation
from ..experiments.anonymity import AnonymityExperiment, AnonymityExperimentConfig
from ..experiments.efficiency import EfficiencyExperiment, EfficiencyExperimentConfig
from ..experiments.load import LoadConfig, LoadExperiment
from ..experiments.results import config_from_dict, jsonify
from ..experiments.security import SecurityExperiment, SecurityExperimentConfig
from ..experiments.timing import TimingExperiment, TimingExperimentConfig
from .adversary import PLACEMENTS
from .churn_profiles import CHURN_PROFILES, AdversarialChurnWrapper
from .presets import get_preset
from .workloads import WORKLOADS

#: axis field -> its registry and the default (paper) generator name.
_AXES = {
    "churn": (CHURN_PROFILES, "exponential"),
    "workload": (WORKLOADS, "uniform"),
    "adversary": (PLACEMENTS, "uniform"),
}

#: base kind -> (config class, axes the harness can apply).
_BASE_KINDS: Dict[str, Tuple[type, Tuple[str, ...]]] = {
    "security": (SecurityExperimentConfig, ("churn", "workload", "adversary")),
    "anonymity": (AnonymityExperimentConfig, ("adversary",)),
    "efficiency": (EfficiencyExperimentConfig, ("workload", "adversary")),
    "load": (LoadConfig, ("churn", "workload", "adversary")),
    "ablation": (AblationConfig, ("adversary",)),
    "timing": (TimingExperimentConfig, ()),
}

#: base kinds that consume the workload axis through the *closed-loop* draw
#: surface only (no engine): models whose essence is an engine-scheduled
#: arrival process (``closed_loop = False``) cannot apply there and are
#: reported ignored.  Any future engine-less kind that grows the workload
#: axis must join this set.
_CLOSED_LOOP_KINDS = frozenset({"efficiency"})


@dataclass
class ScenarioConfig:
    """One scenario trial: a base experiment run under three chosen axes."""

    experiment: str = "security"
    #: optional named preset (see :mod:`repro.scenarios.presets`); fills every
    #: axis field left at its default and merges under the param dicts.
    preset: str = ""
    churn: str = "exponential"
    workload: str = "uniform"
    adversary: str = "uniform"
    churn_params: Dict[str, object] = field(default_factory=dict)
    workload_params: Dict[str, object] = field(default_factory=dict)
    adversary_params: Dict[str, object] = field(default_factory=dict)
    #: parameters forwarded to the base experiment's config dataclass.
    base: Dict[str, object] = field(default_factory=dict)
    seed: int = 0

    # ------------------------------------------------------------- resolution
    def resolved(self) -> "ScenarioConfig":
        """Apply the preset (if any) and return a fully explicit config.

        Axis fields still at their dataclass default take the preset's
        value; the ``*_params`` and ``base`` dicts merge with explicit user
        keys winning.  Preset params only merge when the resolved choice
        still *is* the preset's choice: overriding an axis generator (or the
        base experiment) discards the preset's params for it, since kwargs
        for one generator are meaningless — usually fatal — to another.
        (A user value that *equals* the default is indistinguishable from
        "unset" and yields to the preset — restate it in the params dict if
        that ever matters.)
        """
        if not self.preset:
            return self
        try:
            preset = get_preset(self.preset)
        except KeyError as exc:
            raise ValueError(exc.args[0]) from exc
        defaults = ScenarioConfig()
        fields: Dict[str, object] = {}
        for name in ("experiment", "churn", "workload", "adversary"):
            mine = getattr(self, name)
            fields[name] = mine if mine != getattr(defaults, name) else preset.get(name, mine)
        for name, owner in (
            ("churn_params", "churn"),
            ("workload_params", "workload"),
            ("adversary_params", "adversary"),
            ("base", "experiment"),
        ):
            preset_choice = preset.get(owner, getattr(defaults, owner))
            from_preset = preset.get(name, {}) if fields[owner] == preset_choice else {}
            fields[name] = {**from_preset, **getattr(self, name)}
        return ScenarioConfig(preset=self.preset, seed=self.seed, **fields)

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        cfg = self.resolved()
        if cfg.experiment not in _BASE_KINDS:
            raise ValueError(
                f"unknown base experiment {cfg.experiment!r}; "
                f"choose from {sorted(_BASE_KINDS)}"
            )
        if "seed" in cfg.base:
            raise ValueError("put the seed in the scenario's 'seed' field, not in 'base'")
        for axis, (registry, _default) in _AXES.items():
            name = getattr(cfg, axis)
            params = getattr(cfg, f"{axis}_params")
            try:
                registry.build(name, params)  # also validates the params
            except KeyError as exc:
                raise ValueError(exc.args[0]) from exc
        # Build the typed base config so bad base params fail preflight too.
        cfg.build_base_config()

    def build_base_config(self):
        """The typed config of the base experiment (seed folded in)."""
        config_cls, _axes = _BASE_KINDS[self.experiment]
        return config_from_dict(config_cls, {**self.base, "seed": self.seed})

    def to_dict(self) -> Dict[str, object]:
        return jsonify(asdict(self))


@dataclass
class ScenarioResult:
    """A base experiment's result plus the scenario it ran under."""

    config: ScenarioConfig  #: the *resolved* config the run used
    base_kind: str
    applied_axes: List[str] = field(default_factory=list)
    ignored_axes: List[str] = field(default_factory=list)
    base_result: object = None

    def scalar_metrics(self) -> Dict[str, float]:
        return self.base_result.scalar_metrics()

    def to_dict(self) -> Dict[str, object]:
        base_detail = self.base_result.to_dict()
        base_detail.pop("metrics", None)  # kept once, at this result's top level
        return {
            "config": self.config.to_dict(),
            "metrics": self.scalar_metrics(),
            "scenario": jsonify(
                {
                    "preset": self.config.preset,
                    "base_kind": self.base_kind,
                    "axes": {
                        axis: {
                            "name": getattr(self.config, axis),
                            "params": getattr(self.config, f"{axis}_params"),
                        }
                        for axis in sorted(_AXES)
                    },
                    "applied_axes": sorted(self.applied_axes),
                    "ignored_axes": sorted(self.ignored_axes),
                }
            ),
            "base_result": base_detail,
        }


def run_scenario(config: Optional[ScenarioConfig] = None) -> ScenarioResult:
    """Pickleable ``(config) -> result`` entry point for campaign workers."""
    cfg = (config or ScenarioConfig()).resolved()
    cfg.validate()
    config_cls, supported = _BASE_KINDS[cfg.experiment]
    base_config = cfg.build_base_config()

    # Build only the non-default axes: None keeps the harness's historical
    # inline path, so paper-baseline scenarios match plain runs exactly.
    generators: Dict[str, object] = {}
    for axis, (registry, default) in _AXES.items():
        name = getattr(cfg, axis)
        params = getattr(cfg, f"{axis}_params")
        if name != default or params:
            generators[axis] = registry.build(name, params)

    applied = [axis for axis in generators if axis in supported]
    ignored = [axis for axis in generators if axis not in supported]

    churn_profile = generators.get("churn") if "churn" in applied else None
    workload = generators.get("workload") if "workload" in applied else None
    placement = generators.get("adversary") if "adversary" in applied else None

    # The join-leave attack is temporal: its placement asks for adversary
    # nodes to churn faster, which only a churn-capable harness can honour.
    # On a churn-less base kind the placement itself still applies (it is
    # uniform), but the attack's essence does not — report that under
    # ignored_axes rather than letting the record claim an attack ran.
    session_scale = getattr(placement, "churn_session_scale", 0.0)
    if session_scale:
        if "churn" in supported:
            churn_profile = AdversarialChurnWrapper(
                base=churn_profile,
                session_scale=session_scale,
                downtime_scale=getattr(placement, "churn_downtime_scale", 0.5),
            )
            if "churn" not in applied:
                applied.append("churn")
        elif "churn" not in ignored:
            ignored.append("churn")

    # Closed-loop harnesses measure back-to-back lookups with no engine,
    # consuming the workload through the next_initiator/next_key draw
    # surface.  A model whose essence is an engine-scheduled arrival process
    # (open-loop Poisson) cannot apply there — report it ignored rather than
    # running uniform traffic under the model's name.
    if (
        cfg.experiment in _CLOSED_LOOP_KINDS
        and workload is not None
        and not getattr(workload, "closed_loop", True)
    ):
        applied.remove("workload")
        ignored.append("workload")
        workload = None

    if cfg.experiment == "security":
        base_result = SecurityExperiment(
            base_config,
            churn_profile=churn_profile,
            workload=workload,
            placement=placement,
        ).run()
    elif cfg.experiment == "anonymity":
        base_result = AnonymityExperiment(base_config, placement=placement).run()
    elif cfg.experiment == "efficiency":
        base_result = EfficiencyExperiment(
            base_config, workload=workload, placement=placement
        ).run()
    elif cfg.experiment == "load":
        base_result = LoadExperiment(
            base_config,
            churn_profile=churn_profile,
            workload=workload,
            placement=placement,
        ).run()
    elif cfg.experiment == "ablation":
        base_result = AnonymityAblation(base_config, placement=placement).run()
    else:  # timing — validated above, no injectable surface
        base_result = TimingExperiment(base_config).run()

    return ScenarioResult(
        config=cfg,
        base_kind=cfg.experiment,
        applied_axes=applied,
        ignored_axes=ignored,
        base_result=base_result,
    )
