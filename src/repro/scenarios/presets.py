"""Built-in named scenarios, discoverable from the CLI (``repro list-kinds``).

A preset is a dict of :class:`~repro.scenarios.experiment.ScenarioConfig`
field defaults.  Resolution is layered: the preset fills every axis field
the user left at its default, and the ``*_params``/``base`` dicts merge
with explicit user keys winning — so ``--param preset=flash-crowd --param
base={"n_nodes":60}`` runs the flash-crowd scenario on a smaller network
without restating the rest.  The preset name itself is an ordinary trial
parameter, so preset runs are content-addressed like everything else.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: base-experiment defaults shared by the security-simulation presets —
#: scaled like the CLI's security defaults so a preset runs in seconds.
_SECURITY_BASE: Dict[str, object] = {
    "n_nodes": 150,
    "duration": 400.0,
    "sample_interval": 50.0,
}

PRESETS: Dict[str, Dict[str, object]] = {
    "paper-baseline": {
        "description": "the paper's environment: exponential churn, uniform lookups, uniform 20% adversary",
        "experiment": "security",
        "base": dict(_SECURITY_BASE),
    },
    "heavy-tail-churn": {
        "description": "Weibull (shape 0.45) heavy-tailed sessions, mean-matched to the paper's lambda",
        "experiment": "security",
        "churn": "weibull",
        "churn_params": {"shape": 0.45},
        "base": dict(_SECURITY_BASE),
    },
    "flash-crowd": {
        "description": "40% of the network mass-joins in a burst a quarter into the run",
        "experiment": "security",
        "churn": "flash-crowd",
        "churn_params": {"late_fraction": 0.4, "flash_time_s": 100.0, "flash_window_s": 30.0},
        "base": dict(_SECURITY_BASE),
    },
    "diurnal": {
        "description": "day/night duty-cycled sessions with per-node phase",
        "experiment": "security",
        "churn": "diurnal",
        "churn_params": {"on_seconds": 240.0, "off_seconds": 80.0},
        "base": dict(_SECURITY_BASE),
    },
    "zipf-hotkeys": {
        "description": "Zipf-skewed key popularity (s=1.2) over a 256-key universe",
        "experiment": "security",
        "workload": "zipf",
        "workload_params": {"exponent": 1.2, "n_keys": 256},
        "base": dict(_SECURITY_BASE),
    },
    "hot-key-storm": {
        "description": "uniform traffic with a 90%-intensity single-key storm mid-run",
        "experiment": "security",
        "workload": "hot-key-storm",
        "workload_params": {"storm_start_s": 100.0, "storm_end_s": 250.0, "storm_intensity": 0.9},
        "base": dict(_SECURITY_BASE),
    },
    "zipf-efficiency": {
        "description": "Table 3 efficiency (latency/bandwidth) under Zipf-skewed lookups (s=1.2)",
        "experiment": "efficiency",
        "workload": "zipf",
        "workload_params": {"exponent": 1.2, "n_keys": 256},
        # The paper's 207-node ring at the CLI's quick lookup count.
        "base": {"n_nodes": 207, "lookups_per_scheme": 80},
    },
    "saturation-sweep": {
        "description": "open-loop Poisson load against a churning ring — sweep offered_rps to find the latency knee",
        "experiment": "load",
        "workload": "poisson",
        "base": {
            "n_nodes": 120,
            "duration": 120.0,
            "sample_interval": 20.0,
            "offered_rps": 25.0,
        },
    },
    "join-leave-attack": {
        "description": "adversary nodes churn-attack: 10x shorter sessions to shed suspicion",
        "experiment": "security",
        "adversary": "join-leave",
        "adversary_params": {"session_scale": 0.1},
        "base": dict(_SECURITY_BASE),
    },
    "eclipse-20pct": {
        "description": "anonymity under a 20% adversary ID-clustered around a victim key",
        "experiment": "anonymity",
        "adversary": "eclipse",
        "adversary_params": {"victim_key": "victim-key", "spread": 0.25},
        "base": {
            "n_nodes": 2000,
            "fractions_malicious": [0.2],
            "dummy_counts": [2, 6],
            "concurrent_lookup_rates": [0.01],
            "n_worlds": 100,
        },
    },
}


#: named adaptive engagements (attacker strategy × defense policy) for the
#: ``adaptive`` experiment kind — see :mod:`repro.scenarios.adaptive`.  Same
#: layered resolution as scenario presets: the preset fills controller fields
#: left at their defaults, params/base dicts merge with user keys winning.
ADAPTIVE_PRESETS: Dict[str, Dict[str, object]] = {
    "adaptive-baseline": {
        "description": "static attacker vs static defense: the paper's open-loop run, plus the engagement report",
        "attacker": "static",
        "defense": "static",
        "base": dict(_SECURITY_BASE),
    },
    "re-eclipse-stalemate": {
        "description": "adversary re-places revoked nodes near the victim region; defense stays static",
        "attacker": "re-eclipse",
        "attacker_params": {"window": 8, "budget": 24},
        "defense": "static",
        "base": dict(_SECURITY_BASE),
    },
    "cycling-vs-adaptive": {
        "description": "join-leave cycling inside the identification window vs an adaptive conviction threshold",
        "attacker": "join-leave-cycling",
        "attacker_params": {"period": 45.0, "cycle_fraction": 0.5, "downtime": 5.0},
        "defense": "adaptive-threshold",
        "defense_params": {"escalate_after": 3},
        "base": dict(_SECURITY_BASE),
    },
    "arms-race": {
        "description": "join-leave cycling vs strike-out revocation: latency bought with false positives",
        "attacker": "join-leave-cycling",
        "attacker_params": {"period": 45.0, "cycle_fraction": 0.4, "downtime": 5.0},
        "defense": "aggressive-revoke",
        "defense_params": {"strikes": 2},
        "base": dict(_SECURITY_BASE),
    },
}


def available_presets() -> Tuple[str, ...]:
    return tuple(sorted(PRESETS))


def get_preset(name: str) -> Dict[str, object]:
    if name not in PRESETS:
        raise KeyError(f"unknown scenario preset {name!r}; choose from {sorted(PRESETS)}")
    return PRESETS[name]


def describe_presets() -> Dict[str, str]:
    """``{name: description}`` for CLI listings."""
    return {name: str(PRESETS[name].get("description", "")) for name in available_presets()}


def available_adaptive_presets() -> Tuple[str, ...]:
    return tuple(sorted(ADAPTIVE_PRESETS))


def get_adaptive_preset(name: str) -> Dict[str, object]:
    if name not in ADAPTIVE_PRESETS:
        raise KeyError(
            f"unknown adaptive preset {name!r}; choose from {sorted(ADAPTIVE_PRESETS)}"
        )
    return ADAPTIVE_PRESETS[name]


def describe_adaptive_presets() -> Dict[str, str]:
    """``{name: description}`` for CLI listings."""
    return {
        name: str(ADAPTIVE_PRESETS[name].get("description", ""))
        for name in available_adaptive_presets()
    }
