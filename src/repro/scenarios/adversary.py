"""Adversary placement strategies beyond uniform-random corruption.

The paper compromises a uniformly random 20% of the nodes.  Stronger threat
models from the literature — *Adding Query Privacy to Robust DHTs* (Backes
et al.) analyzes exactly such placements — let the adversary *choose* where
its nodes sit: clustered around a victim key (eclipse), churning in and out
to shed suspicion (join-leave), or occupying the most-referenced positions
of the overlay (high-degree).  A strategy is a callable

    strategy(sorted_ids, n_malicious, stream, space_size) -> positions

returning the corrupted *positions* (indices into ``sorted_ids``); both
:meth:`repro.chord.ring.ChordRing.build` and
:class:`repro.anonymity.ring_model.LightweightRing` accept one, so the same
strategy drives full simulations and analytical anonymity models alike.

Registered names (see :data:`PLACEMENTS`): ``uniform``, ``eclipse``,
``join-leave``, ``high-degree``.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Union

from .registry import AxisRegistry
from .workloads import key_for_label


class PlacementStrategy:
    """Uniform-random placement — the paper's threat model."""

    name = "uniform"

    #: when set (join-leave), the scenario harness wraps the churn profile so
    #: adversary-owned nodes churn this much faster than honest ones.
    churn_session_scale: float = 0.0

    def __call__(
        self, sorted_ids: Sequence[int], n_malicious: int, stream, space_size: int
    ) -> List[int]:
        return stream.sample(range(len(sorted_ids)), n_malicious)


class EclipsePlacement(PlacementStrategy):
    """ID-clustered eclipse region around a victim key.

    The adversary concentrates ``1 - spread`` of its nodes on the contiguous
    arc of positions starting at the victim key's successor — the region
    every lookup for that key must terminate in — and scatters the rest
    uniformly to keep a presence elsewhere.  ``victim_key`` is either a raw
    identifier or a string hashed onto the space.
    """

    name = "eclipse"

    def __init__(self, victim_key: Union[int, str] = "victim", spread: float = 0.0) -> None:
        if not 0.0 <= spread <= 1.0:
            raise ValueError("spread must be in [0, 1]")
        self.victim_key = victim_key
        self.spread = float(spread)

    def victim_id(self, space_size: int) -> int:
        if isinstance(self.victim_key, int):
            return self.victim_key % space_size
        return key_for_label(str(self.victim_key), space_size)

    def __call__(
        self, sorted_ids: Sequence[int], n_malicious: int, stream, space_size: int
    ) -> List[int]:
        n = len(sorted_ids)
        victim_pos = bisect.bisect_left(sorted_ids, self.victim_id(space_size)) % n
        n_scattered = int(round(self.spread * n_malicious))
        n_clustered = min(n_malicious - n_scattered, n)
        clustered = [(victim_pos + i) % n for i in range(n_clustered)]
        clustered_set = set(clustered)
        remaining = [pos for pos in range(n) if pos not in clustered_set]
        scattered = (
            stream.sample(remaining, min(n_scattered, len(remaining))) if n_scattered else []
        )
        return clustered + scattered


class JoinLeavePlacement(PlacementStrategy):
    """Uniform placement plus the join-leave "churn attack" behaviour.

    Placement-wise the adversary looks like the paper's uniform sample; the
    attack is temporal: its nodes keep sessions ``session_scale`` times
    shorter (and downtimes ``downtime_scale`` shorter) than honest nodes,
    re-entering with fresh state before accumulated suspicion can bite.
    The scenario harness reads these attributes and wraps the run's churn
    profile accordingly.
    """

    name = "join-leave"

    def __init__(self, session_scale: float = 0.1, downtime_scale: float = 0.5) -> None:
        if session_scale <= 0 or downtime_scale <= 0:
            raise ValueError("scales must be positive")
        self.churn_session_scale = float(session_scale)
        self.churn_downtime_scale = float(downtime_scale)


class HighDegreePlacement(PlacementStrategy):
    """Corrupt the overlay's most-referenced positions.

    In a Chord-like overlay a node owning a large identifier gap before it
    is the successor of many finger targets, so its in-degree — and the
    share of traffic it can observe or bias — scales with that gap.  The
    strategy corrupts the ``n_malicious`` positions with the largest
    predecessor gaps (ties broken by position for determinism).
    """

    name = "high-degree"

    def __call__(
        self, sorted_ids: Sequence[int], n_malicious: int, stream, space_size: int
    ) -> List[int]:
        n = len(sorted_ids)
        gaps = [
            (sorted_ids[pos] - sorted_ids[pos - 1]) % space_size for pos in range(n)
        ]
        ranked = sorted(range(n), key=lambda pos: (-gaps[pos], pos))
        return ranked[:n_malicious]


PLACEMENTS = AxisRegistry("adversary placement")
PLACEMENTS.register(
    "uniform", PlacementStrategy, "the paper's uniform-random corrupted sample"
)
PLACEMENTS.register(
    "eclipse", EclipsePlacement, "ID-clustered eclipse region around a victim key"
)
PLACEMENTS.register(
    "join-leave", JoinLeavePlacement, "uniform placement whose nodes churn-attack (fast join/leave)"
)
PLACEMENTS.register(
    "high-degree", HighDegreePlacement, "corrupt the largest-gap (most-referenced) positions"
)
