"""The ``adaptive`` experiment kind: attacker strategy × defense policy.

Where the ``scenario`` kind varies the *environment* a frozen adversary runs
in, ``adaptive`` varies the **controllers**: a mid-run attacker strategy and
a mid-run defense policy (see :mod:`repro.scenarios.controllers`), both
driven by the engine's hook bus, closing the identification ⇄ adaptation
loop the paper's open-loop evaluation leaves open.

:class:`AdaptiveConfig` names one controller per registry (plus their JSON
parameter dicts) and the base :class:`SecurityExperimentConfig` parameters;
:func:`run_adaptive` is the pickleable campaign entry point.  The result
wraps the security result, whose engagement report (per-round
identification latency, residual compromised fraction, revocations,
re-placements) is only emitted on this path — plain ``security`` records
stay byte-identical.

Sweep example::

    spec = CampaignSpec(kind="adaptive",
                        base={"base": {"n_nodes": 150, "duration": 400.0}},
                        grid={"attacker": ["static", "re-eclipse"],
                              "defense": ["static", "aggressive-revoke"]},
                        seeds=(0, 1, 2, 3))
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from ..experiments.results import config_from_dict, jsonify
from ..experiments.security import SecurityExperiment, SecurityExperimentConfig
from .controllers import ATTACKER_STRATEGIES, DEFENSE_POLICIES
from .presets import get_adaptive_preset

#: controller field -> its registry (both default to "static").
_CONTROLLER_AXES = {
    "attacker": ATTACKER_STRATEGIES,
    "defense": DEFENSE_POLICIES,
}


@dataclass
class AdaptiveConfig:
    """One adaptive engagement: a security run under two mid-run controllers."""

    #: optional named preset (see ``ADAPTIVE_PRESETS``); fills controller
    #: fields left at their default and merges under the param dicts.
    preset: str = ""
    attacker: str = "static"
    defense: str = "static"
    attacker_params: Dict[str, object] = field(default_factory=dict)
    defense_params: Dict[str, object] = field(default_factory=dict)
    #: parameters forwarded to :class:`SecurityExperimentConfig`.
    base: Dict[str, object] = field(default_factory=dict)
    seed: int = 0

    # ------------------------------------------------------------- resolution
    def resolved(self) -> "AdaptiveConfig":
        """Apply the preset (if any) and return a fully explicit config.

        Same layering as :meth:`ScenarioConfig.resolved`: controller fields
        still at their default take the preset's value; param dicts and
        ``base`` merge with explicit user keys winning, and a preset's
        controller params only merge while the resolved controller still *is*
        the preset's controller.
        """
        if not self.preset:
            return self
        try:
            preset = get_adaptive_preset(self.preset)
        except KeyError as exc:
            raise ValueError(exc.args[0]) from exc
        defaults = AdaptiveConfig()
        fields: Dict[str, object] = {}
        for name in _CONTROLLER_AXES:
            mine = getattr(self, name)
            fields[name] = mine if mine != getattr(defaults, name) else preset.get(name, mine)
        for name, owner in (
            ("attacker_params", "attacker"),
            ("defense_params", "defense"),
        ):
            from_preset = preset.get(name, {}) if fields[owner] == preset.get(owner, getattr(defaults, owner)) else {}
            fields[name] = {**from_preset, **getattr(self, name)}
        fields["base"] = {**preset.get("base", {}), **self.base}
        return AdaptiveConfig(preset=self.preset, seed=self.seed, **fields)

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        cfg = self.resolved()
        if "seed" in cfg.base:
            raise ValueError("put the seed in the adaptive config's 'seed' field, not in 'base'")
        for name, registry in _CONTROLLER_AXES.items():
            try:
                registry.build(getattr(cfg, name), getattr(cfg, f"{name}_params"))
            except KeyError as exc:
                raise ValueError(exc.args[0]) from exc
        cfg.build_base_config()

    def build_base_config(self) -> SecurityExperimentConfig:
        """The typed security config of the engagement (seed folded in)."""
        return config_from_dict(SecurityExperimentConfig, {**self.base, "seed": self.seed})

    def to_dict(self) -> Dict[str, object]:
        return jsonify(asdict(self))


@dataclass
class AdaptiveResult:
    """A security result plus the engagement it was fought under."""

    config: AdaptiveConfig  #: the *resolved* config the run used
    base_result: object = None

    def scalar_metrics(self) -> Dict[str, float]:
        # Includes the engagement_* scalars: the security harness emits them
        # whenever controllers are attached, which this kind always does.
        return self.base_result.scalar_metrics()

    def to_dict(self) -> Dict[str, object]:
        base_detail = self.base_result.to_dict()
        base_detail.pop("metrics", None)  # kept once, at this result's top level
        return {
            "config": self.config.to_dict(),
            "metrics": self.scalar_metrics(),
            "adaptive": jsonify(
                {
                    "preset": self.config.preset,
                    "attacker": {
                        "name": self.config.attacker,
                        "params": self.config.attacker_params,
                    },
                    "defense": {
                        "name": self.config.defense,
                        "params": self.config.defense_params,
                    },
                }
            ),
            "base_result": base_detail,
        }


def run_adaptive(config: Optional[AdaptiveConfig] = None) -> AdaptiveResult:
    """Pickleable ``(config) -> result`` entry point for campaign workers."""
    cfg = (config or AdaptiveConfig()).resolved()
    cfg.validate()
    base_config = cfg.build_base_config()
    attacker = ATTACKER_STRATEGIES.build(cfg.attacker, cfg.attacker_params)
    defense = DEFENSE_POLICIES.build(cfg.defense, cfg.defense_params)
    base_result = SecurityExperiment(base_config, controllers=(attacker, defense)).run()
    return AdaptiveResult(config=cfg, base_result=base_result)
