"""Churn profiles beyond the paper's exponential model.

The paper (Section 5.1) draws session lengths from an exponential
distribution.  Measurement studies of deployed DHTs — Tribler/BitTorrent
session traces in particular — consistently find *heavy-tailed* lifetimes
(many short sessions, a few very long ones), mass-join flash crowds, and
diurnal on/off cycles, none of which the exponential model can express.
Each profile here plugs into :class:`repro.sim.churn.ChurnProcess` through
the :class:`~repro.sim.churn.ChurnProfile` interface and draws all of its
randomness from the process's ``"churn"`` stream, so scenario runs stay
bit-for-bit reproducible.

Registered names (see :data:`CHURN_PROFILES`):

* ``exponential`` — the paper's model (the :mod:`repro.sim.churn` default);
* ``weibull`` — Weibull sessions with shape < 1 (heavy tail), scaled so the
  mean matches the configured mean lifetime;
* ``pareto`` — Pareto sessions (power-law tail), mean-matched likewise;
* ``flash-crowd`` — a fraction of the population starts offline and joins
  in one burst window, then churns exponentially;
* ``diurnal`` — deterministic day/night duty cycle with per-node phase;
* ``trace`` — exact replay of a JSON leave/join event list.
"""

from __future__ import annotations

import json
import math
from typing import List, Optional, Sequence, Set

from ..sim.churn import ChurnConfig, ChurnProfile, ChurnProcess
from .registry import AxisRegistry

#: effectively-never for schedules that must park an event (engine-safe inf).
_NEVER_S = 1e18


class WeibullChurnProfile(ChurnProfile):
    """Weibull session lengths; ``shape < 1`` gives the heavy tail.

    The scale is derived from the configured mean lifetime
    (``mean = scale * Gamma(1 + 1/shape)``), so swapping this profile in
    changes the *distribution* of sessions while preserving the paper's mean
    — the comparison the heavy-tail scenarios are after.
    """

    name = "weibull"

    def __init__(self, shape: float = 0.5) -> None:
        if shape <= 0:
            raise ValueError("weibull shape must be positive")
        self.shape = float(shape)

    def _scale(self, mean: float) -> float:
        return mean / math.gamma(1.0 + 1.0 / self.shape)

    def session_length(self, stream, now: float, node_id: int) -> float:
        return stream.weibullvariate(self._scale(self.config.mean_lifetime_seconds), self.shape)


class ParetoChurnProfile(ChurnProfile):
    """Pareto (power-law) session lengths with mean-matched minimum."""

    name = "pareto"

    def __init__(self, alpha: float = 1.5) -> None:
        if alpha <= 1.0:
            raise ValueError("pareto alpha must exceed 1 (finite mean)")
        self.alpha = float(alpha)

    def session_length(self, stream, now: float, node_id: int) -> float:
        x_min = self.config.mean_lifetime_seconds * (self.alpha - 1.0) / self.alpha
        return x_min * stream.paretovariate(self.alpha)


class FlashCrowdChurnProfile(ChurnProfile):
    """A mass join: ``late_fraction`` of the nodes arrive in one burst.

    Latecomers start the run offline (departing at t=0, so the DHT layer
    sees a consistent leave) and rejoin inside
    ``[flash_time_s, flash_time_s + flash_window_s)``; from then on everyone
    churns with exponential sessions.  With churn otherwise disabled
    (``mean_lifetime_seconds`` unset) the flash still happens — joined nodes
    simply never depart again.
    """

    name = "flash-crowd"

    def __init__(
        self,
        late_fraction: float = 0.4,
        flash_time_s: float = 100.0,
        flash_window_s: float = 20.0,
    ) -> None:
        if not 0.0 <= late_fraction <= 1.0:
            raise ValueError("late_fraction must be in [0, 1]")
        if flash_time_s < 0 or flash_window_s < 0:
            raise ValueError("flash times must be non-negative")
        self.late_fraction = float(late_fraction)
        self.flash_time_s = float(flash_time_s)
        self.flash_window_s = float(flash_window_s)

    def enabled(self, config: ChurnConfig) -> bool:
        return config.enabled or self.late_fraction > 0.0

    def on_start(self, process: ChurnProcess, node_ids: List[int]) -> None:
        stream = process.rng.stream("churn")
        n_late = int(round(self.late_fraction * len(node_ids)))
        late: Set[int] = set(stream.sample(node_ids, n_late)) if n_late else set()
        for node_id in node_ids:
            process.set_online(node_id, True)
            if node_id in late:
                process.force_depart(node_id)
                delay = self.flash_time_s + (
                    stream.uniform(0.0, self.flash_window_s) if self.flash_window_s else 0.0
                )
                process.schedule_rejoin(node_id, delay=delay)
            elif self.config.enabled:
                process.schedule_departure(node_id)

    def session_length(self, stream, now: float, node_id: int) -> float:
        if not self.config.enabled:
            return _NEVER_S  # flash-only scenario: joined nodes stay up
        return super().session_length(stream, now, node_id)


class DiurnalChurnProfile(ChurnProfile):
    """Day/night duty cycle: up for ``on_seconds``, down for ``off_seconds``.

    Each node's cycle is phase-shifted deterministically by its id (so the
    population doesn't blink in unison unless ``synchronized=True``), with a
    small uniform jitter on every transition to keep event times distinct.
    """

    name = "diurnal"

    def __init__(
        self,
        on_seconds: float = 240.0,
        off_seconds: float = 60.0,
        jitter_s: float = 5.0,
        synchronized: bool = False,
    ) -> None:
        if on_seconds <= 0 or off_seconds <= 0:
            raise ValueError("on/off durations must be positive")
        self.on_seconds = float(on_seconds)
        self.off_seconds = float(off_seconds)
        self.jitter_s = max(float(jitter_s), 0.0)
        self.synchronized = bool(synchronized)

    def enabled(self, config: ChurnConfig) -> bool:
        return True

    @property
    def period(self) -> float:
        return self.on_seconds + self.off_seconds

    def _phase(self, node_id: int, now: float) -> float:
        offset = 0.0 if self.synchronized else (node_id % 9973) / 9973.0 * self.period
        return (now + offset) % self.period

    def _jitter(self, stream) -> float:
        return stream.uniform(0.0, self.jitter_s) if self.jitter_s else 0.0

    def session_length(self, stream, now: float, node_id: int) -> float:
        local = self._phase(node_id, now)
        if local < self.on_seconds:  # daytime: stay up until this node's night
            return (self.on_seconds - local) + self._jitter(stream)
        return self._jitter(stream) + 1e-3  # joined during night: leave at once

    def downtime(self, stream, now: float, node_id: int) -> float:
        local = self._phase(node_id, now)
        if local >= self.on_seconds:  # night: sleep until this node's dawn
            return (self.period - local) + self._jitter(stream)
        return self._jitter(stream) + 1e-3  # departed during day: come back


class TraceChurnProfile(ChurnProfile):
    """Exact replay of a leave/join event list.

    ``events`` is a list of ``{"t": seconds, "node": index, "op":
    "leave"|"join"}`` — node indices address the started population in
    order, so a trace is portable across network sizes.  Inline event lists
    are the campaign-safe form (they are part of the trial's parameters and
    therefore of its content-addressed id); ``path`` loads the same JSON
    shape from a file, whose *contents* the trial id cannot see — prefer
    ``events`` for anything you want resumable.
    """

    name = "trace"

    def __init__(self, events: Sequence[dict] = (), path: str = "") -> None:
        if path:
            with open(path, "r", encoding="utf-8") as handle:
                events = list(events) + list(json.load(handle))
        self.events: List[dict] = []
        for event in events:
            op = str(event.get("op", ""))
            if op not in ("leave", "join"):
                raise ValueError(f"trace op must be 'leave' or 'join', got {op!r}")
            self.events.append(
                {"t": float(event["t"]), "node": int(event["node"]), "op": op}
            )
        self.events.sort(key=lambda e: (e["t"], e["node"]))

    def enabled(self, config: ChurnConfig) -> bool:
        return bool(self.events)

    def on_start(self, process: ChurnProcess, node_ids: List[int]) -> None:
        for node_id in node_ids:
            process.set_online(node_id, True)
        for event in self.events:
            node_id = node_ids[event["node"] % len(node_ids)]
            action = (
                process.force_depart if event["op"] == "leave" else process.force_rejoin
            )
            process.engine.schedule(
                event["t"], lambda a=action, n=node_id: a(n), name=f"trace-{event['op']}"
            )


class AdversarialChurnWrapper(ChurnProfile):
    """Scales a base profile's sessions/downtimes for adversary-owned nodes.

    This is the join-leave "churn attack": malicious nodes cycle through the
    network much faster than honest ones (short sessions, short downtimes)
    to shed accumulated suspicion and re-enter with fresh state.  Which
    nodes are malicious arrives via :meth:`bind_population`, called by the
    harness once the ring exists.
    """

    def __init__(
        self,
        base: Optional[ChurnProfile] = None,
        session_scale: float = 0.1,
        downtime_scale: float = 0.5,
    ) -> None:
        if session_scale <= 0 or downtime_scale <= 0:
            raise ValueError("scales must be positive")
        self.base = base or ChurnProfile()
        self.session_scale = float(session_scale)
        self.downtime_scale = float(downtime_scale)
        self._malicious: Set[int] = set()

    def bind(self, config: ChurnConfig) -> None:
        super().bind(config)
        self.base.bind(config)

    def enabled(self, config: ChurnConfig) -> bool:
        return self.base.enabled(config)

    def bind_population(self, malicious_ids: Set[int]) -> None:
        self._malicious = set(malicious_ids)
        self.base.bind_population(malicious_ids)

    def on_start(self, process: ChurnProcess, node_ids: List[int]) -> None:
        self.base.on_start(process, node_ids)

    def session_length(self, stream, now: float, node_id: int) -> float:
        value = self.base.session_length(stream, now, node_id)
        return value * self.session_scale if node_id in self._malicious else value

    def downtime(self, stream, now: float, node_id: int) -> float:
        value = self.base.downtime(stream, now, node_id)
        return value * self.downtime_scale if node_id in self._malicious else value


CHURN_PROFILES = AxisRegistry("churn profile")
CHURN_PROFILES.register(
    "exponential", ChurnProfile, "the paper's exponential sessions (Section 5.1)"
)
CHURN_PROFILES.register(
    "weibull", WeibullChurnProfile, "heavy-tailed Weibull sessions (shape < 1), mean-matched"
)
CHURN_PROFILES.register(
    "pareto", ParetoChurnProfile, "power-law Pareto sessions, mean-matched"
)
CHURN_PROFILES.register(
    "flash-crowd", FlashCrowdChurnProfile, "mass join: a node fraction arrives in one burst"
)
CHURN_PROFILES.register(
    "diurnal", DiurnalChurnProfile, "day/night duty cycle with per-node phase"
)
CHURN_PROFILES.register(
    "trace", TraceChurnProfile, "exact replay of a JSON leave/join event list"
)
