"""Mid-run attacker strategies and defense policies (the adaptive loop).

Octopus's headline claim is that identification + revocation drives the
adversary out *over time* — an open-loop claim as long as the adversary is
frozen at build time.  These controllers close both loops over the
:mod:`repro.sim.hooks` bus:

**Attacker strategies** (``ATTACKER_STRATEGIES``)

* ``static`` — the paper's adversary: no mid-run adaptation.
* ``re-eclipse`` — every time a compromised node is revoked, compromise a
  fresh honest node near the victim region, re-installing the run's attack
  behaviour on it (the adaptive-eclipse threat the ROADMAP carried over).
* ``join-leave-cycling`` — periodically force short depart/rejoin cycles on
  compromised nodes so investigations find them offline (a "churned during
  investigation" false alarm) instead of convicting them.

**Defense policies** (``DEFENSE_POLICIES``)

* ``static`` — the paper's fixed parameters.
* ``adaptive-threshold`` — widens the repeat-churn conviction window
  (``OctopusConfig.churned_recently_window``) while suspects keep escaping
  investigations by churning, and narrows it again when that aggressiveness
  convicts honest nodes.
* ``aggressive-revoke`` — keeps a per-suspect strike count of
  churn-escapes and revokes directly once a suspect exceeds its strike
  budget, trading false positives for identification latency.

All controllers draw only from named streams of ``ctx.rng`` (a dedicated
spawn of the experiment's master source), so adaptive runs are exactly
reproducible from (config, seed).
"""

from __future__ import annotations

from typing import Dict

from ..experiments.security import ATTACKS
from ..sim.control import Controller
from ..sim.hooks import CertificateRevoked, VerdictIssued
from .registry import AxisRegistry
from .workloads import key_for_label


# ----------------------------------------------------------------- attackers
class StaticAttacker(Controller):
    """The paper's adversary: compromised at build time, never adapts."""

    name = "static"
    role = "attacker"


class ReEclipseStrategy(Controller):
    """Re-place compromised nodes near a victim region after each revocation.

    Parameters
    ----------
    victim_key:
        Label (or raw id) hashed onto the ring; replacements are drawn from
        the honest alive nodes clockwise-closest to it — the same region
        :class:`~repro.scenarios.adversary.EclipsePlacement` clusters on.
    window:
        Candidate pool size: the ``window`` honest nodes nearest the victim.
    budget:
        Maximum number of re-placements over the run (the adversary's supply
        of fresh identities is finite — certificates cost something).
    """

    name = "re-eclipse"
    role = "attacker"

    def __init__(self, victim_key: object = "victim-key", window: int = 8, budget: int = 24) -> None:
        super().__init__()
        if window < 1:
            raise ValueError("window must be at least 1")
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.victim_key = victim_key
        self.window = int(window)
        self.budget = int(budget)
        self.replacements_made = 0

    def on_start(self) -> None:
        self.ctx.hooks.subscribe(CertificateRevoked, self._on_revoked)

    def _victim_id(self, space_size: int) -> int:
        if isinstance(self.victim_key, int):
            return self.victim_key % space_size
        return key_for_label(str(self.victim_key), space_size)

    def _on_revoked(self, event: CertificateRevoked) -> None:
        ctx = self.ctx
        ring = ctx.network.ring
        # Only react to losing one of our own; defense policies may revoke
        # honest collateral, which costs the adversary nothing.
        if not ring.is_malicious(event.node_id):
            return
        if self.replacements_made >= self.budget:
            return
        candidates = [nid for nid in ring.honest_ids(alive_only=True) if nid not in ring.removed_ids]
        if not candidates:
            return
        space = ring.space
        victim = self._victim_id(space.size)
        candidates.sort(key=lambda nid: (space.distance(victim, nid), nid))
        pool = candidates[: self.window]
        target = ctx.rng.stream("re-eclipse").choice(pool)
        if not ctx.network.compromise(target, now=event.time, reason="re-eclipse"):
            return
        self.replacements_made += 1
        # Arm the fresh node with the same attack behaviour the run uses.
        factory = ATTACKS.get(getattr(ctx.config, "attack", "none"))
        if factory is not None and ctx.adversary is not None:
            cfg = ctx.config
            ctx.adversary.install_behavior(lambda adv, node: factory(adv, node, cfg), [target])


class JoinLeaveCyclingStrategy(Controller):
    """Churn compromised nodes inside the identification window.

    Every ``period`` seconds a ``cycle_fraction`` sample of the alive
    compromised nodes force-departs and rejoins after ``downtime`` seconds,
    so any investigation that reaches them finds them offline — a false
    alarm rather than a conviction — until the repeat-churn window (or an
    adaptive defense) catches on.  Inert when the run has no churn process.
    """

    name = "join-leave-cycling"
    role = "attacker"

    def __init__(self, period: float = 45.0, cycle_fraction: float = 0.5, downtime: float = 5.0) -> None:
        super().__init__()
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < cycle_fraction <= 1.0:
            raise ValueError("cycle_fraction must be in (0, 1]")
        if downtime < 0:
            raise ValueError("downtime must be non-negative")
        self.period = float(period)
        self.cycle_fraction = float(cycle_fraction)
        self.downtime = float(downtime)

    def on_start(self) -> None:
        if self.ctx.churn is None:
            return
        self.ctx.engine.schedule_periodic(self.period, self._cycle, name="attacker-cycle")

    def _cycle(self) -> None:
        ctx = self.ctx
        ring = ctx.network.ring
        churn = ctx.churn
        pool = [nid for nid in ring.malicious_alive_ids() if nid not in ring.removed_ids]
        if not pool:
            return
        pool.sort()
        k = max(1, int(round(self.cycle_fraction * len(pool))))
        stream = ctx.rng.stream("join-leave-cycling")
        for nid in sorted(stream.sample(pool, k)):
            churn.force_depart(nid)
            churn.schedule_rejoin(nid, delay=self.downtime)
            if ctx.recorder is not None:
                ctx.recorder.bump("attacker_forced_cycles")


# ------------------------------------------------------------------- defenses
class StaticDefense(Controller):
    """The paper's defense: fixed thresholds, verdict-driven revocation only."""

    name = "static"
    role = "defense"


class AdaptiveThresholdPolicy(Controller):
    """Tune the repeat-churn conviction window from verdict feedback.

    A *larger* ``churned_recently_window`` convicts repeat churners sooner
    (any two escapes within the window convict) at the cost of catching
    honest nodes that legitimately churn.  The policy widens the window by
    ``grow`` after every ``escalate_after`` churn-escapes, and shrinks it by
    ``shrink`` whenever the aggressiveness convicts an honest node.
    """

    name = "adaptive-threshold"
    role = "defense"

    def __init__(
        self,
        grow: float = 2.0,
        shrink: float = 0.5,
        escalate_after: int = 3,
        floor_s: float = 60.0,
        cap_s: float = 24 * 3600.0,
    ) -> None:
        super().__init__()
        if grow < 1.0 or not 0.0 < shrink <= 1.0:
            raise ValueError("grow must be >= 1 and shrink in (0, 1]")
        if escalate_after < 1:
            raise ValueError("escalate_after must be at least 1")
        if floor_s <= 0 or cap_s < floor_s:
            raise ValueError("need 0 < floor_s <= cap_s")
        self.grow = float(grow)
        self.shrink = float(shrink)
        self.escalate_after = int(escalate_after)
        self.floor_s = float(floor_s)
        self.cap_s = float(cap_s)
        self._escapes_since_adjust = 0

    def on_start(self) -> None:
        self.ctx.hooks.subscribe(VerdictIssued, self._on_verdict)

    def _on_verdict(self, event: VerdictIssued) -> None:
        identification = self.ctx.network.identification
        window = identification.config.churned_recently_window
        if event.identified is None and "churned" in event.reason:
            self._escapes_since_adjust += 1
            if self._escapes_since_adjust >= self.escalate_after:
                self._escapes_since_adjust = 0
                identification.config.churned_recently_window = min(window * self.grow, self.cap_s)
                if self.ctx.recorder is not None:
                    self.ctx.recorder.bump("defense_threshold_adjustments")
        elif event.is_false_positive and "churned" in event.reason:
            identification.config.churned_recently_window = max(window * self.shrink, self.floor_s)
            if self.ctx.recorder is not None:
                self.ctx.recorder.bump("defense_threshold_adjustments")


class AggressiveRevokePolicy(Controller):
    """Revoke suspects directly once they rack up ``strikes`` churn-escapes.

    The identification service only convicts a churned suspect on a repeat
    within the window; this policy keeps its own per-suspect strike count
    across the whole run and revokes out-of-band once it exceeds the budget.
    Faster against join-leave cycling, but honest nodes that repeatedly
    churn mid-investigation become collateral (visible as extra revocations
    without a matching identification in the engagement report).
    """

    name = "aggressive-revoke"
    role = "defense"

    def __init__(self, strikes: int = 2) -> None:
        super().__init__()
        if strikes < 1:
            raise ValueError("strikes must be at least 1")
        self.strikes = int(strikes)
        self._strike_counts: Dict[int, int] = {}

    def on_start(self) -> None:
        self.ctx.hooks.subscribe(VerdictIssued, self._on_verdict)

    def _on_verdict(self, event: VerdictIssued) -> None:
        if event.identified is not None or event.subject is None:
            return
        if "churned" not in event.reason:
            return
        count = self._strike_counts.get(event.subject, 0) + 1
        self._strike_counts[event.subject] = count
        if count < self.strikes:
            return
        network = self.ctx.network
        if network.ca.revoke(event.subject, now=event.time, reason="strike-out"):
            network.ring.remove_permanently(event.subject)
            if self.ctx.recorder is not None:
                self.ctx.recorder.bump("defense_policy_revocations")


# ------------------------------------------------------------------ registries
ATTACKER_STRATEGIES = AxisRegistry("attacker strategy")
ATTACKER_STRATEGIES.register(
    "static", StaticAttacker, "build-time compromise only; no mid-run adaptation (the paper's adversary)"
)
ATTACKER_STRATEGIES.register(
    "re-eclipse",
    ReEclipseStrategy,
    "compromise a fresh honest node near the victim region after every revocation",
)
ATTACKER_STRATEGIES.register(
    "join-leave-cycling",
    JoinLeaveCyclingStrategy,
    "force short depart/rejoin cycles on compromised nodes to dodge investigations",
)

DEFENSE_POLICIES = AxisRegistry("defense policy")
DEFENSE_POLICIES.register(
    "static", StaticDefense, "fixed thresholds, verdict-driven revocation only (the paper's defense)"
)
DEFENSE_POLICIES.register(
    "adaptive-threshold",
    AdaptiveThresholdPolicy,
    "widen the repeat-churn conviction window while suspects keep escaping, shrink on honest convictions",
)
DEFENSE_POLICIES.register(
    "aggressive-revoke",
    AggressiveRevokePolicy,
    "revoke suspects outright after a budget of churn-escape strikes",
)
