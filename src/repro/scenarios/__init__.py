"""Declarative workload & adversary scenarios.

The paper evaluates Octopus in one stylized environment: exponential churn,
uniform lookup targets, a uniformly random 20% adversary.  This package
turns each of those choices into a pluggable *axis* and a scenario into a
named point in the cross product:

* **churn profiles** (:mod:`~repro.scenarios.churn_profiles`) —
  ``exponential`` · ``weibull`` · ``pareto`` · ``flash-crowd`` ·
  ``diurnal`` · ``trace``;
* **workload models** (:mod:`~repro.scenarios.workloads`) — ``uniform`` ·
  ``zipf`` · ``poisson`` · ``hot-key-storm``;
* **adversary placements** (:mod:`~repro.scenarios.adversary`) —
  ``uniform`` · ``eclipse`` · ``join-leave`` · ``high-degree``.

Each axis is a registry of seedable generator factories
(:class:`~repro.scenarios.registry.AxisRegistry`); the experiment harnesses
expose matching injection points (``ChurnProcess(profile=...)``,
``SecurityExperiment(workload=..., placement=...)``, ...).  The ``scenario``
campaign kind (:mod:`~repro.scenarios.experiment`) runs any base experiment
under any axis combination::

    python -m repro campaign --kind scenario \\
        --param preset=flash-crowd --seeds 0-4 --out results/flash

    spec = CampaignSpec(kind="scenario",
                        base={"experiment": "security"},
                        grid={"preset": ["paper-baseline", "heavy-tail-churn"]},
                        seeds=(0, 1, 2, 3))

Built-in presets (:mod:`~repro.scenarios.presets`) cover the headline
questions: ``paper-baseline``, ``heavy-tail-churn``, ``flash-crowd``,
``diurnal``, ``zipf-hotkeys``, ``hot-key-storm``, ``zipf-efficiency``,
``join-leave-attack``, ``eclipse-20pct`` — ``repro list-kinds`` prints
them all.

Two further *controller* registries close the loop mid-run over the
engine's hook bus (:mod:`~repro.scenarios.controllers`):

* **attacker strategies** (``ATTACKER_STRATEGIES``) — ``static`` ·
  ``re-eclipse`` · ``join-leave-cycling``;
* **defense policies** (``DEFENSE_POLICIES``) — ``static`` ·
  ``adaptive-threshold`` · ``aggressive-revoke``.

The ``adaptive`` campaign kind (:mod:`~repro.scenarios.adaptive`) sweeps
their cross product and emits a per-round engagement report.
"""

from .adaptive import AdaptiveConfig, AdaptiveResult, run_adaptive
from .adversary import (
    PLACEMENTS,
    EclipsePlacement,
    HighDegreePlacement,
    JoinLeavePlacement,
    PlacementStrategy,
)
from .churn_profiles import (
    CHURN_PROFILES,
    AdversarialChurnWrapper,
    DiurnalChurnProfile,
    FlashCrowdChurnProfile,
    ParetoChurnProfile,
    TraceChurnProfile,
    WeibullChurnProfile,
)
from .controllers import (
    ATTACKER_STRATEGIES,
    DEFENSE_POLICIES,
    AdaptiveThresholdPolicy,
    AggressiveRevokePolicy,
    JoinLeaveCyclingStrategy,
    ReEclipseStrategy,
)
from .experiment import ScenarioConfig, ScenarioResult, run_scenario
from .presets import (
    ADAPTIVE_PRESETS,
    PRESETS,
    available_adaptive_presets,
    available_presets,
    describe_adaptive_presets,
    describe_presets,
    get_adaptive_preset,
    get_preset,
)
from .registry import AxisEntry, AxisRegistry
from .workloads import (
    WORKLOADS,
    HotKeyStormWorkload,
    PoissonWorkload,
    ZipfWorkload,
    key_for_label,
)

__all__ = [
    "ADAPTIVE_PRESETS",
    "ATTACKER_STRATEGIES",
    "AdaptiveConfig",
    "AdaptiveResult",
    "AdaptiveThresholdPolicy",
    "AggressiveRevokePolicy",
    "AxisEntry",
    "AxisRegistry",
    "AdversarialChurnWrapper",
    "CHURN_PROFILES",
    "DEFENSE_POLICIES",
    "DiurnalChurnProfile",
    "EclipsePlacement",
    "FlashCrowdChurnProfile",
    "HighDegreePlacement",
    "HotKeyStormWorkload",
    "JoinLeaveCyclingStrategy",
    "JoinLeavePlacement",
    "PLACEMENTS",
    "PRESETS",
    "ParetoChurnProfile",
    "PlacementStrategy",
    "PoissonWorkload",
    "ReEclipseStrategy",
    "ScenarioConfig",
    "ScenarioResult",
    "TraceChurnProfile",
    "WORKLOADS",
    "WeibullChurnProfile",
    "ZipfWorkload",
    "available_adaptive_presets",
    "available_presets",
    "describe_adaptive_presets",
    "describe_presets",
    "get_adaptive_preset",
    "get_preset",
    "key_for_label",
    "run_adaptive",
    "run_scenario",
]
