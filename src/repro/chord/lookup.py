"""Chord lookups.

This module implements the baseline lookup machinery every scheme in the
paper builds on:

* :func:`iterative_lookup` — the initiator contacts each intermediate node
  directly, asking for its routing table (fingers + successors in Octopus's
  customised Chord) and greedily approaching the key.  Malicious nodes answer
  through their behaviour hooks, so lookup-bias attacks act here.
* :func:`oracle_query_path` — the sequence of nodes an *honest* lookup visits,
  computed from ground truth.  The anonymity estimators use it to build the
  pre-simulated distributions (ξ, γ, χ) from Section 6 / Appendix III.

A :class:`LookupResult` records everything the experiments need: the path,
the claimed owner, whether it matches ground truth, and which queried nodes
were malicious.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from .idspace import IdSpace
from .ring import ChordRing
from .routing_table import RoutingTableSnapshot


@dataclass
class LookupResult:
    """Outcome of a single lookup."""

    key: int
    initiator: int
    path: List[int] = field(default_factory=list)
    result: Optional[int] = None
    true_owner: Optional[int] = None
    hops: int = 0
    succeeded: bool = False
    biased: bool = False
    malicious_queried: List[int] = field(default_factory=list)
    tables_seen: List[RoutingTableSnapshot] = field(default_factory=list)

    @property
    def correct(self) -> bool:
        """Whether the returned owner matches ground truth."""
        return self.succeeded and self.result == self.true_owner


def iterative_lookup(
    ring: ChordRing,
    initiator_id: int,
    key: int,
    max_hops: Optional[int] = None,
    now: float = 0.0,
    purpose: str = "lookup",
    on_query: Optional[Callable[[int, RoutingTableSnapshot], None]] = None,
    start_node: Optional[int] = None,
    collect_tables: bool = False,
) -> LookupResult:
    """Perform an iterative lookup for ``key`` starting from ``initiator_id``.

    The initiator repeatedly queries the node that most closely precedes the
    key according to the tables it has seen, exactly as in Chord; the lookup
    terminates when a queried node's immediate successor succeeds the key, in
    which case that successor is reported as the key owner (Section 4.3).

    Parameters
    ----------
    on_query:
        Optional callback invoked as ``on_query(queried_node_id, table)`` for
        every intermediate query — used by the anonymity experiments to model
        the adversary's observations.
    start_node:
        Override the first queried node (used by anonymous lookups whose first
        hop comes from a relay's table rather than the initiator's own).
    """
    space = ring.space
    initiator = ring.node(initiator_id)
    max_hops = max_hops if max_hops is not None else 2 * space.bits

    result = LookupResult(
        key=key,
        initiator=initiator_id,
        true_owner=ring.true_successor(key),
    )

    # Choose the first node to query from the initiator's own routing state.
    if start_node is not None:
        current = start_node
    else:
        own_candidates = initiator.routing_nodes()
        current = _closest_preceding(own_candidates, key, initiator_id, space)
        if current is None:
            # The initiator's own successor already owns the key.
            candidate = initiator.successor
            result.result = candidate
            result.succeeded = candidate is not None
            result.biased = _is_biased(ring, result)
            return result

    visited: Set[int] = set()
    while result.hops < max_hops:
        node = ring.get(current)
        if node is None or not node.alive:
            break
        if current in visited:
            break
        visited.add(current)
        result.path.append(current)
        result.hops += 1
        if node.malicious:
            result.malicious_queried.append(current)

        table = node.respond_routing_table(initiator_id, purpose=purpose, now=now)
        if collect_tables:
            result.tables_seen.append(table)
        if on_query is not None:
            on_query(current, table)

        # Termination: the key falls between the queried node and its claimed
        # immediate successor, so that successor is reported as the owner.
        claimed_successor = table.immediate_successor()
        if claimed_successor is not None and space.in_interval(
            key, table.owner_id, claimed_successor, inclusive_end=True
        ):
            result.result = claimed_successor
            result.succeeded = True
            break

        next_hop = table.closest_preceding(key, space, exclude=visited)
        if next_hop is None:
            # Cannot make progress; fall back to the claimed successor.
            result.result = claimed_successor
            result.succeeded = claimed_successor is not None
            break
        current = next_hop

    result.biased = _is_biased(ring, result)
    return result


def _closest_preceding(candidates: List[int], key: int, node_id: int, space: IdSpace) -> Optional[int]:
    best = None
    best_dist = None
    for nid in candidates:
        if nid == node_id:
            continue
        if not space.in_interval(nid, node_id, key):
            continue
        d = space.distance(nid, key)
        if best_dist is None or d < best_dist:
            best, best_dist = nid, d
    return best


def _is_biased(ring: ChordRing, result: LookupResult) -> bool:
    """A lookup is biased when it completed but returned the wrong owner."""
    return result.succeeded and result.result != result.true_owner


def oracle_query_path(ring: ChordRing, initiator_id: int, key: int, max_hops: Optional[int] = None) -> List[int]:
    """The query sequence of an honest lookup computed purely from ground truth.

    Every hop routes through the *true* routing state (correct fingers and
    successors), so the path reflects what an unbiased lookup does.  This is
    the basis for the pre-simulated distributions used in Section 6: the
    density of queried nodes increases close to the target, which is what the
    range-estimation adversary exploits.
    """
    space = ring.space
    alive_sorted = ring.alive_ids_sorted()
    if not alive_sorted:
        return []
    max_hops = max_hops if max_hops is not None else 2 * space.bits

    path: List[int] = []
    node = ring.get(initiator_id)
    if node is None:
        return path
    current = initiator_id
    for _ in range(max_hops):
        node = ring.get(current)
        candidates = ring._neighbors(current, alive_sorted, +1, node.successor_list.capacity)
        finger_ids = _true_fingers(ring, current, alive_sorted, node.finger_table.size)
        all_refs = list(dict.fromkeys(finger_ids + candidates))
        succ = candidates[0] if candidates else None
        if succ is not None and space.in_interval(key, current, succ, inclusive_end=True):
            break
        next_hop = _closest_preceding(all_refs, key, current, space)
        if next_hop is None or next_hop == current:
            break
        path.append(next_hop)
        current = next_hop
    return path


def _true_fingers(ring: ChordRing, node_id: int, alive_sorted: List[int], count: int) -> List[int]:
    import bisect as _bisect

    space = ring.space
    out = []
    for i in range(count):
        # Longest-range fingers, matching FingerTable's ideal-id layout.
        ideal = space.normalize(node_id + (1 << (space.bits - count + i)))
        pos = _bisect.bisect_left(alive_sorted, ideal)
        if pos == len(alive_sorted):
            pos = 0
        out.append(alive_sorted[pos])
    return list(dict.fromkeys(out))
