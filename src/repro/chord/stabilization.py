"""Chord stabilization, run clockwise and anti-clockwise.

Section 5.1 of the paper: every node runs successor and predecessor
stabilization every 2 seconds and refreshes fingers via lookups every 30
seconds.  The anti-clockwise (predecessor-list) stabilization is the Octopus
addition that underpins secret neighbor surveillance — each node must appear
in the successor list of each of its predecessors.

Stabilization exchanges signed successor lists; honest nodes store the lists
they receive as proofs (used by the CA to unwind successor-list pollution,
Section 4.3 / Figure 2(b)).
"""

from __future__ import annotations

from dataclasses import dataclass

from .node import ChordNode
from .ring import ChordRing


@dataclass
class StabilizationStats:
    """Counters describing one round of maintenance."""

    successor_rounds: int = 0
    predecessor_rounds: int = 0
    entries_learned: int = 0
    dead_entries_pruned: int = 0


class Stabilizer:
    """Runs the periodic maintenance protocols for one ring.

    The class operates at the event-simulator abstraction level used by the
    paper: a stabilization round is a direct state exchange with the current
    first neighbor (the network-level cost is accounted by the efficiency
    experiments separately).  Malicious neighbors answer through their
    behaviour hook, so successor-list pollution attacks act here.
    """

    def __init__(self, ring: ChordRing) -> None:
        self.ring = ring
        self.stats = StabilizationStats()

    # ------------------------------------------------------------ successors
    def stabilize_successors(self, node: ChordNode, now: float = 0.0) -> None:
        """One clockwise stabilization round for ``node``."""
        if not node.alive:
            return
        self.stats.successor_rounds += 1
        self._prune_dead(node.successor_list)
        neighbor_id = node.successor_list.first()
        if neighbor_id is None:
            self._reseed(node, direction=+1)
            neighbor_id = node.successor_list.first()
            if neighbor_id is None:
                return
        neighbor = self.ring.get(neighbor_id)
        if neighbor is None or not neighbor.alive:
            node.successor_list.remove(neighbor_id)
            return
        reply = neighbor.respond_successor_list(node.node_id, purpose="stabilize-successors", now=now)
        node.store_successor_proof(reply)
        learned = node.successor_list.update(
            nid for nid in reply.nodes if self._plausibly_alive(nid)
        )
        self.stats.entries_learned += learned
        # Notify the neighbor so it can adopt us as a predecessor.
        neighbor.predecessor_list.add(node.node_id)

    # ---------------------------------------------------------- predecessors
    def stabilize_predecessors(self, node: ChordNode, now: float = 0.0) -> None:
        """One anti-clockwise stabilization round (Octopus predecessor lists)."""
        if not node.alive:
            return
        self.stats.predecessor_rounds += 1
        self._prune_dead(node.predecessor_list)
        neighbor_id = node.predecessor_list.first()
        if neighbor_id is None:
            self._reseed(node, direction=-1)
            neighbor_id = node.predecessor_list.first()
            if neighbor_id is None:
                return
        neighbor = self.ring.get(neighbor_id)
        if neighbor is None or not neighbor.alive:
            node.predecessor_list.remove(neighbor_id)
            return
        # Ask the predecessor for *its* predecessor list to extend ours.
        their_preds = neighbor.respond_predecessor_list(node.node_id, purpose="stabilize-predecessors", now=now)
        learned = node.predecessor_list.update(
            nid for nid in their_preds if self._plausibly_alive(nid)
        )
        self.stats.entries_learned += learned
        # And make sure the predecessor knows about us as a successor.
        neighbor.successor_list.add(node.node_id)

    # --------------------------------------------------------------- helpers
    def run_round(self, node: ChordNode, now: float = 0.0) -> None:
        """Run both directions for one node (the paper's 2-second tick)."""
        self.stabilize_successors(node, now=now)
        self.stabilize_predecessors(node, now=now)

    def run_global_round(self, now: float = 0.0) -> None:
        """Run one maintenance round for every alive node (used in tests)."""
        for node in self.ring.alive_nodes():
            self.run_round(node, now=now)

    def _plausibly_alive(self, node_id: int) -> bool:
        node = self.ring.get(node_id)
        return node is not None and node.alive

    def _prune_dead(self, neighbor_list) -> None:
        for nid in list(neighbor_list.nodes):
            node = self.ring.get(nid)
            if node is None or not node.alive:
                neighbor_list.remove(nid)
                self.stats.dead_entries_pruned += 1

    def _reseed(self, node: ChordNode, direction: int) -> None:
        """Recover an empty neighbor list from ground truth (bootstrap contact).

        In a deployment the node would fall back to its bootstrap node; the
        simulator reseeds from the ring, which has the same effect.
        """
        alive = self.ring.alive_ids_sorted()
        capacity = node.successor_list.capacity if direction > 0 else node.predecessor_list.capacity
        neighbors = self.ring._neighbors(node.node_id, alive, direction, capacity)
        if direction > 0:
            node.successor_list.update(neighbors)
        else:
            node.predecessor_list.update(neighbors)
