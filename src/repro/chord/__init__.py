"""Chord DHT substrate.

A from-scratch implementation of the (customised) Chord overlay Octopus runs
on: identifier-space arithmetic, finger tables, successor *and* predecessor
lists, signed routing-table snapshots with NISAN-style bound checking,
clockwise/anti-clockwise stabilization, iterative lookups and the global ring
scaffolding used by the simulators.
"""

from .fingertable import FingerEntry, FingerTable
from .idspace import (
    DEFAULT_BITS,
    SIMULATION_BITS,
    IdSpace,
    closest_preceding,
    predecessor_of,
    successor_of,
)
from .lookup import LookupResult, iterative_lookup, oracle_query_path
from .node import ChordNode, NodeBehavior, NodeStats, synthetic_ip
from .ring import ChordRing, RingConfig
from .routing_table import BoundChecker, BoundCheckResult, RoutingTableSnapshot
from .stabilization import StabilizationStats, Stabilizer
from .successor_list import NeighborList, SignedSuccessorList

__all__ = [
    "FingerEntry",
    "FingerTable",
    "DEFAULT_BITS",
    "SIMULATION_BITS",
    "IdSpace",
    "closest_preceding",
    "predecessor_of",
    "successor_of",
    "LookupResult",
    "iterative_lookup",
    "oracle_query_path",
    "ChordNode",
    "NodeBehavior",
    "NodeStats",
    "synthetic_ip",
    "ChordRing",
    "RingConfig",
    "BoundChecker",
    "BoundCheckResult",
    "RoutingTableSnapshot",
    "StabilizationStats",
    "Stabilizer",
    "NeighborList",
    "SignedSuccessorList",
]
