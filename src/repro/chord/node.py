"""Chord/Octopus node state and response behaviour.

A :class:`ChordNode` holds the routing state of one peer: its finger table,
successor list and (Octopus-specific) predecessor list, plus its identity key
pair and certificate.  How the node *answers* requests for that state is
factored into a :class:`NodeBehavior` strategy object so that the attack
models in :mod:`repro.attacks` can substitute malicious behaviours (biased
successor lists, manipulated fingertables, selective dropping) without
touching the honest code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..crypto.keys import FAST, KeyPair
from .fingertable import FingerTable
from .idspace import IdSpace
from .routing_table import RoutingTableSnapshot
from .successor_list import NeighborList, SignedSuccessorList


def synthetic_ip(node_id: int) -> str:
    """A deterministic synthetic IPv4 address for a node id."""
    return f"10.{(node_id >> 16) & 0xFF}.{(node_id >> 8) & 0xFF}.{node_id & 0xFF}"


class NodeBehavior:
    """Honest response behaviour (the default).

    Subclasses in :mod:`repro.attacks` override individual hooks to implement
    the paper's active attacks.  Every hook receives the owning node, the
    identity of the requester as the node sees it (which, behind an anonymous
    path, is the exit relay — not the initiator), a free-form ``purpose``
    string describing the protocol context, and the current time.
    """

    is_malicious = False

    def provide_routing_table(
        self, node: "ChordNode", requester: Optional[int], purpose: str, now: float
    ) -> RoutingTableSnapshot:
        """Return the routing table (fingers + successors) for a query."""
        return node.snapshot(now=now)

    def provide_successor_list(
        self, node: "ChordNode", requester: Optional[int], purpose: str, now: float
    ) -> SignedSuccessorList:
        """Return the signed successor list (used in stabilization and checks)."""
        return node.signed_successor_list(now=now)

    def provide_predecessor_list(
        self, node: "ChordNode", requester: Optional[int], purpose: str, now: float
    ) -> Tuple[int, ...]:
        """Return the predecessor list (used by secret finger surveillance)."""
        return tuple(node.predecessor_list.nodes)

    def should_drop(self, node: "ChordNode", purpose: str, context: Dict, now: float) -> bool:
        """Whether to drop a message this node is asked to forward/answer."""
        return False


@dataclass
class NodeStats:
    """Per-node protocol counters (used in tests and bandwidth sanity checks)."""

    queries_answered: int = 0
    queries_forwarded: int = 0
    lookups_initiated: int = 0
    surveillance_checks: int = 0
    reports_sent: int = 0
    messages_dropped: int = 0


class ChordNode:
    """One peer in the (customised) Chord ring used by Octopus.

    Parameters
    ----------
    node_id:
        Ring identifier.
    space:
        Identifier space.
    finger_count / successor_count / predecessor_count:
        Routing-state sizes; paper defaults for N=1000 are 12 / 6 / 6.
    malicious:
        Whether the node is controlled by the adversary.  The flag alone does
        nothing; attack behaviours are attached via :attr:`behavior`.
    key_mode:
        Signature mode for this node's key pair.
    """

    def __init__(
        self,
        node_id: int,
        space: IdSpace,
        finger_count: int = 12,
        successor_count: int = 6,
        predecessor_count: int = 6,
        malicious: bool = False,
        key_mode: str = FAST,
        keypair: Optional[KeyPair] = None,
    ) -> None:
        self.node_id = node_id
        self.space = space
        self.finger_table = FingerTable(node_id, space, size=finger_count)
        self.successor_list = NeighborList(node_id, space, capacity=successor_count, direction=+1)
        self.predecessor_list = NeighborList(node_id, space, capacity=predecessor_count, direction=-1)
        self.malicious = malicious
        self.alive = True
        self.ip_address = synthetic_ip(node_id)
        self.keypair = keypair or KeyPair(seed=node_id, mode=key_mode)
        self.certificate = None  # set by the ring builder via the CA
        self.behavior: NodeBehavior = NodeBehavior()
        self.stats = NodeStats()
        #: simulated time of the node's most recent (re)join; surveillance
        #: checks respect a short warm-up after joining so that routing-state
        #: convergence transients are not mistaken for attacks.
        self.last_join_time = 0.0
        # Octopus-specific buffers:
        #: signed successor lists received during stabilization, kept as proofs
        #: (paper: the latest 6) for the CA's pollution investigations.
        self.successor_list_proofs: List[SignedSuccessorList] = []
        self.proof_capacity = 6
        #: fingertables buffered from random walks / lookups, sampled by
        #: secret finger surveillance (Section 4.4).
        self.buffered_fingertables: List[RoutingTableSnapshot] = []
        self.fingertable_buffer_capacity = 8

    # ------------------------------------------------------------------ state
    @property
    def successor(self) -> Optional[int]:
        return self.successor_list.first()

    @property
    def predecessor(self) -> Optional[int]:
        return self.predecessor_list.first()

    def is_malicious(self) -> bool:
        return self.malicious

    def routing_nodes(self) -> List[int]:
        """Every node referenced by the routing state (fingers + successors)."""
        seen = set()
        out = []
        for nid in self.finger_table.nodes() + self.successor_list.nodes:
            if nid not in seen and nid != self.node_id:
                seen.add(nid)
                out.append(nid)
        return out

    # ------------------------------------------------------------- snapshots
    def snapshot(self, now: float = 0.0, include_predecessors: bool = False, sign: bool = True) -> RoutingTableSnapshot:
        """Produce a signed snapshot of the node's current routing table."""
        fingers = tuple((e.ideal_id, e.node_id) for e in self.finger_table.entries)
        snapshot = RoutingTableSnapshot(
            owner_id=self.node_id,
            fingers=fingers,
            successors=tuple(self.successor_list.nodes),
            predecessors=tuple(self.predecessor_list.nodes) if include_predecessors else (),
            timestamp=now,
        )
        if sign:
            signature = self.keypair.sign(snapshot.payload())
            snapshot = RoutingTableSnapshot(
                owner_id=snapshot.owner_id,
                fingers=snapshot.fingers,
                successors=snapshot.successors,
                predecessors=snapshot.predecessors,
                timestamp=snapshot.timestamp,
                signature=signature,
            )
        return snapshot

    def signed_successor_list(self, now: float = 0.0, received_from: Optional[int] = None) -> SignedSuccessorList:
        """Produce a signed successor-list snapshot (surveillance evidence)."""
        snapshot = SignedSuccessorList(
            owner_id=self.node_id,
            nodes=tuple(self.successor_list.nodes),
            timestamp=now,
            received_from=received_from,
        )
        signature = self.keypair.sign(snapshot.payload())
        return SignedSuccessorList(
            owner_id=snapshot.owner_id,
            nodes=snapshot.nodes,
            timestamp=snapshot.timestamp,
            signature=signature,
            received_from=received_from,
        )

    # ------------------------------------------------------ proofs and buffers
    def store_successor_proof(self, proof: SignedSuccessorList) -> None:
        """Keep a received signed successor list as pollution-defense evidence."""
        self.successor_list_proofs.append(proof)
        if len(self.successor_list_proofs) > self.proof_capacity:
            self.successor_list_proofs.pop(0)

    def buffer_fingertable(self, table: RoutingTableSnapshot) -> None:
        """Buffer a fingertable seen during random walks / lookups (Section 4.4)."""
        if table.owner_id == self.node_id:
            return
        self.buffered_fingertables.append(table)
        if len(self.buffered_fingertables) > self.fingertable_buffer_capacity:
            self.buffered_fingertables.pop(0)

    # -------------------------------------------------------------- behaviour
    def respond_routing_table(self, requester: Optional[int], purpose: str, now: float) -> RoutingTableSnapshot:
        """Answer a routing-table query via the attached behaviour."""
        self.stats.queries_answered += 1
        return self.behavior.provide_routing_table(self, requester, purpose, now)

    def respond_successor_list(self, requester: Optional[int], purpose: str, now: float) -> SignedSuccessorList:
        self.stats.queries_answered += 1
        return self.behavior.provide_successor_list(self, requester, purpose, now)

    def respond_predecessor_list(self, requester: Optional[int], purpose: str, now: float) -> Tuple[int, ...]:
        self.stats.queries_answered += 1
        return self.behavior.provide_predecessor_list(self, requester, purpose, now)

    def wants_to_drop(self, purpose: str, context: Dict, now: float) -> bool:
        dropped = self.behavior.should_drop(self, purpose, context, now)
        if dropped:
            self.stats.messages_dropped += 1
        return dropped

    def __repr__(self) -> str:  # pragma: no cover
        flag = "M" if self.malicious else "H"
        return f"ChordNode(id={self.node_id}, {flag}, alive={self.alive})"
