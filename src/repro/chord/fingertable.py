"""Finger tables.

Each Chord/Octopus node keeps ``m`` fingers: entry ``i`` points to the first
node whose identifier succeeds ``node_id + 2**i``.  The paper's simulations
use 12 fingers per node for the N=1000 networks (Section 5.1); this class
supports any finger count up to the identifier width.

Finger tables in Octopus are *signed* when returned to other nodes (together
with the successor list, forming the routing table); the signing wrapper
lives in :mod:`repro.chord.routing_table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .idspace import IdSpace


@dataclass
class FingerEntry:
    """A single finger: the ideal identifier and the actual node filling it."""

    index: int
    ideal_id: int
    node_id: Optional[int] = None

    def is_filled(self) -> bool:
        return self.node_id is not None


class FingerTable:
    """A node's finger table.

    Parameters
    ----------
    owner_id:
        Identifier of the node that owns this table.
    space:
        The identifier space.
    size:
        Number of fingers maintained (paper default for simulations: 12).
    """

    def __init__(self, owner_id: int, space: IdSpace, size: int = 12) -> None:
        if size < 1 or size > space.bits:
            raise ValueError(f"finger table size must be in [1, {space.bits}]")
        self.owner_id = owner_id
        self.space = space
        self.size = size
        # A node keeping fewer fingers than the identifier width keeps the
        # *longest-range* ones: finger ``i`` targets ``owner + 2**(bits-size+i)``.
        # (With ``size == bits`` this is exactly Chord's ``owner + 2**i``; with
        # the paper's 12 fingers it is the 12 fingers that actually matter for
        # O(log N) routing — the shorter ones all collapse onto the successor.)
        self._entries: List[FingerEntry] = [
            FingerEntry(
                index=i,
                ideal_id=space.normalize(owner_id + (1 << (space.bits - size + i))),
            )
            for i in range(size)
        ]

    # ---------------------------------------------------------------- access
    def __len__(self) -> int:
        return self.size

    def entry(self, index: int) -> FingerEntry:
        return self._entries[index]

    @property
    def entries(self) -> List[FingerEntry]:
        return list(self._entries)

    def ideal_id(self, index: int) -> int:
        return self._entries[index].ideal_id

    def ideal_ids(self) -> List[int]:
        """Every entry's ideal identifier, in index order."""
        return [e.ideal_id for e in self._entries]

    def get(self, index: int) -> Optional[int]:
        """The node currently filling finger ``index`` (or ``None``)."""
        return self._entries[index].node_id

    def set(self, index: int, node_id: Optional[int]) -> None:
        """Set finger ``index`` to ``node_id``."""
        self._entries[index].node_id = node_id

    def nodes(self) -> List[int]:
        """All distinct filled finger node ids, in index order."""
        seen = set()
        out = []
        for e in self._entries:
            if e.node_id is not None and e.node_id not in seen:
                seen.add(e.node_id)
                out.append(e.node_id)
        return out

    def as_dict(self) -> Dict[int, Optional[int]]:
        """``{index: node_id}`` mapping (used when exchanging fingertables)."""
        return {e.index: e.node_id for e in self._entries}

    def fill_from(self, sorted_ids: Sequence[int]) -> None:
        """Fill every finger from a sorted list of all live node identifiers.

        Used by the ring builder to construct a *correct* table in one shot
        (the paper's simulator similarly bootstraps correct routing state and
        then lets stabilization maintain it under churn).
        """
        if not sorted_ids:
            raise ValueError("cannot fill a finger table from an empty ring")
        import bisect

        for e in self._entries:
            pos = bisect.bisect_left(sorted_ids, e.ideal_id)
            if pos == len(sorted_ids):
                pos = 0
            e.node_id = sorted_ids[pos]

    def fill_targets(self, targets: Sequence[Optional[int]]) -> None:
        """Set every entry from pre-resolved targets (one per entry, in order).

        Counterpart of :meth:`fill_from` for callers that resolved the
        ideals elsewhere (the ring kernels' cached finger resolution).
        """
        if len(targets) != self.size:
            raise ValueError(f"expected {self.size} targets, got {len(targets)}")
        for e, target in zip(self._entries, targets):
            e.node_id = target

    def copy(self) -> "FingerTable":
        """Deep copy (used when adversaries fabricate manipulated tables)."""
        clone = FingerTable(self.owner_id, self.space, self.size)
        for i, e in enumerate(self._entries):
            clone._entries[i].node_id = e.node_id
        return clone

    # ------------------------------------------------------------ maintenance
    def replace_node(self, old_id: int, new_id: Optional[int]) -> int:
        """Replace every occurrence of ``old_id`` with ``new_id``; returns count."""
        count = 0
        for e in self._entries:
            if e.node_id == old_id:
                e.node_id = new_id
                count += 1
        return count

    def closest_preceding(self, key: int, exclude: Optional[set] = None) -> Optional[int]:
        """The filled finger most closely preceding ``key`` (Chord routing)."""
        exclude = exclude or set()
        best = None
        best_dist = None
        for e in self._entries:
            nid = e.node_id
            if nid is None or nid in exclude or nid == self.owner_id:
                continue
            if not self.space.in_interval(nid, self.owner_id, key):
                continue
            d = self.space.distance(nid, key)
            if best_dist is None or d < best_dist:
                best, best_dist = nid, d
        return best

    def __repr__(self) -> str:  # pragma: no cover
        filled = sum(1 for e in self._entries if e.is_filled())
        return f"FingerTable(owner={self.owner_id}, filled={filled}/{self.size})"
