"""Identifier-space arithmetic for the Chord ring.

Chord (Stoica et al.) places nodes and keys on a circular identifier space of
size ``2**m``.  Octopus inherits this structure.  All interval and distance
computations used by the rest of the code base live here, so that wrap-around
corner cases are handled (and tested) exactly once.

The paper uses 160-bit identifiers on PlanetLab; the simulators use smaller
``m`` (e.g. 32 bits) for speed.  Every function takes the space explicitly, so
both coexist.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

#: Identifier width used by the wire protocol in the paper.
DEFAULT_BITS = 160
#: Identifier width used by the simulation experiments (fast, still sparse).
SIMULATION_BITS = 32


@dataclass(frozen=True)
class IdSpace:
    """A ``2**bits`` circular identifier space."""

    bits: int = SIMULATION_BITS

    def __post_init__(self) -> None:
        if self.bits < 3 or self.bits > 512:
            raise ValueError("bits must be in [3, 512]")

    @property
    def size(self) -> int:
        """Number of identifiers in the space (``2**bits``)."""
        return 1 << self.bits

    def contains(self, ident: int) -> bool:
        """Whether ``ident`` is a valid identifier."""
        return 0 <= ident < self.size

    def normalize(self, ident: int) -> int:
        """Map an arbitrary integer onto the ring."""
        return ident % self.size

    def hash_key(self, key: str) -> int:
        """Hash an application-level key (string) onto the ring."""
        digest = hashlib.sha1(key.encode("utf-8")).digest()
        return int.from_bytes(digest, "big") % self.size

    # ----------------------------------------------------------------- ranges
    def distance(self, a: int, b: int) -> int:
        """Clockwise distance from ``a`` to ``b``."""
        return (b - a) % self.size

    def in_interval(
        self,
        ident: int,
        start: int,
        end: int,
        inclusive_start: bool = False,
        inclusive_end: bool = False,
    ) -> bool:
        """Whether ``ident`` lies in the clockwise interval from ``start`` to ``end``.

        Handles wrap-around: the interval ``(start, end]`` with ``start > end``
        crosses zero.  When ``start == end`` the interval is the whole ring
        (minus the endpoints unless they are inclusive), matching Chord's use
        of intervals during stabilization with a single known node.
        """
        ident = self.normalize(ident)
        start = self.normalize(start)
        end = self.normalize(end)
        if start == end:
            if ident == start:
                return inclusive_start or inclusive_end
            return True
        d_end = self.distance(start, end)
        d_ident = self.distance(start, ident)
        if ident == start:
            return inclusive_start
        if ident == end:
            return inclusive_end
        return 0 < d_ident < d_end

    def ideal_finger(self, node_id: int, index: int) -> int:
        """The ideal identifier of finger ``index`` (0-based): ``node + 2**index``."""
        if index < 0 or index >= self.bits:
            raise ValueError(f"finger index {index} out of range for {self.bits}-bit space")
        return self.normalize(node_id + (1 << index))

    def ideal_fingers(self, node_id: int, count: Optional[int] = None) -> List[int]:
        """Ideal identifiers of the first ``count`` fingers (default: all)."""
        n = count if count is not None else self.bits
        return [self.ideal_finger(node_id, i) for i in range(min(n, self.bits))]


def successor_of(ids: Sequence[int], key: int, space: IdSpace) -> int:
    """The first identifier in ``ids`` at or clockwise after ``key``.

    ``ids`` must be non-empty; it does not need to be sorted.
    """
    if not ids:
        raise ValueError("successor_of requires at least one identifier")
    best = None
    best_dist = None
    for ident in ids:
        d = space.distance(key, ident)
        if best_dist is None or d < best_dist:
            best, best_dist = ident, d
    return best  # type: ignore[return-value]


def predecessor_of(ids: Sequence[int], key: int, space: IdSpace) -> int:
    """The first identifier in ``ids`` strictly counter-clockwise before ``key``."""
    if not ids:
        raise ValueError("predecessor_of requires at least one identifier")
    best = None
    best_dist = None
    for ident in ids:
        d = space.distance(ident, key)
        if d == 0:
            d = space.size
        if best_dist is None or d < best_dist:
            best, best_dist = ident, d
    return best  # type: ignore[return-value]


def closest_preceding(ids: Iterable[int], key: int, node_id: int, space: IdSpace) -> Optional[int]:
    """The identifier in ``ids`` that most closely precedes ``key``.

    Mirrors Chord's ``closest_preceding_finger``: among the candidates lying
    strictly between ``node_id`` and ``key`` (clockwise), return the one
    closest to ``key``; ``None`` if no candidate qualifies.
    """
    best = None
    best_dist = None
    for ident in ids:
        if ident == node_id or ident == key:
            continue
        if not space.in_interval(ident, node_id, key):
            continue
        d = space.distance(ident, key)
        if best_dist is None or d < best_dist:
            best, best_dist = ident, d
    return best
