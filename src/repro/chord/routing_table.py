"""Signed routing-table snapshots.

In Octopus every queried node returns its *routing table*: the union of its
finger table and its successor list (Section 4.3).  The table is signed and
timestamped by its owner so that it can later serve as non-repudiable
evidence before the CA.  This module defines the snapshot object exchanged on
the wire plus bound-checking utilities (the NISAN-style defense Octopus
applies to returned tables, Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .idspace import IdSpace


@dataclass(frozen=True)
class RoutingTableSnapshot:
    """An immutable, signed view of a node's routing state at a point in time.

    Attributes
    ----------
    owner_id:
        The node whose state this is.
    fingers:
        ``(ideal_id, node_id)`` pairs in finger-index order.
    successors:
        Successor list in ring order.
    predecessors:
        Predecessor list in ring order (Octopus-specific; may be empty when a
        peer only asks for the classic table).
    timestamp:
        Simulated time at which the snapshot was produced.
    signature:
        The owner's signature over :meth:`payload`; ``None`` in contexts where
        signatures are modelled but not computed (fast simulation mode still
        accounts for their bytes).
    """

    owner_id: int
    fingers: Tuple[Tuple[int, Optional[int]], ...]
    successors: Tuple[int, ...]
    predecessors: Tuple[int, ...] = ()
    timestamp: float = 0.0
    signature: object = None

    def payload(self) -> bytes:
        fingers = ";".join(f"{ideal}:{node}" for ideal, node in self.fingers)
        succ = ",".join(str(n) for n in self.successors)
        pred = ",".join(str(n) for n in self.predecessors)
        return f"rt|{self.owner_id}|{fingers}|{succ}|{pred}|{self.timestamp:.3f}".encode()

    # ----------------------------------------------------------------- access
    def finger_nodes(self) -> List[int]:
        """Distinct finger node ids in index order."""
        seen = set()
        out = []
        for _, node in self.fingers:
            if node is not None and node not in seen:
                seen.add(node)
                out.append(node)
        return out

    def all_nodes(self) -> List[int]:
        """Every node id referenced by this table (fingers + successors)."""
        seen = set()
        out = []
        for node in self.finger_nodes() + list(self.successors):
            if node not in seen and node != self.owner_id:
                seen.add(node)
                out.append(node)
        return out

    def entry_count(self) -> int:
        """Number of routing items (for bandwidth accounting)."""
        return len(self.fingers) + len(self.successors) + len(self.predecessors)

    def closest_preceding(self, key: int, space: IdSpace, exclude: Optional[set] = None) -> Optional[int]:
        """The referenced node most closely preceding ``key`` (greedy routing)."""
        exclude = exclude or set()
        best = None
        best_dist = None
        for node in self.all_nodes():
            if node in exclude:
                continue
            if not space.in_interval(node, self.owner_id, key):
                continue
            d = space.distance(node, key)
            if best_dist is None or d < best_dist:
                best, best_dist = node, d
        return best

    def immediate_successor(self) -> Optional[int]:
        return self.successors[0] if self.successors else None


@dataclass
class BoundCheckResult:
    """Outcome of NISAN-style bound checking on a returned routing table."""

    passed: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.passed


class BoundChecker:
    """Statistical bound checking of returned routing tables.

    NISAN (and Octopus, Section 4.1) limits fingertable manipulation by
    checking that each returned finger is plausibly close to its ideal
    identifier.  With ``N`` uniformly distributed nodes the expected gap
    between the ideal identifier and the true finger is ``ring_size / N``;
    the checker flags fingers whose gap exceeds ``tolerance_factor`` times
    that expectation, and successor lists whose span is implausibly wide.

    This is deliberately a *moderate* defense — the paper notes a malicious
    node can still modify a few fingers undetected — which is why Octopus
    pairs it with secret surveillance.
    """

    def __init__(self, space: IdSpace, expected_network_size: int, tolerance_factor: float = 8.0) -> None:
        if expected_network_size < 2:
            raise ValueError("expected_network_size must be at least 2")
        self.space = space
        self.expected_network_size = expected_network_size
        self.tolerance_factor = tolerance_factor

    @property
    def expected_gap(self) -> float:
        return self.space.size / self.expected_network_size

    def check(self, table: RoutingTableSnapshot) -> BoundCheckResult:
        """Check a routing table; returns which constraints were violated."""
        violations: List[str] = []
        max_gap = self.tolerance_factor * self.expected_gap
        for ideal, node in table.fingers:
            if node is None:
                continue
            gap = self.space.distance(ideal, node)
            if gap > max_gap:
                violations.append(f"finger for ideal {ideal} is {gap:.0f} past ideal (> {max_gap:.0f})")
        if table.successors:
            span = self.space.distance(table.owner_id, table.successors[-1])
            max_span = self.tolerance_factor * self.expected_gap * max(len(table.successors), 1)
            if span > max_span:
                violations.append(f"successor list spans {span:.0f} (> {max_span:.0f})")
            # Successors must be sorted by distance from the owner.
            distances = [self.space.distance(table.owner_id, s) for s in table.successors]
            if distances != sorted(distances):
                violations.append("successor list is not ordered by ring distance")
        return BoundCheckResult(passed=not violations, violations=violations)
