"""Successor and predecessor lists.

Chord nodes keep a successor list for fault tolerance.  Octopus additionally
requires every node to keep a *predecessor* list of the same size, maintained
by running the stabilization protocol anti-clockwise (Section 4.3): this is
what makes secret neighbor surveillance possible, because each node must then
appear in the successor list of each of its predecessors.

The lists are ordered by ring distance from the owner and bounded in length
(paper: 6 successors and 6 predecessors for the N=1000 experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from .idspace import IdSpace


class NeighborList:
    """An ordered, bounded list of ring neighbors in one direction.

    Parameters
    ----------
    owner_id:
        The node owning the list.
    space:
        Identifier space.
    capacity:
        Maximum number of entries kept (paper default: 6).
    direction:
        ``+1`` for a successor list (clockwise), ``-1`` for a predecessor list
        (anti-clockwise).
    """

    def __init__(self, owner_id: int, space: IdSpace, capacity: int = 6, direction: int = +1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if direction not in (+1, -1):
            raise ValueError("direction must be +1 (successors) or -1 (predecessors)")
        self.owner_id = owner_id
        self.space = space
        self.capacity = capacity
        self.direction = direction
        self._nodes: List[int] = []

    # ---------------------------------------------------------------- helpers
    def _distance(self, node_id: int) -> int:
        if self.direction > 0:
            return self.space.distance(self.owner_id, node_id)
        return self.space.distance(node_id, self.owner_id)

    # ----------------------------------------------------------------- access
    @property
    def nodes(self) -> List[int]:
        """Entries ordered by increasing ring distance from the owner."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def first(self) -> Optional[int]:
        """The immediate successor (or predecessor), if any."""
        return self._nodes[0] if self._nodes else None

    def is_full(self) -> bool:
        return len(self._nodes) >= self.capacity

    # ------------------------------------------------------------- mutation
    def add(self, node_id: int) -> bool:
        """Insert ``node_id`` keeping order; returns whether the list changed."""
        if node_id == self.owner_id or node_id in self._nodes:
            return False
        self._nodes.append(node_id)
        self._nodes.sort(key=self._distance)
        if len(self._nodes) > self.capacity:
            dropped = self._nodes.pop()
            return dropped != node_id
        return True

    def update(self, node_ids: Iterable[int]) -> int:
        """Add many candidates; returns the number actually inserted."""
        count = 0
        for nid in node_ids:
            if self.add(nid):
                count += 1
        return count

    def remove(self, node_id: int) -> bool:
        """Remove ``node_id`` if present."""
        if node_id in self._nodes:
            self._nodes.remove(node_id)
            return True
        return False

    def replace_all(self, node_ids: Sequence[int]) -> None:
        """Replace the whole list (used when adopting a peer-provided list)."""
        self._nodes = []
        self.update(node_ids)

    def clear(self) -> None:
        self._nodes = []

    def copy(self) -> "NeighborList":
        clone = NeighborList(self.owner_id, self.space, self.capacity, self.direction)
        clone._nodes = list(self._nodes)
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        kind = "succ" if self.direction > 0 else "pred"
        return f"NeighborList({kind}, owner={self.owner_id}, nodes={self._nodes})"


@dataclass(frozen=True)
class SignedSuccessorList:
    """A successor list snapshot signed by its owner.

    Octopus requires routing tables to be signed and timestamped so that they
    can serve as non-repudiable evidence when a node is reported to the CA
    (Section 4.3).  ``signature`` is produced by the owner's key pair over the
    canonical payload; ``received_from`` records who supplied the list during
    stabilization (used for successor-list-pollution proof chains).
    """

    owner_id: int
    nodes: tuple
    timestamp: float
    signature: object = None
    received_from: Optional[int] = None

    def payload(self) -> bytes:
        body = ",".join(str(n) for n in self.nodes)
        return f"succlist|{self.owner_id}|{body}|{self.timestamp:.3f}".encode()

    def contains(self, node_id: int) -> bool:
        return node_id in self.nodes
