"""Ring construction and global network view.

:class:`ChordRing` is the simulator's view of the whole network: it owns every
:class:`~repro.chord.node.ChordNode`, knows the ground-truth key ownership
(used to score lookup correctness), assigns the malicious subset, and handles
joins and departures.  Protocol code never reads ground truth; it only ever
talks to nodes through their response behaviours, so the ring is purely the
experimental scaffolding the paper's C++ simulator also had.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..crypto.ca import CertificateAuthority
from ..crypto.keys import FAST
from ..sim.kernel import make_ring_kernel, validate_kernel
from ..sim.rng import RandomSource
from .idspace import IdSpace
from .node import ChordNode


@dataclass
class RingConfig:
    """Parameters controlling ring construction.

    Defaults follow Section 5.1 of the paper (N=1000 security experiments):
    12 fingers, 6 successors, 6 predecessors, 20% malicious nodes.

    ``kernel`` selects the membership-state backend (see
    :mod:`repro.sim.kernel`): ``"object"`` keeps the historical O(N)-scan
    semantics, ``"array"`` maintains flat sorted arrays incrementally for
    10^5+-node simulations.  Both are observationally identical.
    """

    n_nodes: int = 1000
    fraction_malicious: float = 0.2
    finger_count: int = 12
    successor_count: int = 6
    predecessor_count: int = 6
    id_bits: int = 32
    key_mode: str = FAST
    seed: int = 0
    kernel: str = "object"


class ChordRing:
    """The global network: all nodes, ground truth, joins and departures."""

    def __init__(self, space: IdSpace, config: Optional[RingConfig] = None, ca: Optional[CertificateAuthority] = None) -> None:
        self.space = space
        self.config = config or RingConfig(id_bits=space.bits)
        self.ca = ca
        self.nodes: Dict[int, ChordNode] = {}
        self._sorted_ids: List[int] = []
        self.malicious_ids: Set[int] = set()
        self.removed_ids: Set[int] = set()
        validate_kernel(self.config.kernel)
        self.kernel = make_ring_kernel(self.config.kernel, space_size=space.size)

    # ------------------------------------------------------------ construction
    @classmethod
    def build(
        cls,
        config: Optional[RingConfig] = None,
        rng: Optional[RandomSource] = None,
        ca: Optional[CertificateAuthority] = None,
        placement=None,
    ) -> "ChordRing":
        """Build a fully-populated ring with correct routing state.

        Node identifiers are drawn uniformly at random from the identifier
        space; the malicious subset is a uniform sample of the requested
        fraction, unless ``placement`` — a callable ``(sorted_ids,
        n_malicious, stream, space_size) -> positions`` (indices into
        ``sorted_ids``) — chooses it instead.  Non-uniform adversary
        placements (ID-clustered eclipse regions, high-degree targeting)
        from :mod:`repro.scenarios.adversary` plug in here; the ring itself
        stays strategy-agnostic.  Every node's finger table, successor list
        and predecessor list are initialised to their *correct* values,
        after which churn and stabilization (and attacks) take over.
        """
        config = config or RingConfig()
        rng = rng or RandomSource(config.seed)
        space = IdSpace(bits=config.id_bits)
        ring = cls(space, config=config, ca=ca)

        id_stream = rng.stream("ring-ids")
        ids: Set[int] = set()
        while len(ids) < config.n_nodes:
            ids.add(id_stream.randrange(space.size))
        sorted_ids = sorted(ids)

        n_malicious = int(round(config.fraction_malicious * config.n_nodes))
        if not n_malicious:
            malicious: Set[int] = set()
        elif placement is not None:
            positions = placement(sorted_ids, n_malicious, rng.stream("placement"), space.size)
            malicious = {sorted_ids[pos % config.n_nodes] for pos in positions}
        else:
            malicious = set(rng.sample("ring-malicious", sorted_ids, n_malicious))

        for node_id in sorted_ids:
            node = ChordNode(
                node_id,
                space,
                finger_count=config.finger_count,
                successor_count=config.successor_count,
                predecessor_count=config.predecessor_count,
                malicious=node_id in malicious,
                key_mode=config.key_mode,
            )
            if ca is not None:
                node.certificate = ca.issue_certificate(node_id, node.ip_address, node.keypair.public_key)
            ring.nodes[node_id] = node

        ring._sorted_ids = sorted_ids
        ring.malicious_ids = malicious
        ring.kernel.load(sorted_ids, malicious)
        ring.rebuild_routing_state()
        return ring

    def rebuild_routing_state(self, node_ids: Optional[Iterable[int]] = None) -> None:
        """(Re)initialise routing state of the given nodes from ground truth.

        A full rebuild (``node_ids=None``, ring construction) fills finger
        tables directly from the alive view; targeted rebuilds (churn
        rejoins) go through the kernel's ``resolve_fingers``, which the
        array kernel caches per owner and invalidates on churn.
        """
        alive_sorted = self.kernel.alive_ids_view()
        if not alive_sorted:
            return
        full_rebuild = node_ids is None
        targets = list(self.nodes) if full_rebuild else node_ids
        for node_id in targets:
            node = self.nodes.get(node_id)
            if node is None or not node.alive:
                continue
            if full_rebuild:
                node.finger_table.fill_from(alive_sorted)
            else:
                node.finger_table.fill_targets(
                    self.kernel.resolve_fingers(node_id, node.finger_table.ideal_ids())
                )
            node.successor_list.replace_all(self._neighbors(node_id, alive_sorted, +1, node.successor_list.capacity))
            node.predecessor_list.replace_all(self._neighbors(node_id, alive_sorted, -1, node.predecessor_list.capacity))

    def _neighbors(self, node_id: int, alive_sorted: Sequence[int], direction: int, count: int) -> List[int]:
        if node_id not in self.nodes:
            return []
        pos = bisect.bisect_left(alive_sorted, node_id)
        out: List[int] = []
        n = len(alive_sorted)
        if n <= 1:
            return out
        for step in range(1, count + 1):
            if direction > 0:
                j = (pos + step) % n
            else:
                j = (pos - step) % n
            candidate = alive_sorted[j]
            if candidate == node_id:
                break
            if candidate not in out:
                out.append(candidate)
        return out

    # --------------------------------------------------------------- accessors
    def node(self, node_id: int) -> ChordNode:
        return self.nodes[node_id]

    def get(self, node_id: int) -> Optional[ChordNode]:
        return self.nodes.get(node_id)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def all_ids(self) -> List[int]:
        return list(self._sorted_ids)

    def alive_ids_sorted(self) -> List[int]:
        return self.kernel.alive_ids()

    def alive_nodes(self) -> List[ChordNode]:
        return [self.nodes[nid] for nid in self.kernel.alive_ids_view()]

    def honest_ids(self, alive_only: bool = True) -> List[int]:
        if alive_only:
            return self.kernel.honest_alive_ids()
        return [nid for nid in self._sorted_ids if nid not in self.malicious_ids]

    def malicious_alive_ids(self) -> List[int]:
        return [nid for nid in self.malicious_ids if nid in self.nodes and self.nodes[nid].alive]

    def is_malicious(self, node_id: int) -> bool:
        return node_id in self.malicious_ids

    def fraction_malicious_alive(self) -> float:
        """Fraction of alive nodes that are malicious (the Figure 3/4/9 metric)."""
        return self.kernel.fraction_malicious_alive()

    # ------------------------------------------------------------- ground truth
    def true_successor(self, key: int) -> Optional[int]:
        """Ground-truth owner of ``key`` (first alive node at or after the key)."""
        return self.kernel.successor_of(key)

    def owner_of(self, key: int) -> Optional[int]:
        """Alias for :meth:`true_successor` (Chord key ownership)."""
        return self.true_successor(key)

    # ----------------------------------------------------------- churn / removal
    def mark_dead(self, node_id: int) -> None:
        """A node departs (churn); its state is kept for when it rejoins."""
        node = self.nodes.get(node_id)
        if node is not None:
            node.alive = False
            self.kernel.set_alive(node_id, False)

    def mark_alive(self, node_id: int, rebuild_state: bool = True, now: float = 0.0) -> None:
        """A churned node rejoins (fresh routing state, as in the paper's model).

        Permanently removed nodes cannot rejoin: their certificate is revoked,
        so every honest peer rejects the join.  Without this guard a revoked
        node cycling through churn would silently regain standing.
        """
        node = self.nodes.get(node_id)
        if node is None or node_id in self.removed_ids:
            return
        node.alive = True
        node.last_join_time = now
        self.kernel.set_alive(node_id, True)
        if rebuild_state:
            self.rebuild_routing_state([node_id])

    def remove_permanently(self, node_id: int) -> None:
        """Eject a node whose certificate the CA revoked."""
        node = self.nodes.get(node_id)
        if node is None:
            return
        node.alive = False
        self.kernel.set_alive(node_id, False)
        self.removed_ids.add(node_id)
        self.kernel.set_removed(node_id)
        # The node stays in ``malicious_ids`` so metrics can distinguish
        # "was malicious and got removed" from "honest"; fraction metrics use
        # alive status and ``removed_ids``.

    def remaining_malicious_fraction(self) -> float:
        """Fraction of the *current* network that is malicious and not yet removed."""
        return self.kernel.remaining_malicious_fraction()

    # ------------------------------------------------------ mid-run compromise
    def set_malicious(self, node_id: int, malicious: bool = True) -> bool:
        """Flip a node's ground-truth allegiance mid-run.

        Adaptive adversary controllers compromise fresh nodes after revocation
        (or release control for ablations).  Updates the ground-truth set, the
        node object, and the kernel in lockstep; routing state is untouched —
        compromise does not move the node on the ring.  Removed nodes cannot
        be compromised (their certificate is already revoked).  Returns
        whether the flag actually changed.
        """
        node = self.nodes.get(node_id)
        if node is None or node_id in self.removed_ids:
            return False
        if (node_id in self.malicious_ids) == malicious:
            return False
        node.malicious = malicious
        if malicious:
            self.malicious_ids.add(node_id)
        else:
            self.malicious_ids.discard(node_id)
        self.kernel.set_malicious(node_id, malicious)
        return True

    # --------------------------------------------------------------- sampling
    def random_alive_id(self, rng, exclude: Optional[Set[int]] = None) -> Optional[int]:
        """A uniformly random alive node id (optionally excluding a set)."""
        if exclude:
            candidates = [nid for nid in self.kernel.alive_ids_view() if nid not in exclude]
        else:
            candidates = self.kernel.alive_ids_view()
        if not candidates:
            return None
        return rng.choice(candidates)

    def random_key(self, rng) -> int:
        """A uniformly random lookup key."""
        return rng.randrange(self.space.size)
