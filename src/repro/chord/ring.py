"""Ring construction and global network view.

:class:`ChordRing` is the simulator's view of the whole network: it owns every
:class:`~repro.chord.node.ChordNode`, knows the ground-truth key ownership
(used to score lookup correctness), assigns the malicious subset, and handles
joins and departures.  Protocol code never reads ground truth; it only ever
talks to nodes through their response behaviours, so the ring is purely the
experimental scaffolding the paper's C++ simulator also had.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..crypto.ca import CertificateAuthority
from ..crypto.keys import FAST
from ..sim.rng import RandomSource
from .idspace import IdSpace
from .node import ChordNode


@dataclass
class RingConfig:
    """Parameters controlling ring construction.

    Defaults follow Section 5.1 of the paper (N=1000 security experiments):
    12 fingers, 6 successors, 6 predecessors, 20% malicious nodes.
    """

    n_nodes: int = 1000
    fraction_malicious: float = 0.2
    finger_count: int = 12
    successor_count: int = 6
    predecessor_count: int = 6
    id_bits: int = 32
    key_mode: str = FAST
    seed: int = 0


class ChordRing:
    """The global network: all nodes, ground truth, joins and departures."""

    def __init__(self, space: IdSpace, config: Optional[RingConfig] = None, ca: Optional[CertificateAuthority] = None) -> None:
        self.space = space
        self.config = config or RingConfig(id_bits=space.bits)
        self.ca = ca
        self.nodes: Dict[int, ChordNode] = {}
        self._sorted_ids: List[int] = []
        self.malicious_ids: Set[int] = set()
        self.removed_ids: Set[int] = set()

    # ------------------------------------------------------------ construction
    @classmethod
    def build(
        cls,
        config: Optional[RingConfig] = None,
        rng: Optional[RandomSource] = None,
        ca: Optional[CertificateAuthority] = None,
        placement=None,
    ) -> "ChordRing":
        """Build a fully-populated ring with correct routing state.

        Node identifiers are drawn uniformly at random from the identifier
        space; the malicious subset is a uniform sample of the requested
        fraction, unless ``placement`` — a callable ``(sorted_ids,
        n_malicious, stream, space_size) -> positions`` (indices into
        ``sorted_ids``) — chooses it instead.  Non-uniform adversary
        placements (ID-clustered eclipse regions, high-degree targeting)
        from :mod:`repro.scenarios.adversary` plug in here; the ring itself
        stays strategy-agnostic.  Every node's finger table, successor list
        and predecessor list are initialised to their *correct* values,
        after which churn and stabilization (and attacks) take over.
        """
        config = config or RingConfig()
        rng = rng or RandomSource(config.seed)
        space = IdSpace(bits=config.id_bits)
        ring = cls(space, config=config, ca=ca)

        id_stream = rng.stream("ring-ids")
        ids: Set[int] = set()
        while len(ids) < config.n_nodes:
            ids.add(id_stream.randrange(space.size))
        sorted_ids = sorted(ids)

        n_malicious = int(round(config.fraction_malicious * config.n_nodes))
        if not n_malicious:
            malicious: Set[int] = set()
        elif placement is not None:
            positions = placement(sorted_ids, n_malicious, rng.stream("placement"), space.size)
            malicious = {sorted_ids[pos % config.n_nodes] for pos in positions}
        else:
            malicious = set(rng.sample("ring-malicious", sorted_ids, n_malicious))

        for node_id in sorted_ids:
            node = ChordNode(
                node_id,
                space,
                finger_count=config.finger_count,
                successor_count=config.successor_count,
                predecessor_count=config.predecessor_count,
                malicious=node_id in malicious,
                key_mode=config.key_mode,
            )
            if ca is not None:
                node.certificate = ca.issue_certificate(node_id, node.ip_address, node.keypair.public_key)
            ring.nodes[node_id] = node

        ring._sorted_ids = sorted_ids
        ring.malicious_ids = malicious
        ring.rebuild_routing_state()
        return ring

    def rebuild_routing_state(self, node_ids: Optional[Iterable[int]] = None) -> None:
        """(Re)initialise routing state of the given nodes from ground truth."""
        alive_sorted = self.alive_ids_sorted()
        if not alive_sorted:
            return
        targets = node_ids if node_ids is not None else list(self.nodes)
        for node_id in targets:
            node = self.nodes.get(node_id)
            if node is None or not node.alive:
                continue
            node.finger_table.fill_from(alive_sorted)
            node.successor_list.replace_all(self._neighbors(node_id, alive_sorted, +1, node.successor_list.capacity))
            node.predecessor_list.replace_all(self._neighbors(node_id, alive_sorted, -1, node.predecessor_list.capacity))

    def _neighbors(self, node_id: int, alive_sorted: Sequence[int], direction: int, count: int) -> List[int]:
        if node_id not in self.nodes:
            return []
        pos = bisect.bisect_left(alive_sorted, node_id)
        out: List[int] = []
        n = len(alive_sorted)
        if n <= 1:
            return out
        idx = pos
        for step in range(1, count + 1):
            if direction > 0:
                j = (pos + step) % n
            else:
                j = (pos - step) % n
            candidate = alive_sorted[j]
            if candidate == node_id:
                break
            if candidate not in out:
                out.append(candidate)
        return out

    # --------------------------------------------------------------- accessors
    def node(self, node_id: int) -> ChordNode:
        return self.nodes[node_id]

    def get(self, node_id: int) -> Optional[ChordNode]:
        return self.nodes.get(node_id)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def all_ids(self) -> List[int]:
        return list(self._sorted_ids)

    def alive_ids_sorted(self) -> List[int]:
        return [nid for nid in self._sorted_ids if self.nodes[nid].alive]

    def alive_nodes(self) -> List[ChordNode]:
        return [self.nodes[nid] for nid in self._sorted_ids if self.nodes[nid].alive]

    def honest_ids(self, alive_only: bool = True) -> List[int]:
        return [
            nid
            for nid in self._sorted_ids
            if nid not in self.malicious_ids and (not alive_only or self.nodes[nid].alive)
        ]

    def malicious_alive_ids(self) -> List[int]:
        return [nid for nid in self.malicious_ids if nid in self.nodes and self.nodes[nid].alive]

    def is_malicious(self, node_id: int) -> bool:
        return node_id in self.malicious_ids

    def fraction_malicious_alive(self) -> float:
        """Fraction of alive nodes that are malicious (the Figure 3/4/9 metric)."""
        alive = self.alive_ids_sorted()
        if not alive:
            return 0.0
        return sum(1 for nid in alive if nid in self.malicious_ids) / len(alive)

    # ------------------------------------------------------------- ground truth
    def true_successor(self, key: int) -> Optional[int]:
        """Ground-truth owner of ``key`` (first alive node at or after the key)."""
        alive = self.alive_ids_sorted()
        if not alive:
            return None
        pos = bisect.bisect_left(alive, key % self.space.size)
        if pos == len(alive):
            pos = 0
        return alive[pos]

    def owner_of(self, key: int) -> Optional[int]:
        """Alias for :meth:`true_successor` (Chord key ownership)."""
        return self.true_successor(key)

    # ----------------------------------------------------------- churn / removal
    def mark_dead(self, node_id: int) -> None:
        """A node departs (churn); its state is kept for when it rejoins."""
        node = self.nodes.get(node_id)
        if node is not None:
            node.alive = False

    def mark_alive(self, node_id: int, rebuild_state: bool = True, now: float = 0.0) -> None:
        """A churned node rejoins (fresh routing state, as in the paper's model)."""
        node = self.nodes.get(node_id)
        if node is None:
            return
        node.alive = True
        node.last_join_time = now
        if rebuild_state:
            self.rebuild_routing_state([node_id])

    def remove_permanently(self, node_id: int) -> None:
        """Eject a node whose certificate the CA revoked."""
        node = self.nodes.get(node_id)
        if node is None:
            return
        node.alive = False
        self.removed_ids.add(node_id)
        # The node stays in ``malicious_ids`` so metrics can distinguish
        # "was malicious and got removed" from "honest"; fraction metrics use
        # alive status and ``removed_ids``.

    def remaining_malicious_fraction(self) -> float:
        """Fraction of the *current* network that is malicious and not yet removed."""
        alive = [nid for nid in self._sorted_ids if self.nodes[nid].alive and nid not in self.removed_ids]
        if not alive:
            return 0.0
        return sum(1 for nid in alive if nid in self.malicious_ids) / len(alive)

    # --------------------------------------------------------------- sampling
    def random_alive_id(self, rng, exclude: Optional[Set[int]] = None) -> Optional[int]:
        """A uniformly random alive node id (optionally excluding a set)."""
        exclude = exclude or set()
        candidates = [nid for nid in self.alive_ids_sorted() if nid not in exclude]
        if not candidates:
            return None
        return rng.choice(candidates)

    def random_key(self, rng) -> int:
        """A uniformly random lookup key."""
        return rng.randrange(self.space.size)
