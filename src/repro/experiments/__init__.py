"""Experiment harnesses regenerating every table and figure of the paper.

* :mod:`repro.experiments.security` — Figures 3(a)-(c), 4, 9, 7(b), Table 2.
* :mod:`repro.experiments.anonymity` — Figures 5(a)-(c), 6.
* :mod:`repro.experiments.efficiency` — Table 3, Figure 7(a).
* :mod:`repro.experiments.timing` — Table 1.
* :mod:`repro.experiments.ablation` — Section 4.2 design ablation.
* :mod:`repro.experiments.load` — open-loop sustained-RPS load sweeps
  (offered vs delivered load, latency percentiles, saturation knee).

Every harness also exposes a pickleable module-level ``run_<kind>(config)``
entry point and ``to_dict()``-able results so :mod:`repro.campaign` can fan
trials out across worker processes.
"""

from .ablation import AblationConfig, AblationResult, AnonymityAblation, run_ablation
from .anonymity import (
    AnonymityExperiment,
    AnonymityExperimentConfig,
    AnonymityExperimentResult,
    AnonymityPoint,
    run_anonymity,
)
from .efficiency import (
    EfficiencyExperiment,
    EfficiencyExperimentConfig,
    EfficiencyExperimentResult,
    SchemeEfficiency,
    run_efficiency,
)
from .load import LoadConfig, LoadExperiment, LoadResult, run_load
from .results import (
    ExperimentRecord,
    config_from_dict,
    format_series,
    format_table,
    jsonify,
    percentile,
    percentile_from_cdf,
)
from .security import (
    SecurityExperiment,
    SecurityExperimentConfig,
    SecurityExperimentResult,
    run_attack_sweep,
    run_security,
)
from .timing import TimingExperiment, TimingExperimentConfig, TimingExperimentResult, run_timing

__all__ = [
    "AblationConfig",
    "AblationResult",
    "AnonymityAblation",
    "AnonymityExperiment",
    "AnonymityExperimentConfig",
    "AnonymityExperimentResult",
    "AnonymityPoint",
    "EfficiencyExperiment",
    "EfficiencyExperimentConfig",
    "EfficiencyExperimentResult",
    "SchemeEfficiency",
    "ExperimentRecord",
    "LoadConfig",
    "LoadExperiment",
    "LoadResult",
    "config_from_dict",
    "format_series",
    "format_table",
    "jsonify",
    "percentile",
    "percentile_from_cdf",
    "SecurityExperiment",
    "SecurityExperimentConfig",
    "SecurityExperimentResult",
    "run_ablation",
    "run_anonymity",
    "run_attack_sweep",
    "run_efficiency",
    "run_load",
    "run_security",
    "run_timing",
    "TimingExperiment",
    "TimingExperimentConfig",
    "TimingExperimentResult",
]
