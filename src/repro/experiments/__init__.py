"""Experiment harnesses regenerating every table and figure of the paper.

* :mod:`repro.experiments.security` — Figures 3(a)-(c), 4, 9, 7(b), Table 2.
* :mod:`repro.experiments.anonymity` — Figures 5(a)-(c), 6.
* :mod:`repro.experiments.efficiency` — Table 3, Figure 7(a).
* :mod:`repro.experiments.timing` — Table 1.
"""

from .anonymity import (
    AnonymityExperiment,
    AnonymityExperimentConfig,
    AnonymityExperimentResult,
    AnonymityPoint,
)
from .efficiency import (
    EfficiencyExperiment,
    EfficiencyExperimentConfig,
    EfficiencyExperimentResult,
    SchemeEfficiency,
)
from .results import ExperimentRecord, format_series, format_table
from .security import (
    SecurityExperiment,
    SecurityExperimentConfig,
    SecurityExperimentResult,
    run_attack_sweep,
)
from .timing import TimingExperiment, TimingExperimentConfig, TimingExperimentResult

__all__ = [
    "AnonymityExperiment",
    "AnonymityExperimentConfig",
    "AnonymityExperimentResult",
    "AnonymityPoint",
    "EfficiencyExperiment",
    "EfficiencyExperimentConfig",
    "EfficiencyExperimentResult",
    "SchemeEfficiency",
    "ExperimentRecord",
    "format_series",
    "format_table",
    "SecurityExperiment",
    "SecurityExperimentConfig",
    "SecurityExperimentResult",
    "run_attack_sweep",
    "TimingExperiment",
    "TimingExperimentConfig",
    "TimingExperimentResult",
]
