"""Security experiments: malicious-node identification under active attacks.

Reproduces Section 5 of the paper:

* Figure 3(a): remaining malicious-node fraction under the lookup bias attack
  (attack rates 100% and 50%).
* Figure 3(b): cumulative number of lookups and of biased lookups.
* Figure 3(c): remaining malicious fraction under fingertable manipulation.
* Figure 4: remaining malicious fraction under fingertable pollution.
* Figure 9: remaining malicious fraction under selective DoS.
* Table 2: false positive / false negative / false alarm rates under churn.
* Figure 7(b): the CA's workload over time.

The experiment wires an :class:`~repro.core.octopus_node.OctopusNetwork`,
installs the requested attack behaviour on the adversary's nodes, schedules
the paper's periodic per-node tasks on the discrete-event engine, runs churn,
and samples the metrics over simulated time.  Paper-scale parameters
(N=1000, 1000 s) are the defaults; benchmarks pass scaled-down values that
preserve the qualitative behaviour, as documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..attacks.adversary import Adversary
from ..attacks.fingertable_manipulation import FingertableManipulationBehavior
from ..attacks.fingertable_pollution import FingertablePollutionBehavior
from ..attacks.lookup_bias import LookupBiasBehavior
from ..attacks.selective_dos import SelectiveDosBehavior
from ..core.config import OctopusConfig
from ..core.octopus_node import OctopusNetwork
from ..sim.churn import ChurnConfig, ChurnProcess, ChurnProfile
from ..sim.control import ControlContext, Controller, EngagementRecorder
from ..sim.engine import SimulationEngine
from ..sim.kernel import validate_kernel
from ..sim.metrics import MetricsRegistry
from ..sim.rng import RandomSource
from ..sim.workload import WorkloadModel
from .results import jsonify

#: attack name -> behaviour factory
ATTACKS = {
    "lookup-bias": lambda adv, node, cfg: LookupBiasBehavior(adv, node),
    "fingertable-manipulation": lambda adv, node, cfg: FingertableManipulationBehavior(
        adv, node, collusion_consistency=cfg.collusion_consistency
    ),
    "fingertable-pollution": lambda adv, node, cfg: FingertablePollutionBehavior(
        adv, node, collusion_consistency=cfg.collusion_consistency
    ),
    "selective-dos": lambda adv, node, cfg: SelectiveDosBehavior(adv, node),
    "none": None,
}


@dataclass
class SecurityExperimentConfig:
    """Parameters of one security-simulation run (defaults = Section 5.1)."""

    n_nodes: int = 1000
    fraction_malicious: float = 0.2
    duration: float = 1000.0
    attack: str = "lookup-bias"
    attack_rate: float = 1.0
    collusion_consistency: float = 0.5
    churn_lifetime_minutes: Optional[float] = 60.0
    seed: int = 0
    sample_interval: float = 50.0
    include_lookups: bool = True
    octopus: OctopusConfig = field(default_factory=OctopusConfig)
    #: ring-membership backend, "object" or "array" (see repro.sim.kernel).
    kernel: str = "object"

    def __post_init__(self) -> None:
        validate_kernel(self.kernel)

    def validate(self) -> None:
        if self.attack not in ATTACKS:
            raise ValueError(f"unknown attack {self.attack!r}; choose from {sorted(ATTACKS)}")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        validate_kernel(self.kernel)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (tuples already converted to lists)."""
        return jsonify(asdict(self))


@dataclass
class SecurityExperimentResult:
    """Everything the security figures and Table 2 need."""

    config: SecurityExperimentConfig
    #: (time, remaining malicious fraction) samples — Figures 3(a)/3(c)/4/9
    malicious_fraction_series: List[Tuple[float, float]] = field(default_factory=list)
    #: (time, cumulative lookups) and (time, cumulative biased lookups) — Figure 3(b)
    lookups_series: List[Tuple[float, float]] = field(default_factory=list)
    biased_lookups_series: List[Tuple[float, float]] = field(default_factory=list)
    #: (bucket start, CA messages) — Figure 7(b)
    ca_workload_series: List[Tuple[float, float]] = field(default_factory=list)
    #: Table 2 accuracy metrics
    false_positive_rate: float = 0.0
    false_negative_rate: float = 0.0
    false_alarm_rate: float = 0.0
    identified_malicious: int = 0
    identified_honest: int = 0
    total_lookups: int = 0
    total_biased_lookups: int = 0
    final_malicious_fraction: float = 0.0
    initial_malicious_fraction: float = 0.0
    #: churn activity during the run (0 when churn is disabled) — lets
    #: scenario sweeps see how much dynamism each churn profile produced.
    churn_departures: int = 0
    churn_rejoins: int = 0
    #: per-round engagement report and flat engagement scalars; populated
    #: ONLY when mid-run controllers are attached (adaptive experiments), so
    #: controller-less records stay byte-identical to historical output.
    engagement_rounds: List[Dict[str, float]] = field(default_factory=list)
    engagement_summary: Dict[str, float] = field(default_factory=dict)

    def scalar_metrics(self) -> Dict[str, float]:
        """Flat per-trial metrics aggregated by :mod:`repro.campaign`."""
        ca_totals = [v for _, v in self.ca_workload_series]
        sample_interval = float(self.config.sample_interval) or 1.0
        metrics = {
            # CA workload scalars back Figure 7(b)'s campaign aggregates: the
            # series itself stays in to_dict()'s "series" block.
            "ca_messages_total": float(sum(ca_totals)),
            "ca_messages_peak_per_s": float(max(ca_totals) / sample_interval) if ca_totals else 0.0,
            "initial_malicious_fraction": float(self.initial_malicious_fraction),
            "final_malicious_fraction": float(self.final_malicious_fraction),
            "false_positive_rate": float(self.false_positive_rate),
            "false_negative_rate": float(self.false_negative_rate),
            "false_alarm_rate": float(self.false_alarm_rate),
            "identified_malicious": float(self.identified_malicious),
            "identified_honest": float(self.identified_honest),
            "total_lookups": float(self.total_lookups),
            "total_biased_lookups": float(self.total_biased_lookups),
            "churn_departures": float(self.churn_departures),
            "churn_rejoins": float(self.churn_rejoins),
        }
        if self.engagement_summary:
            metrics.update({k: float(v) for k, v in self.engagement_summary.items()})
        return metrics

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable dump: config, scalar metrics and the raw series."""
        out = {
            "config": self.config.to_dict(),
            "metrics": self.scalar_metrics(),
            "series": {
                "malicious_fraction": [list(p) for p in self.malicious_fraction_series],
                "lookups": [list(p) for p in self.lookups_series],
                "biased_lookups": [list(p) for p in self.biased_lookups_series],
                "ca_workload": [list(p) for p in self.ca_workload_series],
            },
        }
        if self.engagement_rounds:
            out["series"]["engagement"] = [dict(row) for row in self.engagement_rounds]
        return out


class SecurityExperiment:
    """Runs one security-simulation configuration end to end.

    The three keyword hooks are the scenario-subsystem injection points
    (:mod:`repro.scenarios`): a churn *profile* replaces the exponential
    session model, a *workload* replaces the uniform periodic lookups, and a
    *placement* strategy replaces the uniform-random malicious sample.  All
    default to ``None`` — the paper's stylized environment — and injecting
    any of them changes nothing about how the experiment reports results.
    """

    def __init__(
        self,
        config: Optional[SecurityExperimentConfig] = None,
        churn_profile: Optional[ChurnProfile] = None,
        workload: Optional[WorkloadModel] = None,
        placement=None,
        controllers: Tuple[Controller, ...] = (),
    ) -> None:
        self.config = config or SecurityExperimentConfig()
        self.config.validate()
        self.churn_profile = churn_profile
        self.workload = workload
        self.placement = placement
        #: mid-run attacker/defense controllers (``repro.scenarios.controllers``);
        #: attaching any — even the static no-ops — turns on the per-round
        #: engagement report in the result.
        self.controllers = tuple(c for c in controllers if c is not None)

    # -------------------------------------------------------------------- run
    def run(self) -> SecurityExperimentResult:
        cfg = self.config
        octopus_cfg = cfg.octopus.scaled_for(cfg.n_nodes)
        network = OctopusNetwork.create(
            n_nodes=cfg.n_nodes,
            fraction_malicious=cfg.fraction_malicious,
            seed=cfg.seed,
            config=octopus_cfg,
            placement=self.placement,
            kernel=cfg.kernel,
        )
        engine = SimulationEngine()
        # The control-plane bus is always bound: with no subscribers it costs
        # nothing and perturbs nothing (pinned by the golden digests).
        network.bind_hooks(engine.hooks)
        rng = RandomSource(cfg.seed + 1)
        metrics = MetricsRegistry()
        result = SecurityExperimentResult(config=cfg)
        result.initial_malicious_fraction = network.remaining_malicious_fraction()

        adversary = Adversary(network.ring, rng, attack_rate=cfg.attack_rate)
        factory = ATTACKS[cfg.attack]
        if factory is not None:
            adversary.install_behavior(lambda adv, node: factory(adv, node, cfg))

        # ----------------------------------------------------------- lookups
        lookups_counter = metrics.counter("lookups")
        biased_counter = metrics.counter("biased-lookups")

        def perform_lookup(node_id: int, draw_key) -> None:
            node = network.ring.get(node_id)
            if node is None or not node.alive:
                return
            key = draw_key()
            outcome = network.lookup(node_id, key, now=engine.now)
            lookups_counter.increment()
            if outcome.biased:
                biased_counter.increment()
            # Selective-DoS defense: investigate any drop the lookup suffered.
            if outcome.drop_culprits:
                self._investigate_drops(network, node_id, outcome)

        # ------------------------------------------------------ periodic tasks
        honest_ids = network.ring.honest_ids(alive_only=True)
        network.schedule_protocols(engine, node_ids=honest_ids, include_lookups=False)
        if cfg.include_lookups:
            workload = self.workload or WorkloadModel()
            workload.schedule(
                engine,
                honest_ids,
                octopus_cfg.lookup_interval,
                network.ring.space.size,
                rng,
                perform_lookup,
                # Open-loop models pick an initiator per arrival; give them
                # the live membership so departed nodes stop absorbing
                # arrivals.  Closed-loop models ignore this (their initiator
                # set is fixed per node at install time), so churn-free and
                # historical runs stay draw-for-draw identical.
                alive_view=lambda: network.ring.honest_ids(alive_only=True),
            )

        # --------------------------------------------------------------- churn
        churn_config = ChurnConfig.from_minutes(cfg.churn_lifetime_minutes)
        churn: Optional[ChurnProcess] = None
        # A profile can opt in even when the exponential model would be off
        # (trace replay runs from an explicit event list, not a mean lifetime).
        if churn_config.enabled or self.churn_profile is not None:
            def rejoin(nid: int) -> None:
                # Revoked nodes never rejoin; everyone else comes back with a
                # freshly rebuilt routing state and a recorded join time.
                if nid in network.ring.removed_ids:
                    return
                network.ring.mark_alive(nid, now=engine.now)

            churn = ChurnProcess(
                engine,
                churn_config,
                rng.spawn("churn"),
                on_leave=network.ring.mark_dead,
                on_join=rejoin,
                profile=self.churn_profile,
            )
            # Profiles that treat adversarial nodes differently (join-leave
            # attack churn) learn the split here.
            churn.profile.bind_population(set(network.ring.malicious_ids))
            churn.start(list(network.ring.nodes))

        # -------------------------------------------------------- controllers
        recorder: Optional[EngagementRecorder] = None
        if self.controllers:
            recorder = EngagementRecorder()
            recorder.seed_compromised(sorted(network.ring.malicious_ids))
            recorder.attach(engine.hooks)
            ctx = ControlContext(
                engine=engine,
                network=network,
                adversary=adversary,
                churn=churn,
                rng=rng.spawn("control"),
                config=cfg,
                recorder=recorder,
            )
            for controller in self.controllers:
                controller.bind(ctx)

        # ------------------------------------------------------------ sampling
        def sample() -> None:
            t = engine.now
            result.malicious_fraction_series.append((t, network.remaining_malicious_fraction()))
            result.lookups_series.append((t, lookups_counter.value))
            result.biased_lookups_series.append((t, biased_counter.value))

        engine.schedule_periodic(cfg.sample_interval, sample, start=0.0)

        engine.run(until=cfg.duration)
        sample()

        # --------------------------------------------------------- aggregation
        stats = network.identification.stats
        result.false_positive_rate = stats.false_positive_rate
        result.false_negative_rate = stats.false_negative_rate
        result.false_alarm_rate = stats.false_alarm_rate
        result.identified_malicious = stats.identified_malicious
        result.identified_honest = stats.identified_honest
        result.total_lookups = int(lookups_counter.value)
        result.total_biased_lookups = int(biased_counter.value)
        result.final_malicious_fraction = network.remaining_malicious_fraction()
        if churn is not None:
            result.churn_departures = len(churn.log.departures)
            result.churn_rejoins = len(churn.log.rejoins)
        result.ca_workload_series = [
            (t, float(count))
            for t, count in network.ca.workload_buckets(bucket_seconds=cfg.sample_interval, horizon=cfg.duration)
        ]
        if recorder is not None:
            result.engagement_rounds = recorder.rounds(
                cfg.sample_interval, cfg.duration, result.malicious_fraction_series
            )
            result.engagement_summary = recorder.summary()
        return result

    # ----------------------------------------------------------------- helpers
    def _investigate_drops(self, network: OctopusNetwork, initiator_id: int, outcome) -> None:
        """File drop reports for every culprit recorded on a lookup."""
        pairs = list(outcome.query_pairs)
        if outcome.first_pair is not None:
            pairs.append(outcome.first_pair)
        for culprit in outcome.drop_culprits:
            containing = next(
                (p for p in pairs if culprit in (p.first, p.second)),
                outcome.first_pair,
            )
            if containing is None or outcome.first_pair is None:
                continue
            relays = [outcome.first_pair.first, outcome.first_pair.second]
            if containing is not outcome.first_pair:
                relays.extend([containing.first, containing.second])
            network.dos_defense.investigate_drop(initiator_id, relays, culprit, now=0.0)


def run_security(config: Optional[SecurityExperimentConfig] = None) -> SecurityExperimentResult:
    """Pickleable ``(config) -> result`` entry point for campaign workers."""
    return SecurityExperiment(config).run()


def run_attack_sweep(
    attack: str,
    attack_rates: Tuple[float, ...] = (1.0, 0.5),
    base_config: Optional[SecurityExperimentConfig] = None,
) -> Dict[float, SecurityExperimentResult]:
    """Run one attack at several attack rates (the two curves of each figure)."""
    results: Dict[float, SecurityExperimentResult] = {}
    for rate in attack_rates:
        config = base_config or SecurityExperimentConfig()
        config = SecurityExperimentConfig(
            n_nodes=config.n_nodes,
            fraction_malicious=config.fraction_malicious,
            duration=config.duration,
            attack=attack,
            attack_rate=rate,
            collusion_consistency=config.collusion_consistency,
            churn_lifetime_minutes=config.churn_lifetime_minutes,
            seed=config.seed,
            sample_interval=config.sample_interval,
            include_lookups=config.include_lookups,
            octopus=config.octopus,
            kernel=config.kernel,
        )
        results[rate] = SecurityExperiment(config).run()
    return results
