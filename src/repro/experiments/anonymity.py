"""Anonymity experiments: Figures 5(a), 5(b), 5(c) and 6.

Sweeps the fraction of malicious nodes and evaluates initiator/target
anonymity for Octopus (at several dummy-query counts and concurrent lookup
rates) and for the comparison schemes (Chord, NISAN, Torsk).

The paper uses N = 100,000; the estimators scale to that, but the default
benchmark configuration uses a smaller network so the suite runs in seconds.
Both are pure parameters of :class:`AnonymityExperimentConfig`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..anonymity.comparison import ComparisonAnonymityModel
from ..anonymity.initiator import InitiatorAnonymityEstimator
from ..anonymity.observations import AnonymityConfig
from ..anonymity.ring_model import LightweightRing
from ..anonymity.target import TargetAnonymityEstimator
from ..sim.kernel import validate_kernel
from .results import jsonify


@dataclass
class AnonymityExperimentConfig:
    """Parameters of the anonymity sweeps."""

    n_nodes: int = 10_000
    fractions_malicious: Tuple[float, ...] = (0.04, 0.08, 0.12, 0.16, 0.20)
    dummy_counts: Tuple[int, ...] = (2, 6)
    concurrent_lookup_rates: Tuple[float, ...] = (0.005, 0.01)
    n_worlds: int = 200
    seed: int = 0
    #: lookup-path backend, "object" or "array" (see repro.sim.kernel).
    kernel: str = "object"

    def __post_init__(self) -> None:
        validate_kernel(self.kernel)

    def to_dict(self) -> Dict[str, object]:
        return jsonify(asdict(self))


@dataclass
class AnonymityPoint:
    """One data point of the anonymity figures."""

    scheme: str
    fraction_malicious: float
    dummy_queries: int
    concurrent_lookup_rate: float
    initiator_entropy: float
    target_entropy: float
    initiator_leak: float
    target_leak: float
    ideal_entropy: float


@dataclass
class AnonymityExperimentResult:
    """All points of Figures 5(a)/5(c) (Octopus) and 5(b)/6 (comparison)."""

    config: AnonymityExperimentConfig
    octopus_points: List[AnonymityPoint] = field(default_factory=list)
    comparison_points: List[AnonymityPoint] = field(default_factory=list)

    def octopus_series(self, dummy_queries: int, alpha: float) -> List[Tuple[float, float, float]]:
        """``(f, H(I), H(T))`` tuples for one Octopus configuration."""
        return [
            (p.fraction_malicious, p.initiator_entropy, p.target_entropy)
            for p in self.octopus_points
            if p.dummy_queries == dummy_queries and abs(p.concurrent_lookup_rate - alpha) < 1e-9
        ]

    def comparison_series(self, scheme: str) -> List[Tuple[float, float, float]]:
        return [
            (p.fraction_malicious, p.initiator_entropy, p.target_entropy)
            for p in self.comparison_points
            if p.scheme == scheme
        ]

    def scalar_metrics(self) -> Dict[str, float]:
        """Per-scheme mean entropies/leaks across all swept points."""
        metrics: Dict[str, float] = {}
        by_scheme: Dict[str, List[AnonymityPoint]] = {}
        for p in self.octopus_points + self.comparison_points:
            by_scheme.setdefault(p.scheme, []).append(p)
        for scheme in sorted(by_scheme):
            pts = by_scheme[scheme]
            n = float(len(pts))
            metrics[f"{scheme}_initiator_entropy"] = sum(p.initiator_entropy for p in pts) / n
            metrics[f"{scheme}_target_entropy"] = sum(p.target_entropy for p in pts) / n
            metrics[f"{scheme}_initiator_leak"] = sum(p.initiator_leak for p in pts) / n
            metrics[f"{scheme}_target_leak"] = sum(p.target_leak for p in pts) / n
        return metrics

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "metrics": self.scalar_metrics(),
            "octopus_points": [asdict(p) for p in self.octopus_points],
            "comparison_points": [asdict(p) for p in self.comparison_points],
        }


class AnonymityExperiment:
    """Runs the full anonymity sweep.

    ``placement`` optionally replaces the uniform-random malicious sample of
    every ring the sweep builds with a strategy callable (see
    :class:`~repro.anonymity.ring_model.LightweightRing`); it is the scenario
    subsystem's injection point for clustered-eclipse and similar adversary
    placements.
    """

    def __init__(
        self,
        config: Optional[AnonymityExperimentConfig] = None,
        placement=None,
    ) -> None:
        self.config = config or AnonymityExperimentConfig()
        self.placement = placement

    def _ring(self, fraction_malicious: float) -> LightweightRing:
        return LightweightRing(
            n_nodes=self.config.n_nodes,
            fraction_malicious=fraction_malicious,
            seed=self.config.seed,
            placement=self.placement,
            kernel=self.config.kernel,
        )

    def run_octopus(self) -> List[AnonymityPoint]:
        """Octopus points: Figures 5(a) and 5(c)."""
        cfg = self.config
        points: List[AnonymityPoint] = []
        for f in cfg.fractions_malicious:
            ring = self._ring(f)
            for dummies in cfg.dummy_counts:
                for alpha in cfg.concurrent_lookup_rates:
                    anon_cfg = AnonymityConfig(concurrent_lookup_rate=alpha, dummy_queries=dummies)
                    init_est = InitiatorAnonymityEstimator(ring, config=anon_cfg)
                    tgt_est = TargetAnonymityEstimator(ring, config=anon_cfg, presim=init_est.presim)
                    init_res = init_est.estimate(n_worlds=cfg.n_worlds)
                    tgt_res = tgt_est.estimate(n_worlds=cfg.n_worlds)
                    points.append(
                        AnonymityPoint(
                            scheme="octopus",
                            fraction_malicious=f,
                            dummy_queries=dummies,
                            concurrent_lookup_rate=alpha,
                            initiator_entropy=init_res.entropy_bits,
                            target_entropy=tgt_res.entropy_bits,
                            initiator_leak=init_res.information_leak_bits,
                            target_leak=tgt_res.information_leak_bits,
                            ideal_entropy=init_res.ideal_entropy_bits,
                        )
                    )
        return points

    def run_comparison(self, alpha: float = 0.01) -> List[AnonymityPoint]:
        """Chord / NISAN / Torsk points: Figures 5(b) and 6 (alpha = 1%)."""
        cfg = self.config
        points: List[AnonymityPoint] = []
        for f in cfg.fractions_malicious:
            ring = self._ring(f)
            model = ComparisonAnonymityModel(ring, concurrent_lookup_rate=alpha)
            for scheme, res in model.all_schemes().items():
                points.append(
                    AnonymityPoint(
                        scheme=scheme,
                        fraction_malicious=f,
                        dummy_queries=0,
                        concurrent_lookup_rate=alpha,
                        initiator_entropy=res.initiator.entropy_bits,
                        target_entropy=res.target.entropy_bits,
                        initiator_leak=res.initiator.information_leak_bits,
                        target_leak=res.target.information_leak_bits,
                        ideal_entropy=res.initiator.ideal_entropy_bits,
                    )
                )
        return points

    def run(self) -> AnonymityExperimentResult:
        result = AnonymityExperimentResult(config=self.config)
        result.octopus_points = self.run_octopus()
        result.comparison_points = self.run_comparison()
        return result


def run_anonymity(config: Optional[AnonymityExperimentConfig] = None) -> AnonymityExperimentResult:
    """Pickleable ``(config) -> result`` entry point for campaign workers."""
    return AnonymityExperiment(config).run()
