"""Ablation study: which of Octopus's anonymity mechanisms actually matter?

Section 4.2 of the paper argues that (a) a *single* anonymous path for all
queries of a lookup lets the adversary link its observations and run the
range-estimation attack, and (b) dummy queries are only effective when
queries travel over separate paths.  This module quantifies both claims by
evaluating target anonymity with each mechanism switched off:

* ``multi-path + dummies`` — the full Octopus design;
* ``multi-path, no dummies`` — dummy queries disabled;
* ``single path + dummies`` — every query shares one (C, D) pair;
* ``single path, no dummies`` — the weakest configuration.

It is not one of the paper's numbered figures, but it regenerates the design
rationale the paper gives in prose, and DESIGN.md lists it as an ablation
target.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..anonymity.observations import AnonymityConfig
from ..anonymity.ring_model import LightweightRing
from ..anonymity.target import TargetAnonymityEstimator
from ..sim.kernel import validate_kernel
from ..sim.rng import RandomSource
from .results import jsonify


@dataclass
class AblationConfig:
    """Parameters of the anonymity-mechanism ablation."""

    n_nodes: int = 8000
    fraction_malicious: float = 0.2
    concurrent_lookup_rate: float = 0.01
    dummy_queries: int = 6
    relay_pairs_per_lookup: int = 4
    n_worlds: int = 150
    seed: int = 0
    #: lookup-path backend, "object" or "array" (see repro.sim.kernel).
    kernel: str = "object"

    def __post_init__(self) -> None:
        validate_kernel(self.kernel)

    def to_dict(self) -> Dict[str, object]:
        return jsonify(asdict(self))


@dataclass
class AblationPoint:
    """Target anonymity of one configuration variant."""

    variant: str
    dummy_queries: int
    relay_pairs: int
    target_entropy: float
    target_leak: float


@dataclass
class AblationResult:
    """All variants, ordered from strongest to weakest configuration."""

    config: AblationConfig
    points: List[AblationPoint] = field(default_factory=list)

    def by_variant(self) -> Dict[str, AblationPoint]:
        return {p.variant: p for p in self.points}

    def scalar_metrics(self) -> Dict[str, float]:
        """H(T)/leak(T) per design variant, variant names slugified for keys."""
        metrics: Dict[str, float] = {}
        for p in self.points:
            slug = re.sub(r"[^a-z0-9]+", "_", p.variant.lower()).strip("_")
            metrics[f"target_entropy_{slug}"] = float(p.target_entropy)
            metrics[f"target_leak_{slug}"] = float(p.target_leak)
        return metrics

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "metrics": self.scalar_metrics(),
            "points": [asdict(p) for p in self.points],
        }


class AnonymityAblation:
    """Evaluates H(T) for the four design variants of Section 4.2."""

    VARIANTS = (
        ("multi-path + dummies", True, True),
        ("multi-path, no dummies", True, False),
        ("single path + dummies", False, True),
        ("single path, no dummies", False, False),
    )

    def __init__(self, config: Optional[AblationConfig] = None, placement=None) -> None:
        self.config = config or AblationConfig()
        # Scenario-subsystem injection point: optional adversary placement
        # strategy (see LightweightRing), uniform random when None.
        self.placement = placement

    def run(self) -> AblationResult:
        cfg = self.config
        ring = LightweightRing(
            n_nodes=cfg.n_nodes,
            fraction_malicious=cfg.fraction_malicious,
            seed=cfg.seed,
            placement=self.placement,
            kernel=cfg.kernel,
        )
        result = AblationResult(config=cfg)
        for variant, multi_path, with_dummies in self.VARIANTS:
            anon_cfg = AnonymityConfig(
                concurrent_lookup_rate=cfg.concurrent_lookup_rate,
                dummy_queries=cfg.dummy_queries if with_dummies else 0,
                relay_pairs_per_lookup=cfg.relay_pairs_per_lookup if multi_path else 1,
            )
            estimator = TargetAnonymityEstimator(
                ring, config=anon_cfg, rng=RandomSource(cfg.seed + 31)
            )
            estimate = estimator.estimate(n_worlds=cfg.n_worlds)
            result.points.append(
                AblationPoint(
                    variant=variant,
                    dummy_queries=anon_cfg.dummy_queries,
                    relay_pairs=anon_cfg.relay_pairs_per_lookup,
                    target_entropy=estimate.entropy_bits,
                    target_leak=estimate.information_leak_bits,
                )
            )
        return result


def run_ablation(config: Optional[AblationConfig] = None) -> AblationResult:
    """Pickleable ``(config) -> result`` entry point for campaign workers."""
    return AnonymityAblation(config).run()
