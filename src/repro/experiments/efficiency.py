"""Efficiency experiments: Table 3 and Figure 7(a).

The paper measures lookup latency on PlanetLab with 207 nodes and estimates
per-node bandwidth for a 1,000,000-node overlay from the message-size model
of footnote 4.  We reproduce both on the simulator:

* **Latency** — Octopus, Chord and Halo lookups are executed over a ring of
  207 nodes whose pairwise latencies come from the King-like model; each
  lookup's end-to-end latency is the sum (Octopus/Chord) or parallel maximum
  (Halo) of its per-message delays, including the random delay Octopus's
  middle relay adds.  The harness reports mean/median and the latency CDF.
* **Bandwidth** — per-node kbps computed from the message-size model and the
  protocols' periodic schedules, for lookup intervals of 5 and 10 minutes, at
  the paper's 1,000,000-node overlay size (routing-state sizes scale with
  ``log2 N``).

Absolute numbers differ from the PlanetLab deployment (different latency
substrate), but the orderings the paper reports are preserved: Chord is the
latency floor, Halo pays for waiting on all redundant lookups, and Octopus
pays bandwidth for anonymity but stays within a few kbps.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..baselines.chord_lookup import ChordLookupProtocol
from ..baselines.halo import HaloLookupProtocol
from ..core.config import OctopusConfig
from ..core.octopus_node import OctopusNetwork
from ..sim.bandwidth import MessageSizeModel
from ..sim.kernel import validate_kernel
from ..sim.latency import KingLatencyModel
from ..sim.metrics import Histogram
from ..sim.rng import RandomSource
from ..sim.workload import WorkloadModel
from .results import jsonify


@dataclass
class EfficiencyExperimentConfig:
    """Parameters of the efficiency evaluation (defaults follow Section 7)."""

    n_nodes: int = 207
    lookups_per_scheme: int = 300
    fraction_malicious: float = 0.0
    seed: int = 0
    max_relay_delay: float = 0.100
    halo_redundancy: int = 8
    halo_sub_redundancy: int = 4
    #: overlay size assumed for the bandwidth estimate (paper: 1,000,000).
    bandwidth_network_size: int = 1_000_000
    lookup_intervals_minutes: Tuple[float, ...] = (5.0, 10.0)
    octopus: OctopusConfig = field(default_factory=OctopusConfig)
    #: server-side processing/scheduling delay at each *queried* node, part of
    #: the PlanetLab substitution (overloaded testbed machines): an
    #: exponential component plus a small probability of a long stall.
    #: Schemes that wait on many redundant queries (Halo) are hit hardest,
    #: which is what produces the paper's mean >> median latency for Halo.
    processing_delay_mean: float = 0.020
    slow_node_probability: float = 0.03
    slow_node_delay_range: Tuple[float, float] = (0.5, 2.0)
    #: ring-membership backend, "object" or "array" (see repro.sim.kernel).
    kernel: str = "object"

    def __post_init__(self) -> None:
        # Sequence fields normalize to tuples on construction: campaign specs
        # and JSON round trips hand us lists, and a config built from a list
        # must compare equal to the tuple-defaulted fresh one (resume and the
        # backend determinism contract both compare configs structurally).
        self.lookup_intervals_minutes = tuple(self.lookup_intervals_minutes)
        self.slow_node_delay_range = tuple(self.slow_node_delay_range)
        validate_kernel(self.kernel)

    def to_dict(self) -> Dict[str, object]:
        return jsonify(asdict(self))


@dataclass
class SchemeEfficiency:
    """Latency and bandwidth summary for one scheme."""

    scheme: str
    mean_latency: float
    median_latency: float
    latency_cdf: List[Tuple[float, float]]
    bandwidth_kbps: Dict[float, float]
    lookups: int
    correct_fraction: float


@dataclass
class EfficiencyExperimentResult:
    """Everything Table 3 and Figure 7(a) report."""

    config: EfficiencyExperimentConfig
    schemes: Dict[str, SchemeEfficiency] = field(default_factory=dict)

    def table3_rows(self) -> List[Dict[str, object]]:
        rows = []
        for name in ("octopus", "chord", "halo"):
            s = self.schemes.get(name)
            if s is None:
                continue
            row = {
                "scheme": name,
                "mean_latency_s": round(s.mean_latency, 3),
                "median_latency_s": round(s.median_latency, 3),
            }
            for interval, kbps in sorted(s.bandwidth_kbps.items()):
                # %g matches scalar_metrics: whole-number intervals stay short
                # ('5') while fractional ones keep their value ('7.5') instead
                # of truncating — 7.5 and 7 must never share a column key.
                row[f"kbps_lk_int_{interval:g}min"] = round(kbps, 2)
            rows.append(row)
        return rows

    def scalar_metrics(self) -> Dict[str, float]:
        """Flat per-scheme latency/bandwidth metrics for campaign aggregation."""
        metrics: Dict[str, float] = {}
        for name in sorted(self.schemes):
            s = self.schemes[name]
            metrics[f"{name}_mean_latency_s"] = float(s.mean_latency)
            metrics[f"{name}_median_latency_s"] = float(s.median_latency)
            metrics[f"{name}_correct_fraction"] = float(s.correct_fraction)
            for interval, kbps in sorted(s.bandwidth_kbps.items()):
                # %g keeps whole-number intervals short ('5') but preserves
                # fractional ones ('7.5') so distinct intervals never collide.
                metrics[f"{name}_kbps_lk_int_{interval:g}min"] = float(kbps)
        return metrics

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "metrics": self.scalar_metrics(),
            "schemes": {
                name: {
                    "scheme": s.scheme,
                    "mean_latency": s.mean_latency,
                    "median_latency": s.median_latency,
                    "latency_cdf": [list(p) for p in s.latency_cdf],
                    "bandwidth_kbps": {str(k): v for k, v in sorted(s.bandwidth_kbps.items())},
                    "lookups": s.lookups,
                    "correct_fraction": s.correct_fraction,
                }
                for name, s in sorted(self.schemes.items())
            },
        }


class EfficiencyExperiment:
    """Runs the latency measurements and bandwidth estimates for all schemes.

    The two keyword hooks are scenario-subsystem injection points
    (:mod:`repro.scenarios`): a *workload* model replaces the uniform
    initiator/key draws of the measured lookups through the closed-loop
    surface of :class:`repro.sim.workload.WorkloadModel`, and a *placement*
    strategy replaces the uniform-random malicious sample.  Both default to
    ``None`` — the paper's stylized environment — and the default workload
    reproduces the historical draw sequence exactly.
    """

    def __init__(
        self,
        config: Optional[EfficiencyExperimentConfig] = None,
        workload: Optional[WorkloadModel] = None,
        placement=None,
    ) -> None:
        self.config = config or EfficiencyExperimentConfig()
        self.workload = workload
        self.placement = placement

    # ------------------------------------------------------------------ setup
    def _build_network(self) -> Tuple[OctopusNetwork, KingLatencyModel]:
        cfg = self.config
        latency_model = KingLatencyModel(seed=cfg.seed)
        octopus_cfg = cfg.octopus.scaled_for(cfg.n_nodes)
        octopus_cfg = OctopusConfig(
            **{**octopus_cfg.__dict__, "max_relay_delay": cfg.max_relay_delay, "expected_network_size": cfg.n_nodes}
        )
        network = OctopusNetwork.create(
            n_nodes=cfg.n_nodes,
            fraction_malicious=cfg.fraction_malicious,
            seed=cfg.seed,
            config=octopus_cfg,
            latency_model=latency_model,
            placement=self.placement,
            kernel=cfg.kernel,
        )
        return network, latency_model

    def processing_delay_sampler(self):
        """Per-queried-node processing delay callable (see config docstring)."""
        cfg = self.config

        def sample(rng) -> float:
            delay = rng.expovariate(1.0 / cfg.processing_delay_mean) if cfg.processing_delay_mean > 0 else 0.0
            if cfg.slow_node_probability > 0 and rng.random() < cfg.slow_node_probability:
                delay += rng.uniform(*cfg.slow_node_delay_range)
            return delay

        return sample

    # ---------------------------------------------------------------- latency
    def measure_latencies(self) -> Dict[str, Tuple[Histogram, float]]:
        """Latency histograms and correctness fractions per scheme.

        Each measured lookup's initiator and key come from the workload
        model's closed-loop draw surface on the shared ``"keys"`` stream; the
        virtual closed-loop clock advances one second per lookup (lookup
        ``i`` happens at ``now = i``), which is what time-windowed models
        like hot-key-storm see.  With no injected model the default
        :class:`~repro.sim.workload.WorkloadModel` draws
        ``choice(alive)`` + ``randrange(space)`` — the exact
        ``random_alive_id``/``random_key`` sequence this loop always used.
        """
        cfg = self.config
        network, latency_model = self._build_network()
        # The network's config is the authoritative one: it carries the
        # ``scaled_for(n_nodes)`` adjustments (and this harness's overrides),
        # which ``cfg.octopus`` does not.
        octopus_cfg = network.config
        ring = network.ring
        rng = RandomSource(cfg.seed + 3)
        workload_model = self.workload or WorkloadModel()
        keys = rng.stream("keys")
        processing = self.processing_delay_sampler()

        chord = ChordLookupProtocol(
            ring, latency_model=latency_model, rng=rng.spawn("chord"), processing_delay=processing
        )
        halo = HaloLookupProtocol(
            ring,
            redundancy=cfg.halo_redundancy,
            sub_redundancy=cfg.halo_sub_redundancy,
            latency_model=latency_model,
            rng=rng.spawn("halo"),
            processing_delay=processing,
        )
        octopus = network.lookup_protocol
        octopus_processing_rng = rng.stream("octopus-processing")

        histograms = {name: Histogram(name) for name in ("octopus", "chord", "halo")}
        correct = {name: 0 for name in histograms}
        # Pre-build relay pairs once per initiator, as the protocol does on its
        # 15-second random-walk schedule (relay building is not on the lookup's
        # critical path).
        relay_cache: Dict[int, list] = {}

        for i in range(cfg.lookups_per_scheme):
            now = float(i)  # virtual closed-loop clock: one lookup per second
            initiator = workload_model.next_initiator(ring.alive_ids_sorted(), keys, now)
            key = workload_model.next_key(ring.space.size, keys, now)

            if initiator not in relay_cache:
                relay_cache[initiator] = octopus.select_relay_pairs(
                    initiator, octopus_cfg.relay_pairs_per_lookup + 1
                )
            oct_res = octopus.lookup(initiator, key, relay_pairs=list(relay_cache[initiator]))
            # Octopus's critical path queries one node per hop (dummies and
            # relay forwarding are off the critical path / negligible work).
            octopus_latency = oct_res.latency + sum(
                processing(octopus_processing_rng) for _ in range(oct_res.hops)
            )
            histograms["octopus"].record(octopus_latency)
            correct["octopus"] += 1 if oct_res.correct else 0

            chord_res = chord.lookup(initiator, key)
            histograms["chord"].record(chord_res.latency)
            correct["chord"] += 1 if chord_res.correct else 0

            halo_res = halo.lookup(initiator, key)
            histograms["halo"].record(halo_res.latency)
            correct["halo"] += 1 if halo_res.correct else 0

        return {
            name: (histograms[name], correct[name] / max(cfg.lookups_per_scheme, 1)) for name in histograms
        }

    # -------------------------------------------------------------- bandwidth
    def bandwidth_estimates(self) -> Dict[str, Dict[float, float]]:
        """Per-node bandwidth (kbps) per scheme and lookup interval.

        The estimate follows the paper's methodology: count the protocol
        messages each node sends/receives per second under the Section 5.1
        schedules for a ``bandwidth_network_size`` overlay, multiply by the
        footnote-4 message sizes, and add the per-lookup traffic at the given
        lookup interval.
        """
        cfg = self.config
        size_model = MessageSizeModel()
        n = cfg.bandwidth_network_size
        log_n = max(int(math.ceil(math.log2(n))), 1)
        octopus_cfg = cfg.octopus
        fingers = log_n  # at 1e6 nodes every scheme keeps ~log2 N fingers
        successors = octopus_cfg.successor_count
        predecessors = octopus_cfg.predecessor_count
        hops = max(1, int(round(0.5 * log_n)))

        def kbps(bytes_per_second: float) -> float:
            return bytes_per_second * 8.0 / 1000.0

        estimates: Dict[str, Dict[float, float]] = {"octopus": {}, "chord": {}, "halo": {}}
        for interval_min in cfg.lookup_intervals_minutes:
            interval_s = interval_min * 60.0

            # ---------------------------------------------------------- chord
            chord_maint = (
                2 * size_model.routing_table_bytes(successors, signed=False) / octopus_cfg.stabilize_interval
                + (size_model.query_bytes() + size_model.routing_table_bytes(2, signed=False) * hops)
                / octopus_cfg.finger_update_interval
            )
            chord_lookup = hops * (
                size_model.query_bytes() + size_model.routing_table_bytes(2, signed=False)
            ) / interval_s
            estimates["chord"][interval_min] = kbps(chord_maint + chord_lookup)

            # ----------------------------------------------------------- halo
            halo_searches = cfg.halo_redundancy * (1 + cfg.halo_sub_redundancy // 2)
            halo_lookup = halo_searches * hops * (
                size_model.query_bytes() + size_model.routing_table_bytes(2, signed=False)
            ) / interval_s
            estimates["halo"][interval_min] = kbps(chord_maint + halo_lookup)

            # -------------------------------------------------------- octopus
            table_entries = fingers + successors
            signed_table = size_model.reply_bytes(table_entries, onion_layers=0, signed=True)
            onion_query = size_model.query_bytes(onion_layers=4)
            onion_reply = size_model.reply_bytes(table_entries, onion_layers=4, signed=True)
            # Maintenance: bidirectional stabilization with signed lists,
            # random walks every 15 s (2l signed tables + certificates),
            # two surveillance checks per minute (anonymous queries + signed
            # lists), one checked finger update every 30 s.
            walk_hops = 2 * octopus_cfg.random_walk_phase_length
            octopus_maint = (
                2 * size_model.routing_table_bytes(successors + predecessors, signed=True)
                / octopus_cfg.stabilize_interval
                + walk_hops * (size_model.query_bytes() + signed_table) / octopus_cfg.random_walk_interval
                + 2 * (onion_query + onion_reply) / octopus_cfg.surveillance_interval
                + (hops * (size_model.query_bytes() + signed_table) + onion_query + onion_reply)
                / octopus_cfg.finger_update_interval
            )
            # Lookup: each of ~hops queries plus the dummies goes through a
            # 4-relay anonymous path, so each query is forwarded 5 times in
            # each direction (every relay forwards the full onion).
            relay_forwardings = 5
            queries_per_lookup = hops + octopus_cfg.dummy_queries
            octopus_lookup = queries_per_lookup * relay_forwardings * (onion_query + onion_reply) / interval_s
            estimates["octopus"][interval_min] = kbps(octopus_maint + octopus_lookup)
        return estimates

    # -------------------------------------------------------------------- run
    def run(self) -> EfficiencyExperimentResult:
        cfg = self.config
        result = EfficiencyExperimentResult(config=cfg)
        latency = self.measure_latencies()
        bandwidth = self.bandwidth_estimates()
        for scheme, (hist, correct_fraction) in latency.items():
            result.schemes[scheme] = SchemeEfficiency(
                scheme=scheme,
                mean_latency=hist.mean(),
                median_latency=hist.median(),
                latency_cdf=hist.cdf(n_points=40),
                bandwidth_kbps=bandwidth.get(scheme, {}),
                lookups=hist.count,
                correct_fraction=correct_fraction,
            )
        return result


def run_efficiency(config: Optional[EfficiencyExperimentConfig] = None) -> EfficiencyExperimentResult:
    """Pickleable ``(config) -> result`` entry point for campaign workers."""
    return EfficiencyExperiment(config).run()
