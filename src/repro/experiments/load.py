"""Open-loop sustained-RPS load experiments: the serving-path question.

Every other harness drives the paper's closed-loop workload — each node
issues a lookup, waits, and issues another on a fixed period — so offered
load can never outrun the ring.  A service operator asks the opposite
question: lookups arrive from *outside* at N requests per second whether or
not the ring keeps up, so what do p50/p99 latency, success rate and backlog
look like at that offered rate, and where is the saturation knee?  (The
single-hop DHT comparison literature frames exactly this offered-load vs
latency trade-off; the paper's Figure 7 measures only the unloaded path.)

:class:`LoadExperiment` schedules lookups from an arrival process — any
:class:`~repro.sim.workload.WorkloadModel`, open-loop Poisson (with rate
ramps) first — against a churning :class:`~repro.core.octopus_node.
OctopusNetwork` and measures what an operator would:

* **offered vs delivered** — every arrival the workload generates counts as
  offered; only arrivals whose initiator is actually online execute and
  count as delivered (closed-loop models under churn silently shed load —
  the gap is reported, never hidden);
* **latency percentiles** — per-lookup end-to-end latency: the network path
  latency (King model) plus the key owner's queueing + service time, through
  the existing :class:`~repro.sim.metrics.Histogram`/``percentile``
  machinery (p50/p90/p99);
* **saturation** — each key's *owner* serves lookups one at a time with an
  exponential service time: when per-owner arrival rate exceeds
  ``1/service_time_mean_s`` the queue grows without bound and p99 explodes —
  the knee a ``--kind load`` campaign sweeping ``offered_rps`` locates.
  Skewed workloads (``zipf``, ``hot-key-storm``) concentrate arrivals on few
  owners and saturate far below the uniform-traffic knee;
* **in-flight backlog** — the number of lookups issued but not yet
  completed, sampled over time.

The network-wide offered rate is honoured for *any* workload model through
the shared ``interval`` contract: the harness passes ``interval =
population / offered_rps``, so the closed-loop per-node period and the
open-loop default rate (``1/interval`` per node) both sum to ``offered_rps``
across the ring.

``run_load`` is the pickleable campaign entry point (kind ``load``); the
scenario layer composes churn profiles and adversary placements on top.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.config import OctopusConfig
from ..core.octopus_node import OctopusNetwork
from ..sim.churn import ChurnConfig, ChurnProcess, ChurnProfile
from ..sim.engine import SimulationEngine
from ..sim.kernel import validate_kernel
from ..sim.latency import KingLatencyModel
from ..sim.metrics import Histogram, MetricsRegistry
from ..sim.rng import RandomSource
from ..sim.workload import WorkloadModel
from .results import jsonify


def _build_workload(name: str, params: Dict[str, object]) -> WorkloadModel:
    """Instantiate a named workload model from the scenario axis registry.

    Imported lazily: :mod:`repro.scenarios` imports :mod:`repro.experiments`
    at module scope, so the reverse edge must stay inside a function.
    """
    from ..scenarios.workloads import WORKLOADS  # repro-lint: ignore[L101] — deliberate lazy reverse edge; scenarios imports experiments at module scope

    try:
        return WORKLOADS.build(name, dict(params))
    except KeyError as exc:
        raise ValueError(exc.args[0]) from exc


#: Samples per sealed histogram chunk in the load harness recorders.
_HISTOGRAM_CHUNK_SAMPLES = 4096


class _ChunkedHistogram:
    """Bounded-chunk sample recorder, merged via :meth:`Histogram.merge`.

    Samples land in fixed-size chunk histograms sealed at ``chunk_samples``;
    :meth:`merged` concatenates the chunks in recording order, so every
    statistic (mean, percentiles, CDF) is byte-equal to a single in-memory
    histogram over the same stream — pinned by the load differential suite.
    Sealed chunks are exactly the partial summaries a distributed collector
    would ship: producers keep only the open chunk hot, the merge holds the
    union once at aggregation time.
    """

    def __init__(self, name: str, chunk_samples: int = _HISTOGRAM_CHUNK_SAMPLES) -> None:
        if chunk_samples < 1:
            raise ValueError("chunk_samples must be positive")
        self.name = name
        self.chunk_samples = chunk_samples
        self._chunks: List[Histogram] = [Histogram(name=f"{name}[0]")]

    def record(self, value: float) -> None:
        chunk = self._chunks[-1]
        if chunk.count >= self.chunk_samples:
            chunk = Histogram(name=f"{self.name}[{len(self._chunks)}]")
            self._chunks.append(chunk)
        chunk.record(value)

    @property
    def count(self) -> int:
        return sum(chunk.count for chunk in self._chunks)

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    def merged(self) -> Histogram:
        return Histogram.merge(self._chunks, name=self.name)


@dataclass
class LoadConfig:
    """Parameters of one sustained-load run at a single offered-RPS level."""

    n_nodes: int = 150
    fraction_malicious: float = 0.0
    duration: float = 300.0
    #: network-wide offered lookup rate (lookups/second across the ring);
    #: the natural campaign grid axis for a saturation sweep.
    offered_rps: float = 20.0
    #: arrival process, by scenario-axis name (``poisson``, ``uniform``,
    #: ``zipf``, ``hot-key-storm``); a scenario-injected model overrides it.
    workload: str = "poisson"
    workload_params: Dict[str, object] = field(default_factory=dict)
    churn_lifetime_minutes: Optional[float] = 60.0
    sample_interval: float = 10.0
    seed: int = 0
    #: owner-side service model: each lookup occupies the target key's owner
    #: for an exponential service time (mean below), serialized per owner —
    #: the queueing that produces a saturation knee.  0 disables queueing.
    service_time_mean_s: float = 0.020
    slow_node_probability: float = 0.03
    slow_node_delay_range: Tuple[float, float] = (0.5, 2.0)
    octopus: OctopusConfig = field(default_factory=OctopusConfig)
    #: ring-membership backend, "object" or "array" (see repro.sim.kernel).
    kernel: str = "object"

    def __post_init__(self) -> None:
        # Tuple-normalize sequence fields so configs rebuilt from JSON
        # compare equal to fresh ones (resume + backend determinism).
        self.slow_node_delay_range = tuple(self.slow_node_delay_range)
        validate_kernel(self.kernel)

    def validate(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.offered_rps <= 0:
            raise ValueError("offered_rps must be positive")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if self.service_time_mean_s < 0:
            raise ValueError("service_time_mean_s must be non-negative")
        validate_kernel(self.kernel)
        _build_workload(self.workload, self.workload_params)  # fail preflight

    def build_workload(self) -> WorkloadModel:
        return _build_workload(self.workload, self.workload_params)

    def to_dict(self) -> Dict[str, object]:
        return jsonify(asdict(self))


@dataclass
class LoadResult:
    """Offered/delivered load, latency percentiles and backlog of one run."""

    config: LoadConfig
    offered_lookups: int = 0
    delivered_lookups: int = 0
    succeeded_lookups: int = 0
    latency_mean_s: float = 0.0
    latency_p50_s: float = 0.0
    latency_p90_s: float = 0.0
    latency_p99_s: float = 0.0
    latency_cdf: List[Tuple[float, float]] = field(default_factory=list)
    queue_delay_mean_s: float = 0.0
    queue_delay_p99_s: float = 0.0
    inflight_mean: float = 0.0
    inflight_max: float = 0.0
    #: (time, lookups in flight) — the backlog over time
    inflight_series: List[Tuple[float, float]] = field(default_factory=list)
    #: (bucket start, arrivals offered / delivered in the bucket)
    offered_series: List[Tuple[float, float]] = field(default_factory=list)
    delivered_series: List[Tuple[float, float]] = field(default_factory=list)
    churn_departures: int = 0
    churn_rejoins: int = 0

    def scalar_metrics(self) -> Dict[str, float]:
        """Flat per-trial metrics aggregated by :mod:`repro.campaign`."""
        duration = float(self.config.duration)
        delivered = float(self.delivered_lookups)
        return {
            "offered_rps_target": float(self.config.offered_rps),
            "offered_rps_measured": self.offered_lookups / duration,
            "delivered_rps": delivered / duration,
            "delivered_fraction": (
                delivered / self.offered_lookups if self.offered_lookups else 0.0
            ),
            "success_rate": (
                self.succeeded_lookups / delivered if delivered else 0.0
            ),
            "latency_mean_s": float(self.latency_mean_s),
            "latency_p50_s": float(self.latency_p50_s),
            "latency_p90_s": float(self.latency_p90_s),
            "latency_p99_s": float(self.latency_p99_s),
            "queue_delay_mean_s": float(self.queue_delay_mean_s),
            "queue_delay_p99_s": float(self.queue_delay_p99_s),
            "inflight_mean": float(self.inflight_mean),
            "inflight_max": float(self.inflight_max),
            "offered_lookups": float(self.offered_lookups),
            "delivered_lookups": float(self.delivered_lookups),
            "succeeded_lookups": float(self.succeeded_lookups),
            "churn_departures": float(self.churn_departures),
            "churn_rejoins": float(self.churn_rejoins),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "metrics": self.scalar_metrics(),
            "series": {
                "inflight": [list(p) for p in self.inflight_series],
                "offered": [list(p) for p in self.offered_series],
                "delivered": [list(p) for p in self.delivered_series],
                "latency_cdf": [list(p) for p in self.latency_cdf],
            },
        }


class LoadExperiment:
    """Runs one sustained-load configuration end to end.

    The keyword hooks are the scenario-subsystem injection points
    (:mod:`repro.scenarios`): a churn *profile* replaces the exponential
    session model, a *workload* model replaces the config's named arrival
    process, and a *placement* strategy replaces the uniform-random
    malicious sample.
    """

    def __init__(
        self,
        config: Optional[LoadConfig] = None,
        churn_profile: Optional[ChurnProfile] = None,
        workload: Optional[WorkloadModel] = None,
        placement=None,
    ) -> None:
        self.config = config or LoadConfig()
        self.config.validate()
        self.churn_profile = churn_profile
        self.workload = workload
        self.placement = placement

    # -------------------------------------------------------------------- run
    def run(self) -> LoadResult:
        cfg = self.config
        octopus_cfg = cfg.octopus.scaled_for(cfg.n_nodes)
        network = OctopusNetwork.create(
            n_nodes=cfg.n_nodes,
            fraction_malicious=cfg.fraction_malicious,
            seed=cfg.seed,
            config=octopus_cfg,
            latency_model=KingLatencyModel(seed=cfg.seed),
            placement=self.placement,
            kernel=cfg.kernel,
        )
        engine = SimulationEngine()
        network.bind_hooks(engine.hooks)
        rng = RandomSource(cfg.seed + 1)
        metrics = MetricsRegistry()
        result = LoadResult(config=cfg)

        honest_ids = network.ring.honest_ids(alive_only=True)
        if not honest_ids:
            return result
        # The shared interval contract: population / offered_rps makes every
        # model — closed-loop per-node periods and open-loop default rates
        # alike — sum to offered_rps network-wide.
        interval = len(honest_ids) / cfg.offered_rps

        # ------------------------------------------------- service/queue model
        service_stream = rng.stream("load-service")
        busy_until: Dict[int, float] = {}

        def service_time() -> float:
            if cfg.service_time_mean_s <= 0:
                return 0.0
            delay = service_stream.expovariate(1.0 / cfg.service_time_mean_s)
            if (
                cfg.slow_node_probability > 0
                and service_stream.random() < cfg.slow_node_probability
            ):
                delay += service_stream.uniform(*cfg.slow_node_delay_range)
            return delay

        # ---------------------------------------------------------- measuring
        latencies = _ChunkedHistogram("lookup-latency")
        queue_delays = _ChunkedHistogram("queue-delay")
        inflight_samples = _ChunkedHistogram("inflight")
        offered = metrics.counter("offered")
        delivered = metrics.counter("delivered")
        succeeded = metrics.counter("succeeded")
        inflight = {"now": 0}

        def complete() -> None:
            inflight["now"] -= 1

        def perform_lookup(node_id: int, draw_key) -> None:
            offered.increment()
            metrics.bucket_increment("offered", engine.now, cfg.sample_interval)
            node = network.ring.get(node_id)
            if node is None or not node.alive:
                # Offered but undeliverable: a closed-loop schedule firing
                # for a churned-offline node.  Open-loop models draw
                # initiators from the alive view, so they land here only in
                # the instant the whole population is transitioning.
                return
            key = draw_key()
            outcome = network.lookup(node_id, key, now=engine.now)
            delivered.increment()
            metrics.bucket_increment("delivered", engine.now, cfg.sample_interval)
            if outcome.correct:
                succeeded.increment()
            # Owner-side queueing: the key's current owner serves lookups
            # one at a time — the saturation mechanism.
            queue_delay = 0.0
            service = service_time()
            owner = network.ring.owner_of(key)
            if owner is not None:
                start = max(engine.now, busy_until.get(owner, 0.0))
                queue_delay = start - engine.now
                busy_until[owner] = start + service
            total = outcome.latency + queue_delay + service
            latencies.record(total)
            queue_delays.record(queue_delay)
            inflight["now"] += 1
            engine.schedule(total, complete, name="load-complete")

        # ----------------------------------------------------------- schedule
        network.schedule_protocols(engine, node_ids=honest_ids, include_lookups=False)
        workload = self.workload or cfg.build_workload()
        workload.schedule(
            engine,
            honest_ids,
            interval,
            network.ring.space.size,
            rng,
            perform_lookup,
            alive_view=lambda: network.ring.honest_ids(alive_only=True),
        )

        # -------------------------------------------------------------- churn
        churn_config = ChurnConfig.from_minutes(cfg.churn_lifetime_minutes)
        churn: Optional[ChurnProcess] = None
        if churn_config.enabled or self.churn_profile is not None:
            def rejoin(nid: int) -> None:
                if nid in network.ring.removed_ids:
                    return
                network.ring.mark_alive(nid, now=engine.now)

            churn = ChurnProcess(
                engine,
                churn_config,
                rng.spawn("churn"),
                on_leave=network.ring.mark_dead,
                on_join=rejoin,
                profile=self.churn_profile,
            )
            churn.profile.bind_population(set(network.ring.malicious_ids))
            churn.start(list(network.ring.nodes))

        # ----------------------------------------------------------- sampling
        def sample() -> None:
            backlog = float(inflight["now"])
            result.inflight_series.append((engine.now, backlog))
            inflight_samples.record(backlog)

        engine.schedule_periodic(cfg.sample_interval, sample, start=0.0)
        engine.run(until=cfg.duration)
        sample()

        # -------------------------------------------------------- aggregation
        result.offered_lookups = int(offered.value)
        result.delivered_lookups = int(delivered.value)
        result.succeeded_lookups = int(succeeded.value)
        # Merge the sealed chunks back into single histograms; byte-equal to
        # recording straight into one (Histogram.merge concatenates in order).
        latency_hist = latencies.merged()
        queue_delay_hist = queue_delays.merged()
        inflight_hist = inflight_samples.merged()
        if latency_hist.count:
            result.latency_mean_s = latency_hist.mean()
            result.latency_p50_s = latency_hist.percentile(50.0)
            result.latency_p90_s = latency_hist.percentile(90.0)
            result.latency_p99_s = latency_hist.percentile(99.0)
            result.latency_cdf = latency_hist.cdf(n_points=40)
            result.queue_delay_mean_s = queue_delay_hist.mean()
            result.queue_delay_p99_s = queue_delay_hist.percentile(99.0)
        if inflight_hist.count:
            result.inflight_mean = inflight_hist.mean()
            result.inflight_max = max(inflight_hist.samples)
        result.offered_series = metrics.buckets("offered", cfg.sample_interval)
        result.delivered_series = metrics.buckets("delivered", cfg.sample_interval)
        if churn is not None:
            result.churn_departures = len(churn.log.departures)
            result.churn_rejoins = len(churn.log.rejoins)
        return result


def run_load(config: Optional[LoadConfig] = None) -> LoadResult:
    """Pickleable ``(config) -> result`` entry point for campaign workers."""
    return LoadExperiment(config).run()
