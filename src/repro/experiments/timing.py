"""Timing-analysis experiment: Table 1.

Thin harness around :class:`~repro.attacks.timing_analysis.TimingAnalysisAttack`
that evaluates every (maximum relay delay, concurrent lookup rate) cell the
paper reports and renders the same rows.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..attacks.timing_analysis import TimingAnalysisAttack, TimingAnalysisResult
from ..sim.latency import KingLatencyModel
from ..sim.rng import RandomSource
from .results import jsonify


@dataclass
class TimingExperimentConfig:
    """Parameters of the Table 1 reproduction."""

    n_nodes: int = 1_000_000
    fraction_malicious: float = 0.2
    max_delays: Tuple[float, ...] = (0.100, 0.200)
    concurrent_lookup_rates: Tuple[float, ...] = (0.005, 0.01, 0.05)
    max_candidate_flows: int = 2000
    seed: int = 0

    def to_dict(self) -> Dict[str, object]:
        return jsonify(asdict(self))


@dataclass
class TimingExperimentResult:
    """Every cell of Table 1."""

    config: TimingExperimentConfig
    cells: List[TimingAnalysisResult] = field(default_factory=list)

    def table1_rows(self) -> List[Dict[str, object]]:
        """Rows shaped like Table 1: one row per max delay, one column per alpha."""
        rows: List[Dict[str, object]] = []
        for delay in self.config.max_delays:
            row: Dict[str, object] = {"max_delay_ms": int(round(delay * 1000))}
            for cell in self.cells:
                if abs(cell.max_delay - delay) < 1e-12:
                    row[f"alpha_{cell.concurrent_lookup_rate * 100:.1f}pct"] = f"{cell.error_rate * 100:.2f}%"
            rows.append(row)
        return rows

    def min_error_rate(self) -> float:
        return min(cell.error_rate for cell in self.cells) if self.cells else 0.0

    def max_information_leak(self) -> float:
        return max(cell.information_leak_bits for cell in self.cells) if self.cells else 0.0

    def scalar_metrics(self) -> Dict[str, float]:
        """One error-rate/leak metric per Table 1 cell, plus the extremes."""
        metrics: Dict[str, float] = {
            "min_error_rate": float(self.min_error_rate()),
            "max_information_leak_bits": float(self.max_information_leak()),
        }
        for cell in self.cells:
            key = f"{int(round(cell.max_delay * 1000))}ms_alpha_{cell.concurrent_lookup_rate * 100:g}pct"
            metrics[f"error_rate_{key}"] = float(cell.error_rate)
            metrics[f"information_leak_bits_{key}"] = float(cell.information_leak_bits)
        return metrics

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "metrics": self.scalar_metrics(),
            "cells": [asdict(cell) for cell in self.cells],
        }


class TimingExperiment:
    """Runs the full Table 1 grid."""

    def __init__(self, config: Optional[TimingExperimentConfig] = None) -> None:
        self.config = config or TimingExperimentConfig()

    def run(self) -> TimingExperimentResult:
        cfg = self.config
        attack = TimingAnalysisAttack(
            latency_model=KingLatencyModel(seed=cfg.seed),
            rng=RandomSource(cfg.seed),
        )
        result = TimingExperimentResult(config=cfg)
        for delay in cfg.max_delays:
            for alpha in cfg.concurrent_lookup_rates:
                result.cells.append(
                    attack.run(
                        n_nodes=cfg.n_nodes,
                        fraction_malicious=cfg.fraction_malicious,
                        concurrent_lookup_rate=alpha,
                        max_delay=delay,
                        max_candidate_flows=cfg.max_candidate_flows,
                    )
                )
        return result


def run_timing(config: Optional[TimingExperimentConfig] = None) -> TimingExperimentResult:
    """Pickleable ``(config) -> result`` entry point for campaign workers."""
    return TimingExperiment(config).run()
